#!/usr/bin/env bash
# Regenerates every experiment in EXPERIMENTS.md into results/.
# Usage: scripts/run_experiments.sh [--quick]
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results

QUICK=${1:-}
TABLE1_ARGS=""
TABLE2_ARGS="-- --scale 40"
if [ "$QUICK" = "--quick" ]; then
  TABLE1_ARGS="-- --max-sinks 25"
  TABLE2_ARGS="-- --scale 120"
fi

cargo build --workspace --release

echo "== table1 ==";       cargo run -p merlin-bench --release --bin table1 $TABLE1_ARGS | tee results/table1.txt
echo "== table2 ==";       cargo run -p merlin-bench --release --bin table2 $TABLE2_ARGS | tee results/table2.txt
echo "== neighborhood =="; cargo run -p merlin-bench --release --bin neighborhood | tee results/neighborhood.txt
echo "== scaling ==";      cargo run -p merlin-bench --release --bin scaling | tee results/scaling.txt
echo "== ablation ==";     cargo run -p merlin-bench --release --bin ablation | tee results/ablation.txt
echo "== convergence ==";  cargo run -p merlin-bench --release --bin convergence | tee results/convergence.txt
echo "all experiments written to results/"
