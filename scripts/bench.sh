#!/usr/bin/env bash
# Perf baseline driver: builds release and regenerates BENCH_pr10.json
# (micro-bench medians + trace counters + the fixed 50-net batch wall
# clock). Pass --criterion to also run the criterion micro-benchmarks
# (slow; results land in target/criterion/).
# Usage: scripts/bench.sh [--criterion] [--out FILE] [--iters N]
set -euo pipefail
cd "$(dirname "$0")/.."

criterion=0
baseline_args=()
while [ $# -gt 0 ]; do
  case "$1" in
    --criterion) criterion=1 ;;
    --out|--iters|--batch-iters) baseline_args+=("$1" "$2"); shift ;;
    *) echo "bench.sh: unknown flag $1" >&2; exit 2 ;;
  esac
  shift
done

echo "== baseline (BENCH_pr10.json) =="
cargo run -q -p merlin-bench --release --bin baseline -- "${baseline_args[@]+"${baseline_args[@]}"}"

if [ "$criterion" = 1 ]; then
  echo "== criterion micro-benches =="
  cargo bench -p merlin-bench
fi
