#!/usr/bin/env bash
# Tier-1 verification gate: formatting, clippy, the workspace invariant
# auditor, and the test suite with the runtime DP invariant checkers
# compiled in. CI and pre-merge runs should call exactly this script.
# Usage: scripts/check.sh [--fix]   (--fix applies rustfmt instead of checking)
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "${1:-}" = "--fix" ]; then
  cargo fmt --all
else
  echo "== rustfmt =="
  cargo fmt --all -- --check
fi

echo "== clippy =="
# unwrap/expect/panic stay advisory here (warn-level via [workspace.lints]);
# merlin-audit below is the enforcing gate for those, with its allow-list
# and baseline ratchet. Everything else is denied.
cargo clippy --workspace --all-targets -- -D warnings \
  -A clippy::unwrap_used -A clippy::expect_used -A clippy::panic

echo "== merlin-audit =="
cargo run -q -p merlin-audit

echo "== tests (debug: invariant checkers on via debug_assertions) =="
cargo test --workspace -q

echo "== tests (release + --features invariant-checks) =="
cargo test --release --features invariant-checks -q

echo "== chaos tests (fault-injection sites armed) =="
cargo test -q --features fault-inject -p merlin-resilience

echo "all checks passed"
