#!/usr/bin/env bash
# Tier-1 verification gate: formatting, clippy, the workspace invariant
# auditor, and the test suite with the runtime DP invariant checkers
# compiled in. CI and pre-merge runs should call exactly this script.
#
# Usage: scripts/check.sh [--fix] [--stage <name>] [--list]
#   --fix           apply rustfmt instead of checking
#   --stage <name>  run a single stage (repeatable); see --list
#   --list          print the stage names in run order and exit
#
# Each stage builds what it needs, so `--stage parallel` works from a
# cold target/ directory — at the cost of a cargo no-op check when the
# artifacts are already fresh.
set -euo pipefail
cd "$(dirname "$0")/.."

STAGES="fmt clippy audit tests release-tests chaos supervisor-chaos proc-chaos trace parallel prune-ab server-chaos telemetry"

FIX=0
ONLY=()
while [ $# -gt 0 ]; do
  case "$1" in
    --fix) FIX=1 ;;
    --list)
      for s in $STAGES; do echo "$s"; done
      exit 0
      ;;
    --stage)
      shift
      STAGE_ARG="${1:-}"
      case " $STAGES " in
        *" $STAGE_ARG "*) ONLY+=("$STAGE_ARG") ;;
        *)
          echo "check.sh: unknown stage '$STAGE_ARG' (try --list)" >&2
          exit 2
          ;;
      esac
      ;;
    *)
      echo "check.sh: unknown argument '$1'" >&2
      echo "usage: scripts/check.sh [--fix] [--stage <name>] [--list]" >&2
      exit 2
      ;;
  esac
  shift
done

SUPTMP="$(mktemp -d)"
trap 'rm -rf "$SUPTMP"' EXIT

stage_fmt() {
  if [ "$FIX" -eq 1 ]; then
    cargo fmt --all
  else
    echo "== rustfmt =="
    cargo fmt --all -- --check
  fi
}

stage_clippy() {
  echo "== clippy =="
  # unwrap/expect/panic stay advisory here (warn-level via [workspace.lints]);
  # merlin-audit below is the enforcing gate for those, with its allow-list
  # and baseline ratchet. Everything else is denied.
  cargo clippy --workspace --all-targets -- -D warnings \
    -A clippy::unwrap_used -A clippy::expect_used -A clippy::panic
}

stage_audit() {
  echo "== merlin-audit (engine tests, workspace scan, SARIF/JSON export) =="
  # The auditor's own suite first (lexer proptests + seeded-violation
  # corpus), then the real scan with both report sinks and a runtime
  # budget: the token engine scans the workspace in ~40 ms, so blowing
  # 10 s means something is catastrophically wrong with it.
  cargo test -q -p merlin-audit
  local AUDTMP
  AUDTMP="$(mktemp -d)"
  cargo run -q -p merlin-audit -- \
    --sarif "$AUDTMP/audit.sarif" --json "$AUDTMP/audit.json" \
    --max-runtime-ms 10000
  if command -v python3 >/dev/null 2>&1; then
    python3 - "$AUDTMP/audit.sarif" "$AUDTMP/audit.json" <<'EOF'
import json, sys
sarif = json.load(open(sys.argv[1]))
assert sarif["version"] == "2.1.0", "bad SARIF version"
run = sarif["runs"][0]
assert run["tool"]["driver"]["rules"], "empty SARIF rule catalog"
json.load(open(sys.argv[2]))
EOF
  else
    # No python3: at least require the SARIF envelope fields.
    grep -q '"version": "2.1.0"' "$AUDTMP/audit.sarif"
    grep -q '"rules"' "$AUDTMP/audit.sarif"
  fi
  rm -rf "$AUDTMP"
}

stage_tests() {
  echo "== tests (debug: invariant checkers on via debug_assertions) =="
  cargo test --workspace -q
}

stage_release_tests() {
  echo "== tests (release + --features invariant-checks) =="
  cargo test --release --features invariant-checks -q
}

stage_chaos() {
  echo "== chaos tests (fault-injection sites armed) =="
  cargo test -q --features fault-inject -p merlin-resilience
  cargo test -q --features fault-inject -p merlin-supervisor
}

stage_supervisor_chaos() {
  echo "== supervisor-chaos (batch + kill + resume, zero lost nets) =="
  # A 200-net batch under fault injection, aborted mid-run by the
  # crash-after chaos hook (a real std::process::abort after the Nth
  # fsync'd journal commit), then resumed. The resumed report must account
  # for every net: the grep for "lost: 0" is the gate, and "served: 200"
  # holds because injected panics degrade down the ladder instead of
  # failing nets outright.
  cargo build -q --features fault-inject --bin merlin_cli
  set +e
  target/debug/merlin_cli batch --gen 200 --sinks 4 --seed 7 --jobs 2 \
    --work-limit 200000 --chaos flows.flow3.run:panic:3 --crash-after 60 \
    --journal "$SUPTMP/run.journal" --artifacts "$SUPTMP/artifacts" \
    --report "$SUPTMP/report.txt" 2>/dev/null
  CRASH_STATUS=$?
  set -e
  if [ "$CRASH_STATUS" -eq 0 ]; then
    echo "supervisor-chaos: expected the crash-after abort, got a clean exit" >&2
    exit 1
  fi
  target/debug/merlin_cli resume --gen 200 --sinks 4 --seed 7 --jobs 2 \
    --work-limit 200000 --chaos flows.flow3.run:panic:3 \
    --journal "$SUPTMP/run.journal" --artifacts "$SUPTMP/artifacts" \
    --report "$SUPTMP/report.txt"
  grep -q "^nets: 200 served: 200 .* lost: 0$" "$SUPTMP/report.txt" || {
    echo "supervisor-chaos: resumed report lost nets:" >&2
    head -3 "$SUPTMP/report.txt" >&2
    exit 1
  }
}

stage_proc_chaos() {
  echo "== proc-chaos (sharded workers + SIGKILL + parent crash + reshard resume) =="
  # The process-isolation gauntlet. Reference first: the same 200-net
  # population, uninterrupted, single-process thread mode. Then the chaotic
  # run: 4 worker subprocesses where every worker incarnation tears its
  # 20th journal commit mid-fsync and aborts (supervisor.proc.commit chaos),
  # one worker generation is SIGKILL'd from outside mid-batch, and the
  # *parent* aborts after observing 120 commits (--crash-after). Resuming
  # under a different shard count must account for every net exactly once
  # and render byte-identically to the reference.
  cargo build -q --features fault-inject --bin merlin_cli
  target/debug/merlin_cli batch --gen 200 --sinks 4 --seed 7 --jobs 2 \
    --work-limit 200000 \
    --journal "$SUPTMP/proc-ref.journal" --artifacts "$SUPTMP/artifacts" \
    --report "$SUPTMP/proc-ref.txt" 2>/dev/null
  set +e
  target/debug/merlin_cli batch --gen 200 --sinks 4 --seed 7 \
    --work-limit 200000 --isolation process --shards 4 \
    --chaos supervisor.proc.commit:empty:20 --crash-after 120 \
    --journal "$SUPTMP/proc.journal" --artifacts "$SUPTMP/artifacts" \
    --report "$SUPTMP/proc.txt" 2>/dev/null &
  PROC_PID=$!
  sleep 5
  # The bracket keeps the pattern from matching any shell whose argv
  # happens to contain this script's text (pkill -f matches full argv).
  pkill -9 -f 'merlin_cl[i] worker' 2>/dev/null
  wait "$PROC_PID"
  PROC_STATUS=$?
  set -e
  if [ "$PROC_STATUS" -eq 0 ]; then
    echo "proc-chaos: expected the crash-after parent abort, got a clean exit" >&2
    exit 1
  fi
  # Orphaned workers drain on stdin EOF; give their sealed segments a beat.
  sleep 2
  target/debug/merlin_cli resume --gen 200 --sinks 4 --seed 7 \
    --work-limit 200000 --isolation process --shards 2 \
    --journal "$SUPTMP/proc.journal" --artifacts "$SUPTMP/artifacts" \
    --report "$SUPTMP/proc.txt" 2>/dev/null
  grep -q "^nets: 200 served: 200 .* lost: 0$" "$SUPTMP/proc.txt" || {
    echo "proc-chaos: resumed report lost nets:" >&2
    head -3 "$SUPTMP/proc.txt" >&2
    exit 1
  }
  cmp -s "$SUPTMP/proc-ref.txt" "$SUPTMP/proc.txt" || {
    echo "proc-chaos: resumed process-mode report diverged from the reference:" >&2
    diff "$SUPTMP/proc-ref.txt" "$SUPTMP/proc.txt" | head -10 >&2
    exit 1
  }
  # Poison-net quarantine: every solve panics its worker on first touch, so
  # with --poison-k 2 each net must be quarantined as failed-crash after two
  # worker deaths instead of crash-looping the shard forever.
  target/debug/merlin_cli batch --gen 6 --sinks 4 --seed 7 \
    --isolation process --shards 1 --poison-k 2 \
    --chaos supervisor.proc.solve:panic:1 \
    --journal "$SUPTMP/poison.journal" --artifacts "$SUPTMP/artifacts" \
    --report "$SUPTMP/poison.txt" 2>/dev/null
  grep -q "failed-crash: 6 lost: 0$" "$SUPTMP/poison.txt" || {
    echo "proc-chaos: poison nets were not all quarantined:" >&2
    head -3 "$SUPTMP/poison.txt" >&2
    exit 1
  }
  QUARANTINE_REPROS=$(ls "$SUPTMP"/artifacts/*.repro 2>/dev/null | wc -l)
  if [ "$QUARANTINE_REPROS" -lt 6 ]; then
    echo "proc-chaos: expected >= 6 quarantine .repro artifacts, found $QUARANTINE_REPROS" >&2
    exit 1
  fi
}

stage_trace() {
  echo "== trace (solve --trace: valid JSON, hot-path counters nonzero) =="
  # Solve one net with tracing on: the chrome trace file must parse as
  # JSON, and the instrumentation must actually have fired — the prune and
  # StarCache counters are the canaries for the curves/core layers.
  cargo build -q --release --bin merlin_cli
  cat > "$SUPTMP/trace-demo.net" <<'EOF'
net trace-demo
source 0 0 4.0
sink 400 300 12.0 900.0
sink -250 500 9.5 800.0
sink 600 -150 15.0 1000.0
sink -400 -350 7.0 850.0
EOF
  target/release/merlin_cli solve "$SUPTMP/trace-demo.net" \
    --trace "$SUPTMP/trace.json" --stats > "$SUPTMP/trace-stats.txt"
  if command -v python3 >/dev/null 2>&1; then
    python3 - "$SUPTMP/trace.json" <<'EOF'
import json, sys
events = json.load(open(sys.argv[1]))["traceEvents"]
assert events, "empty traceEvents"
assert all("ph" in e and "pid" in e and "tid" in e for e in events)
EOF
  else
    # No python3: at least require the chrome-trace envelope and one
    # complete ("X") span event.
    grep -q '"traceEvents"' "$SUPTMP/trace.json"
    grep -q '"ph":"X"' "$SUPTMP/trace.json"
  fi
  # Stats counter names are width-padded; match `counter <name> ... = <nonzero>`.
  grep -Eq 'counter curves\.pruned += [1-9]' "$SUPTMP/trace-stats.txt" || {
    echo "trace: curves.pruned counter missing or zero:" >&2
    grep "curves.pruned" "$SUPTMP/trace-stats.txt" >&2 || true
    exit 1
  }
  grep -Eq 'counter core\.cache\.hit += [1-9]' "$SUPTMP/trace-stats.txt" || {
    echo "trace: core.cache.hit counter missing or zero:" >&2
    grep "core.cache.hit" "$SUPTMP/trace-stats.txt" >&2 || true
    exit 1
  }
}

stage_parallel() {
  echo "== parallel (sequential vs --threads 4: byte-identical output) =="
  # The level-sharded parallel BUBBLE_CONSTRUCT promises results identical
  # to the sequential engine at any thread count. Solve the same net at
  # --threads 1, 2 and 4 and byte-diff the rendered reports and SVG trees.
  # No --stats here on purpose: cache hit/miss tallies and arena layout are
  # internal and legitimately differ across thread counts.
  cargo build -q --release --bin merlin_cli
  cat > "$SUPTMP/parallel-demo.net" <<'EOF'
net parallel-demo
source 0 0 4.0
sink 400 300 12.0 900.0
sink -250 500 9.5 800.0
sink 600 -150 15.0 1000.0
sink -400 -350 7.0 850.0
sink 150 650 11.0 950.0
sink -550 120 8.5 780.0
EOF
  for t in 1 2 4; do
    target/release/merlin_cli solve "$SUPTMP/parallel-demo.net" --threads "$t" \
      --svg "$SUPTMP/parallel-$t.svg" \
      | grep -v '^runtime\|^svg written' > "$SUPTMP/parallel-$t.txt"
  done
  for t in 2 4; do
    diff -u "$SUPTMP/parallel-1.txt" "$SUPTMP/parallel-$t.txt" || {
      echo "parallel: --threads $t report diverged from sequential" >&2
      exit 1
    }
    cmp -s "$SUPTMP/parallel-1.svg" "$SUPTMP/parallel-$t.svg" || {
      echo "parallel: --threads $t rendered tree diverged from sequential" >&2
      exit 1
    }
  done
}

stage_prune_ab() {
  echo "== prune-ab (indexed vs legacy sweep: byte identity + non-regression) =="
  # Same-binary differential gate for the indexed prune staircase: the
  # legacy BTreeMap sweep is compiled in via the bench crate's
  # legacy-sweep feature and toggled process-wide, so curve-level output,
  # whole-solve fingerprints (threads 1/2/4), and interleaved timings are
  # all compared inside one process. Exit 1 = a gate failed; exit 2 =
  # built without the feature (a wiring bug in this script).
  cargo run -q --release -p merlin-bench --features legacy-sweep \
    --bin prune_ab || {
    echo "prune-ab: the A/B gate failed (see above)" >&2
    exit 1
  }
}

stage_server_chaos() {
  echo "== server-chaos (SIGKILL + restart recovery, typed shedding, latency) =="
  cargo build -q --release --bin merlin_cli
  cargo build -q --features fault-inject --bin merlin_cli
  # Reference first: an uninterrupted daemon serving a 100-net stream in
  # wait mode. Its report is the byte-compare target, and the per-submit
  # round-trip latencies become the BENCH_pr8.json snapshot
  # (n, p50_ms, p99_ms).
  SRVREF="$SUPTMP/srv-ref"
  target/release/merlin_cli serve --data-dir "$SRVREF" --capacity 128 --jobs 2 &
  SRV_PID=$!
  for _ in $(seq 1 100); do [ -f "$SRVREF/server.addr" ] && break; sleep 0.1; done
  target/release/merlin_cli submit --gen 100 --sinks 4 --seed 7 \
    --data-dir "$SRVREF" --latency-json BENCH_pr8.json > /dev/null
  target/release/merlin_cli status --data-dir "$SRVREF" \
    --report "$SUPTMP/srv-ref.txt"
  target/release/merlin_cli status --data-dir "$SRVREF" --drain > /dev/null
  wait "$SRV_PID"

  # Chaos run: the first 60 nets of the same stream fire-and-forget, then
  # SIGKILL the daemon mid-stream and restart it over the same data dir.
  # Startup recovery must re-solve every acked-but-unfinished job (intake
  # minus outcomes) before the listener binds; submitting the full 100-net
  # stream afterwards replays the journaled prefix instead of re-solving
  # it and solves only the 40-net remainder, and the final report must be
  # byte-identical to the uninterrupted reference. (--gen N generates net
  # i from seed+i, so --gen 60 is a strict prefix of --gen 100.)
  SRVDIR="$SUPTMP/srv-chaos"
  target/release/merlin_cli serve --data-dir "$SRVDIR" --capacity 128 --jobs 2 &
  SRV_PID=$!
  for _ in $(seq 1 100); do [ -f "$SRVDIR/server.addr" ] && break; sleep 0.1; done
  target/release/merlin_cli submit --gen 60 --sinks 4 --seed 7 \
    --data-dir "$SRVDIR" --no-wait > /dev/null
  kill -9 "$SRV_PID"
  set +e
  wait "$SRV_PID" 2>/dev/null
  set -e
  # kill -9 skipped cleanup: drop the stale address file so the poll below
  # only sees the restarted daemon's freshly bound address.
  rm -f "$SRVDIR/server.addr"
  target/release/merlin_cli serve --data-dir "$SRVDIR" --capacity 128 --jobs 2 &
  SRV_PID=$!
  for _ in $(seq 1 1200); do [ -f "$SRVDIR/server.addr" ] && break; sleep 0.1; done
  if target/release/merlin_cli status --data-dir "$SRVDIR" --stats \
      | grep -q '"recovered":0'; then
    echo "server-chaos: SIGKILL landed after every job finished; recovery untested" >&2
    exit 1
  fi
  target/release/merlin_cli submit --gen 100 --sinks 4 --seed 7 \
    --data-dir "$SRVDIR" --connect-timeout-ms 300000 > /dev/null
  target/release/merlin_cli status --data-dir "$SRVDIR" \
    --report "$SUPTMP/srv-chaos.txt"
  target/release/merlin_cli status --data-dir "$SRVDIR" --drain > /dev/null
  wait "$SRV_PID"
  cmp -s "$SUPTMP/srv-ref.txt" "$SUPTMP/srv-chaos.txt" || {
    echo "server-chaos: recovered report diverged from the reference:" >&2
    diff "$SUPTMP/srv-ref.txt" "$SUPTMP/srv-chaos.txt" | head -10 >&2
    exit 1
  }

  # Typed load shedding: a daemon with the server.queue fault armed rejects
  # every submit with the typed `overloaded` response (retry_after_ms hint
  # included) without the queue ever filling, and the client maps the
  # rejections to a nonzero exit.
  SRVOVL="$SUPTMP/srv-ovl"
  target/debug/merlin_cli serve --data-dir "$SRVOVL" --capacity 64 --jobs 1 \
    --chaos server.queue:empty:1 &
  SRV_PID=$!
  for _ in $(seq 1 100); do [ -f "$SRVOVL/server.addr" ] && break; sleep 0.1; done
  set +e
  OVL_OUT=$(target/debug/merlin_cli submit --gen 2 --sinks 4 --seed 7 \
    --data-dir "$SRVOVL" 2>&1)
  OVL_STATUS=$?
  set -e
  if [ "$OVL_STATUS" -eq 0 ]; then
    echo "server-chaos: shed submissions exited 0" >&2
    exit 1
  fi
  echo "$OVL_OUT" | grep -q "overloaded (retry after" || {
    echo "server-chaos: expected typed overloaded rejections, got:" >&2
    echo "$OVL_OUT" | head -5 >&2
    exit 1
  }
  target/debug/merlin_cli status --data-dir "$SRVOVL" --drain > /dev/null
  wait "$SRV_PID"
}

stage_telemetry() {
  echo "== telemetry (metrics exposition, watch stream, trace retrieval, slow subscriber) =="
  cargo build -q --release --bin merlin_cli
  cargo build -q --features fault-inject --bin merlin_cli
  # Part 1: a fresh release daemon (so registry totals are exact) serving
  # 30 nets with a concurrent watch client attached before the first
  # submit. The watcher must see exactly 30 `done` events with strictly
  # increasing seq; the exposition must be internally consistent
  # (cumulative buckets, +Inf == count) and agree on the 30; a completed
  # job's captured trace must come back as JSONL.
  SRVTEL="$SUPTMP/srv-tel"
  target/release/merlin_cli serve --data-dir "$SRVTEL" --capacity 128 --jobs 2 \
    --capture-traces 4 &
  SRV_PID=$!
  for _ in $(seq 1 100); do [ -f "$SRVTEL/server.addr" ] && break; sleep 0.1; done
  target/release/merlin_cli watch --data-dir "$SRVTEL" \
    > "$SUPTMP/watch.out" 2> "$SUPTMP/watch.err" &
  WATCH_PID=$!
  # Only submit once the subscriber is acked, or early events are legal
  # to miss.
  for _ in $(seq 1 100); do
    grep -q "streaming events" "$SUPTMP/watch.err" 2>/dev/null && break
    sleep 0.1
  done
  target/release/merlin_cli submit --gen 30 --sinks 4 --seed 7 \
    --data-dir "$SRVTEL" > /dev/null
  target/release/merlin_cli metrics --data-dir "$SRVTEL" > "$SUPTMP/metrics.txt"
  target/release/merlin_cli status --data-dir "$SRVTEL" \
    --trace-id 29 "$SUPTMP/job29.jsonl" > /dev/null
  if ! [ -s "$SUPTMP/job29.jsonl" ] || ! grep -q '"name"' "$SUPTMP/job29.jsonl"; then
    echo "telemetry: captured trace for job 29 is empty or malformed" >&2
    exit 1
  fi
  target/release/merlin_cli status --data-dir "$SRVTEL" --drain > /dev/null
  wait "$SRV_PID"
  wait "$WATCH_PID" || {
    echo "telemetry: watch client did not exit cleanly on drain" >&2
    exit 1
  }
  if command -v python3 >/dev/null 2>&1; then
    python3 - "$SUPTMP/watch.out" "$SUPTMP/metrics.txt" <<'EOF'
import json, sys

# Watch stream: every line parses; seq strictly increases; exactly 30
# done events, each with a service time and the final tier.
events = []
for line in open(sys.argv[1]):
    line = line.strip()
    if not line:
        continue
    obj = json.loads(line)
    if obj.get("type") == "event":
        events.append(obj)
seqs = [e["seq"] for e in events]
assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs), \
    f"seq not strictly increasing: {seqs[:10]}..."
done = [e for e in events if e["event"] == "done"]
assert len(done) == 30, f"expected 30 done events, saw {len(done)}"
assert all("service_ms" in e and "tier" in e for e in done)
assert len([e for e in events if e["event"] == "queued"]) == 30
assert len([e for e in events if e["event"] == "started"]) == 30

# Exposition: counters parse; histogram bucket series are cumulative
# with +Inf pinned to _count; the done counter agrees with the stream.
samples = {}
hist_buckets = {}
for line in open(sys.argv[2]):
    line = line.strip()
    if not line or line.startswith("#"):
        continue
    name, value = line.rsplit(" ", 1)
    value = int(value)
    if "_bucket{le=" in name:
        base = name.split("_bucket{", 1)[0]
        hist_buckets.setdefault(base, []).append((name, value))
    else:
        samples[name] = value
assert samples["merlin_server_events_done"] == 30, samples
assert samples["merlin_server_events_rejected"] == 0, samples
assert samples["merlin_server_metrics_service_ms_count"] == 30, samples
assert hist_buckets, "no histogram bucket series exposed"
for base, buckets in hist_buckets.items():
    counts = [v for (_, v) in buckets]
    assert counts == sorted(counts), f"{base} buckets not cumulative: {counts}"
    assert buckets[-1][0].endswith('le="+Inf"}'), f"{base} missing +Inf"
    assert buckets[-1][1] == samples[base + "_count"], \
        f"{base}: +Inf {buckets[-1][1]} != count {samples[base + '_count']}"
    assert base + "_sum" in samples, f"{base} missing _sum"
served = [v for (k, v) in samples.items()
          if k.startswith("merlin_server_metrics_served_")]
assert sum(served) == 30, f"per-tier served counts do not sum to 30: {served}"
EOF
  else
    [ "$(grep -c '"event":"done"' "$SUPTMP/watch.out")" -eq 30 ] || {
      echo "telemetry: expected 30 done events in the watch stream" >&2
      exit 1
    }
    grep -q '^merlin_server_events_done 30$' "$SUPTMP/metrics.txt" || {
      echo "telemetry: events.done counter is not 30:" >&2
      grep "events_done" "$SUPTMP/metrics.txt" >&2 || true
      exit 1
    }
  fi

  # Part 2: a deliberately stalled subscriber must never block the solve
  # path. The debug fault-inject build arms server.watch:stall (the watch
  # writer sleeps 20 s right after its ack) with a 4-event buffer; a raw
  # client that never reads attaches, then 8 wait-mode submits must still
  # complete, and the drops must be accounted in server.events.dropped.
  SRVSTALL="$SUPTMP/srv-stall"
  target/debug/merlin_cli serve --data-dir "$SRVSTALL" --capacity 64 --jobs 1 \
    --watch-buffer 4 --chaos server.watch:stall:1:20000 &
  SRV_PID=$!
  for _ in $(seq 1 100); do [ -f "$SRVSTALL/server.addr" ] && break; sleep 0.1; done
  STALL_ADDR=$(cat "$SRVSTALL/server.addr")
  exec 9<>"/dev/tcp/${STALL_ADDR%:*}/${STALL_ADDR##*:}"
  printf '{"cmd": "watch"}\n' >&9
  # Never read fd 9: the subscriber is now as slow as a subscriber gets.
  target/debug/merlin_cli submit --gen 8 --sinks 4 --seed 7 \
    --data-dir "$SRVSTALL" > /dev/null || {
    echo "telemetry: submits blocked behind a stalled watch subscriber" >&2
    exit 1
  }
  target/debug/merlin_cli metrics --data-dir "$SRVSTALL" > "$SUPTMP/metrics-stall.txt"
  grep -Eq '^merlin_server_events_dropped [1-9][0-9]*$' "$SUPTMP/metrics-stall.txt" || {
    echo "telemetry: stalled subscriber produced no drop accounting:" >&2
    grep "events_dropped" "$SUPTMP/metrics-stall.txt" >&2 || true
    exit 1
  }
  target/debug/merlin_cli status --data-dir "$SRVSTALL" --drain > /dev/null
  wait "$SRV_PID"
  exec 9<&- 9>&-
}

run_stage() {
  case "$1" in
    fmt) stage_fmt ;;
    clippy) stage_clippy ;;
    audit) stage_audit ;;
    tests) stage_tests ;;
    release-tests) stage_release_tests ;;
    chaos) stage_chaos ;;
    supervisor-chaos) stage_supervisor_chaos ;;
    proc-chaos) stage_proc_chaos ;;
    trace) stage_trace ;;
    parallel) stage_parallel ;;
    prune-ab) stage_prune_ab ;;
    server-chaos) stage_server_chaos ;;
    telemetry) stage_telemetry ;;
    *)
      echo "check.sh: unknown stage '$1'" >&2
      exit 2
      ;;
  esac
}

if [ "${#ONLY[@]}" -gt 0 ]; then
  for s in "${ONLY[@]}"; do run_stage "$s"; done
  echo "selected stages passed"
else
  for s in $STAGES; do run_stage "$s"; done
  echo "all checks passed"
fi
