//! Theorem 1: the size of an order neighborhood.
//!
//! For `n > 1` the number of distinct orders in `N(Π)` is
//!
//! ```text
//! (1/√5) · ( φ^(n+2) − ψ^(n+2) ),   φ = (1+√5)/2,  ψ = (1−√5)/2
//! ```
//!
//! a Fibonacci number — irrational-looking, always an integer, and
//! exponential in `n`, which is the whole point: `BUBBLE_CONSTRUCT` covers
//! this exponential subspace in polynomial time.
//!
//! Indexing note: explicit enumeration of `N(Π)` (members = subsets of
//! non-overlapping adjacent swaps over `n−1` slots) yields `F(n+1)` in the
//! standard `F(0)=0, F(1)=1` indexing (2 members for `n=2`, 3 for `n=3`,
//! 5 for `n=4`, …). The paper's exponent `n+2` corresponds to the shifted
//! `F(1)=0, F(2)=1` convention; both describe the same count, which
//! [`neighborhood_size`] returns and the test-suite checks against explicit
//! enumeration for `n ≤ 12`.

/// Fibonacci number `F(k)` with `F(0) = 0, F(1) = 1`.
///
/// # Panics
///
/// Panics on overflow (k > 186 does not fit in `u128`).
pub fn fibonacci(k: u32) -> u128 {
    let (mut a, mut b) = (0u128, 1u128);
    for _ in 0..k {
        let next = a.checked_add(b).expect("fibonacci overflow");
        a = b;
        b = next;
    }
    a
}

/// The number of distinct orders in `N(Π)` for `n` sinks (Theorem 1).
///
/// Matches explicit enumeration (see `merlin_order::neighborhood::enumerate`)
/// and evaluates the closed form exactly using integer arithmetic.
///
/// ```
/// use merlin_order::fib::neighborhood_size;
/// assert_eq!(neighborhood_size(1), 1);
/// assert_eq!(neighborhood_size(2), 2);  // identity + one swap
/// assert_eq!(neighborhood_size(9), 55); // the paper's Example 1 size class
/// ```
pub fn neighborhood_size(n: usize) -> u128 {
    if n == 0 {
        return 1;
    }
    fibonacci(n as u32 + 1)
}

/// Binet's closed form in floating point, used by tests to confirm the
/// paper's formula (with its √5) agrees with the integer recurrence.
pub fn binet(k: u32) -> f64 {
    let s5 = 5f64.sqrt();
    let phi = (1.0 + s5) / 2.0;
    let psi = (1.0 - s5) / 2.0;
    (phi.powi(k as i32) - psi.powi(k as i32)) / s5
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fibonacci_base_cases() {
        assert_eq!(fibonacci(0), 0);
        assert_eq!(fibonacci(1), 1);
        assert_eq!(fibonacci(2), 1);
        assert_eq!(fibonacci(10), 55);
    }

    #[test]
    fn binet_matches_recurrence() {
        for k in 0..70u32 {
            let exact = fibonacci(k) as f64;
            assert!((binet(k) - exact).abs() / exact.max(1.0) < 1e-9, "k = {k}");
        }
    }

    #[test]
    fn closed_form_matches_neighborhood_size() {
        // Theorem 1's (1/√5)(φ^k − ψ^k) form, evaluated at the standard
        // index k = n+1, reproduces the enumerated count.
        for n in 1..=30usize {
            let exact = neighborhood_size(n) as f64;
            assert!((binet(n as u32 + 1) - exact).abs() / exact < 1e-9);
        }
    }

    #[test]
    fn growth_is_exponential() {
        // The golden-ratio growth the paper highlights.
        let r = neighborhood_size(40) as f64 / neighborhood_size(39) as f64;
        assert!((r - 1.618).abs() < 1e-3);
    }

    #[test]
    fn small_sizes() {
        // n=1 -> {Π}; n=2 -> keep or swap; n=3 -> 3; n=4 -> 5.
        assert_eq!(neighborhood_size(1), 1);
        assert_eq!(neighborhood_size(2), 2);
        assert_eq!(neighborhood_size(3), 3);
        assert_eq!(neighborhood_size(4), 5);
    }
}
