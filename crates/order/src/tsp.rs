//! Initial sink orders.
//!
//! [LCLH96] (and the paper's experimental setups) seed the ordered DPs with
//! a travelling-salesman order over the sink locations: a good geometric
//! order keeps the P-Tree's contiguous groups spatially coherent. A full
//! TSP is unnecessary — the paper reports that initial orders have very
//! small effect on MERLIN's final quality — so we use the classical
//! nearest-neighbor construction followed by 2-opt improvement on the open
//! path starting at the driver.

use merlin_geom::{manhattan, Point};
use merlin_tech::units::ps_cmp;

use crate::perm::SinkOrder;

/// TSP-style order: nearest-neighbor path from the driver, improved by
/// 2-opt until no improving exchange exists.
///
/// Deterministic for a given input. `O(n²)` construction and `O(n²)` per
/// 2-opt round, which is negligible next to the DPs it feeds.
///
/// # Examples
///
/// ```
/// use merlin_geom::Point;
/// use merlin_order::tsp::tsp_order;
///
/// let sinks = [Point::new(10, 0), Point::new(1, 0), Point::new(5, 0)];
/// let order = tsp_order(Point::new(0, 0), &sinks);
/// assert_eq!(order.as_slice(), &[1, 2, 0]); // sweep left to right
/// ```
pub fn tsp_order(driver: Point, sinks: &[Point]) -> SinkOrder {
    let n = sinks.len();
    if n == 0 {
        return SinkOrder::identity(0);
    }
    // Nearest-neighbor construction.
    let mut seq: Vec<u32> = Vec::with_capacity(n);
    let mut used = vec![false; n];
    let mut at = driver;
    for _ in 0..n {
        let (best, _) = sinks
            .iter()
            .enumerate()
            .filter(|(i, _)| !used[*i])
            .map(|(i, p)| (i, manhattan(at, *p)))
            .min_by_key(|&(i, d)| (d, i))
            .expect("unused sink exists");
        used[best] = true;
        seq.push(best as u32);
        at = sinks[best];
    }
    // 2-opt on the open path driver -> seq[0] -> ... -> seq[n-1].
    let dist = |a: Option<usize>, b: usize| -> u64 {
        let pa = a.map_or(driver, |i| sinks[i]);
        manhattan(pa, sinks[b])
    };
    let mut improved = true;
    while improved {
        improved = false;
        for i in 0..n.saturating_sub(1) {
            for j in i + 1..n {
                // Reverse seq[i..=j]: edges (i-1,i) and (j,j+1) change.
                let before_i = if i == 0 {
                    None
                } else {
                    Some(seq[i - 1] as usize)
                };
                let old = dist(before_i, seq[i] as usize)
                    + if j + 1 < n {
                        manhattan(sinks[seq[j] as usize], sinks[seq[j + 1] as usize])
                    } else {
                        0
                    };
                let new = dist(before_i, seq[j] as usize)
                    + if j + 1 < n {
                        manhattan(sinks[seq[i] as usize], sinks[seq[j + 1] as usize])
                    } else {
                        0
                    };
                if new < old {
                    seq[i..=j].reverse();
                    improved = true;
                }
            }
        }
    }
    SinkOrder::new(seq).expect("construction yields a permutation")
}

/// Order by required time, most critical (smallest required time) first —
/// the order Touati's LT-tree DP expects.
pub fn required_time_order(reqs_ps: &[f64]) -> SinkOrder {
    let mut idx: Vec<u32> = (0..reqs_ps.len() as u32).collect();
    idx.sort_by(|&a, &b| ps_cmp(reqs_ps[a as usize], reqs_ps[b as usize]).then(a.cmp(&b)));
    SinkOrder::new(idx).expect("permutation")
}

/// A deterministic pseudo-random order from a seed (splitmix64 +
/// Fisher-Yates), used by the E5 initial-order ablation.
pub fn random_order(n: usize, seed: u64) -> SinkOrder {
    let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    let mut seq: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        seq.swap(i, j);
    }
    SinkOrder::new(seq).expect("permutation")
}

/// Total open-path length of an order (driver, then sinks in order) —
/// the quantity 2-opt minimizes; exposed for tests and diagnostics.
pub fn path_length(driver: Point, sinks: &[Point], order: &SinkOrder) -> u64 {
    let mut at = driver;
    let mut total = 0;
    for &s in order.as_slice() {
        total += manhattan(at, sinks[s as usize]);
        at = sinks[s as usize];
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize, r: i64) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let a = i as f64 / n as f64 * std::f64::consts::TAU;
                Point::new((r as f64 * a.cos()) as i64, (r as f64 * a.sin()) as i64)
            })
            .collect()
    }

    #[test]
    fn tsp_on_collinear_points_is_a_sweep() {
        let sinks = [
            Point::new(30, 0),
            Point::new(10, 0),
            Point::new(20, 0),
            Point::new(40, 0),
        ];
        let order = tsp_order(Point::new(0, 0), &sinks);
        assert_eq!(order.as_slice(), &[1, 2, 0, 3]);
    }

    #[test]
    fn two_opt_beats_worst_case_shuffle() {
        let sinks = ring(12, 1000);
        let driver = Point::new(0, 0);
        let good = tsp_order(driver, &sinks);
        let bad = random_order(12, 7);
        assert!(
            path_length(driver, &sinks, &good) <= path_length(driver, &sinks, &bad),
            "2-opt order should not be longer than a random order"
        );
    }

    #[test]
    fn required_time_order_sorts_ascending() {
        let order = required_time_order(&[30.0, 10.0, 20.0]);
        assert_eq!(order.as_slice(), &[1, 2, 0]);
    }

    #[test]
    fn required_time_order_ties_stable() {
        let order = required_time_order(&[5.0, 5.0, 1.0]);
        assert_eq!(order.as_slice(), &[2, 0, 1]);
    }

    #[test]
    fn random_order_is_deterministic_per_seed() {
        assert_eq!(random_order(20, 42), random_order(20, 42));
        assert_ne!(
            random_order(20, 42).as_slice(),
            random_order(20, 43).as_slice()
        );
    }

    #[test]
    fn degenerate_inputs() {
        assert!(tsp_order(Point::new(0, 0), &[]).is_empty());
        let one = tsp_order(Point::new(0, 0), &[Point::new(5, 5)]);
        assert_eq!(one.as_slice(), &[0]);
    }
}
