//! Sink orders and order neighborhoods for the MERLIN reproduction.
//!
//! The paper's Definitions 3–5 and Theorem 1 live here:
//!
//! * [`SinkOrder`] — an order Π on the sinks (Definition 3) with adjacent
//!   swap operations (Definition 5),
//! * [`neighborhood`] — the neighborhood `N(Π)` of orders whose every sink
//!   moved by at most one position (Definition 4), its enumeration, and the
//!   decomposition of a neighbor into non-overlapping adjacent swaps
//!   (Lemma 4),
//! * [`fib::neighborhood_size`] — the Fibonacci-form count of Theorem 1,
//! * [`tsp`] — the TSP-based initial sink ordering suggested by [LCLH96]
//!   and used by all three experimental flows, plus required-time and
//!   seeded-random orders.
//!
//! # Examples
//!
//! ```
//! use merlin_order::{fib::neighborhood_size, neighborhood, SinkOrder};
//!
//! let pi = SinkOrder::identity(5);
//! let members = neighborhood::enumerate(&pi);
//! assert_eq!(members.len() as u128, neighborhood_size(5)); // Fib(7) = 13
//! assert!(members.iter().all(|m| neighborhood::is_neighbor(&pi, m)));
//! ```

pub mod fib;
pub mod neighborhood;
pub mod perm;
pub mod tsp;

pub use perm::SinkOrder;
