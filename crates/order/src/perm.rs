//! Sink orders (the paper's Definition 3) and swaps (Definition 5).

use std::fmt;

/// An order Π on `n` sinks.
///
/// Internally stored as the sequence of sink indices: `order.as_slice()[j]`
/// is the sink occupying position `j` (0-based). The paper's Π maps sink →
/// position; [`SinkOrder::position_of`] provides that view, and
/// [`SinkOrder::positions`] materializes the whole inverse map.
///
/// # Examples
///
/// ```
/// use merlin_order::SinkOrder;
///
/// // The paper's Example 1: (s4, s3, s5, s1, s2, s6, s8, s7, s9)
/// // (0-based sink indices).
/// let pi = SinkOrder::new(vec![3, 2, 4, 0, 1, 5, 7, 6, 8]).unwrap();
/// assert_eq!(pi.position_of(0), 3); // Π(1) = 4 in 1-based terms
/// assert_eq!(pi.position_of(2), 1); // Π(3) = 2
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct SinkOrder {
    seq: Vec<u32>,
}

/// Error returned by [`SinkOrder::new`] when the sequence is not a
/// permutation of `0..n`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InvalidOrderError;

impl fmt::Display for InvalidOrderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sequence is not a permutation of 0..n")
    }
}

impl std::error::Error for InvalidOrderError {}

impl SinkOrder {
    /// Creates an order from a sequence of sink indices.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidOrderError`] if `seq` is not a permutation of
    /// `0..seq.len()`.
    pub fn new(seq: Vec<u32>) -> Result<Self, InvalidOrderError> {
        let n = seq.len();
        let mut seen = vec![false; n];
        for &s in &seq {
            let idx = s as usize;
            if idx >= n || seen[idx] {
                return Err(InvalidOrderError);
            }
            seen[idx] = true;
        }
        Ok(SinkOrder { seq })
    }

    /// The identity order `(s_0, s_1, …, s_{n-1})`.
    pub fn identity(n: usize) -> Self {
        SinkOrder {
            seq: (0..n as u32).collect(),
        }
    }

    /// Number of sinks.
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// Whether the order is empty.
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }

    /// The sink occupying position `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn sink_at(&self, j: usize) -> u32 {
        self.seq[j]
    }

    /// The sequence of sink indices, position by position.
    pub fn as_slice(&self) -> &[u32] {
        &self.seq
    }

    /// Position of sink `s` (the paper's Π(s)).
    ///
    /// # Panics
    ///
    /// Panics if `s` is not in the order.
    pub fn position_of(&self, s: u32) -> usize {
        self.seq
            .iter()
            .position(|&x| x == s)
            .expect("sink not in order")
    }

    /// The full inverse map: `positions()[sink] = position`.
    pub fn positions(&self) -> Vec<u32> {
        let mut pos = vec![0u32; self.seq.len()];
        for (j, &s) in self.seq.iter().enumerate() {
            pos[s as usize] = j as u32;
        }
        pos
    }

    /// Swapping element `i` of Π (Definition 5): exchanges the sinks at
    /// positions `i` and `i+1` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `i + 1 ≥ n`.
    pub fn swap_adjacent(&mut self, i: usize) {
        self.seq.swap(i, i + 1);
    }

    /// A copy with positions `i` and `i+1` exchanged.
    pub fn swapped(&self, i: usize) -> SinkOrder {
        let mut c = self.clone();
        c.swap_adjacent(i);
        c
    }

    /// Consumes the order and returns the underlying sequence.
    pub fn into_inner(self) -> Vec<u32> {
        self.seq
    }
}

impl fmt::Debug for SinkOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SinkOrder(")?;
        for (i, s) in self.seq.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "s{}", s + 1)?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for SinkOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_round_trip() {
        let pi = SinkOrder::identity(4);
        assert_eq!(pi.as_slice(), &[0, 1, 2, 3]);
        assert_eq!(pi.positions(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn rejects_non_permutations() {
        assert!(SinkOrder::new(vec![0, 0, 1]).is_err());
        assert!(SinkOrder::new(vec![0, 3]).is_err());
        assert!(SinkOrder::new(vec![]).is_ok());
    }

    #[test]
    fn example_3_from_paper() {
        // Π' = (s1,s3,s2,s4,s5,s6,s8,s7,s9); swapping the 4th element
        // (1-based) gives (s1,s3,s2,s5,s4,s6,s8,s7,s9).
        let pi = SinkOrder::new(vec![0, 2, 1, 3, 4, 5, 7, 6, 8]).unwrap();
        let swapped = pi.swapped(3);
        assert_eq!(swapped.as_slice(), &[0, 2, 1, 4, 3, 5, 7, 6, 8]);
    }

    #[test]
    fn swap_is_involutive() {
        let pi = SinkOrder::identity(6);
        assert_eq!(pi.swapped(2).swapped(2), pi);
    }

    #[test]
    fn positions_inverse_of_sequence() {
        let pi = SinkOrder::new(vec![3, 2, 4, 0, 1]).unwrap();
        let pos = pi.positions();
        for j in 0..pi.len() {
            assert_eq!(pos[pi.sink_at(j) as usize] as usize, j);
        }
        assert_eq!(pi.position_of(3), 0);
    }

    #[test]
    fn debug_is_one_based_like_the_paper() {
        let pi = SinkOrder::new(vec![1, 0]).unwrap();
        assert_eq!(format!("{pi:?}"), "SinkOrder(s2,s1)");
    }
}
