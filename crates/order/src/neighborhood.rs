//! The order neighborhood `N(Π)` (Definition 4) and Lemma 4.

use crate::perm::SinkOrder;

/// Whether `b ∈ N(a)`: every sink's position differs by at most one
/// (Definition 4). The relation is symmetric (Lemma 11 / Definition 1).
pub fn is_neighbor(a: &SinkOrder, b: &SinkOrder) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let pa = a.positions();
    let pb = b.positions();
    pa.iter().zip(&pb).all(|(x, y)| x.abs_diff(*y) <= 1)
}

/// Enumerates all members of `N(Π)` (including Π itself).
///
/// Every member is obtained from Π by a set of non-overlapping adjacent
/// swaps (Lemma 4), so the enumeration walks positions left to right,
/// either keeping a position or swapping it with the next. The count is the
/// Fibonacci number of Theorem 1 — exponential in `n`, so this is only for
/// small `n` (tests and the E3 experiment).
pub fn enumerate(pi: &SinkOrder) -> Vec<SinkOrder> {
    let n = pi.len();
    let mut out = Vec::new();
    let mut current = pi.clone();
    fn rec(current: &mut SinkOrder, i: usize, out: &mut Vec<SinkOrder>) {
        let n = current.len();
        if i + 1 >= n {
            out.push(current.clone());
            return;
        }
        // Keep position i.
        rec(current, i + 1, out);
        // Swap positions i and i+1 (non-overlapping: skip i+1).
        current.swap_adjacent(i);
        rec(current, i + 2, out);
        current.swap_adjacent(i);
    }
    if n == 0 {
        return vec![pi.clone()];
    }
    rec(&mut current, 0, &mut out);
    out
}

/// Decomposes a neighbor into the non-overlapping adjacent swaps that
/// produce it from `a` (Lemma 4). Returns the sorted list of swapped
/// positions `i` (meaning positions `i` and `i+1` exchanged), or `None` if
/// `b ∉ N(a)`.
pub fn swap_decomposition(a: &SinkOrder, b: &SinkOrder) -> Option<Vec<usize>> {
    if a.len() != b.len() {
        return None;
    }
    let mut swaps = Vec::new();
    let mut i = 0;
    let n = a.len();
    while i < n {
        if a.sink_at(i) == b.sink_at(i) {
            i += 1;
        } else if i + 1 < n && a.sink_at(i) == b.sink_at(i + 1) && a.sink_at(i + 1) == b.sink_at(i)
        {
            swaps.push(i);
            i += 2;
        } else {
            return None;
        }
    }
    Some(swaps)
}

/// Kendall-tau distance between two orders: the number of sink pairs
/// ranked oppositely — equivalently, the minimum number of adjacent swaps
/// transforming one into the other. Members of `N(Π)` are exactly the
/// orders at Kendall distance realizable by *non-overlapping* swaps, so
/// `b ∈ N(a)` implies `kendall_tau(a, b) ≤ ⌊n/2⌋`.
///
/// `O(n²)`; fine for the diagnostic uses it has here.
///
/// # Panics
///
/// Panics if the orders have different lengths.
pub fn kendall_tau(a: &SinkOrder, b: &SinkOrder) -> usize {
    assert_eq!(a.len(), b.len(), "orders must have equal length");
    let pb = b.positions();
    let mapped: Vec<u32> = a.as_slice().iter().map(|&s| pb[s as usize]).collect();
    let mut inversions = 0;
    for i in 0..mapped.len() {
        for j in i + 1..mapped.len() {
            if mapped[i] > mapped[j] {
                inversions += 1;
            }
        }
    }
    inversions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fib::neighborhood_size;

    #[test]
    fn paper_example_2() {
        // Π' = (s1,s3,s2,s4,s5,s6,s8,s7,s9) is in N(identity).
        let pi = SinkOrder::identity(9);
        let pi2 = SinkOrder::new(vec![0, 2, 1, 3, 4, 5, 7, 6, 8]).unwrap();
        assert!(is_neighbor(&pi, &pi2));
        assert_eq!(swap_decomposition(&pi, &pi2), Some(vec![1, 6]));
    }

    #[test]
    fn non_neighbor_detected() {
        let pi = SinkOrder::identity(4);
        // Rotate by one: s0 moved two positions.
        let rot = SinkOrder::new(vec![1, 2, 0, 3]).unwrap();
        assert!(!is_neighbor(&pi, &rot));
        assert!(swap_decomposition(&pi, &rot).is_none());
    }

    #[test]
    fn neighborhood_is_symmetric() {
        let pi = SinkOrder::identity(6);
        for m in enumerate(&pi) {
            assert!(is_neighbor(&pi, &m));
            assert!(is_neighbor(&m, &pi));
        }
    }

    #[test]
    fn enumeration_count_matches_theorem_1() {
        for n in 0..=12usize {
            let pi = SinkOrder::identity(n);
            let members = enumerate(&pi);
            assert_eq!(members.len() as u128, neighborhood_size(n), "n = {n}");
            // All members distinct.
            let mut seqs: Vec<_> = members.iter().map(|m| m.as_slice().to_vec()).collect();
            seqs.sort();
            seqs.dedup();
            assert_eq!(seqs.len(), members.len());
        }
    }

    #[test]
    fn every_member_decomposes_into_non_overlapping_swaps() {
        let pi = SinkOrder::new(vec![2, 0, 3, 1, 4]).unwrap();
        for m in enumerate(&pi) {
            let swaps = swap_decomposition(&pi, &m).expect("member must decompose");
            for w in swaps.windows(2) {
                assert!(w[1] > w[0] + 1, "swaps overlap: {swaps:?}");
            }
        }
    }

    #[test]
    fn kendall_tau_counts_swaps() {
        let a = SinkOrder::identity(5);
        assert_eq!(kendall_tau(&a, &a), 0);
        assert_eq!(kendall_tau(&a, &a.swapped(1)), 1);
        let rev = SinkOrder::new(vec![4, 3, 2, 1, 0]).unwrap();
        assert_eq!(kendall_tau(&a, &rev), 10); // n(n-1)/2
    }

    #[test]
    fn neighborhood_members_are_within_half_n_swaps() {
        let pi = SinkOrder::identity(8);
        for m in enumerate(&pi) {
            assert!(kendall_tau(&pi, &m) <= 4);
        }
    }

    #[test]
    fn enumerate_contains_identity_of_pi() {
        let pi = SinkOrder::new(vec![1, 0, 2]).unwrap();
        assert!(enumerate(&pi).contains(&pi));
    }
}
