//! Default-path regression and budget edge cases for the resilient solve
//! driver (`merlin_flows::resilient`), exercised from the mechanism crate
//! through its dev-dependency on the policy crate.
//!
//! The key contract: with no faults and a generous budget, the resilient
//! driver must be *bit-identical* to the plain flow III path — resilience
//! must cost nothing when nothing goes wrong.

use std::time::Duration;

use merlin_flows::{flow3, resilient, FlowsConfig};
use merlin_netlist::bench_nets::random_net;
use merlin_resilience::{ServingTier, SolveBudget};
use merlin_tech::Technology;

#[test]
fn default_path_matches_flow3_exactly() {
    let tech = Technology::synthetic_035();
    for (n, seed) in [(4usize, 1u64), (6, 3), (8, 7)] {
        let net = random_net("reg", n, seed, &tech);
        let cfg = FlowsConfig::for_net_size(n);
        let plain = flow3::run(&net, &tech, &cfg);
        let out = resilient::resilient_solve_with(&net, &tech, &cfg, &SolveBudget::unlimited());
        assert_eq!(
            out.report.served,
            ServingTier::Merlin,
            "n={n} seed={seed}: {}",
            out.report.summary()
        );
        assert!(out.report.attempts.is_empty(), "n={n} seed={seed}");
        assert!(!out.report.budget_hit);
        assert!(out.report.invalid_net.is_none());
        assert_eq!(
            out.result.eval.buffer_area, plain.eval.buffer_area,
            "n={n} seed={seed}"
        );
        assert_eq!(
            out.result.eval.wirelength, plain.eval.wirelength,
            "n={n} seed={seed}"
        );
        assert_eq!(out.result.loops, plain.loops, "n={n} seed={seed}");
        assert!(
            (out.result.eval.root_required_ps - plain.eval.root_required_ps).abs() < 1e-9,
            "n={n} seed={seed}: {} vs {}",
            out.result.eval.root_required_ps,
            plain.eval.root_required_ps
        );
    }
}

#[test]
fn zero_work_budget_degrades_to_the_direct_route() {
    let tech = Technology::synthetic_035();
    let net = random_net("zb", 6, 2, &tech);
    let out = resilient::resilient_solve(&net, &tech, &SolveBudget::with_work_limit(0));
    assert_eq!(out.report.served, ServingTier::DirectRoute);
    assert_eq!(out.report.attempts.len(), 4, "{}", out.report.summary());
    assert!(out.report.attempts.iter().all(|a| a.error.is_budget()));
    assert!(out.report.budget_hit);
    out.result
        .tree
        .validate(6, &tech)
        .expect("direct route is well-formed");
}

#[test]
fn expired_deadline_degrades_to_the_direct_route() {
    let tech = Technology::synthetic_035();
    let net = random_net("dl", 6, 5, &tech);
    let budget = SolveBudget::with_deadline(Duration::ZERO);
    std::thread::sleep(Duration::from_millis(2));
    let out = resilient::resilient_solve(&net, &tech, &budget);
    assert_eq!(
        out.report.served,
        ServingTier::DirectRoute,
        "{}",
        out.report.summary()
    );
    assert!(out.report.budget_hit);
    out.result
        .tree
        .validate(6, &tech)
        .expect("direct route is well-formed");
}

#[test]
fn small_work_budget_serves_an_audited_tree_from_a_lower_tier() {
    // 200 work units is far below what an 8-sink MERLIN pass needs, but the
    // decoupled baselines charge nothing, so one of them must serve.
    let tech = Technology::synthetic_035();
    let net = random_net("sw", 8, 4, &tech);
    let out = resilient::resilient_solve(&net, &tech, &SolveBudget::with_work_limit(200));
    assert_ne!(
        out.report.served,
        ServingTier::Merlin,
        "{}",
        out.report.summary()
    );
    assert_ne!(
        out.report.served,
        ServingTier::SinglePass,
        "{}",
        out.report.summary()
    );
    assert!(out.report.budget_hit);
    assert!(out
        .report
        .attempts
        .iter()
        .any(|a| a.tier == ServingTier::Merlin && a.error.is_budget()));
    out.result
        .tree
        .validate(8, &tech)
        .expect("served tree is well-formed");
}
