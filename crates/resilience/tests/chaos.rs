//! Chaos matrix: every fault-injection site × fault kind must *degrade*
//! the resilient solve, never kill it. Requires `--features fault-inject`.
//!
//! Sites below the MERLIN tier are reached by pre-arming persistent
//! `EmptyCurve` faults on the tiers above them (the fault registry is
//! thread-local, so parallel test threads cannot interfere).

#![cfg(feature = "fault-inject")]

use std::time::Duration;

use merlin_flows::resilient::ResilientOutcome;
use merlin_flows::{audit, flow0, resilient, FlowsConfig};
use merlin_netlist::bench_nets::random_net;
use merlin_resilience::fault::{self, FaultKind};
use merlin_resilience::{isolate, ServingTier, SolveBudget, SolverError};
use merlin_tech::Technology;

/// Every ladder-reachable injection site, with the pre-arms that force the
/// descent down to it. `core.*` and `curves.*` sites are hit by the MERLIN
/// tier itself; the flow II / flow I entry sites need the tiers above them
/// knocked out first (`core.merlin.loop` covers both MERLIN and the
/// single-pass tier, which share the DP).
const LADDER_SITES: &[(&str, &[&str])] = &[
    ("curves.prune", &[]),
    ("core.construct.group", &[]),
    ("core.construct.final", &[]),
    ("core.merlin.loop", &[]),
    ("flows.flow3.run", &[]),
    ("flows.flow2.run", &["core.merlin.loop"]),
    ("flows.flow1.run", &["core.merlin.loop", "flows.flow2.run"]),
];

const SINKS: usize = 5;

fn run_case(site: &str, kind: FaultKind, pre: &[&str]) -> ResilientOutcome {
    fault::disarm_all();
    for p in pre {
        fault::arm(p, FaultKind::EmptyCurve, 1);
    }
    let tech = Technology::synthetic_035();
    let net = random_net("chaos", SINKS, 11, &tech);
    let cfg = FlowsConfig::for_net_size(SINKS);
    let budget = match kind {
        FaultKind::Stall => {
            // The stall overshoots the whole deadline, so the first tier to
            // hit the site burns the budget for everyone after it.
            fault::arm_with_stall(site, kind, 1, Duration::from_millis(120));
            SolveBudget::with_deadline(Duration::from_millis(40))
        }
        _ => {
            fault::arm(site, kind, 1);
            SolveBudget::unlimited()
        }
    };
    let out = resilient::resilient_solve_with(&net, &tech, &cfg, &budget);
    fault::disarm_all();
    out
}

#[test]
fn every_ladder_site_and_kind_degrades_cleanly() {
    let tech = Technology::synthetic_035();
    for &(site, pre) in LADDER_SITES {
        for kind in [FaultKind::Panic, FaultKind::Stall, FaultKind::EmptyCurve] {
            let out = run_case(site, kind, pre);
            let label = format!("{site} / {kind:?}: {}", out.report.summary());
            assert!(out.result.tree.validate(SINKS, &tech).is_ok(), "{label}");
            assert!(
                audit::check_tree(&out.result.tree, "chaos").is_ok(),
                "{label}"
            );
            assert!(!out.report.attempts.is_empty(), "{label}");
            assert_eq!(out.report.attempts[0].tier, ServingTier::Merlin, "{label}");
            assert_ne!(out.report.served, ServingTier::Merlin, "{label}");
        }
    }
}

#[test]
fn injected_panics_are_reported_as_typed_panicked_errors() {
    let out = run_case("flows.flow3.run", FaultKind::Panic, &[]);
    assert!(
        matches!(out.report.attempts[0].error, SolverError::Panicked { .. }),
        "{}",
        out.report.summary()
    );
    assert!(
        out.report.attempts[0]
            .error
            .to_string()
            .contains("injected fault"),
        "{}",
        out.report.summary()
    );
    // Only the faulted tier failed: the single pass serves next.
    assert_eq!(out.report.served, ServingTier::SinglePass);
}

#[test]
fn stall_faults_exhaust_the_deadline_and_reach_the_direct_route() {
    // A stall inside the DP burns everyone's wall clock: after the MERLIN
    // tier trips it, the remaining tiers are skipped as budget-exhausted.
    let out = run_case("curves.prune", FaultKind::Stall, &[]);
    assert_eq!(
        out.report.served,
        ServingTier::DirectRoute,
        "{}",
        out.report.summary()
    );
    assert!(out.report.budget_hit);
    assert!(out.report.attempts.iter().any(|a| a.error.is_budget()));
}

#[test]
fn persistent_empty_curve_in_the_shared_dp_reaches_the_direct_route() {
    // curves.prune is shared by every DP tier (MERLIN, single-pass, PTREE,
    // van Ginneken, LTTREE), so a persistent empty-curve fault there must
    // walk the whole ladder down to the infallible star route.
    let out = run_case("curves.prune", FaultKind::EmptyCurve, &[]);
    assert_eq!(
        out.report.served,
        ServingTier::DirectRoute,
        "{}",
        out.report.summary()
    );
    assert_eq!(out.report.attempts.len(), 4, "{}", out.report.summary());
}

#[test]
fn distant_nth_hit_never_fires_and_merlin_serves_unperturbed() {
    fault::disarm_all();
    fault::arm("flows.flow3.run", FaultKind::Panic, 1_000_000);
    let tech = Technology::synthetic_035();
    let net = random_net("chaos", SINKS, 11, &tech);
    let cfg = FlowsConfig::for_net_size(SINKS);
    let out = resilient::resilient_solve_with(&net, &tech, &cfg, &SolveBudget::unlimited());
    fault::disarm_all();
    assert_eq!(
        out.report.served,
        ServingTier::Merlin,
        "{}",
        out.report.summary()
    );
    assert!(out.report.attempts.is_empty());
}

#[test]
fn flow0_site_yields_typed_errors_under_isolation() {
    let tech = Technology::synthetic_035();
    let net = random_net("chaos0", SINKS, 3, &tech);
    let cfg = FlowsConfig::for_net_size(SINKS);

    fault::disarm_all();
    fault::arm("flows.flow0.run", FaultKind::EmptyCurve, 1);
    let e = flow0::try_run(&net, &tech, &cfg);
    assert!(matches!(e, Err(SolverError::EmptyCurve { .. })), "{e:?}");

    fault::arm("flows.flow0.run", FaultKind::Panic, 1);
    let e = isolate("flow 0", || flow0::try_run(&net, &tech, &cfg));
    match e {
        Err(SolverError::Panicked { context }) => {
            assert!(context.contains("flow 0"), "{context}");
            assert!(context.contains("injected fault"), "{context}");
        }
        other => panic!("expected contained panic, got {other:?}"),
    }
    fault::disarm_all();

    // Disarmed again, the same net solves normally.
    let ok = flow0::try_run(&net, &tech, &cfg).expect("flow 0 solves the healthy net");
    ok.tree.validate(SINKS, &tech).expect("valid tree");
}
