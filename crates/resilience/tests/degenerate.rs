//! Property tests: `resilient_solve` never panics and always yields an
//! audit-clean tree, even on degenerate nets (duplicate sinks, zero-cap
//! sinks, non-finite required times, single-point nets, empty nets).
//!
//! Sinks are drawn from a tiny lattice so coincidences are common, loads
//! include zero, and required times include `NaN` — the validation layer
//! must shunt every malformed net to the direct route and the DP tiers
//! must handle every valid one.

use merlin_flows::{audit, resilient, FlowsConfig};
use merlin_geom::{CandidateStrategy, Point};
use merlin_netlist::{Net, Sink};
use merlin_resilience::SolveBudget;
use merlin_tech::units::Cap;
use merlin_tech::{Driver, Technology};
use proptest::prelude::*;

/// A deliberately cheap configuration: the property runs hundreds of
/// cases, and quality is not under test here — only survival.
fn cheap_cfg(n: usize) -> FlowsConfig {
    let mut cfg = FlowsConfig::for_net_size(n.max(1));
    cfg.merlin.alpha = 3;
    cfg.merlin.max_loops = 2;
    cfg.merlin.max_curve_points = 5;
    cfg.merlin.candidates = CandidateStrategy::ReducedHanan { max_points: 10 };
    cfg
}

/// Required-time palette: ordinary values plus the poison pill.
const REQS: [f64; 4] = [500.0, 900.0, 0.0, f64::NAN];

proptest! {
    #[test]
    fn degenerate_nets_never_panic_and_always_audit_clean(
        raw in prop::collection::vec((0i64..4, 0i64..4, 0u32..3, 0usize..4), 0..7),
        src in (0i64..4, 0i64..4),
    ) {
        let tech = Technology::synthetic_035();
        let sinks: Vec<Sink> = raw
            .iter()
            .map(|&(x, y, load, req_i)| {
                Sink::new(Point::new(x * 60, y * 60), Cap(load), REQS[req_i])
            })
            .collect();
        let (sx, sy) = src;
        let net = Net::new("deg", Point::new(sx * 60, sy * 60), Driver::default(), sinks);
        let n = net.num_sinks();
        let out = resilient::resilient_solve_with(
            &net,
            &tech,
            &cheap_cfg(n),
            &SolveBudget::unlimited(),
        );
        prop_assert!(
            out.result.tree.validate(n, &tech).is_ok(),
            "tree invalid: {}",
            out.report.summary()
        );
        prop_assert!(
            audit::check_tree(&out.result.tree, "degenerate").is_ok(),
            "audit failed: {}",
            out.report.summary()
        );
        // The report must agree with up-front validation: malformed nets
        // are flagged (and skipped the DP tiers), well-formed ones are not.
        prop_assert_eq!(out.report.invalid_net.is_some(), net.validate().is_err());
        if net.validate().is_err() {
            prop_assert!(out.report.attempts.is_empty());
        }
    }
}
