//! Cooperative solve budgets: a wall-clock deadline plus a DP work meter.
//!
//! A [`SolveBudget`] bounds one solve attempt along two dimensions:
//!
//! * **deadline** — an absolute wall-clock instant after which every
//!   [`SolveBudget::check_deadline`] fails,
//! * **work** — an abstract unit counter fed by the DP engines (curve
//!   points produced plus provenance-arena nodes allocated), so runs are
//!   bounded even on machines where wall-clock is noisy.
//!
//! Budgets are *cooperative*: the engines call [`SolveBudget::charge`] /
//! [`SolveBudget::check`] inside their hot loops and return a typed error
//! when a dimension is exhausted, unwinding cleanly instead of being
//! killed. The interior [`AtomicU64`] keeps `charge(&self)` usable through
//! the shared references the DP closures already hold, and lets the
//! level-sharded parallel `BUBBLE_CONSTRUCT` workers charge one shared
//! meter; ordering is `Relaxed` throughout because the meter is a pure
//! monotone counter — no other memory is published through it.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Which budget dimension ran out.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BudgetKind {
    /// The wall-clock deadline passed.
    Deadline,
    /// The DP work meter (curve points + arena nodes) hit its limit.
    Work,
}

/// A budget dimension was exhausted. `spent` / `limit` are milliseconds
/// for [`BudgetKind::Deadline`] and work units for [`BudgetKind::Work`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// The exhausted dimension.
    pub kind: BudgetKind,
    /// Amount spent when the violation was detected.
    pub spent: u64,
    /// The configured limit.
    pub limit: u64,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            BudgetKind::Deadline => write!(
                f,
                "deadline exceeded: {} ms elapsed of a {} ms budget",
                self.spent, self.limit
            ),
            BudgetKind::Work => write!(
                f,
                "work budget exhausted: {} units spent of a {} unit budget",
                self.spent, self.limit
            ),
        }
    }
}

impl std::error::Error for BudgetExceeded {}

/// A cooperative two-dimensional solve budget. See the module docs.
///
/// The default ([`SolveBudget::unlimited`]) never trips, so budget-aware
/// entry points cost nothing for callers that do not care.
#[derive(Debug)]
pub struct SolveBudget {
    started: Instant,
    deadline: Option<Instant>,
    work_limit: Option<u64>,
    work_used: AtomicU64,
}

impl Clone for SolveBudget {
    fn clone(&self) -> Self {
        SolveBudget {
            started: self.started,
            deadline: self.deadline,
            work_limit: self.work_limit,
            work_used: AtomicU64::new(self.work_used.load(Ordering::Relaxed)),
        }
    }
}

impl Default for SolveBudget {
    fn default() -> Self {
        SolveBudget::unlimited()
    }
}

impl SolveBudget {
    /// A budget that never trips.
    pub fn unlimited() -> Self {
        SolveBudget {
            started: Instant::now(),
            deadline: None,
            work_limit: None,
            work_used: AtomicU64::new(0),
        }
    }

    /// A budget with only a wall-clock deadline, `duration` from now.
    pub fn with_deadline(duration: Duration) -> Self {
        SolveBudget::unlimited().and_deadline(duration)
    }

    /// A budget with only a DP work limit.
    pub fn with_work_limit(limit: u64) -> Self {
        SolveBudget::unlimited().and_work_limit(limit)
    }

    /// Adds (or tightens) a wall-clock deadline `duration` from now.
    pub fn and_deadline(mut self, duration: Duration) -> Self {
        let candidate = Instant::now() + duration;
        self.deadline = Some(match self.deadline {
            Some(d) => d.min(candidate),
            None => candidate,
        });
        self
    }

    /// Adds (or tightens) a DP work limit.
    pub fn and_work_limit(mut self, limit: u64) -> Self {
        self.work_limit = Some(self.work_limit.map_or(limit, |l| l.min(limit)));
        self
    }

    /// Work units charged so far.
    pub fn work_used(&self) -> u64 {
        self.work_used.load(Ordering::Relaxed)
    }

    /// Records `units` of DP work against the budget.
    ///
    /// The units are counted even when the call fails, so partial spend is
    /// visible to parent budgets via [`SolveBudget::absorb`].
    ///
    /// # Errors
    ///
    /// Fails with [`BudgetKind::Work`] once the cumulative spend exceeds
    /// the limit.
    pub fn charge(&self, units: u64) -> Result<(), BudgetExceeded> {
        // fetch_add wraps on overflow; a saturating CAS loop would cost a
        // retry path for a counter that needs ~600 years of max-rate DP
        // work to wrap, so plain fetch_add + saturating_add locally.
        let used = self
            .work_used
            .fetch_add(units, Ordering::Relaxed)
            .saturating_add(units);
        match self.work_limit {
            Some(limit) if used > limit => Err(BudgetExceeded {
                kind: BudgetKind::Work,
                spent: used,
                limit,
            }),
            _ => Ok(()),
        }
    }

    /// Checks the wall-clock dimension only (cheap enough for inner loops).
    ///
    /// # Errors
    ///
    /// Fails with [`BudgetKind::Deadline`] once the deadline has passed.
    pub fn check_deadline(&self) -> Result<(), BudgetExceeded> {
        if let Some(deadline) = self.deadline {
            let now = Instant::now();
            if now >= deadline {
                return Err(BudgetExceeded {
                    kind: BudgetKind::Deadline,
                    spent: now.duration_since(self.started).as_millis() as u64,
                    limit: deadline.duration_since(self.started).as_millis() as u64,
                });
            }
        }
        Ok(())
    }

    /// Checks both dimensions without charging new work.
    ///
    /// # Errors
    ///
    /// Fails if the deadline has passed or the work meter is at (or past)
    /// its limit.
    pub fn check(&self) -> Result<(), BudgetExceeded> {
        self.check_deadline()?;
        if let Some(limit) = self.work_limit {
            let used = self.work_used.load(Ordering::Relaxed);
            if used >= limit {
                return Err(BudgetExceeded {
                    kind: BudgetKind::Work,
                    spent: used,
                    limit,
                });
            }
        }
        Ok(())
    }

    /// Whether either dimension is already exhausted (peek, never charges).
    pub fn exhausted(&self) -> bool {
        self.check().is_err()
    }

    /// Carves out a child budget holding `fraction` of whatever remains of
    /// both dimensions. The child's work meter starts at zero; feed its
    /// spend back with [`SolveBudget::absorb`]. Unlimited dimensions stay
    /// unlimited.
    pub fn slice(&self, fraction: f64) -> SolveBudget {
        let fraction = if fraction.is_finite() {
            fraction.clamp(0.0, 1.0)
        } else {
            1.0
        };
        let now = Instant::now();
        let deadline = self.deadline.map(|d| {
            let remaining = d.saturating_duration_since(now);
            // audit:allow(duration-arith): fraction is clamped to [0, 1]
            // on entry, so the product never exceeds `remaining`.
            now + remaining.mul_f64(fraction)
        });
        let work_limit = self.work_limit.map(|l| {
            let remaining = l.saturating_sub(self.work_used());
            (remaining as f64 * fraction).floor() as u64
        });
        SolveBudget {
            started: now,
            deadline,
            work_limit,
            work_used: AtomicU64::new(0),
        }
    }

    /// Adds a child budget's work spend to this budget's meter (never
    /// fails; use [`SolveBudget::check`] to observe the result).
    pub fn absorb(&self, child: &SolveBudget) {
        self.work_used
            .fetch_add(child.work_used(), Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let b = SolveBudget::unlimited();
        assert!(b.charge(u64::MAX).is_ok());
        assert!(b.check().is_ok());
        assert!(!b.exhausted());
    }

    #[test]
    fn work_limit_trips_after_spend() {
        let b = SolveBudget::with_work_limit(10);
        assert!(b.charge(10).is_ok());
        assert!(b.exhausted(), "at the limit counts as exhausted");
        let err = b.charge(1).expect_err("over the limit must fail");
        assert_eq!(err.kind, BudgetKind::Work);
        assert_eq!(err.spent, 11);
        assert_eq!(err.limit, 10);
    }

    #[test]
    fn zero_work_budget_is_born_exhausted() {
        let b = SolveBudget::with_work_limit(0);
        assert!(b.exhausted());
        assert!(b.check().is_err());
    }

    #[test]
    fn expired_deadline_trips() {
        let b = SolveBudget::with_deadline(Duration::ZERO);
        let err = b.check_deadline().expect_err("deadline already passed");
        assert_eq!(err.kind, BudgetKind::Deadline);
        assert!(b.exhausted());
    }

    #[test]
    fn slice_and_absorb_share_the_work_pool() {
        let parent = SolveBudget::with_work_limit(100);
        parent.charge(20).expect("within budget");
        let child = parent.slice(0.5);
        // Half of the remaining 80 units.
        assert!(child.charge(40).is_ok());
        assert!(child.charge(1).is_err());
        parent.absorb(&child);
        assert_eq!(parent.work_used(), 61);
        // Unlimited parents produce unlimited slices.
        let free = SolveBudget::unlimited().slice(0.1);
        assert!(free.charge(u64::MAX).is_ok());
    }

    #[test]
    fn charge_is_shared_across_threads() {
        // The level-sharded parallel DP charges one meter from every
        // worker; no spend may be lost and the limit must still trip.
        let b = SolveBudget::with_work_limit(350);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        let _ = b.charge(1);
                    }
                });
            }
        });
        assert_eq!(b.work_used(), 400, "every worker's spend is counted");
        assert!(b.exhausted(), "limit trips across threads");
    }

    #[test]
    fn builders_tighten_not_loosen() {
        let b = SolveBudget::with_work_limit(50).and_work_limit(100);
        assert!(b.charge(50).is_ok());
        assert!(b.charge(1).is_err(), "the tighter limit wins");
    }

    #[test]
    fn exceeded_messages_name_the_dimension() {
        let w = BudgetExceeded {
            kind: BudgetKind::Work,
            spent: 5,
            limit: 4,
        };
        assert!(w.to_string().contains("work"));
        let d = BudgetExceeded {
            kind: BudgetKind::Deadline,
            spent: 10,
            limit: 8,
        };
        assert!(d.to_string().contains("deadline"));
    }
}
