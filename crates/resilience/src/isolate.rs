//! The workspace's single sanctioned panic boundary.
//!
//! [`isolate`] runs a fallible closure under `catch_unwind`, converting a
//! panic into [`SolverError::Panicked`] with the panic message attached.
//! While an isolated closure runs, the default panic hook is replaced by a
//! filter that captures the message instead of printing a backtrace — an
//! injected or degenerate-input panic inside the fallback ladder is an
//! expected event, not console noise. Panics on threads that are *not*
//! inside an isolation scope still reach the previous hook untouched.
//!
//! `merlin-audit` enforces that `catch_unwind` appears nowhere else in the
//! workspace (rule `catch-unwind`), so this module is the one place where
//! unwinding and error semantics meet.

use std::cell::{Cell, RefCell};
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

use crate::error::SolverError;

thread_local! {
    /// Whether the current thread is inside an [`isolate`] scope.
    static SUPPRESS: Cell<bool> = const { Cell::new(false) };
    /// The message of the most recent suppressed panic on this thread.
    static CAPTURED: RefCell<Option<String>> = const { RefCell::new(None) };
}

static INSTALL_FILTER: Once = Once::new();

fn install_filter_hook() {
    INSTALL_FILTER.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if SUPPRESS.with(Cell::get) {
                let msg = if let Some(s) = info.payload().downcast_ref::<&str>() {
                    (*s).to_owned()
                } else if let Some(s) = info.payload().downcast_ref::<String>() {
                    s.clone()
                } else {
                    "non-string panic payload".to_owned()
                };
                CAPTURED.with(|c| *c.borrow_mut() = Some(msg));
            } else {
                previous(info);
            }
        }));
    });
}

/// Restores the enclosing scope's suppression flag even if extraction of
/// the panic payload itself panics.
struct SuppressGuard {
    outer: bool,
}

impl Drop for SuppressGuard {
    fn drop(&mut self) {
        // Fallible TLS access: `with` panics if the key is being torn
        // down, and a panicking Drop during unwind aborts the process.
        let _ = SUPPRESS.try_with(|s| s.set(self.outer));
    }
}

/// Runs `f`, containing any panic as [`SolverError::Panicked`].
///
/// `context` names the attempt (e.g. the tier label) and is prefixed to
/// the panic message. Nested isolation scopes compose: the innermost scope
/// catches first.
///
/// The closure is wrapped in `AssertUnwindSafe`: the ladder engine only
/// ever passes state that is either owned by the closure or discarded
/// wholesale when the attempt fails, so a broken invariant cannot leak
/// into later tiers.
///
/// # Errors
///
/// Returns `f`'s own error unchanged, or [`SolverError::Panicked`] if `f`
/// panicked.
pub fn isolate<T>(
    context: &str,
    f: impl FnOnce() -> Result<T, SolverError>,
) -> Result<T, SolverError> {
    install_filter_hook();
    let _guard = SuppressGuard {
        outer: SUPPRESS.with(|s| s.replace(true)),
    };
    match panic::catch_unwind(AssertUnwindSafe(f)) {
        Ok(result) => result,
        Err(payload) => {
            let msg = CAPTURED
                .with(|c| c.borrow_mut().take())
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_owned()))
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_owned());
            Err(SolverError::Panicked {
                context: format!("{context}: {msg}"),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ok_results_pass_through() {
        assert_eq!(isolate("t", || Ok(41)), Ok(41));
    }

    #[test]
    fn errors_pass_through() {
        let e = isolate::<()>("t", || {
            Err(SolverError::EmptyCurve {
                context: "inner".into(),
            })
        });
        assert_eq!(
            e,
            Err(SolverError::EmptyCurve {
                context: "inner".into()
            })
        );
    }

    #[test]
    fn panics_become_typed_errors_with_context() {
        let e = isolate::<()>("tier merlin", || panic!("injected boom"));
        match e {
            Err(SolverError::Panicked { context }) => {
                assert!(context.contains("tier merlin"), "{context}");
                assert!(context.contains("injected boom"), "{context}");
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
    }

    #[test]
    fn non_string_payloads_are_survivable() {
        let e = isolate::<()>("t", || std::panic::panic_any(7usize));
        assert!(matches!(e, Err(SolverError::Panicked { .. })));
    }

    #[test]
    fn nested_isolation_restores_the_outer_scope() {
        let outer = isolate("outer", || {
            let inner = isolate::<()>("inner", || panic!("inner boom"));
            assert!(matches!(inner, Err(SolverError::Panicked { .. })));
            // Still inside the outer scope: a second panic is caught too.
            Ok(1)
        });
        assert_eq!(outer, Ok(1));
    }
}
