//! Degradation bookkeeping: which tier served, why earlier tiers failed,
//! and how long each attempt took.

use std::fmt;

use merlin_netlist::NetValidationError;

use crate::error::SolverError;

/// The rung of the graceful-degradation ladder that produced a tree, from
/// strongest (full MERLIN search) to the unconditional last resort.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ServingTier {
    /// Flow III: the full MERLIN local-neighborhood search.
    Merlin,
    /// A single budgeted `BUBBLE_CONSTRUCT` pass (no outer loop).
    SinglePass,
    /// Flow II: P-Tree routing + van Ginneken buffer insertion.
    PtreeVanGinneken,
    /// Flow I: LTTREE fanout optimization + per-stage P-Tree routing.
    LttreePtree,
    /// Unbuffered direct star route — infallible, always audit-clean.
    DirectRoute,
}

impl ServingTier {
    /// The full ladder, strongest first.
    pub const LADDER: [ServingTier; 5] = [
        ServingTier::Merlin,
        ServingTier::SinglePass,
        ServingTier::PtreeVanGinneken,
        ServingTier::LttreePtree,
        ServingTier::DirectRoute,
    ];

    /// Short stable label for tables and logs.
    pub fn label(self) -> &'static str {
        match self {
            ServingTier::Merlin => "merlin",
            ServingTier::SinglePass => "single-pass",
            ServingTier::PtreeVanGinneken => "ptree+vg",
            ServingTier::LttreePtree => "lttree+ptree",
            ServingTier::DirectRoute => "direct",
        }
    }

    /// Inverse of [`ServingTier::label`], for the journal codec and CLI
    /// flags.
    pub fn parse(s: &str) -> Option<ServingTier> {
        ServingTier::LADDER.iter().copied().find(|t| t.label() == s)
    }
}

impl fmt::Display for ServingTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One failed rung of the ladder.
#[derive(Clone, Debug, PartialEq)]
pub struct TierAttempt {
    /// The tier that was tried.
    pub tier: ServingTier,
    /// Why it did not serve.
    pub error: SolverError,
    /// Wall-clock seconds spent on the attempt (0 when skipped because the
    /// shared budget was already exhausted).
    pub elapsed_s: f64,
}

/// The full story of one resilient solve: which tier served, every failed
/// attempt before it, and whether the budget was part of that story.
#[derive(Clone, Debug, PartialEq)]
pub struct DegradationReport {
    /// The tier whose tree was returned.
    pub served: ServingTier,
    /// Failed attempts, in ladder order.
    pub attempts: Vec<TierAttempt>,
    /// Wall-clock seconds spent by the serving tier.
    pub served_elapsed_s: f64,
    /// Whether any attempt failed (or was skipped) on budget exhaustion,
    /// or the serving tier itself reported a partial, budget-clipped run.
    pub budget_hit: bool,
    /// The up-front validation failure, when the input net was rejected
    /// before any DP tier ran.
    pub invalid_net: Option<NetValidationError>,
}

impl DegradationReport {
    /// A report for a solve that succeeded on its first rung.
    pub fn clean(served: ServingTier, served_elapsed_s: f64) -> Self {
        DegradationReport {
            served,
            attempts: Vec::new(),
            served_elapsed_s,
            budget_hit: false,
            invalid_net: None,
        }
    }

    /// Whether anything other than the strongest tier served.
    pub fn degraded(&self) -> bool {
        self.served != ServingTier::Merlin
    }

    /// One-line human summary (`served=<tier> [after <tier>: <why>; ...]`).
    pub fn summary(&self) -> String {
        let mut s = format!("served={}", self.served);
        if let Some(v) = &self.invalid_net {
            s.push_str(&format!(" (invalid net: {v})"));
        }
        if !self.attempts.is_empty() {
            s.push_str(" after ");
            let parts: Vec<String> = self
                .attempts
                .iter()
                .map(|a| format!("{}: {} [{:.3}s]", a.tier, a.error, a.elapsed_s))
                .collect();
            s.push_str(&parts.join("; "));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_ordered_strongest_first() {
        let l = ServingTier::LADDER;
        for pair in l.windows(2) {
            assert!(pair[0] < pair[1]);
        }
        assert_eq!(l[0], ServingTier::Merlin);
        assert_eq!(l[4], ServingTier::DirectRoute);
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<&str> =
            ServingTier::LADDER.iter().map(|t| t.label()).collect();
        assert_eq!(labels.len(), ServingTier::LADDER.len());
    }

    #[test]
    fn summary_names_failed_tiers() {
        let r = DegradationReport {
            served: ServingTier::PtreeVanGinneken,
            attempts: vec![TierAttempt {
                tier: ServingTier::Merlin,
                error: SolverError::Panicked {
                    context: "flow III: boom".into(),
                },
                elapsed_s: 0.25,
            }],
            served_elapsed_s: 0.1,
            budget_hit: false,
            invalid_net: None,
        };
        assert!(r.degraded());
        let s = r.summary();
        assert!(s.contains("ptree+vg"), "{s}");
        assert!(s.contains("merlin"), "{s}");
        assert!(s.contains("boom"), "{s}");
    }

    #[test]
    fn clean_report_is_not_degraded() {
        let r = DegradationReport::clean(ServingTier::Merlin, 0.5);
        assert!(!r.degraded());
        assert_eq!(r.summary(), "served=merlin");
    }
}
