//! The batch-journal record codec: one line per terminal net outcome.
//!
//! The batch supervisor (`merlin-supervisor`) persists progress in an
//! append-only, fsync'd, line-oriented write-ahead journal so a killed
//! process resumes at the first unfinished net. This module owns the
//! *format* — the versioned header line and the per-record codec — while
//! the file handling (append, fsync, corruption-tolerant replay) lives
//! with the supervisor. Keeping the codec here lets any driver read or
//! write journals without pulling in the worker-pool machinery.
//!
//! A journal is UTF-8 text: the header line [`JOURNAL_HEADER`], then one
//! [`JournalRecord`] per line in strict `key=value` field order:
//!
//! ```text
//! #merlin-journal v2
//! idx=0 net=net1 tier=merlin attempts=1 timeouts=0 status=served hash=7bd3c41fa90c21d5
//! idx=1 net=net2 tier=direct attempts=3 timeouts=1 status=failed-degraded hash=0000000000000000
//! ```
//!
//! `hash` is a deterministic FNV-1a digest of the served solution's
//! observable outcome (tier + evaluation figures), so a resumed run can be
//! byte-compared against an uninterrupted one. Records never contain
//! wall-clock fields — timings are not replayable.

use std::fmt;

use crate::report::ServingTier;

/// First line of every journal file; the version suffix is bumped on any
/// incompatible format change, and readers must refuse unknown versions.
pub const JOURNAL_HEADER: &str = "#merlin-journal v2";

/// Terminal status of a net in the journal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecordStatus {
    /// A tier at or above the acceptance threshold served the net.
    Served,
    /// Every attempt served below the acceptance threshold.
    FailedDegraded,
    /// Every attempt was lost to the watchdog (wall-clock stall).
    FailedTimeout,
    /// The net crashed its worker process repeatedly and was quarantined
    /// by the process supervisor (poison net).
    FailedCrash,
}

impl RecordStatus {
    /// Stable wire label.
    pub fn label(self) -> &'static str {
        match self {
            RecordStatus::Served => "served",
            RecordStatus::FailedDegraded => "failed-degraded",
            RecordStatus::FailedTimeout => "failed-timeout",
            RecordStatus::FailedCrash => "failed-crash",
        }
    }

    /// Inverse of [`RecordStatus::label`].
    pub fn parse(s: &str) -> Option<RecordStatus> {
        match s {
            "served" => Some(RecordStatus::Served),
            "failed-degraded" => Some(RecordStatus::FailedDegraded),
            "failed-timeout" => Some(RecordStatus::FailedTimeout),
            "failed-crash" => Some(RecordStatus::FailedCrash),
            _ => None,
        }
    }

    /// Whether the net ultimately failed.
    pub fn is_failure(self) -> bool {
        !matches!(self, RecordStatus::Served)
    }
}

impl fmt::Display for RecordStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One net's terminal journal record. Everything the final batch report
/// needs is in here, so replaying a completed journal reconstructs the
/// report without re-solving anything.
#[derive(Clone, Debug, PartialEq)]
pub struct JournalRecord {
    /// Position of the net in the batch (the resume key).
    pub idx: u64,
    /// Net name, for human-readable reports; whitespace is replaced by
    /// `_` on encode since the format is space-delimited.
    pub net: String,
    /// The degradation-ladder tier that served (the last attempt's tier
    /// for failures).
    pub tier: ServingTier,
    /// Solve attempts consumed (>= 1).
    pub attempts: u32,
    /// Attempts lost to the watchdog (wall-clock stalls) among
    /// `attempts`; lets the batch report break retries down by cause.
    pub timeouts: u32,
    /// Terminal status.
    pub status: RecordStatus,
    /// [`outcome_hash`] of the served solution (0 for failures).
    pub hash: u64,
}

/// Why a journal line failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecordDecodeError {
    /// Human-readable reason.
    pub reason: String,
}

impl fmt::Display for RecordDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad journal record: {}", self.reason)
    }
}

impl std::error::Error for RecordDecodeError {}

fn field<'a>(
    it: &mut impl Iterator<Item = &'a str>,
    key: &str,
) -> Result<&'a str, RecordDecodeError> {
    let tok = it.next().ok_or_else(|| RecordDecodeError {
        reason: format!("missing field `{key}`"),
    })?;
    tok.strip_prefix(key)
        .and_then(|rest| rest.strip_prefix('='))
        .ok_or_else(|| RecordDecodeError {
            reason: format!("expected `{key}=...`, found `{tok}`"),
        })
}

impl JournalRecord {
    /// Encodes the record as one journal line (no trailing newline).
    pub fn encode(&self) -> String {
        let net: String = self
            .net
            .chars()
            .map(|c| if c.is_whitespace() { '_' } else { c })
            .collect();
        format!(
            "idx={} net={} tier={} attempts={} timeouts={} status={} hash={:016x}",
            self.idx,
            net,
            self.tier.label(),
            self.attempts,
            self.timeouts,
            self.status.label(),
            self.hash
        )
    }

    /// Decodes one journal line (header excluded).
    ///
    /// # Errors
    ///
    /// Returns a [`RecordDecodeError`] naming the first malformed field —
    /// the signature a torn (partially written) final line leaves behind.
    pub fn decode(line: &str) -> Result<JournalRecord, RecordDecodeError> {
        let mut it = line.split_whitespace();
        let idx = field(&mut it, "idx")?
            .parse::<u64>()
            .map_err(|_| RecordDecodeError {
                reason: "malformed idx".to_owned(),
            })?;
        let net = field(&mut it, "net")?.to_owned();
        let tier_tok = field(&mut it, "tier")?;
        let tier = ServingTier::parse(tier_tok).ok_or_else(|| RecordDecodeError {
            reason: format!("unknown tier `{tier_tok}`"),
        })?;
        let attempts =
            field(&mut it, "attempts")?
                .parse::<u32>()
                .map_err(|_| RecordDecodeError {
                    reason: "malformed attempts".to_owned(),
                })?;
        let timeouts =
            field(&mut it, "timeouts")?
                .parse::<u32>()
                .map_err(|_| RecordDecodeError {
                    reason: "malformed timeouts".to_owned(),
                })?;
        let status_tok = field(&mut it, "status")?;
        let status = RecordStatus::parse(status_tok).ok_or_else(|| RecordDecodeError {
            reason: format!("unknown status `{status_tok}`"),
        })?;
        let hash_tok = field(&mut it, "hash")?;
        // Fixed width: a line torn mid-hash must read as corrupt, not as a
        // valid record with a silently shortened digest.
        if hash_tok.len() != 16 {
            return Err(RecordDecodeError {
                reason: "hash must be 16 hex digits".to_owned(),
            });
        }
        let hash = u64::from_str_radix(hash_tok, 16).map_err(|_| RecordDecodeError {
            reason: "malformed hash".to_owned(),
        })?;
        if let Some(extra) = it.next() {
            return Err(RecordDecodeError {
                reason: format!("trailing token `{extra}`"),
            });
        }
        Ok(JournalRecord {
            idx,
            net,
            tier,
            attempts,
            timeouts,
            status,
            hash,
        })
    }
}

/// FNV-1a over `bytes`: small, dependency-free, and stable across
/// platforms — exactly what a replay-comparison digest needs (this is an
/// integrity check against accidental divergence, not a cryptographic
/// commitment).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Deterministic digest of one solve outcome, fed by the supervisor with
/// the served tier and the tree's evaluation figures. Float inputs are
/// hashed by bit pattern: the solves themselves are deterministic, so
/// identical runs produce identical bits.
pub fn outcome_hash(
    net: &str,
    tier: ServingTier,
    buffer_area: u64,
    num_buffers: usize,
    wirelength: u64,
    delay_ps: f64,
) -> u64 {
    let mut buf = Vec::with_capacity(64);
    buf.extend_from_slice(net.as_bytes());
    buf.push(0);
    buf.extend_from_slice(tier.label().as_bytes());
    buf.push(0);
    buf.extend_from_slice(&buffer_area.to_le_bytes());
    buf.extend_from_slice(&(num_buffers as u64).to_le_bytes());
    buf.extend_from_slice(&wirelength.to_le_bytes());
    buf.extend_from_slice(&delay_ps.to_bits().to_le_bytes());
    fnv1a(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> JournalRecord {
        JournalRecord {
            idx: 17,
            net: "net17".to_owned(),
            tier: ServingTier::PtreeVanGinneken,
            attempts: 2,
            timeouts: 1,
            status: RecordStatus::Served,
            hash: 0xdeadbeefcafef00d,
        }
    }

    #[test]
    fn record_round_trips() {
        let rec = sample();
        let line = rec.encode();
        assert_eq!(JournalRecord::decode(&line), Ok(rec));
    }

    #[test]
    fn every_status_and_tier_round_trips() {
        for status in [
            RecordStatus::Served,
            RecordStatus::FailedDegraded,
            RecordStatus::FailedTimeout,
            RecordStatus::FailedCrash,
        ] {
            assert_eq!(RecordStatus::parse(status.label()), Some(status));
            for tier in ServingTier::LADDER {
                let rec = JournalRecord {
                    tier,
                    status,
                    ..sample()
                };
                assert_eq!(JournalRecord::decode(&rec.encode()), Ok(rec));
            }
        }
    }

    #[test]
    fn whitespace_in_net_names_is_sanitized() {
        let rec = JournalRecord {
            net: "odd name".to_owned(),
            ..sample()
        };
        let decoded = JournalRecord::decode(&rec.encode()).expect("sanitized encode decodes");
        assert_eq!(decoded.net, "odd_name");
    }

    #[test]
    fn torn_lines_fail_to_decode() {
        let line = sample().encode();
        for cut in [3, 10, line.len() - 4] {
            assert!(
                JournalRecord::decode(&line[..cut]).is_err(),
                "prefix of len {cut} must not decode"
            );
        }
        assert!(JournalRecord::decode("").is_err());
        assert!(
            JournalRecord::decode("idx=1 net=a tier=bogus attempts=1 status=served hash=0")
                .is_err()
        );
        let trailing = format!("{} extra", sample().encode());
        assert!(JournalRecord::decode(&trailing).is_err());
    }

    #[test]
    fn outcome_hash_is_stable_and_sensitive() {
        let a = outcome_hash("n", ServingTier::Merlin, 100, 3, 2000, 1234.5);
        let b = outcome_hash("n", ServingTier::Merlin, 100, 3, 2000, 1234.5);
        assert_eq!(a, b);
        let c = outcome_hash("n", ServingTier::Merlin, 101, 3, 2000, 1234.5);
        assert_ne!(a, c);
        let d = outcome_hash("n", ServingTier::SinglePass, 100, 3, 2000, 1234.5);
        assert_ne!(a, d);
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }
}
