//! Retry policy for batch solve supervision: bounded attempts,
//! exponential backoff, and deterministic parameter perturbation.
//!
//! Replaying a net that panicked or stalled into the exact same solve is
//! the classic retry anti-pattern — a deterministic failure reproduces
//! deterministically. [`RetryPolicy::params`] therefore *perturbs* each
//! retry along three axes, all derived from the attempt ordinal alone (so
//! a resumed batch re-derives identical attempt parameters):
//!
//! * **budget** — each retry gets a shrunken share of the per-net budget
//!   ([`AttemptParams::budget_scale`]), because a net that blew its first
//!   slice rarely deserves a bigger second one,
//! * **ladder entry tier** — a net that failed at flow III re-enters the
//!   degradation ladder at a *lower* rung ([`AttemptParams::entry`]):
//!   first retry starts at the single-pass tier, later ones at the
//!   decoupled baselines, so the failing code path is skipped rather than
//!   replayed,
//! * **search thinning** — retries request cheaper candidate sets and
//!   thinner solution curves ([`AttemptParams::thin_search`]); the policy
//!   half (what "thinner" means for a concrete `FlowsConfig`) lives in
//!   `merlin-flows`.
//!
//! The backoff between attempts is plain capped exponential growth — it
//! exists to space out transient resource pressure (the batch supervisor's
//! worker pool hammering one hot allocator path), not to wait out external
//! services, so the defaults are short.

use std::time::Duration;

use crate::report::ServingTier;

/// Deterministic perturbed parameters for one solve attempt.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AttemptParams {
    /// 0-based attempt ordinal this parameter set belongs to.
    pub attempt: u32,
    /// Fraction of the per-net budget this attempt may spend (1.0 for the
    /// first attempt, halved per retry, floored at 1/8).
    pub budget_scale: f64,
    /// The strongest degradation-ladder tier the attempt may enter at.
    pub entry: ServingTier,
    /// Whether the attempt should run with a thinned search (cheaper
    /// candidate-location strategy, thinner curves).
    pub thin_search: bool,
    /// Worker threads for the intra-net parallel DP (0 = leave the
    /// configured `MerlinConfig::threads` untouched). The supervisor sets
    /// this from its own `--threads` knob; the retry schedule itself never
    /// perturbs it, since thread count cannot change the (deterministic)
    /// result — only how fast a retry burns its budget slice.
    pub threads: usize,
    /// Load-quantization divisor for the post-prune curve-reduction dial
    /// (0 = leave the configured `MerlinConfig::load_quant` untouched).
    /// Like `threads`, this is a supervisor knob rather than part of the
    /// retry schedule: the schedule's search thinning already coarsens
    /// the dial through the flows-side `thinned()` policy.
    pub load_quant: u32,
}

/// Bounded-retry policy with exponential backoff. See the module docs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per net, first try included (minimum 1).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Multiplier applied per further retry.
    pub backoff_factor: f64,
    /// Upper bound on any single backoff.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(25),
            backoff_factor: 2.0,
            max_backoff: Duration::from_millis(400),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (one attempt, no backoff).
    pub fn no_retries() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            backoff_factor: 1.0,
            max_backoff: Duration::ZERO,
        }
    }

    /// Whether `attempt` (0-based) was the last allowed one.
    pub fn is_final(&self, attempt: u32) -> bool {
        attempt + 1 >= self.max_attempts.max(1)
    }

    /// Backoff to sleep before dispatching `attempt` (0-based; attempt 0
    /// never waits). Grows as `base * factor^(attempt-1)`, capped at
    /// [`RetryPolicy::max_backoff`].
    ///
    /// Never panics for any `attempt`: the growth factor is clamped
    /// *before* the `Duration` multiply. The naive
    /// `base.mul_f64(factor.powi(attempt - 1))` overflows `Duration`
    /// (a panic) around attempt 64 at the 25 ms default, and `powi`'s
    /// `i32` exponent would itself wrap for huge attempts — with the
    /// uncapped CLI `--max-retries` either one took down the whole
    /// supervisor event loop on a persistently failing net.
    pub fn backoff(&self, attempt: u32) -> Duration {
        if attempt == 0 {
            return Duration::ZERO;
        }
        let cap = self.max_backoff.max(self.base_backoff);
        if self.base_backoff.is_zero() {
            return Duration::ZERO;
        }
        // Once factor >= cap/base the multiply can only land on the cap,
        // so return it without touching `Duration` arithmetic. Growing
        // 2^1024 dwarfs any representable cap/base ratio, so clamping the
        // exponent cannot change which side of the ratio we land on.
        let exp = (attempt - 1).min(1024) as i32;
        let factor = self.backoff_factor.max(1.0).powi(exp);
        let ratio = cap.as_secs_f64() / self.base_backoff.as_secs_f64();
        if !factor.is_finite() || factor >= ratio {
            return cap;
        }
        self.base_backoff.mul_f64(factor).min(cap)
    }

    /// The perturbed parameters for `attempt` (0-based). Attempt 0 is the
    /// pristine solve; each retry halves the budget share (floored at
    /// 1/8), drops the ladder entry one tier, and thins the search.
    pub fn params(&self, attempt: u32) -> AttemptParams {
        let entry = match attempt {
            0 => ServingTier::Merlin,
            1 => ServingTier::SinglePass,
            2 => ServingTier::PtreeVanGinneken,
            _ => ServingTier::LttreePtree,
        };
        AttemptParams {
            attempt,
            budget_scale: (0.5f64.powi(attempt.min(3) as i32)).max(0.125),
            entry,
            thin_search: attempt > 0,
            threads: 0,
            load_quant: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attempt_zero_is_pristine() {
        let p = RetryPolicy::default().params(0);
        assert_eq!(p.entry, ServingTier::Merlin);
        assert_eq!(p.budget_scale, 1.0);
        assert!(!p.thin_search);
        assert_eq!(RetryPolicy::default().backoff(0), Duration::ZERO);
    }

    #[test]
    fn retries_degrade_monotonically() {
        let policy = RetryPolicy::default();
        let mut prev = policy.params(0);
        for attempt in 1..6 {
            let p = policy.params(attempt);
            assert!(p.entry >= prev.entry, "entry tier must never strengthen");
            assert!(p.budget_scale <= prev.budget_scale);
            assert!(p.thin_search);
            prev = p;
        }
        assert_eq!(policy.params(5).entry, ServingTier::LttreePtree);
        assert!(policy.params(9).budget_scale >= 0.125);
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let policy = RetryPolicy {
            max_attempts: 10,
            base_backoff: Duration::from_millis(10),
            backoff_factor: 2.0,
            max_backoff: Duration::from_millis(35),
        };
        assert_eq!(policy.backoff(1), Duration::from_millis(10));
        assert_eq!(policy.backoff(2), Duration::from_millis(20));
        assert_eq!(policy.backoff(3), Duration::from_millis(35), "capped");
        assert_eq!(policy.backoff(8), Duration::from_millis(35));
    }

    #[test]
    fn backoff_never_overflows_duration() {
        // Regression: attempt 64 at the 25 ms default used to overflow
        // `Duration::mul_f64` and panic the supervisor event loop.
        let policy = RetryPolicy::default();
        assert_eq!(policy.backoff(64), policy.max_backoff);
        assert_eq!(policy.backoff(200), policy.max_backoff);
        for attempt in [63, 64, 65, 1000, 100_000, u32::MAX - 1, u32::MAX] {
            assert!(policy.backoff(attempt) <= policy.max_backoff);
        }
        // A pathological factor must clamp, not produce inf * base.
        let wild = RetryPolicy {
            backoff_factor: f64::INFINITY,
            ..RetryPolicy::default()
        };
        assert_eq!(wild.backoff(2), wild.max_backoff);
        // Zero base (no_retries) stays zero for any attempt.
        assert_eq!(RetryPolicy::no_retries().backoff(u32::MAX), Duration::ZERO);
    }

    #[test]
    fn params_are_deterministic() {
        let policy = RetryPolicy::default();
        for attempt in 0..5 {
            assert_eq!(policy.params(attempt), policy.params(attempt));
        }
    }

    #[test]
    fn final_attempt_detection() {
        let policy = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        };
        assert!(!policy.is_final(0));
        assert!(!policy.is_final(1));
        assert!(policy.is_final(2));
        assert!(RetryPolicy::no_retries().is_final(0));
    }
}
