//! Resilient solving infrastructure for the MERLIN reproduction.
//!
//! The paper's MERLIN loop terminates at an order-space fixpoint but gives
//! no bound on per-net wall-clock or DP memory, and a production batch run
//! cannot afford one degenerate net taking down the whole sweep. This
//! crate supplies the *mechanism* half of the answer:
//!
//! * [`budget::SolveBudget`] — a cooperative wall-clock + DP-work budget
//!   the engines check inside their hot loops,
//! * [`error::SolverError`] — the typed failure vocabulary
//!   (`BudgetExceeded`, `InvalidNet`, `Panicked`, `EmptyCurve`,
//!   `AuditFailed`) every fallible solver entry point returns,
//! * [`isolate::isolate`] — the workspace's single sanctioned
//!   `catch_unwind` boundary (enforced by the `merlin-audit`
//!   `catch-unwind` rule),
//! * [`ladder::run_ladder`] — the generic graceful-degradation engine that
//!   tries weighted tiers under budget slices and always returns a value,
//! * [`report::DegradationReport`] — which tier served, why earlier tiers
//!   failed, and the time spent per tier,
//! * [`retry::RetryPolicy`] — bounded attempts, exponential backoff and
//!   deterministic parameter perturbation for batch supervision,
//! * [`journal`] — the versioned line codec for the batch supervisor's
//!   checkpoint/resume write-ahead journal.
//!
//! The *policy* half — the concrete flow-III → single-pass → flow-II →
//! flow-I → direct-route ladder — lives in `merlin_flows::resilient`,
//! which composes these pieces. The deterministic fault-injection registry
//! used by the chaos tests lives at the bottom of the dependency graph in
//! [`merlin_curves::fault`] and is re-exported here as [`fault`]; it only
//! arms when the `fault-inject` feature is on.
//!
//! See `docs/RESILIENCE.md` for the full model and the chaos-test matrix.

pub mod budget;
pub mod error;
pub mod isolate;
pub mod journal;
pub mod ladder;
pub mod report;
pub mod retry;

pub use budget::{BudgetExceeded, BudgetKind, SolveBudget};
pub use error::SolverError;
pub use isolate::isolate;
pub use journal::{JournalRecord, RecordStatus, JOURNAL_HEADER};
pub use ladder::{run_ladder, Tier};
pub use merlin_curves::fault;
pub use report::{DegradationReport, ServingTier, TierAttempt};
pub use retry::{AttemptParams, RetryPolicy};
