//! The typed error vocabulary shared by every budget-aware solver entry
//! point in the workspace.

use std::fmt;

use merlin_netlist::NetValidationError;

use crate::budget::BudgetExceeded;

/// Why a solve attempt failed. Every fallible solver API in `core` and
/// `flows` returns this, so drivers can decide between retry, degrade and
/// reject without parsing panic messages.
#[derive(Clone, Debug, PartialEq)]
pub enum SolverError {
    /// The attempt ran out of wall-clock or DP work budget.
    BudgetExceeded(BudgetExceeded),
    /// The input net failed [`merlin_netlist::Net::validate`].
    InvalidNet {
        /// Name of the rejected net, so batch rejection reports can point
        /// at the offending instance instead of just the defect kind.
        net: String,
        /// The structural defect.
        error: NetValidationError,
    },
    /// The attempt panicked and was contained at the isolation boundary.
    Panicked {
        /// Where the panic was caught, plus the panic message.
        context: String,
    },
    /// A DP produced an empty solution curve where one was required.
    EmptyCurve {
        /// Which stage came up empty.
        context: String,
    },
    /// The produced tree failed the structural / geometric audit.
    AuditFailed {
        /// Which stage produced the tree.
        context: String,
        /// The audit's own message.
        detail: String,
    },
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::BudgetExceeded(e) => write!(f, "{e}"),
            SolverError::InvalidNet { net, error } => {
                write!(f, "invalid net `{net}`: {error}")
            }
            SolverError::Panicked { context } => write!(f, "panicked in {context}"),
            SolverError::EmptyCurve { context } => {
                write!(f, "empty solution curve in {context}")
            }
            SolverError::AuditFailed { context, detail } => {
                write!(f, "tree audit failed in {context}: {detail}")
            }
        }
    }
}

impl std::error::Error for SolverError {}

impl From<BudgetExceeded> for SolverError {
    fn from(e: BudgetExceeded) -> Self {
        SolverError::BudgetExceeded(e)
    }
}

impl SolverError {
    /// Builds an [`SolverError::InvalidNet`] carrying the rejected net's
    /// name (the `From<NetValidationError>` conversion was dropped on
    /// purpose: an anonymous rejection is useless in a batch report).
    pub fn invalid_net(net: impl Into<String>, error: NetValidationError) -> Self {
        SolverError::InvalidNet {
            net: net.into(),
            error,
        }
    }

    /// Whether this error is a budget exhaustion (the one kind a driver
    /// should *not* blame on the tier that reported it).
    pub fn is_budget(&self) -> bool {
        matches!(self, SolverError::BudgetExceeded(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::{BudgetExceeded, BudgetKind};

    #[test]
    fn conversions_and_display() {
        let b: SolverError = BudgetExceeded {
            kind: BudgetKind::Work,
            spent: 2,
            limit: 1,
        }
        .into();
        assert!(b.is_budget());
        assert!(b.to_string().contains("work"));
        let v = SolverError::invalid_net("net42", NetValidationError::NoSinks);
        assert!(!v.is_budget());
        assert!(v.to_string().contains("no sinks"));
        assert!(
            v.to_string().contains("net42"),
            "rejections must name the net: {v}"
        );
        let p = SolverError::Panicked {
            context: "flow III: boom".into(),
        };
        assert!(p.to_string().contains("boom"));
    }
}
