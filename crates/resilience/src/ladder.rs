//! The generic graceful-degradation ladder engine.
//!
//! [`run_ladder`] walks a list of solver tiers, strongest first. Each tier
//! runs under [`crate::isolate::isolate`] (panics become typed errors)
//! with a slice of the shared [`SolveBudget`] proportional to its weight
//! among the tiers still ahead. A tier serves if it returns `Ok` *and* its
//! result passes the caller's audit; otherwise its failure is recorded and
//! the next rung is tried. When every tier fails — or the budget is
//! already exhausted — the caller's infallible fallback serves, so the
//! engine always returns a value.
//!
//! The engine is generic over the result type: policy (which tiers exist,
//! what a result is, how to audit it) lives in `merlin-flows`; mechanism
//! (budget slicing, panic isolation, reporting) lives here.

use std::time::Instant;

use crate::budget::SolveBudget;
use crate::error::SolverError;
use crate::isolate::isolate;
use crate::report::{DegradationReport, ServingTier, TierAttempt};

/// One rung of the ladder: a labelled, weighted solve attempt.
pub struct Tier<'a, T> {
    /// The rung's identity in reports.
    pub tier: ServingTier,
    /// Relative share of the remaining budget this rung may spend.
    pub weight: f64,
    /// The attempt itself, handed its slice of the budget.
    #[allow(clippy::type_complexity)]
    pub run: Box<dyn FnOnce(&SolveBudget) -> Result<T, SolverError> + 'a>,
}

impl<'a, T> Tier<'a, T> {
    /// Creates a rung.
    pub fn new(
        tier: ServingTier,
        weight: f64,
        run: impl FnOnce(&SolveBudget) -> Result<T, SolverError> + 'a,
    ) -> Self {
        Tier {
            tier,
            weight,
            run: Box::new(run),
        }
    }
}

/// Walks the ladder. See the module docs.
///
/// `audit` vets every successful attempt before it may serve; `fallback`
/// is the infallible last resort, reported as
/// [`ServingTier::DirectRoute`]. Budget-exhausted rungs are skipped with a
/// zero-duration [`TierAttempt`] so the report still names them.
pub fn run_ladder<T>(
    tiers: Vec<Tier<'_, T>>,
    audit: impl Fn(&T) -> Result<(), SolverError>,
    fallback: impl FnOnce() -> T,
    budget: &SolveBudget,
) -> (T, DegradationReport) {
    let mut attempts: Vec<TierAttempt> = Vec::new();
    let mut remaining_weight: f64 = tiers.iter().map(|t| t.weight.max(0.0)).sum();
    for tier in tiers {
        let weight = tier.weight.max(0.0);
        let fraction = if remaining_weight > 0.0 {
            weight / remaining_weight
        } else {
            1.0
        };
        remaining_weight -= weight;
        if let Err(e) = budget.check() {
            merlin_trace::counter("resilience.ladder.transitions", 1);
            attempts.push(TierAttempt {
                tier: tier.tier,
                error: e.into(),
                elapsed_s: 0.0,
            });
            continue;
        }
        let slice = budget.slice(fraction);
        let started = Instant::now();
        let run = tier.run;
        let tier_span = merlin_trace::span!("resilience.tier", tier.tier as u64);
        let outcome = isolate(tier.tier.label(), || run(&slice));
        drop(tier_span);
        if merlin_trace::is_enabled() {
            // Budget-slice consumption: work units this rung actually spent.
            merlin_trace::observe("resilience.slice.work", slice.work_used());
        }
        budget.absorb(&slice);
        let elapsed_s = started.elapsed().as_secs_f64();
        match outcome.and_then(|value| audit(&value).map(|()| value)) {
            Ok(value) => {
                merlin_trace::counter("resilience.tier.served", 1);
                let budget_hit = attempts.iter().any(|a| a.error.is_budget());
                return (
                    value,
                    DegradationReport {
                        served: tier.tier,
                        attempts,
                        served_elapsed_s: elapsed_s,
                        budget_hit,
                        invalid_net: None,
                    },
                );
            }
            Err(error) => {
                // Falling through to the next rung is a ladder transition.
                merlin_trace::counter("resilience.ladder.transitions", 1);
                attempts.push(TierAttempt {
                    tier: tier.tier,
                    error,
                    elapsed_s,
                });
            }
        }
    }
    let started = Instant::now();
    merlin_trace::counter("resilience.ladder.fallback", 1);
    let value = fallback();
    let budget_hit = attempts.iter().any(|a| a.error.is_budget());
    (
        value,
        DegradationReport {
            served: ServingTier::DirectRoute,
            attempts,
            served_elapsed_s: started.elapsed().as_secs_f64(),
            budget_hit,
            invalid_net: None,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::SolveBudget;

    fn no_audit<T>(_: &T) -> Result<(), SolverError> {
        Ok(())
    }

    #[test]
    fn first_healthy_tier_serves() {
        let tiers = vec![
            Tier::new(ServingTier::Merlin, 1.0, |_b: &SolveBudget| Ok(10)),
            Tier::new(ServingTier::SinglePass, 1.0, |_b: &SolveBudget| Ok(20)),
        ];
        let (v, r) = run_ladder(tiers, no_audit, || 0, &SolveBudget::unlimited());
        assert_eq!(v, 10);
        assert_eq!(r.served, ServingTier::Merlin);
        assert!(r.attempts.is_empty());
        assert!(!r.budget_hit);
    }

    #[test]
    fn panicking_tier_is_contained_and_named() {
        let tiers = vec![
            Tier::new(
                ServingTier::Merlin,
                1.0,
                |_b: &SolveBudget| -> Result<i32, SolverError> { panic!("tier exploded") },
            ),
            Tier::new(ServingTier::PtreeVanGinneken, 1.0, |_b: &SolveBudget| Ok(7)),
        ];
        let (v, r) = run_ladder(tiers, no_audit, || 0, &SolveBudget::unlimited());
        assert_eq!(v, 7);
        assert_eq!(r.served, ServingTier::PtreeVanGinneken);
        assert_eq!(r.attempts.len(), 1);
        assert_eq!(r.attempts[0].tier, ServingTier::Merlin);
        assert!(matches!(r.attempts[0].error, SolverError::Panicked { .. }));
    }

    #[test]
    fn audit_rejection_falls_through() {
        let tiers = vec![
            Tier::new(ServingTier::Merlin, 1.0, |_b: &SolveBudget| Ok(-1)),
            Tier::new(ServingTier::LttreePtree, 1.0, |_b: &SolveBudget| Ok(5)),
        ];
        let audit = |v: &i32| {
            if *v < 0 {
                Err(SolverError::AuditFailed {
                    context: "test".into(),
                    detail: "negative".into(),
                })
            } else {
                Ok(())
            }
        };
        let (v, r) = run_ladder(tiers, audit, || 0, &SolveBudget::unlimited());
        assert_eq!(v, 5);
        assert_eq!(r.served, ServingTier::LttreePtree);
        assert!(matches!(
            r.attempts[0].error,
            SolverError::AuditFailed { .. }
        ));
    }

    #[test]
    fn exhausted_budget_skips_every_tier_and_serves_fallback() {
        let tiers = vec![
            Tier::new(ServingTier::Merlin, 1.0, |_b: &SolveBudget| Ok(1)),
            Tier::new(ServingTier::SinglePass, 1.0, |_b: &SolveBudget| Ok(2)),
        ];
        let budget = SolveBudget::with_work_limit(0);
        let (v, r) = run_ladder(tiers, no_audit, || 99, &budget);
        assert_eq!(v, 99);
        assert_eq!(r.served, ServingTier::DirectRoute);
        assert_eq!(r.attempts.len(), 2);
        assert!(r.budget_hit);
        assert!(r.attempts.iter().all(|a| a.error.is_budget()));
    }

    #[test]
    fn child_spend_is_absorbed_into_the_shared_budget() {
        // Tier 1 spends the whole pool; tier 2 must be skipped.
        let tiers = vec![
            Tier::new(
                ServingTier::Merlin,
                1.0,
                |b: &SolveBudget| -> Result<i32, SolverError> {
                    b.charge(100).map_err(SolverError::from)?;
                    Ok(1)
                },
            ),
            Tier::new(ServingTier::SinglePass, 1.0, |_b: &SolveBudget| Ok(2)),
        ];
        // 100 units total: tier 1's 50% slice is 50 units, so its charge of
        // 100 fails; the spend still drains the parent, skipping tier 2.
        let budget = SolveBudget::with_work_limit(100);
        let (v, r) = run_ladder(tiers, no_audit, || 0, &budget);
        assert_eq!(v, 0);
        assert_eq!(r.served, ServingTier::DirectRoute);
        assert_eq!(r.attempts.len(), 2);
        assert_eq!(r.attempts[1].elapsed_s, 0.0, "tier 2 was skipped");
        assert!(r.budget_hit);
    }
}
