//! `LTTREE` — Touati's LT-Tree (type-I) fanout optimization baseline
//! [To90].
//!
//! Fanout optimization distributes a signal to sinks with known loads and
//! required times so as to maximize the required time at the driver —
//! **ignoring interconnect**, because sink locations are unknown in the
//! logic domain. The general problem is NP-hard; Touati showed that
//! restricting topologies to *LT-Trees* makes it solvable by dynamic
//! programming in polynomial time.
//!
//! An LT-Tree of type I permits at most one internal node among the
//! immediate children of every internal node, with no left sibling for
//! internal nodes — i.e. buffers form a single chain, each buffer driving a
//! run of consecutive sinks (in required-time order) plus at most one
//! deeper buffer. The MERLIN paper's Lemma 3 observes this is exactly a
//! Cα-tree with `α = ∞` and the internal child pinned leftmost, which is
//! why LTTREE (+ PTREE for routing) is its Flow I baseline.
//!
//! The DP here propagates `(load, required time, buffer area)` curves over
//! suffixes of the criticality-sorted sink list, so the same area/delay
//! trade-off machinery as everywhere else applies.
//!
//! # Examples
//!
//! ```
//! use merlin_lttree::{LtTree, LtConfig};
//! use merlin_tech::{Technology, Driver, units::Cap};
//!
//! let tech = Technology::synthetic_035();
//! // Eight identical heavy sinks: worth buffering.
//! let sinks: Vec<(Cap, f64)> = (0..8).map(|_| (Cap::from_ff(60.0), 1000.0)).collect();
//! let solved = LtTree::new(&tech, LtConfig::default()).solve(&sinks, &Driver::default());
//! let best = solved.best_point().expect("solvable");
//! let tree = solved.extract(&best);
//! assert!(tree.num_buffers() >= 1);
//! ```

pub mod dp;
pub mod tree;

pub use dp::{LtConfig, LtSolved, LtTree};
pub use tree::{FanoutNode, FanoutTree};
