//! The fanout-tree structure produced by LTTREE.

/// One stage of an LT-tree: a driver (the root) or a buffer, the run of
/// sinks it drives directly, and at most one deeper buffer stage.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FanoutNode {
    /// Buffer-library index, or `None` for the net driver at the root.
    pub buffer: Option<u16>,
    /// Net sink indices driven directly by this stage.
    pub sinks: Vec<u32>,
    /// Index (into [`FanoutTree::nodes`]) of the chained buffer stage.
    pub child: Option<usize>,
}

/// A chain-structured fanout tree (LT-Tree type I).
///
/// Node 0 is always the root (driver) stage.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FanoutTree {
    /// The stages, root first; each node's `child` points forward.
    pub nodes: Vec<FanoutNode>,
}

impl FanoutTree {
    /// Number of inserted buffers (root stage excluded).
    pub fn num_buffers(&self) -> usize {
        self.nodes.iter().filter(|n| n.buffer.is_some()).count()
    }

    /// All sink indices, stage by stage from the root.
    pub fn all_sinks(&self) -> Vec<u32> {
        let mut out = Vec::new();
        let mut cur = Some(0);
        while let Some(i) = cur {
            out.extend_from_slice(&self.nodes[i].sinks);
            cur = self.nodes[i].child;
        }
        out
    }

    /// Chain depth (number of stages).
    pub fn depth(&self) -> usize {
        let mut d = 0;
        let mut cur = Some(0);
        while let Some(i) = cur {
            d += 1;
            cur = self.nodes[i].child;
        }
        d
    }

    /// The sink indices that belong to stage `i` **or any deeper stage**
    /// (the transitive fanout of that stage) — what Flow I uses to place a
    /// buffer at the center of mass of the loads it transitively drives.
    pub fn transitive_sinks(&self, i: usize) -> Vec<u32> {
        let mut out = Vec::new();
        let mut cur = Some(i);
        while let Some(j) = cur {
            out.extend_from_slice(&self.nodes[j].sinks);
            cur = self.nodes[j].child;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> FanoutTree {
        FanoutTree {
            nodes: vec![
                FanoutNode {
                    buffer: None,
                    sinks: vec![0, 1],
                    child: Some(1),
                },
                FanoutNode {
                    buffer: Some(3),
                    sinks: vec![2],
                    child: Some(2),
                },
                FanoutNode {
                    buffer: Some(0),
                    sinks: vec![3, 4],
                    child: None,
                },
            ],
        }
    }

    #[test]
    fn chain_accessors() {
        let t = chain();
        assert_eq!(t.num_buffers(), 2);
        assert_eq!(t.depth(), 3);
        assert_eq!(t.all_sinks(), vec![0, 1, 2, 3, 4]);
        assert_eq!(t.transitive_sinks(1), vec![2, 3, 4]);
        assert_eq!(t.transitive_sinks(2), vec![3, 4]);
    }
}
