//! The LTTREE dynamic program.

use merlin_curves::{Curve, CurvePoint, ProvArena, ProvId};
use merlin_tech::units::{ps_cmp, Cap, PsTime};
use merlin_tech::{Driver, Technology};

use crate::tree::{FanoutNode, FanoutTree};

/// Construction step of an LT-tree sub-solution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LtStep {
    /// Buffer `buf` drives the criticality-sorted sinks `first..=last`
    /// directly, plus optionally a deeper stage.
    Stage {
        buf: u16,
        first: u32,
        last: u32,
        chain: Option<ProvId>,
    },
}

/// Tuning knobs for LTTREE.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LtConfig {
    /// Maximum direct children per stage (sinks + the chained buffer).
    pub max_fanout: usize,
    /// Curve thinning bound per suffix (`0` = exact).
    pub max_curve_points: usize,
}

impl Default for LtConfig {
    fn default() -> Self {
        LtConfig {
            max_fanout: 12,
            max_curve_points: 32,
        }
    }
}

/// The LTTREE solver.
#[derive(Debug)]
pub struct LtTree<'a> {
    tech: &'a Technology,
    config: LtConfig,
}

/// A solved LTTREE instance.
#[derive(Debug)]
pub struct LtSolved {
    /// Non-inferior `(root load, req at driver input, buffer area)` curve.
    ///
    /// Unlike the routing engines, `req` here is already *after* the driver
    /// delay (the driver's stage choice is part of the DP).
    pub curve: Curve,
    arena: ProvArena<LtStep>,
    /// Per-point driver-stage description `(last_direct, chain)`:
    /// the driver directly drives sorted sinks `0..=last` and chains to the
    /// given sub-solution.
    tops: Vec<(u32, Option<ProvId>)>,
    /// Maps criticality-sorted positions back to original sink indices.
    sorted_to_original: Vec<u32>,
}

impl<'a> LtTree<'a> {
    /// Creates a solver.
    pub fn new(tech: &'a Technology, config: LtConfig) -> Self {
        LtTree { tech, config }
    }

    /// Runs the DP over `sinks` = `(load, required time)` pairs, driven by
    /// `driver`.
    ///
    /// # Panics
    ///
    /// Panics if `sinks` is empty.
    pub fn solve(&self, sinks: &[(Cap, PsTime)], driver: &Driver) -> LtSolved {
        let n = sinks.len();
        assert!(n > 0, "LTTREE needs at least one sink");
        let lib = &self.tech.library;
        let maxfan = self.config.max_fanout.max(2);

        // Sort most-critical-first (ascending required time): Touati's
        // canonical order; less critical sinks go deeper into the chain.
        let mut idx: Vec<u32> = (0..n as u32).collect();
        idx.sort_by(|&a, &b| ps_cmp(sinks[a as usize].1, sinks[b as usize].1).then(a.cmp(&b)));
        let load = |i: usize| sinks[idx[i] as usize].0;
        let req = |i: usize| sinks[idx[i] as usize].1;
        // Prefix sums of loads over the sorted list.
        let mut pre = vec![Cap::ZERO; n + 1];
        for i in 0..n {
            pre[i + 1] = pre[i] + load(i);
        }
        let range_load = |i: usize, j: usize| pre[j + 1].saturating_sub(pre[i]);
        // Sorted ascending => min required time of a range is its first.
        let range_req = |i: usize, _j: usize| req(i);

        let mut arena: ProvArena<LtStep> = ProvArena::new();
        // lt[i]: curve for driving sorted sinks i..n-1 through one buffer
        // stage (the buffer is part of the solution; load = its cin).
        let mut lt: Vec<Curve> = vec![Curve::new(); n + 1];
        for i in (0..n).rev() {
            let mut c = Curve::new();
            // The stage drives sinks i..=j directly plus, if j+1 < n, the
            // chained stage lt[j+1] (one extra child).
            for j in i..n {
                let direct = j - i + 1;
                let has_chain = j + 1 < n;
                if direct + usize::from(has_chain) > maxfan {
                    break;
                }
                let base_load = range_load(i, j);
                let base_req = range_req(i, j);
                if !has_chain {
                    for (bi, buf) in lib.iter().enumerate() {
                        c.push(CurvePoint::with_load(
                            buf.cin,
                            base_req - buf.delay_linear_ps(base_load),
                            buf.area,
                            arena.push(LtStep::Stage {
                                buf: bi as u16,
                                first: i as u32,
                                last: j as u32,
                                chain: None,
                            }),
                        ));
                    }
                } else {
                    // Iterate the chain's curve points.
                    let chain_pts: Vec<CurvePoint> = lt[j + 1].iter().copied().collect();
                    for cp in chain_pts {
                        let below = base_load + cp.load;
                        let r = base_req.min(cp.req);
                        for (bi, buf) in lib.iter().enumerate() {
                            c.push(CurvePoint::with_load(
                                buf.cin,
                                r - buf.delay_linear_ps(below),
                                buf.area + cp.area,
                                arena.push(LtStep::Stage {
                                    buf: bi as u16,
                                    first: i as u32,
                                    last: j as u32,
                                    chain: Some(cp.prov),
                                }),
                            ));
                        }
                    }
                }
            }
            c.prune();
            c.thin_to(self.config.max_curve_points);
            lt[i] = c;
        }

        // Top stage: the driver itself drives sinks 0..=j (or none... at
        // least one child) plus optionally the chain lt[j+1]; also the
        // chain-only option where the driver drives just the first buffer.
        let mut curve = Curve::new();
        let mut tops: Vec<(u32, Option<ProvId>)> = Vec::new();
        let push_top = |curve: &mut Curve,
                        tops: &mut Vec<(u32, Option<ProvId>)>,
                        root_load: Cap,
                        r: PsTime,
                        area: u64,
                        last: u32,
                        chain: Option<ProvId>| {
            let prov = ProvId::new(tops.len() as u32);
            tops.push((last, chain));
            curve.push(CurvePoint::with_load(
                root_load,
                r - driver.delay_linear_ps(root_load),
                area,
                prov,
            ));
        };
        // Chain-only: driver -> lt[0].
        {
            let pts: Vec<CurvePoint> = lt[0].iter().copied().collect();
            for cp in pts {
                push_top(
                    &mut curve,
                    &mut tops,
                    cp.load,
                    cp.req,
                    cp.area,
                    u32::MAX,
                    Some(cp.prov),
                );
            }
        }
        for j in 0..n {
            let direct = j + 1;
            let has_chain = j + 1 < n;
            if direct + usize::from(has_chain) > maxfan {
                break;
            }
            let base_load = range_load(0, j);
            let base_req = range_req(0, j);
            if !has_chain {
                push_top(
                    &mut curve, &mut tops, base_load, base_req, 0, j as u32, None,
                );
            } else {
                let pts: Vec<CurvePoint> = lt[j + 1].iter().copied().collect();
                for cp in pts {
                    push_top(
                        &mut curve,
                        &mut tops,
                        base_load + cp.load,
                        base_req.min(cp.req),
                        cp.area,
                        j as u32,
                        Some(cp.prov),
                    );
                }
            }
        }
        curve.prune();
        curve.thin_to(self.config.max_curve_points);

        LtSolved {
            curve,
            arena,
            tops,
            sorted_to_original: idx,
        }
    }
}

impl LtSolved {
    /// The point with the best required time at the driver input.
    pub fn best_point(&self) -> Option<CurvePoint> {
        self.curve
            .iter()
            .max_by(|a, b| ps_cmp(a.req, b.req))
            .copied()
    }

    /// The cheapest point meeting `req ≥ target`, if any.
    pub fn min_area_point(&self, target: PsTime) -> Option<CurvePoint> {
        self.curve.min_area_with_req(target).copied()
    }

    /// Rebuilds the [`FanoutTree`] of a curve point.
    ///
    /// # Panics
    ///
    /// Panics if `point` did not come from this instance's curve.
    pub fn extract(&self, point: &CurvePoint) -> FanoutTree {
        let (last, chain) = self.tops[point.prov.index()];
        let mut nodes = Vec::new();
        let root_sinks = if last == u32::MAX {
            Vec::new()
        } else {
            (0..=last as usize)
                .map(|i| self.sorted_to_original[i])
                .collect()
        };
        nodes.push(FanoutNode {
            buffer: None,
            sinks: root_sinks,
            child: None,
        });
        let mut cur = chain;
        let mut parent = 0usize;
        while let Some(prov) = cur {
            let LtStep::Stage {
                buf,
                first,
                last,
                chain,
            } = self.arena[prov];
            let id = nodes.len();
            nodes[parent].child = Some(id);
            nodes.push(FanoutNode {
                buffer: Some(buf),
                sinks: (first as usize..=last as usize)
                    .map(|i| self.sorted_to_original[i])
                    .collect(),
                child: None,
            });
            parent = id;
            cur = chain;
        }
        FanoutTree { nodes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> Technology {
        Technology::synthetic_035()
    }

    fn uniform(n: usize, ff: f64, req: PsTime) -> Vec<(Cap, PsTime)> {
        (0..n).map(|_| (Cap::from_ff(ff), req)).collect()
    }

    #[test]
    fn single_light_sink_needs_no_buffer() {
        let t = tech();
        let solved = LtTree::new(&t, LtConfig::default())
            .solve(&uniform(1, 5.0, 1000.0), &Driver::default());
        let best = solved.best_point().expect("DP curve is non-empty");
        assert_eq!(best.area, 0, "a single light sink is driven directly");
        let tree = solved.extract(&best);
        assert_eq!(tree.num_buffers(), 0);
        assert_eq!(tree.all_sinks(), vec![0]);
    }

    #[test]
    fn heavy_fanout_gets_buffered() {
        let t = tech();
        let driver = Driver::with_strength(1.0);
        let sinks = uniform(24, 60.0, 1000.0);
        let solved = LtTree::new(&t, LtConfig::default()).solve(&sinks, &driver);
        let best = solved.best_point().expect("DP curve is non-empty");
        assert!(best.area > 0, "24×60 fF from a weak driver needs buffers");
        // And it must beat the unbuffered direct drive.
        let lumped: Cap = sinks.iter().map(|s| s.0).sum();
        let direct = 1000.0 - driver.delay_linear_ps(lumped);
        assert!(best.req > direct);
        let tree = solved.extract(&best);
        let mut all = tree.all_sinks();
        all.sort_unstable();
        assert_eq!(all, (0..24).collect::<Vec<u32>>());
    }

    #[test]
    fn extraction_matches_dp_bookkeeping() {
        // Re-evaluate the extracted chain by hand and compare with the
        // curve values.
        let t = tech();
        let driver = Driver::default();
        let sinks: Vec<(Cap, PsTime)> = (0..10)
            .map(|i| (Cap::from_ff(10.0 + 3.0 * i as f64), 900.0 + 40.0 * i as f64))
            .collect();
        let solved = LtTree::new(&t, LtConfig::default()).solve(&sinks, &driver);
        for p in solved.curve.iter() {
            let tree = solved.extract(p);
            // Hand evaluation, deepest stage first.
            let order: Vec<usize> = {
                let mut o = Vec::new();
                let mut cur = Some(0usize);
                while let Some(i) = cur {
                    o.push(i);
                    cur = tree.nodes[i].child;
                }
                o
            };
            let mut req_child = f64::INFINITY;
            let mut load_child = Cap::ZERO;
            let mut area = 0u64;
            for &i in order.iter().rev() {
                let node = &tree.nodes[i];
                let mut load = load_child;
                let mut req = req_child;
                for &s in &node.sinks {
                    load += sinks[s as usize].0;
                    req = req.min(sinks[s as usize].1);
                }
                match node.buffer {
                    Some(b) => {
                        let buf = &t.library[b as usize];
                        req_child = req - buf.delay_linear_ps(load);
                        load_child = buf.cin;
                        area += buf.area;
                    }
                    None => {
                        req_child = req - driver.delay_linear_ps(load);
                        load_child = load;
                    }
                }
            }
            assert!(
                (req_child - p.req).abs() < 1e-6,
                "req mismatch: {} vs {}",
                req_child,
                p.req
            );
            assert_eq!(area, p.area);
            assert_eq!(load_child, p.load);
        }
    }

    #[test]
    fn respects_max_fanout() {
        let t = tech();
        let solved = LtTree::new(
            &t,
            LtConfig {
                max_fanout: 4,
                max_curve_points: 0,
            },
        )
        .solve(&uniform(13, 20.0, 1000.0), &Driver::default());
        let best = solved.best_point().expect("DP curve is non-empty");
        let tree = solved.extract(&best);
        for (i, node) in tree.nodes.iter().enumerate() {
            let children = node.sinks.len() + usize::from(node.child.is_some());
            assert!(children <= 4, "stage {i} has {children} children");
        }
    }

    #[test]
    fn critical_sinks_stay_near_the_root() {
        let t = tech();
        let mut sinks = uniform(12, 30.0, 1500.0);
        sinks[7].1 = 200.0; // one very critical sink
        let solved = LtTree::new(&t, LtConfig::default()).solve(&sinks, &Driver::default());
        let best = solved.best_point().expect("DP curve is non-empty");
        let tree = solved.extract(&best);
        // The critical sink must be in the shallowest stage that has sinks.
        let mut cur = Some(0usize);
        let mut first_stage_with_sinks = None;
        while let Some(i) = cur {
            if !tree.nodes[i].sinks.is_empty() {
                first_stage_with_sinks = Some(i);
                break;
            }
            cur = tree.nodes[i].child;
        }
        let stage = first_stage_with_sinks.expect("LTTREE assigns every sink to some stage");
        assert!(
            tree.nodes[stage].sinks.contains(&7),
            "critical sink not in stage {stage}: {:?}",
            tree.nodes
        );
    }
}
