//! Per-net harness producing Table 1 rows.

use merlin_netlist::bench_nets::NetCase;
use merlin_netlist::Net;
use merlin_resilience::{ServingTier, SolveBudget};
use merlin_tech::Technology;

use crate::{flow1, flow2, flow3, resilient, FlowsConfig};

/// One flow's figures for a net.
///
/// A thin *view* over a [`crate::FlowResult`]: the harness reads each
/// figure once and [`Metrics::emit`] republishes the same numbers as
/// `merlin-trace` counters/histograms, so the table columns and the trace
/// cannot drift apart.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Metrics {
    /// Total buffer area in λ² (the paper reports ×1000 λ²).
    pub buffer_area: u64,
    /// Delay in ps (`max sink required time − driver required time`; equals
    /// the critical source-to-sink delay for uniform requirements).
    pub delay_ps: f64,
    /// Wall-clock runtime in seconds.
    pub runtime_s: f64,
}

impl Metrics {
    /// Publish this column as trace events under the given flow column
    /// (1–3): a `flows.flowN.runs` / `flows.flowN.area` counter pair plus
    /// `flows.flowN.us` (runtime, µs) and `flows.flowN.delay_ps`
    /// histograms. No-op when tracing is disabled or `flow` is not 1–3.
    pub fn emit(&self, flow: u8) {
        if !merlin_trace::is_enabled() {
            return;
        }
        let (runs, area, us, delay) = match flow {
            1 => (
                "flows.flow1.runs",
                "flows.flow1.area",
                "flows.flow1.us",
                "flows.flow1.delay_ps",
            ),
            2 => (
                "flows.flow2.runs",
                "flows.flow2.area",
                "flows.flow2.us",
                "flows.flow2.delay_ps",
            ),
            3 => (
                "flows.flow3.runs",
                "flows.flow3.area",
                "flows.flow3.us",
                "flows.flow3.delay_ps",
            ),
            _ => return,
        };
        merlin_trace::counter(runs, 1);
        merlin_trace::counter(area, self.buffer_area);
        merlin_trace::observe(us, (self.runtime_s * 1e6).max(0.0) as u64);
        merlin_trace::observe(delay, self.delay_ps.max(0.0) as u64);
    }
}

/// A Table 1 row.
#[derive(Clone, Debug)]
pub struct NetRow {
    /// Originating circuit label.
    pub circuit: String,
    /// Net name.
    pub name: String,
    /// Sink count.
    pub sinks: usize,
    /// Flow I (LTTREE + PTREE).
    pub flow1: Metrics,
    /// Flow II (PTREE + buffer insertion).
    pub flow2: Metrics,
    /// Flow III (MERLIN).
    pub flow3: Metrics,
    /// MERLIN convergence loops.
    pub loops: usize,
    /// The degradation-ladder tier that served the flow III column
    /// ([`ServingTier::Merlin`] for the direct, non-resilient harness).
    pub tier: ServingTier,
    /// Solve attempts consumed by the flow III column: ladder rungs tried
    /// by the resilient driver, or retry attempts recorded by a batch
    /// supervisor (1 for a clean first-rung solve).
    pub attempts: usize,
    /// Whether a solve budget clipped the flow III column.
    pub budget_hit: bool,
}

impl NetRow {
    /// `(area, delay, runtime)` ratios of a flow over Flow I.
    pub fn ratios(&self, which: &Metrics) -> (f64, f64, f64) {
        (
            which.buffer_area as f64 / (self.flow1.buffer_area.max(1)) as f64,
            which.delay_ps / self.flow1.delay_ps,
            which.runtime_s / self.flow1.runtime_s.max(1e-9),
        )
    }
}

fn metrics(flow: u8, res: &crate::FlowResult) -> Metrics {
    let m = Metrics {
        buffer_area: res.eval.buffer_area,
        delay_ps: res.eval.delay_ps,
        runtime_s: res.runtime_s,
    };
    m.emit(flow);
    m
}

/// Runs the three flows on one net.
pub fn run_net(net: &Net, circuit: &str, tech: &Technology, cfg: &FlowsConfig) -> NetRow {
    let f1 = flow1::run(net, tech, cfg);
    let f2 = flow2::run(net, tech, cfg);
    let f3 = flow3::run(net, tech, cfg);
    crate::audit::debug_audit_tree(&f1.tree, "flow I output");
    crate::audit::debug_audit_tree(&f2.tree, "flow II output");
    crate::audit::debug_audit_tree(&f3.tree, "flow III output");
    NetRow {
        circuit: circuit.to_owned(),
        name: net.name.clone(),
        sinks: net.num_sinks(),
        flow1: metrics(1, &f1),
        flow2: metrics(2, &f2),
        flow3: metrics(3, &f3),
        loops: f3.loops,
        tier: ServingTier::Merlin,
        attempts: 1,
        budget_hit: f3.budget_hit,
    }
}

/// [`run_net`] with the flow III column produced by the resilient driver
/// under `budget`: the row records which ladder tier actually served and
/// whether the budget clipped it. The flow I/II baseline columns still run
/// unbudgeted (they are the comparison denominators).
pub fn run_net_resilient(
    net: &Net,
    circuit: &str,
    tech: &Technology,
    cfg: &FlowsConfig,
    budget: &SolveBudget,
) -> NetRow {
    let f1 = flow1::run(net, tech, cfg);
    let f2 = flow2::run(net, tech, cfg);
    let out = resilient::resilient_solve_with(net, tech, cfg, budget);
    crate::audit::debug_audit_tree(&f1.tree, "flow I output");
    crate::audit::debug_audit_tree(&f2.tree, "flow II output");
    crate::audit::debug_audit_tree(&out.result.tree, "resilient output");
    NetRow {
        circuit: circuit.to_owned(),
        name: net.name.clone(),
        sinks: net.num_sinks(),
        flow1: metrics(1, &f1),
        flow2: metrics(2, &f2),
        flow3: metrics(3, &out.result),
        loops: out.result.loops,
        tier: out.report.served,
        attempts: out.report.attempts.len() + 1,
        budget_hit: out.report.budget_hit || out.result.budget_hit,
    }
}

/// Convenience wrapper for a generated [`NetCase`].
pub fn run_case(case: &NetCase, tech: &Technology) -> NetRow {
    let cfg = FlowsConfig::for_net_size(case.net.num_sinks());
    run_net(&case.net, case.circuit, tech, &cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use merlin_netlist::bench_nets::random_net;

    #[test]
    fn row_is_complete_and_ratios_sane() {
        let tech = Technology::synthetic_035();
        let net = random_net("n", 6, 8, &tech);
        let cfg = FlowsConfig::for_net_size(6);
        let row = run_net(&net, "T", &tech, &cfg);
        assert_eq!(row.sinks, 6);
        let (ra, rd, rt) = row.ratios(&row.flow3);
        assert!(ra.is_finite() && rd > 0.0 && rt > 0.0);
        // MERLIN should not be dramatically worse on delay than Flow I.
        assert!(rd < 2.0, "delay ratio {rd}");
    }
}
