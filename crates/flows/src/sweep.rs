//! Parameter-sweep utilities producing CSV, for plotting figure-style
//! series out of the experiment binaries.

use std::fmt::Write as _;

/// A rectangular result table that serializes to CSV.
///
/// # Examples
///
/// ```
/// use merlin_flows::sweep::CsvTable;
///
/// let mut t = CsvTable::new(["n", "delay_ps"]);
/// t.row(["8", "123.4"]);
/// assert_eq!(t.to_csv(), "n,delay_ps\n8,123.4\n");
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CsvTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl CsvTable {
    /// Creates a table with the given column names.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        CsvTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row arity differs from the header.
    pub fn row<I, S>(&mut self, cells: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Serializes to CSV (cells containing commas/quotes are quoted).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let quote = |c: &str| -> String {
            if c.contains(',') || c.contains('"') || c.contains('\n') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_owned()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.header
                .iter()
                .map(|c| quote(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                r.iter().map(|c| quote(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Runs `f` for every value in `values`, collecting `(value, f(value))`
/// into a two-column CSV — the shape every scaling figure needs.
pub fn sweep1<T: Copy + std::fmt::Display>(
    name: &str,
    metric: &str,
    values: &[T],
    mut f: impl FnMut(T) -> f64,
) -> CsvTable {
    let mut t = CsvTable::new([name, metric]);
    for &v in values {
        let y = f(v);
        t.row([v.to_string(), format!("{y:.6}")]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quoting_rules() {
        let mut t = CsvTable::new(["a", "b"]);
        t.row(["x,y", "say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = CsvTable::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn sweep_collects_pairs() {
        let t = sweep1("n", "square", &[1, 2, 3], |n| (n * n) as f64);
        assert_eq!(t.len(), 3);
        assert!(t.to_csv().contains("3,9.000000"));
    }
}
