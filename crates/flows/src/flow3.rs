//! Flow III: MERLIN — unified hierarchical buffered routing generation.

use std::time::Instant;

use merlin::Merlin;
use merlin_netlist::Net;
use merlin_tech::Technology;

use crate::{FlowResult, FlowsConfig};

/// Runs Flow III on `net`.
///
/// # Panics
///
/// Panics if the net has no sinks.
pub fn run(net: &Net, tech: &Technology, cfg: &FlowsConfig) -> FlowResult {
    let start = Instant::now();
    let outcome = Merlin::new(tech, cfg.merlin).optimize(net);
    let eval = outcome
        .tree
        .evaluate(tech, &net.driver, &net.sink_loads(), &net.sink_reqs());
    FlowResult {
        tree: outcome.tree,
        eval,
        runtime_s: start.elapsed().as_secs_f64(),
        loops: outcome.loops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use merlin_netlist::bench_nets::random_net;

    #[test]
    fn flow3_produces_valid_trees_and_reports_loops() {
        let tech = Technology::synthetic_035();
        let net = random_net("n", 6, 3, &tech);
        let cfg = FlowsConfig::for_net_size(6);
        let res = run(&net, &tech, &cfg);
        res.tree.validate(6, &tech).unwrap();
        assert!(res.loops >= 1);
        assert!(res.eval.root_required_ps.is_finite());
    }
}
