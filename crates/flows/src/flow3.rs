//! Flow III: MERLIN — unified hierarchical buffered routing generation.

use std::time::Instant;

use merlin::Merlin;
use merlin_netlist::Net;
use merlin_resilience::{SolveBudget, SolverError};
use merlin_tech::Technology;

use crate::{FlowResult, FlowsConfig};

/// Runs Flow III on `net`.
///
/// # Panics
///
/// Panics if the net is invalid (see [`Net::validate`]).
pub fn run(net: &Net, tech: &Technology, cfg: &FlowsConfig) -> FlowResult {
    try_run(net, tech, cfg).expect("flow III solves every valid net")
}

/// Fallible [`run`] under an unlimited budget.
///
/// # Errors
///
/// See [`try_run_budgeted`].
pub fn try_run(net: &Net, tech: &Technology, cfg: &FlowsConfig) -> Result<FlowResult, SolverError> {
    try_run_budgeted(net, tech, cfg, &SolveBudget::unlimited())
}

/// Fallible, budgeted Flow III: validates the net up front and runs the
/// MERLIN search with cooperative cancellation. A budget that dies after
/// the first complete iteration returns the best tree so far with
/// [`FlowResult::budget_hit`] set.
///
/// # Errors
///
/// [`SolverError::InvalidNet`] for a malformed net,
/// [`SolverError::BudgetExceeded`] when the budget dies before the first
/// iteration completes, and [`SolverError::EmptyCurve`] when the DP yields
/// no selectable solution.
pub fn try_run_budgeted(
    net: &Net,
    tech: &Technology,
    cfg: &FlowsConfig,
    budget: &SolveBudget,
) -> Result<FlowResult, SolverError> {
    if merlin_resilience::fault::trip("flows.flow3.run") {
        return Err(SolverError::EmptyCurve {
            context: format!("injected empty result at flows.flow3.run on `{}`", net.name),
        });
    }
    net.validate()
        .map_err(|e| SolverError::invalid_net(&net.name, e))?;
    let _span = merlin_trace::span!("flows.flow3");
    let start = Instant::now();
    let outcome = Merlin::new(tech, cfg.merlin).optimize_budgeted(net, budget)?;
    let eval = outcome
        .tree
        .evaluate(tech, &net.driver, &net.sink_loads(), &net.sink_reqs());
    Ok(FlowResult {
        tree: outcome.tree,
        eval,
        runtime_s: start.elapsed().as_secs_f64(),
        loops: outcome.loops,
        budget_hit: outcome.budget_hit,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use merlin_netlist::bench_nets::random_net;

    #[test]
    fn flow3_produces_valid_trees_and_reports_loops() {
        let tech = Technology::synthetic_035();
        let net = random_net("n", 6, 3, &tech);
        let cfg = FlowsConfig::for_net_size(6);
        let res = run(&net, &tech, &cfg);
        res.tree.validate(6, &tech).unwrap();
        assert!(res.loops >= 1);
        assert!(res.eval.root_required_ps.is_finite());
    }
}
