//! Flow I: `LTTREE` fanout optimization followed by `PTREE` routing of
//! every stage.
//!
//! The fanout tree is built in the logic domain (positions unknown), then
//! each stage's buffer is placed at the center of mass of the sinks it
//! transitively drives, and the stage's sub-net (its direct sinks plus the
//! next buffer in the chain) is routed with `PTREE` using the TSP order —
//! exactly the paper's Setup I. Because buffering decided before layout
//! cannot anticipate wire delay, this flow wastes area and delay on
//! spread-out nets, which is the effect Table 1 quantifies.

use std::time::Instant;

use merlin_geom::{center_of_mass, Point};
use merlin_lttree::{FanoutTree, LtTree};
use merlin_netlist::{Net, Sink};
use merlin_order::tsp::tsp_order;
use merlin_ptree::Ptree;
use merlin_resilience::SolverError;
use merlin_tech::units::{ps_min, Cap};
use merlin_tech::{BufferedTree, Driver, NodeKind, Technology};

use crate::{FlowResult, FlowsConfig};

/// Runs Flow I on `net`.
///
/// # Panics
///
/// Panics if the net is invalid (see [`Net::validate`]).
pub fn run(net: &Net, tech: &Technology, cfg: &FlowsConfig) -> FlowResult {
    try_run(net, tech, cfg).expect("flow I solves every valid net")
}

/// Fallible [`run`]: validates the net up front and returns a typed
/// [`SolverError`] instead of panicking.
///
/// # Errors
///
/// [`SolverError::InvalidNet`] for a malformed net and
/// [`SolverError::EmptyCurve`] when LTTREE yields no fanout tree.
pub fn try_run(net: &Net, tech: &Technology, cfg: &FlowsConfig) -> Result<FlowResult, SolverError> {
    if merlin_resilience::fault::trip("flows.flow1.run") {
        return Err(SolverError::EmptyCurve {
            context: format!("injected empty result at flows.flow1.run on `{}`", net.name),
        });
    }
    net.validate()
        .map_err(|e| SolverError::invalid_net(&net.name, e))?;
    let _span = merlin_trace::span!("flows.flow1");
    let start = Instant::now();
    let pairs: Vec<(Cap, f64)> = net.sinks.iter().map(|s| (s.load, s.req_ps)).collect();
    let solved = LtTree::new(tech, cfg.lt).solve(&pairs, &net.driver);
    let best = solved.best_point().ok_or_else(|| SolverError::EmptyCurve {
        context: format!("LTTREE produced no fanout tree on `{}`", net.name),
    })?;
    let fanout_tree = solved.extract(&best);
    let tree = embed(net, tech, cfg, &fanout_tree);
    let eval = tree.evaluate(tech, &net.driver, &net.sink_loads(), &net.sink_reqs());
    Ok(FlowResult {
        tree,
        eval,
        runtime_s: start.elapsed().as_secs_f64(),
        loops: 0,
        budget_hit: false,
    })
}

/// Embeds a fanout tree: places each buffer stage at the center of mass of
/// its transitive sinks, routes each stage with PTREE, and grafts the
/// stage routings into one buffered tree.
fn embed(
    net: &Net,
    tech: &Technology,
    cfg: &FlowsConfig,
    fanout_tree: &FanoutTree,
) -> BufferedTree {
    // Stage order root -> deep, with placement.
    let mut chain: Vec<usize> = Vec::new();
    let mut cur = Some(0usize);
    while let Some(i) = cur {
        chain.push(i);
        cur = fanout_tree.nodes[i].child;
    }
    let mut stage_pos: Vec<Point> = vec![net.source; fanout_tree.nodes.len()];
    for &i in &chain {
        if i == 0 {
            continue;
        }
        let pts: Vec<Point> = fanout_tree
            .transitive_sinks(i)
            .iter()
            .map(|&s| net.sinks[s as usize].pos)
            .collect();
        stage_pos[i] = if pts.is_empty() {
            net.source
        } else {
            center_of_mass(pts)
        };
    }

    let mut out = BufferedTree::new(net.source);
    let mut attach = out.root(); // node at the current stage's position
    for (ci, &i) in chain.iter().enumerate() {
        let stage = &fanout_tree.nodes[i];
        let next = chain.get(ci + 1).copied();
        // Sub-net: direct sinks + pseudo-sink for the next buffer.
        let mut sub_sinks: Vec<Sink> = stage
            .sinks
            .iter()
            .map(|&s| net.sinks[s as usize].clone())
            .collect();
        let mut pseudo_idx = None;
        if let Some(nx) = next {
            let nb = fanout_tree.nodes[nx]
                .buffer
                .expect("chain stages are buffers");
            let buf = &tech.library[nb as usize];
            let req = fanout_tree
                .transitive_sinks(nx)
                .iter()
                .map(|&s| net.sinks[s as usize].req_ps)
                .fold(f64::INFINITY, ps_min);
            pseudo_idx = Some(sub_sinks.len() as u32);
            sub_sinks.push(Sink::new(stage_pos[nx], buf.cin, req));
        }
        if sub_sinks.is_empty() {
            break;
        }
        let stage_driver = match stage.buffer {
            None => net.driver.clone(),
            Some(b) => {
                let buf = &tech.library[b as usize];
                Driver {
                    rdrv_ohm: buf.rdrv_ohm,
                    intrinsic_ps: buf.intrinsic_ps,
                    four_param: buf.four_param,
                }
            }
        };
        let sub_net = Net::new("stage", stage_pos[i], stage_driver, sub_sinks);
        let order = tsp_order(sub_net.source, &sub_net.sink_positions());
        let cands = cfg
            .baseline_candidates
            .generate(sub_net.source, &sub_net.sink_positions());
        let solved = Ptree::new(&sub_net, tech, cfg.ptree).solve(&order, &cands);
        let sub_tree = solved
            .best_tree()
            .expect("PTREE always routes a non-empty net");
        // Graft: copy sub_tree under `attach`, translating sink ids; the
        // pseudo-sink becomes the next stage's buffer node.
        let mut next_attach = None;
        let mut stack: Vec<(merlin_tech::NodeId, merlin_tech::NodeId)> =
            vec![(sub_tree.root(), attach)];
        while let Some((src, dst)) = stack.pop() {
            for &ch in &sub_tree.node(src).children {
                let child = sub_tree.node(ch);
                match child.kind {
                    NodeKind::Sink(local) => {
                        if Some(local) == pseudo_idx {
                            let nx = next.expect("pseudo implies next stage");
                            let nb = fanout_tree.nodes[nx].buffer.expect("buffer stage");
                            let node = out.add_child(dst, NodeKind::Buffer(nb), child.at);
                            next_attach = Some(node);
                        } else {
                            let real = stage.sinks[local as usize];
                            out.add_child(dst, NodeKind::Sink(real), child.at);
                        }
                    }
                    NodeKind::Steiner => {
                        let node = out.add_child(dst, NodeKind::Steiner, child.at);
                        stack.push((ch, node));
                    }
                    NodeKind::Buffer(_) | NodeKind::Source => {
                        unreachable!("PTREE produces plain routing trees")
                    }
                }
            }
        }
        match next_attach {
            Some(a) => attach = a,
            None => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use merlin_netlist::bench_nets::random_net;

    #[test]
    fn flow1_produces_valid_trees() {
        let tech = Technology::synthetic_035();
        for seed in 1..=3u64 {
            let net = random_net("n", 8, seed, &tech);
            let cfg = FlowsConfig::for_net_size(8);
            let res = run(&net, &tech, &cfg);
            res.tree.validate(8, &tech).unwrap();
            assert!(res.eval.root_required_ps.is_finite());
            assert_eq!(res.loops, 0);
        }
    }

    #[test]
    fn heavy_net_gets_buffers_from_lttree() {
        let tech = Technology::synthetic_035();
        let mut net = random_net("n", 20, 2, &tech);
        net.driver = Driver::with_strength(1.0);
        for s in &mut net.sinks {
            s.load = Cap::from_ff(60.0);
        }
        let cfg = FlowsConfig::for_net_size(20);
        let res = run(&net, &tech, &cfg);
        res.tree.validate(20, &tech).unwrap();
        assert!(res.eval.num_buffers >= 1);
    }

    #[test]
    fn single_sink_degenerates_to_a_route() {
        let tech = Technology::synthetic_035();
        let net = random_net("n", 1, 7, &tech);
        let cfg = FlowsConfig::for_net_size(1);
        let res = run(&net, &tech, &cfg);
        res.tree.validate(1, &tech).unwrap();
    }
}
