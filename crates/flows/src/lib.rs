//! The paper's three experimental flows (§IV) and the table harnesses.
//!
//! * **Flow I** — fanout optimization with `LTTREE`, then each stage of
//!   the fanout tree routed with `PTREE` (sink order: required times for
//!   LTTREE, TSP for PTREE) — the "logic first, layout later" convention,
//! * **Flow II** — routing with `PTREE` (TSP order), then van Ginneken
//!   buffer insertion on the fixed tree — "layout first, buffers later",
//! * **Flow III** — `MERLIN`: the unified buffered-routing construction
//!   with local neighborhood search.
//!
//! [`net_harness`] runs all three on a net and produces a Table 1 row;
//! [`circuit_harness`] pushes a whole synthetic circuit through a flow and
//! produces a Table 2 row; [`report`] prints the tables in the paper's
//! layout (absolute Flow I numbers, Flow II/III as ratios over Flow I).
//!
//! # Examples
//!
//! ```
//! use merlin_flows::{net_harness, FlowsConfig};
//! use merlin_netlist::bench_nets::random_net;
//! use merlin_tech::Technology;
//!
//! let tech = Technology::synthetic_035();
//! let net = random_net("demo", 5, 3, &tech);
//! let cfg = FlowsConfig::for_net_size(5);
//! let row = net_harness::run_net(&net, "demo", &tech, &cfg);
//! assert!(row.flow3.delay_ps <= row.flow1.delay_ps * 1.5);
//! ```

pub mod audit;
pub mod circuit_harness;
pub mod flow0;
pub mod flow1;
pub mod flow2;
pub mod flow3;
pub mod net_harness;
pub mod report;
pub mod resilient;
pub mod sweep;

use merlin::MerlinConfig;
use merlin_geom::CandidateStrategy;
use merlin_lttree::LtConfig;
use merlin_ptree::PtreeConfig;
use merlin_vanginneken::VgConfig;

/// One flow's outcome on a net.
#[derive(Clone, Debug)]
pub struct FlowResult {
    /// The produced buffered routing tree.
    pub tree: merlin_tech::BufferedTree,
    /// Independent evaluation of that tree.
    pub eval: merlin_tech::Evaluation,
    /// Wall-clock runtime in seconds.
    pub runtime_s: f64,
    /// MERLIN local-search loops (0 for the baselines).
    pub loops: usize,
    /// Whether a [`merlin_resilience::SolveBudget`] clipped the run (the
    /// tree is the best found before the budget ran out). Always `false`
    /// for the unbudgeted entry points.
    pub budget_hit: bool,
}

/// Shared configuration for the three flows.
#[derive(Clone, Debug)]
pub struct FlowsConfig {
    /// PTREE settings (Flows I and II).
    pub ptree: PtreeConfig,
    /// Candidate strategy for the baseline routing.
    pub baseline_candidates: CandidateStrategy,
    /// van Ginneken settings (Flow II).
    pub vg: VgConfig,
    /// LTTREE settings (Flow I).
    pub lt: LtConfig,
    /// MERLIN settings (Flow III).
    pub merlin: MerlinConfig,
}

impl FlowsConfig {
    /// A configuration scaled to a net of `n` sinks: exact-ish for small
    /// nets, thinned curves and reduced candidate sets for large ones.
    pub fn for_net_size(n: usize) -> Self {
        let small = n <= 12;
        FlowsConfig {
            ptree: if small {
                PtreeConfig {
                    max_curve_points: 24,
                }
            } else {
                PtreeConfig {
                    max_curve_points: 12,
                }
            },
            baseline_candidates: if small {
                CandidateStrategy::FullHanan
            } else {
                CandidateStrategy::ReducedHanan {
                    max_points: (2 * n).clamp(24, 64),
                }
            },
            vg: VgConfig::default(),
            lt: LtConfig::default(),
            // Reduced Hanan candidates even for small nets: the paper (and
            // experiment E5) shows the candidate-set choice barely affects
            // quality once k = Ω(n), and it keeps MERLIN's k² relocation
            // term small.
            merlin: if small {
                MerlinConfig {
                    alpha: 8,
                    candidates: CandidateStrategy::ReducedHanan {
                        max_points: (3 * n).clamp(16, 36),
                    },
                    max_curve_points: 10,
                    max_loops: 6,
                    ..MerlinConfig::default()
                }
            } else {
                MerlinConfig::large(n)
            },
        }
    }

    /// A cheaper copy of this configuration for perturbed retry attempts
    /// (see `merlin_resilience::retry`): roughly halved candidate sets,
    /// thinner solution curves, and a shorter MERLIN loop bound. The point
    /// is to land a retried net on a *different, smaller* DP trajectory
    /// than the one that just failed, not to preserve quality.
    pub fn thinned(&self) -> Self {
        let thin_strategy = |s: CandidateStrategy| match s {
            CandidateStrategy::FullHanan => CandidateStrategy::ReducedHanan { max_points: 16 },
            CandidateStrategy::ReducedHanan { max_points } => CandidateStrategy::ReducedHanan {
                max_points: (max_points / 2).max(8),
            },
            other => other,
        };
        let mut cfg = self.clone();
        cfg.ptree.max_curve_points = cfg.ptree.max_curve_points.clamp(1, 8);
        cfg.baseline_candidates = thin_strategy(cfg.baseline_candidates);
        cfg.merlin.candidates = thin_strategy(cfg.merlin.candidates);
        cfg.merlin.max_curve_points = if cfg.merlin.max_curve_points == 0 {
            6
        } else {
            cfg.merlin.max_curve_points.clamp(1, 6)
        };
        cfg.merlin.max_loops = cfg.merlin.max_loops.clamp(1, 2);
        // Retries also coarsen the post-prune load-quantization dial: a
        // quantized curve is smaller at every DP step, which both speeds
        // the retry up and perturbs its trajectory away from the failure.
        cfg.merlin.load_quant = (cfg.merlin.load_quant.max(1)) * 4;
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_scales_with_net_size() {
        let small = FlowsConfig::for_net_size(6);
        let large = FlowsConfig::for_net_size(50);
        assert!(small.ptree.max_curve_points >= large.ptree.max_curve_points);
        assert_eq!(small.baseline_candidates, CandidateStrategy::FullHanan);
        assert_ne!(large.baseline_candidates, CandidateStrategy::FullHanan);
        // MERLIN always runs on a reduced candidate set (E5 justifies it).
        assert!(matches!(
            small.merlin.candidates,
            CandidateStrategy::ReducedHanan { .. }
        ));
    }

    #[test]
    fn thinned_config_is_strictly_cheaper() {
        for n in [6, 50] {
            let base = FlowsConfig::for_net_size(n);
            let thin = base.thinned();
            assert!(thin.ptree.max_curve_points <= base.ptree.max_curve_points);
            assert!(thin.merlin.max_loops <= base.merlin.max_loops);
            assert!(thin.merlin.max_curve_points > 0, "never exact on retry");
            let points = |s: &CandidateStrategy| match s {
                CandidateStrategy::ReducedHanan { max_points } => *max_points,
                _ => usize::MAX,
            };
            assert!(points(&thin.merlin.candidates) <= points(&base.merlin.candidates));
            assert!(
                points(&thin.baseline_candidates) < usize::MAX,
                "FullHanan must be reduced"
            );
            assert!(
                thin.merlin.load_quant > base.merlin.load_quant.max(1),
                "retries coarsen the load-quantization dial"
            );
        }
    }
}
