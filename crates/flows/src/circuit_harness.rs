//! Whole-circuit harness producing Table 2 rows.
//!
//! For each net of a synthetic mapped circuit, builds the per-net
//! optimization problem (driver model from the driving cell, sink required
//! times from a zero-slack STA estimate), runs one of the three flows, and
//! finally runs a full STA with the produced per-sink delays. "Area" is
//! cell area plus all inserted buffer area — the paper's post-layout area
//! column; "Delay" is the STA critical path.

use std::time::Instant;

use merlin_netlist::circuit::Terminal;
use merlin_netlist::sta::{analyze, derive_sink_requirements, NetTiming};
use merlin_netlist::{Circuit, Net, Sink};
use merlin_tech::{Driver, Technology};

use crate::{flow1, flow2, flow3, FlowsConfig};

/// Which flow to push the circuit through.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FlowKind {
    /// LTTREE + PTREE.
    Lttree,
    /// PTREE + van Ginneken.
    PtreeVg,
    /// MERLIN.
    Merlin,
}

/// A Table 2 cell: one circuit through one flow.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CircuitMetrics {
    /// Gate area + inserted buffer area, λ².
    pub area: u64,
    /// STA critical path, ps.
    pub critical_ps: f64,
    /// Wall-clock runtime, seconds.
    pub runtime_s: f64,
    /// Total buffers inserted.
    pub buffers: usize,
}

/// Builds the per-net optimization problem for net `idx`.
pub fn net_problem(circuit: &Circuit, idx: usize, reqs: &[Vec<f64>]) -> Net {
    let cnet = &circuit.nets[idx];
    let source = circuit.terminal_pos(cnet.driver);
    let driver = match cnet.driver {
        Terminal::Gate(g) => circuit.cells[circuit.gates[g as usize].cell as usize].as_driver(),
        Terminal::Input(_) => Driver::with_strength(8.0),
        Terminal::Output(_) => unreachable!("outputs never drive"),
    };
    let sinks = cnet
        .sinks
        .iter()
        .zip(&reqs[idx])
        .map(|(&t, &r)| Sink::new(circuit.terminal_pos(t), circuit.sink_cap(t), r))
        .collect();
    Net::new(format!("net{idx}"), source, driver, sinks)
}

/// Pushes `circuit` through `flow`.
pub fn run_circuit(circuit: &Circuit, tech: &Technology, flow: FlowKind) -> CircuitMetrics {
    let start = Instant::now();
    let reqs = derive_sink_requirements(circuit, tech);
    let mut timings = Vec::with_capacity(circuit.nets.len());
    let mut buffer_area = 0u64;
    let mut buffers = 0usize;
    for idx in 0..circuit.nets.len() {
        if circuit.nets[idx].sinks.is_empty() {
            timings.push(NetTiming {
                sink_delays_ps: Vec::new(),
            });
            continue;
        }
        let net = net_problem(circuit, idx, &reqs);
        let cfg = FlowsConfig::for_net_size(net.num_sinks());
        let res = match flow {
            FlowKind::Lttree => flow1::run(&net, tech, &cfg),
            FlowKind::PtreeVg => flow2::run(&net, tech, &cfg),
            FlowKind::Merlin => {
                let mut cfg = cfg;
                // Table 2 setup: at most 3 MERLIN loops per net.
                cfg.merlin.max_loops = cfg.merlin.max_loops.min(3);
                flow3::run(&net, tech, &cfg)
            }
        };
        buffer_area += res.eval.buffer_area;
        buffers += res.eval.num_buffers;
        timings.push(NetTiming {
            sink_delays_ps: res.eval.sink_delays_ps.clone(),
        });
    }
    let sta = analyze(circuit, &timings);
    CircuitMetrics {
        area: circuit.gate_area() + buffer_area,
        critical_ps: sta.critical_ps,
        runtime_s: start.elapsed().as_secs_f64(),
        buffers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use merlin_netlist::generator::synthetic_circuit;

    #[test]
    fn tiny_circuit_through_all_flows() {
        let tech = Technology::synthetic_035();
        let circuit = synthetic_circuit("t", 24, 3);
        let m1 = run_circuit(&circuit, &tech, FlowKind::Lttree);
        let m2 = run_circuit(&circuit, &tech, FlowKind::PtreeVg);
        let m3 = run_circuit(&circuit, &tech, FlowKind::Merlin);
        for m in [m1, m2, m3] {
            assert!(m.area >= circuit.gate_area());
            assert!(m.critical_ps > 0.0 && m.critical_ps.is_finite());
        }
    }

    #[test]
    fn net_problem_is_well_formed() {
        let tech = Technology::synthetic_035();
        let circuit = synthetic_circuit("t", 30, 1);
        let reqs = derive_sink_requirements(&circuit, &tech);
        for idx in 0..circuit.nets.len() {
            if circuit.nets[idx].sinks.is_empty() {
                continue;
            }
            let net = net_problem(&circuit, idx, &reqs);
            assert_eq!(net.num_sinks(), circuit.nets[idx].sinks.len());
            assert!(net.sinks.iter().all(|s| s.req_ps.is_finite()));
        }
    }
}
