//! Table formatting in the paper's layout.

use std::fmt::Write as _;

use merlin_resilience::ServingTier;

use crate::circuit_harness::CircuitMetrics;
use crate::net_harness::NetRow;

/// Formats Table 1: absolute Flow I columns, Flow II/III as ratios over
/// Flow I, and the trailing averages row.
pub fn table1(rows: &[NetRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<8} {:<6} {:>5} | {:>9} {:>7} {:>8} | {:>6} {:>6} {:>7} | {:>6} {:>6} {:>7} {:>5}",
        "circuit",
        "net",
        "sinks",
        "area_kλ²",
        "delay_ns",
        "run_s",
        "a_II",
        "d_II",
        "t_II",
        "a_III",
        "d_III",
        "t_III",
        "loops"
    );
    let _ = writeln!(s, "{}", "-".repeat(110));
    let mut acc = [0.0f64; 6];
    for row in rows {
        let (a2, d2, t2) = row.ratios(&row.flow2);
        let (a3, d3, t3) = row.ratios(&row.flow3);
        acc[0] += a2;
        acc[1] += d2;
        acc[2] += t2;
        acc[3] += a3;
        acc[4] += d3;
        acc[5] += t3;
        let _ = writeln!(
            s,
            "{:<8} {:<6} {:>5} | {:>9.0} {:>7.2} {:>8.2} | {:>6.2} {:>6.2} {:>7.2} | {:>6.2} {:>6.2} {:>7.2} {:>5}",
            row.circuit,
            row.name,
            row.sinks,
            row.flow1.buffer_area as f64 / 1000.0,
            row.flow1.delay_ps / 1000.0,
            row.flow1.runtime_s,
            a2,
            d2,
            t2,
            a3,
            d3,
            t3,
            row.loops
        );
    }
    if !rows.is_empty() {
        let n = rows.len() as f64;
        let _ = writeln!(s, "{}", "-".repeat(110));
        let _ = writeln!(
            s,
            "{:<21} | {:>26} | {:>6.2} {:>6.2} {:>7.2} | {:>6.2} {:>6.2} {:>7.2}",
            "Average:",
            "",
            acc[0] / n,
            acc[1] / n,
            acc[2] / n,
            acc[3] / n,
            acc[4] / n,
            acc[5] / n
        );
        let degraded: Vec<&NetRow> = rows
            .iter()
            .filter(|r| r.tier != ServingTier::Merlin)
            .collect();
        let clipped = rows.iter().filter(|r| r.budget_hit).count();
        let extra_attempts: usize = rows.iter().map(|r| r.attempts.saturating_sub(1)).sum();
        if degraded.is_empty() && clipped == 0 && extra_attempts == 0 {
            let _ = writeln!(
                s,
                "Degradation: none ({} nets served by merlin)",
                rows.len()
            );
        } else {
            let names: Vec<String> = degraded
                .iter()
                .map(|r| format!("{}/{}={}", r.circuit, r.name, r.tier))
                .collect();
            let _ = writeln!(
                s,
                "Degradation: {}/{} nets served below merlin ({}); {} budget-clipped; \
                 {} extra attempts",
                degraded.len(),
                rows.len(),
                if names.is_empty() {
                    "-".to_owned()
                } else {
                    names.join(", ")
                },
                clipped,
                extra_attempts
            );
        }
    }
    s
}

/// A Table 2 row: one circuit through the three flows.
#[derive(Clone, Debug)]
pub struct CircuitRow {
    /// Circuit name.
    pub name: String,
    /// Flow I.
    pub flow1: CircuitMetrics,
    /// Flow II.
    pub flow2: CircuitMetrics,
    /// Flow III.
    pub flow3: CircuitMetrics,
}

/// Formats Table 2.
pub fn table2(rows: &[CircuitRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<8} | {:>9} {:>8} {:>8} | {:>6} {:>6} {:>6} | {:>6} {:>6} {:>6}",
        "circuit",
        "area_kλ²",
        "delay_ns",
        "run_s",
        "a_II",
        "d_II",
        "t_II",
        "a_III",
        "d_III",
        "t_III"
    );
    let _ = writeln!(s, "{}", "-".repeat(92));
    let mut acc = [0.0f64; 6];
    for row in rows {
        let r = |x: &CircuitMetrics| {
            (
                x.area as f64 / row.flow1.area as f64,
                x.critical_ps / row.flow1.critical_ps,
                x.runtime_s / row.flow1.runtime_s.max(1e-9),
            )
        };
        let (a2, d2, t2) = r(&row.flow2);
        let (a3, d3, t3) = r(&row.flow3);
        acc[0] += a2;
        acc[1] += d2;
        acc[2] += t2;
        acc[3] += a3;
        acc[4] += d3;
        acc[5] += t3;
        let _ = writeln!(
            s,
            "{:<8} | {:>9.0} {:>8.2} {:>8.1} | {:>6.2} {:>6.2} {:>6.2} | {:>6.2} {:>6.2} {:>6.2}",
            row.name,
            row.flow1.area as f64 / 1000.0,
            row.flow1.critical_ps / 1000.0,
            row.flow1.runtime_s,
            a2,
            d2,
            t2,
            a3,
            d3,
            t3
        );
    }
    if !rows.is_empty() {
        let n = rows.len() as f64;
        let _ = writeln!(s, "{}", "-".repeat(92));
        let _ = writeln!(
            s,
            "{:<8} | {:>27} | {:>6.2} {:>6.2} {:>6.2} | {:>6.2} {:>6.2} {:>6.2}",
            "Average:",
            "",
            acc[0] / n,
            acc[1] / n,
            acc[2] / n,
            acc[3] / n,
            acc[4] / n,
            acc[5] / n
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net_harness::Metrics;

    fn row() -> NetRow {
        NetRow {
            circuit: "C432".into(),
            name: "net1".into(),
            sinks: 16,
            flow1: Metrics {
                buffer_area: 58_000,
                delay_ps: 38_540.0,
                runtime_s: 22.0,
            },
            flow2: Metrics {
                buffer_area: 19_000,
                delay_ps: 33_500.0,
                runtime_s: 8.0,
            },
            flow3: Metrics {
                buffer_area: 16_000,
                delay_ps: 15_000.0,
                runtime_s: 550.0,
            },
            loops: 2,
            tier: ServingTier::Merlin,
            attempts: 1,
            budget_hit: false,
        }
    }

    #[test]
    fn table1_contains_all_rows_and_average() {
        let out = table1(&[row()]);
        assert!(out.contains("C432"));
        assert!(out.contains("net1"));
        assert!(out.contains("Average:"));
        // Flow I area printed in 1000λ² like the paper.
        assert!(out.contains("58"));
        assert!(out.contains("Degradation: none"));
    }

    #[test]
    fn table1_reports_degraded_and_clipped_rows() {
        let mut degraded = row();
        degraded.name = "net2".into();
        degraded.tier = ServingTier::PtreeVanGinneken;
        degraded.budget_hit = true;
        degraded.attempts = 3;
        let out = table1(&[row(), degraded]);
        assert!(out.contains("1/2 nets served below merlin"), "{out}");
        assert!(out.contains("C432/net2=ptree+vg"), "{out}");
        assert!(out.contains("1 budget-clipped"), "{out}");
        assert!(out.contains("2 extra attempts"), "{out}");
    }

    #[test]
    fn table2_formats() {
        let m = CircuitMetrics {
            area: 3_630_000,
            critical_ps: 8_180.0,
            runtime_s: 12.0,
            buffers: 100,
        };
        let out = table2(&[CircuitRow {
            name: "C1355".into(),
            flow1: m,
            flow2: m,
            flow3: m,
        }]);
        assert!(out.contains("C1355"));
        assert!(out.contains("1.00"));
    }
}
