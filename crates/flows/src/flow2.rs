//! Flow II: `PTREE` routing followed by van Ginneken buffer insertion.
//!
//! The routing is chosen for wire-delay alone; buffers are then placed
//! optimally **on that fixed tree** ([Gi90]) — the paper's Setup II. The
//! gap between this and MERLIN is exactly the value of making routing and
//! buffering decisions jointly.

use std::time::Instant;

use merlin_netlist::Net;
use merlin_order::tsp::tsp_order;
use merlin_ptree::Ptree;
use merlin_resilience::SolverError;
use merlin_tech::Technology;
use merlin_vanginneken::VanGinneken;

use crate::{FlowResult, FlowsConfig};

/// Runs Flow II on `net`.
///
/// # Panics
///
/// Panics if the net is invalid (see [`Net::validate`]).
pub fn run(net: &Net, tech: &Technology, cfg: &FlowsConfig) -> FlowResult {
    try_run(net, tech, cfg).expect("flow II solves every valid net")
}

/// Fallible [`run`]: validates the net up front and returns a typed
/// [`SolverError`] instead of panicking.
///
/// # Errors
///
/// [`SolverError::InvalidNet`] for a malformed net and
/// [`SolverError::EmptyCurve`] when routing or buffer insertion yields no
/// solution.
pub fn try_run(net: &Net, tech: &Technology, cfg: &FlowsConfig) -> Result<FlowResult, SolverError> {
    if merlin_resilience::fault::trip("flows.flow2.run") {
        return Err(SolverError::EmptyCurve {
            context: format!("injected empty result at flows.flow2.run on `{}`", net.name),
        });
    }
    net.validate()
        .map_err(|e| SolverError::invalid_net(&net.name, e))?;
    let _span = merlin_trace::span!("flows.flow2");
    let start = Instant::now();
    let order = tsp_order(net.source, &net.sink_positions());
    let cands = cfg
        .baseline_candidates
        .generate(net.source, &net.sink_positions());
    let routed = Ptree::new(net, tech, cfg.ptree)
        .solve(&order, &cands)
        .best_tree()
        .ok_or_else(|| SolverError::EmptyCurve {
            context: format!("PTREE produced no routing on `{}`", net.name),
        })?;
    let solved = VanGinneken::new(tech, cfg.vg).solve(
        &routed,
        &net.driver,
        &net.sink_loads(),
        &net.sink_reqs(),
    );
    let tree = solved.best_tree().ok_or_else(|| SolverError::EmptyCurve {
        context: format!("van Ginneken produced no solution on `{}`", net.name),
    })?;
    let eval = tree.evaluate(tech, &net.driver, &net.sink_loads(), &net.sink_reqs());
    Ok(FlowResult {
        tree,
        eval,
        runtime_s: start.elapsed().as_secs_f64(),
        loops: 0,
        budget_hit: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use merlin_netlist::bench_nets::random_net;

    #[test]
    fn flow2_produces_valid_trees() {
        let tech = Technology::synthetic_035();
        for seed in 1..=3u64 {
            let net = random_net("n", 8, seed, &tech);
            let cfg = FlowsConfig::for_net_size(8);
            let res = run(&net, &tech, &cfg);
            res.tree.validate(8, &tech).unwrap();
            assert!(res.eval.root_required_ps.is_finite());
        }
    }

    #[test]
    fn flow2_no_worse_than_bare_ptree_routing() {
        let tech = Technology::synthetic_035();
        let net = random_net("n", 10, 5, &tech);
        let cfg = FlowsConfig::for_net_size(10);
        let order = tsp_order(net.source, &net.sink_positions());
        let cands = cfg
            .baseline_candidates
            .generate(net.source, &net.sink_positions());
        let routed = Ptree::new(&net, &tech, cfg.ptree)
            .solve(&order, &cands)
            .best_tree()
            .unwrap();
        let bare = routed.evaluate(&tech, &net.driver, &net.sink_loads(), &net.sink_reqs());
        let res = run(&net, &tech, &cfg);
        assert!(res.eval.root_required_ps >= bare.root_required_ps - 0.5);
    }
}
