//! Flow II: `PTREE` routing followed by van Ginneken buffer insertion.
//!
//! The routing is chosen for wire-delay alone; buffers are then placed
//! optimally **on that fixed tree** ([Gi90]) — the paper's Setup II. The
//! gap between this and MERLIN is exactly the value of making routing and
//! buffering decisions jointly.

use std::time::Instant;

use merlin_netlist::Net;
use merlin_order::tsp::tsp_order;
use merlin_ptree::Ptree;
use merlin_tech::Technology;
use merlin_vanginneken::VanGinneken;

use crate::{FlowResult, FlowsConfig};

/// Runs Flow II on `net`.
///
/// # Panics
///
/// Panics if the net has no sinks.
pub fn run(net: &Net, tech: &Technology, cfg: &FlowsConfig) -> FlowResult {
    let start = Instant::now();
    let order = tsp_order(net.source, &net.sink_positions());
    let cands = cfg
        .baseline_candidates
        .generate(net.source, &net.sink_positions());
    let routed = Ptree::new(net, tech, cfg.ptree)
        .solve(&order, &cands)
        .best_tree()
        .expect("PTREE always routes a non-empty net");
    let solved = VanGinneken::new(tech, cfg.vg).solve(
        &routed,
        &net.driver,
        &net.sink_loads(),
        &net.sink_reqs(),
    );
    let tree = solved
        .best_tree()
        .expect("insertion preserves the unbuffered solution");
    let eval = tree.evaluate(tech, &net.driver, &net.sink_loads(), &net.sink_reqs());
    FlowResult {
        tree,
        eval,
        runtime_s: start.elapsed().as_secs_f64(),
        loops: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use merlin_netlist::bench_nets::random_net;

    #[test]
    fn flow2_produces_valid_trees() {
        let tech = Technology::synthetic_035();
        for seed in 1..=3u64 {
            let net = random_net("n", 8, seed, &tech);
            let cfg = FlowsConfig::for_net_size(8);
            let res = run(&net, &tech, &cfg);
            res.tree.validate(8, &tech).unwrap();
            assert!(res.eval.root_required_ps.is_finite());
        }
    }

    #[test]
    fn flow2_no_worse_than_bare_ptree_routing() {
        let tech = Technology::synthetic_035();
        let net = random_net("n", 10, 5, &tech);
        let cfg = FlowsConfig::for_net_size(10);
        let order = tsp_order(net.source, &net.sink_positions());
        let cands = cfg
            .baseline_candidates
            .generate(net.source, &net.sink_positions());
        let routed = Ptree::new(&net, &tech, cfg.ptree)
            .solve(&order, &cands)
            .best_tree()
            .unwrap();
        let bare = routed.evaluate(&tech, &net.driver, &net.sink_loads(), &net.sink_reqs());
        let res = run(&net, &tech, &cfg);
        assert!(res.eval.root_required_ps >= bare.root_required_ps - 0.5);
    }
}
