//! Debug-mode structural audit of flow outputs.
//!
//! Bridges the flows' [`BufferedTree`] representation to the geometric
//! auditor in `merlin-geom`: every tree edge is embedded as its canonical
//! L-shaped route and the resulting wires are checked for rectilinearity
//! and root connectivity, with every sink position as a mandatory
//! terminal. The harness calls [`debug_audit_tree`] on each flow's result,
//! so any disconnected or non-Manhattan embedding trips in debug builds
//! and under `--features invariant-checks` without taxing release runs.

use merlin_geom::{audit_routed_tree, Point, Route, RouteAuditError};
use merlin_resilience::SolverError;
use merlin_tech::{BufferedTree, NodeKind};

/// Audits a buffered tree's L-shaped embedding.
///
/// Returns the first rectilinearity or connectivity defect, if any. Edges
/// between coincident nodes (buffer chains at one point) contribute no
/// wires and are trivially connected.
pub fn audit_tree(tree: &BufferedTree) -> Result<(), RouteAuditError> {
    let mut wires: Vec<(Point, Point)> = Vec::new();
    let mut terminals: Vec<Point> = Vec::new();
    for (_, node) in tree.iter() {
        if matches!(node.kind, NodeKind::Sink(_)) {
            terminals.push(node.at);
        }
        for &ch in &node.children {
            let route = Route::l_shaped(node.at, tree.node(ch).at);
            for seg in route.segments() {
                wires.push((seg.a(), seg.b()));
            }
        }
    }
    audit_routed_tree(tree.node(tree.root()).at, &wires, &terminals)
}

/// [`audit_tree`] with the failure wrapped as a typed
/// [`SolverError::AuditFailed`] carrying `ctx` — the form the resilient
/// ladder consumes to reject a tier's output.
///
/// # Errors
///
/// [`SolverError::AuditFailed`] naming `ctx` and the geometric defect.
pub fn check_tree(tree: &BufferedTree, ctx: &str) -> Result<(), SolverError> {
    audit_tree(tree).map_err(|e| SolverError::AuditFailed {
        context: ctx.to_owned(),
        detail: e.to_string(),
    })
}

/// Debug-build / `invariant-checks` assertion wrapper around
/// [`check_tree`]. Compiles to nothing in plain release builds.
#[allow(unused_variables)]
#[inline]
pub fn debug_audit_tree(tree: &BufferedTree, ctx: &str) {
    #[cfg(any(debug_assertions, feature = "invariant-checks"))]
    if let Err(e) = check_tree(tree, ctx) {
        panic!("routed-tree invariant violated: {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use merlin_geom::Point;

    #[test]
    fn audits_hand_built_tree() {
        let mut tree = BufferedTree::new(Point::new(0, 0));
        let s = tree.add_child(tree.root(), NodeKind::Steiner, Point::new(5, 5));
        tree.add_child(s, NodeKind::Sink(0), Point::new(9, 5));
        tree.add_child(s, NodeKind::Buffer(1), Point::new(5, 5));
        assert_eq!(audit_tree(&tree), Ok(()));
        debug_audit_tree(&tree, "test");
    }

    #[test]
    fn single_node_tree_is_valid() {
        let tree = BufferedTree::new(Point::new(3, 3));
        assert_eq!(audit_tree(&tree), Ok(()));
    }
}
