//! The resilient solve driver: the concrete graceful-degradation ladder.
//!
//! [`resilient_solve`] always returns an audit-clean buffered routing tree
//! for any input net, no matter what the DP stack does — it is the entry
//! point a batch sweep should use when one degenerate net must not take
//! down the run. The ladder, strongest tier first:
//!
//! 1. **Flow III** — the full MERLIN local-neighborhood search,
//! 2. **single pass** — one budgeted `BUBBLE_CONSTRUCT` pass (no outer
//!    loop),
//! 3. **Flow II** — P-Tree routing + van Ginneken buffer insertion,
//! 4. **Flow I** — LTTREE fanout optimization + per-stage P-Tree routing,
//! 5. **direct route** — an unbuffered star from the source; infallible.
//!
//! Each tier runs inside the `merlin-resilience` panic-isolation boundary
//! with a weighted slice of the caller's [`SolveBudget`]; a tier serves
//! only if its tree passes both [`merlin_tech::BufferedTree::validate`]
//! and the geometric route audit. Invalid nets (see
//! [`merlin_netlist::Net::validate`]) skip the DP tiers entirely and get
//! the direct route, with the validation failure recorded in the
//! [`DegradationReport`].
//!
//! This module is *policy*; the generic ladder engine, budget, and error
//! types are *mechanism* and live in `merlin-resilience`. See
//! `docs/RESILIENCE.md`.

use std::time::Instant;

use merlin::{Merlin, MerlinConfig};
use merlin_netlist::Net;
use merlin_resilience::{
    run_ladder, AttemptParams, DegradationReport, ServingTier, SolveBudget, SolverError, Tier,
};
use merlin_tech::units::Cap;
use merlin_tech::{BufferedTree, Evaluation, NodeKind, Technology};

use crate::{audit, flow1, flow2, flow3, FlowResult, FlowsConfig};

/// A resilient solve's tree plus the story of how it was obtained.
#[derive(Clone, Debug)]
pub struct ResilientOutcome {
    /// The served tree and its evaluation (from whichever tier won).
    pub result: FlowResult,
    /// Which tier served and why the stronger ones did not.
    pub report: DegradationReport,
}

/// The unbuffered direct star route: one L-shaped edge from the source to
/// every sink. Infallible and audit-clean for any net, including empty
/// ones — the ladder's last resort.
pub fn direct_route(net: &Net) -> BufferedTree {
    let mut tree = BufferedTree::new(net.source);
    let root = tree.root();
    for (i, s) in net.sinks.iter().enumerate() {
        tree.add_child(root, NodeKind::Sink(i as u32), s.pos);
    }
    tree
}

/// [`direct_route`] packaged as a [`FlowResult`]. Invalid nets (including
/// zero-sink ones) get a hand-built placeholder evaluation: the timing
/// evaluator assumes a validated net (finite required times, at least one
/// sink), and the direct route must stay infallible without it.
fn direct_result(net: &Net, tech: &Technology) -> FlowResult {
    let start = Instant::now();
    let tree = direct_route(net);
    let eval = if net.validate().is_err() {
        Evaluation {
            root_required_ps: 0.0,
            root_load: Cap::ZERO,
            buffer_area: 0,
            num_buffers: 0,
            wirelength: tree.wirelength(),
            sink_delays_ps: Vec::new(),
            delay_ps: 0.0,
        }
    } else {
        tree.evaluate(tech, &net.driver, &net.sink_loads(), &net.sink_reqs())
    };
    FlowResult {
        tree,
        eval,
        runtime_s: start.elapsed().as_secs_f64(),
        loops: 0,
        budget_hit: false,
    }
}

/// One budgeted `BUBBLE_CONSTRUCT` pass: MERLIN with `max_loops = 1`. The
/// degradation step between the full search and the decoupled baselines.
fn single_pass(
    net: &Net,
    tech: &Technology,
    cfg: &FlowsConfig,
    budget: &SolveBudget,
) -> Result<FlowResult, SolverError> {
    let start = Instant::now();
    let one = MerlinConfig {
        max_loops: 1,
        // The degradation rung also coarsens the post-prune dial: curves
        // shrink at every DP step, matching its answer-fast contract.
        load_quant: cfg.merlin.load_quant.max(1) * 2,
        ..cfg.merlin
    };
    let outcome = Merlin::new(tech, one).optimize_budgeted(net, budget)?;
    let eval = outcome
        .tree
        .evaluate(tech, &net.driver, &net.sink_loads(), &net.sink_reqs());
    Ok(FlowResult {
        tree: outcome.tree,
        eval,
        runtime_s: start.elapsed().as_secs_f64(),
        loops: outcome.loops,
        budget_hit: outcome.budget_hit,
    })
}

/// Resilient solve with the size-scaled default [`FlowsConfig`].
pub fn resilient_solve(net: &Net, tech: &Technology, budget: &SolveBudget) -> ResilientOutcome {
    let cfg = FlowsConfig::for_net_size(net.num_sinks());
    resilient_solve_with(net, tech, &cfg, budget)
}

/// Resilient solve with an explicit configuration. Never panics and never
/// fails: the weakest tier is infallible. See the module docs for the
/// ladder.
pub fn resilient_solve_with(
    net: &Net,
    tech: &Technology,
    cfg: &FlowsConfig,
    budget: &SolveBudget,
) -> ResilientOutcome {
    resilient_solve_from(net, tech, cfg, budget, ServingTier::Merlin)
}

/// [`resilient_solve_with`] entering the ladder at `entry` instead of the
/// top: tiers stronger than `entry` are skipped entirely (they do not even
/// appear in the report). This is the batch supervisor's retry hook — a
/// net that panicked or stalled at flow III is re-attempted from the
/// single-pass or flow II rung rather than replayed into the same failure.
pub fn resilient_solve_from(
    net: &Net,
    tech: &Technology,
    cfg: &FlowsConfig,
    budget: &SolveBudget,
    entry: ServingTier,
) -> ResilientOutcome {
    if let Err(e) = net.validate() {
        let result = direct_result(net, tech);
        let mut report = DegradationReport::clean(ServingTier::DirectRoute, result.runtime_s);
        report.invalid_net = Some(e);
        return ResilientOutcome { result, report };
    }
    let num_sinks = net.num_sinks();
    // Budget weights: the full search gets the lion's share; the cheap
    // decoupled baselines split most of the rest.
    let mut tiers: Vec<Tier<'_, FlowResult>> = vec![
        Tier::new(ServingTier::Merlin, 0.45, |b: &SolveBudget| {
            flow3::try_run_budgeted(net, tech, cfg, b)
        }),
        Tier::new(ServingTier::SinglePass, 0.15, |b: &SolveBudget| {
            single_pass(net, tech, cfg, b)
        }),
        Tier::new(ServingTier::PtreeVanGinneken, 0.2, |_b: &SolveBudget| {
            flow2::try_run(net, tech, cfg)
        }),
        Tier::new(ServingTier::LttreePtree, 0.2, |_b: &SolveBudget| {
            flow1::try_run(net, tech, cfg)
        }),
    ];
    tiers.retain(|t| t.tier >= entry);
    let vet = |r: &FlowResult| {
        r.tree
            .validate(num_sinks, tech)
            .map_err(|e| SolverError::AuditFailed {
                context: "tree structure".to_owned(),
                detail: e.to_string(),
            })?;
        audit::check_tree(&r.tree, "routed embedding")
    };
    let (result, report) = run_ladder(tiers, vet, || direct_result(net, tech), budget);
    ResilientOutcome { result, report }
}

/// The batch supervisor's per-attempt entry point: applies an
/// [`AttemptParams`] perturbation (thinned search, lowered ladder entry,
/// intra-net DP threads) on top of `cfg` and solves. The budget scale of
/// the params is *not* applied here — the supervisor builds each attempt's
/// budget itself so the caller controls what "the per-net budget" means.
pub fn resilient_solve_attempt(
    net: &Net,
    tech: &Technology,
    cfg: &FlowsConfig,
    budget: &SolveBudget,
    params: &AttemptParams,
) -> ResilientOutcome {
    let mut cfg = if params.thin_search {
        cfg.thinned()
    } else {
        cfg.clone()
    };
    if params.threads != 0 {
        cfg.merlin.threads = params.threads;
    }
    if params.load_quant != 0 {
        cfg.merlin.load_quant = params.load_quant;
    }
    resilient_solve_from(net, tech, &cfg, budget, params.entry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use merlin_geom::Point;
    use merlin_netlist::bench_nets::random_net;
    use merlin_netlist::Sink;
    use merlin_tech::Driver;

    #[test]
    fn direct_route_is_always_audit_clean() {
        let tech = Technology::synthetic_035();
        let net = random_net("n", 9, 2, &tech);
        let tree = direct_route(&net);
        tree.validate(9, &tech).expect("star tree is well-formed");
        audit::check_tree(&tree, "direct").expect("star route is connected");
    }

    #[test]
    fn healthy_net_serves_from_the_merlin_tier() {
        let tech = Technology::synthetic_035();
        let net = random_net("n", 5, 7, &tech);
        let out = resilient_solve(&net, &tech, &SolveBudget::unlimited());
        assert_eq!(out.report.served, ServingTier::Merlin);
        assert!(out.report.attempts.is_empty());
        assert!(!out.report.budget_hit);
        assert!(out.result.loops >= 1);
    }

    #[test]
    fn invalid_net_degrades_to_direct_without_running_tiers() {
        let tech = Technology::synthetic_035();
        let net = Net::new(
            "dup",
            Point::new(0, 0),
            Driver::default(),
            vec![
                Sink::new(Point::new(100, 100), Cap::from_ff(10.0), 500.0),
                Sink::new(Point::new(100, 100), Cap::from_ff(10.0), 500.0),
            ],
        );
        let out = resilient_solve(&net, &tech, &SolveBudget::unlimited());
        assert_eq!(out.report.served, ServingTier::DirectRoute);
        assert!(out.report.invalid_net.is_some());
        assert!(out.report.attempts.is_empty());
        out.result
            .tree
            .validate(2, &tech)
            .expect("direct route is well-formed");
    }

    #[test]
    fn entry_tier_skips_stronger_rungs() {
        let tech = Technology::synthetic_035();
        let net = random_net("n", 5, 7, &tech);
        let cfg = FlowsConfig::for_net_size(5);
        let budget = SolveBudget::unlimited();
        let out = resilient_solve_from(&net, &tech, &cfg, &budget, ServingTier::PtreeVanGinneken);
        assert_eq!(out.report.served, ServingTier::PtreeVanGinneken);
        assert!(
            out.report.attempts.is_empty(),
            "skipped tiers must not appear as attempts"
        );
        let direct = resilient_solve_from(&net, &tech, &cfg, &budget, ServingTier::DirectRoute);
        assert_eq!(direct.report.served, ServingTier::DirectRoute);
    }

    #[test]
    fn perturbed_attempts_degrade_entry_and_still_serve() {
        let tech = Technology::synthetic_035();
        let net = random_net("n", 6, 11, &tech);
        let cfg = FlowsConfig::for_net_size(6);
        let policy = merlin_resilience::RetryPolicy::default();
        let budget = SolveBudget::unlimited();
        let first = resilient_solve_attempt(&net, &tech, &cfg, &budget, &policy.params(0));
        assert_eq!(first.report.served, ServingTier::Merlin);
        let retry = resilient_solve_attempt(&net, &tech, &cfg, &budget, &policy.params(1));
        assert_eq!(
            retry.report.served,
            ServingTier::SinglePass,
            "first retry enters at the single-pass rung"
        );
        retry
            .result
            .tree
            .validate(6, &tech)
            .expect("perturbed attempt still serves an audit-clean tree");
    }

    #[test]
    fn empty_net_is_served_by_an_empty_direct_route() {
        let tech = Technology::synthetic_035();
        let net = Net::new("empty", Point::new(0, 0), Driver::default(), Vec::new());
        let out = resilient_solve(&net, &tech, &SolveBudget::unlimited());
        assert_eq!(out.report.served, ServingTier::DirectRoute);
        assert_eq!(out.result.eval.wirelength, 0);
        assert_eq!(out.result.eval.buffer_area, 0);
    }
}
