//! Flow 0 (extra baseline, not in the paper's tables): wirelength-driven
//! routing — rectilinear MST, improved by iterated 1-Steiner on small nets
//! — followed by van Ginneken buffer insertion.
//!
//! This is the pre-performance-driven-routing convention the paper's §II
//! context ([CHKM96]) argues against: minimum wirelength is not minimum
//! delay. Comparing Flow 0 against Flows II/III in the benches makes the
//! gap concrete.

use std::time::Instant;

use merlin_geom::rsmt::{iterated_one_steiner, rectilinear_mst, SpanningTree};
use merlin_netlist::Net;
use merlin_resilience::SolverError;
use merlin_tech::{BufferedTree, NodeKind, Technology};
use merlin_vanginneken::VanGinneken;

use crate::{FlowResult, FlowsConfig};

/// Runs Flow 0 on `net`.
///
/// # Panics
///
/// Panics if the net is invalid (see [`Net::validate`]).
pub fn run(net: &Net, tech: &Technology, cfg: &FlowsConfig) -> FlowResult {
    try_run(net, tech, cfg).expect("flow 0 solves every valid net")
}

/// Fallible [`run`]: validates the net up front and returns a typed
/// [`SolverError`] instead of panicking.
///
/// # Errors
///
/// [`SolverError::InvalidNet`] for a malformed net and
/// [`SolverError::EmptyCurve`] when buffer insertion yields no solution.
pub fn try_run(net: &Net, tech: &Technology, cfg: &FlowsConfig) -> Result<FlowResult, SolverError> {
    if merlin_resilience::fault::trip("flows.flow0.run") {
        return Err(SolverError::EmptyCurve {
            context: format!("injected empty result at flows.flow0.run on `{}`", net.name),
        });
    }
    net.validate()
        .map_err(|e| SolverError::invalid_net(&net.name, e))?;
    let start = Instant::now();
    let tree = route_wirelength(net);
    let solved = VanGinneken::new(tech, cfg.vg).solve(
        &tree,
        &net.driver,
        &net.sink_loads(),
        &net.sink_reqs(),
    );
    let tree = solved.best_tree().ok_or_else(|| SolverError::EmptyCurve {
        context: format!("van Ginneken produced no solution on `{}`", net.name),
    })?;
    let eval = tree.evaluate(tech, &net.driver, &net.sink_loads(), &net.sink_reqs());
    Ok(FlowResult {
        tree,
        eval,
        runtime_s: start.elapsed().as_secs_f64(),
        loops: 0,
        budget_hit: false,
    })
}

/// The wirelength-driven routing tree of a net (no buffers): iterated
/// 1-Steiner for small nets, plain rectilinear MST for larger ones (the
/// 1-Steiner scan over the Hanan grid is quadratic-ish in net size).
pub fn route_wirelength(net: &Net) -> BufferedTree {
    let n = net.num_sinks();
    let mut points = Vec::with_capacity(n + 1);
    points.push(net.source);
    points.extend(net.sink_positions());
    let spanning: SpanningTree = if n <= 16 {
        iterated_one_steiner(&points, n.min(6))
    } else {
        rectilinear_mst(&points)
    };
    let children = spanning.children();
    let mut tree = BufferedTree::new(net.source);
    let mut stack = vec![(0usize, tree.root())];
    while let Some((sp, tn)) = stack.pop() {
        for &ch in &children[sp] {
            let is_sink = (1..=n).contains(&ch);
            if is_sink && !children[ch].is_empty() {
                // The spanning tree routes *through* this sink (collinear
                // chains do that); model it as a Steiner point with the
                // sink pin hanging off at zero distance.
                let via = tree.add_child(tn, NodeKind::Steiner, spanning.nodes[ch]);
                tree.add_child(via, NodeKind::Sink((ch - 1) as u32), spanning.nodes[ch]);
                stack.push((ch, via));
            } else {
                let kind = if is_sink {
                    NodeKind::Sink((ch - 1) as u32)
                } else {
                    NodeKind::Steiner
                };
                let node = tree.add_child(tn, kind, spanning.nodes[ch]);
                stack.push((ch, node));
            }
        }
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use merlin_netlist::bench_nets::random_net;

    #[test]
    fn flow0_produces_valid_trees() {
        let tech = Technology::synthetic_035();
        for n in [5usize, 24] {
            let net = random_net("w", n, 3, &tech);
            let cfg = FlowsConfig::for_net_size(n);
            let res = run(&net, &tech, &cfg);
            res.tree.validate(n, &tech).unwrap();
            assert!(res.eval.delay_ps.is_finite());
        }
    }

    #[test]
    fn wirelength_routing_is_shortest_of_the_flows() {
        // Flow 0's whole point: it minimizes wire, not delay.
        let tech = Technology::synthetic_035();
        let net = random_net("w", 10, 9, &tech);
        let cfg = FlowsConfig::for_net_size(10);
        let w0 = route_wirelength(&net).wirelength();
        let f2 = crate::flow2::run(&net, &tech, &cfg);
        assert!(
            w0 <= f2.tree.wirelength(),
            "MST/Steiner ({w0}) longer than PTREE ({})",
            f2.tree.wirelength()
        );
    }

    #[test]
    fn sink_nodes_have_no_children_after_splice() {
        // The spanning tree may route *through* a sink; the buffered-tree
        // contract forbids sink children, so this documents the constraint
        // holds for our generated instances (sinks at distinct positions
        // rarely chain, but MST chains on collinear sinks do happen).
        let tech = Technology::synthetic_035();
        let net = random_net("w", 30, 4, &tech);
        let tree = route_wirelength(&net);
        tree.validate(30, &tech)
            .expect("spliced flow0 tree keeps the sink-leaf contract");
    }
}
