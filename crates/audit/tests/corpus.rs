//! Seeded-violation corpus: every token-level rule added in the v2
//! engine has one positive fixture that must fire and one negative
//! fixture that must stay silent for that rule.
//!
//! The fixtures live under `tests/corpus/` — a directory the workspace
//! scan skips, so the seeded violations never reach the real audit —
//! and are scanned here under synthetic paths inside each rule's scope.

use merlin_audit::{
    audit_files, scan_source, Violation, RULE_ATOMIC_ORDERING, RULE_DURATION_ARITH,
    RULE_LOSSY_CAST, RULE_NO_RAW_EXIT, RULE_PANIC_IN_DROP, RULE_TRACE_NAME_REGISTRY,
    RULE_UNCHECKED_ARITH,
};

fn fires(violations: &[Violation], rule: &str) -> bool {
    violations.iter().any(|v| v.rule == rule)
}

/// Scans the positive and negative fixture of `rule` under `path` and
/// asserts the rule fires on exactly the positive one.
fn check_pair(rule: &str, path: &str, pos: &str, neg: &str) {
    let pos_hits = scan_source(path, pos);
    assert!(
        fires(&pos_hits, rule),
        "{rule}: positive fixture produced no finding at {path}; got {pos_hits:?}"
    );
    let neg_hits = scan_source(path, neg);
    assert!(
        !fires(&neg_hits, rule),
        "{rule}: negative fixture tripped the rule at {path}: {neg_hits:?}"
    );
}

#[test]
fn unchecked_arith_corpus() {
    check_pair(
        RULE_UNCHECKED_ARITH,
        "crates/tech/src/fixture.rs",
        include_str!("corpus/unchecked-arith.pos.rs"),
        include_str!("corpus/unchecked-arith.neg.rs"),
    );
}

#[test]
fn duration_arith_corpus() {
    check_pair(
        RULE_DURATION_ARITH,
        "crates/resilience/src/fixture.rs",
        include_str!("corpus/duration-arith.pos.rs"),
        include_str!("corpus/duration-arith.neg.rs"),
    );
}

#[test]
fn lossy_cast_corpus() {
    check_pair(
        RULE_LOSSY_CAST,
        "crates/core/src/fixture.rs",
        include_str!("corpus/lossy-cast.pos.rs"),
        include_str!("corpus/lossy-cast.neg.rs"),
    );
}

#[test]
fn atomic_ordering_corpus() {
    check_pair(
        RULE_ATOMIC_ORDERING,
        "crates/supervisor/src/fixture.rs",
        include_str!("corpus/atomic-ordering.pos.rs"),
        include_str!("corpus/atomic-ordering.neg.rs"),
    );
}

#[test]
fn panic_in_drop_corpus() {
    check_pair(
        RULE_PANIC_IN_DROP,
        "crates/resilience/src/fixture.rs",
        include_str!("corpus/panic-in-drop.pos.rs"),
        include_str!("corpus/panic-in-drop.neg.rs"),
    );
}

#[test]
fn no_raw_exit_corpus() {
    // Workspace-wide rule: scan the positive fixture under a non-DP path
    // too, so the corpus pins that it fires outside the hygiene crates.
    for path in ["src/bin/fixture.rs", "crates/supervisor/src/fixture.rs"] {
        check_pair(
            RULE_NO_RAW_EXIT,
            path,
            include_str!("corpus/no-raw-exit.pos.rs"),
            include_str!("corpus/no-raw-exit.neg.rs"),
        );
    }
}

#[test]
fn trace_name_registry_corpus() {
    let registry = "<!-- trace-name-registry:begin -->\n\
                    flows.fixture.registered\n\
                    <!-- trace-name-registry:end -->\n";
    let doc = Some(("docs/OBSERVABILITY.md", registry));
    let path = "crates/flows/src/fixture.rs";

    let pos = vec![(
        path.to_owned(),
        include_str!("corpus/trace-name-registry.pos.rs").to_owned(),
    )];
    let pos_hits = audit_files(&pos, doc);
    assert!(
        fires(&pos_hits, RULE_TRACE_NAME_REGISTRY),
        "unregistered call-site name must be flagged; got {pos_hits:?}"
    );

    let neg = vec![(
        path.to_owned(),
        include_str!("corpus/trace-name-registry.neg.rs").to_owned(),
    )];
    let neg_hits = audit_files(&neg, doc);
    assert!(
        !fires(&neg_hits, RULE_TRACE_NAME_REGISTRY),
        "registered name tripped the registry rule: {neg_hits:?}"
    );
}

/// `SeqCst` is a warning only inside the DP hot-path crates; the same
/// source scanned under a supervisor path stays quiet.
#[test]
fn seqcst_flagged_in_hot_path_crates_only() {
    let src = "use std::sync::atomic::{AtomicU64, Ordering};\n\
               /// Publishes the epoch.\n\
               pub fn publish(g: &AtomicU64) {\n    g.store(1, Ordering::SeqCst);\n}\n";
    assert!(fires(
        &scan_source("crates/core/src/fixture.rs", src),
        RULE_ATOMIC_ORDERING
    ));
    assert!(!fires(
        &scan_source("crates/supervisor/src/fixture.rs", src),
        RULE_ATOMIC_ORDERING
    ));
}
