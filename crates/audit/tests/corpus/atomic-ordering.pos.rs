//! Seeded violation: an atomic RMW that does not spell its `Ordering`
//! (modeling a wrapper that hides the ordering at the call site).

use std::sync::atomic::AtomicU64;

/// Bumps the shared generation counter.
pub fn bump(generation: &AtomicU64) -> u64 {
    generation.fetch_add(1)
}
