//! Negative fixture: both casts are deliberate — one saturated with
//! `.min(…)`, one a literal that provably fits its target.

/// Packs `i` into a 16-bit key, saturating at the key width.
pub fn pack(i: usize) -> u16 {
    i.min(usize::from(u16::MAX)) as u16
}

/// A constant tag whose literal fits the target exactly.
pub fn tag() -> u8 {
    255 as u8
}
