//! Seeded violation: a bare `std::process::exit` in non-test code
//! terminates without running destructors — an open `JournalWriter`
//! never fsyncs its tail and trace guards never close their spans.

/// Bails out of a batch on a config error the hard way.
pub fn bail(msg: &str) -> ! {
    eprintln!("fatal: {msg}");
    std::process::exit(2)
}
