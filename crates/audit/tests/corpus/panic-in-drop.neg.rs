//! Negative fixture: the `Drop` impl uses only fallible access
//! (`try_with`, discarded result), so it can never panic mid-unwind.

/// Guard that restores the thread-local suppression flag.
pub struct Guard {
    prev: bool,
}

impl Drop for Guard {
    fn drop(&mut self) {
        let _ = FLAG.try_with(|f| f.set(self.prev));
    }
}
