//! Seeded violation: bare `len() - 1` with no emptiness guard — the
//! PR 5 empty-buffer-library underflow class.

/// Last index of `v`; underflows the subtraction on an empty slice.
pub fn last_index(v: &[u32]) -> usize {
    v.len() - 1
}
