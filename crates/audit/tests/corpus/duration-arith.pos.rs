//! Seeded violation: uncapped `Duration::mul_f64` — the PR 5
//! `RetryPolicy::backoff` overflow-panic class.

use std::time::Duration;

/// Scales `base` by `factor` with no cap; panics for huge factors.
pub fn scale(base: Duration, factor: f64) -> Duration {
    base.mul_f64(factor)
}
