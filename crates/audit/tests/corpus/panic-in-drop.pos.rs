//! Seeded violation: a `Drop` impl that can panic — during unwind this
//! aborts the whole process instead of surfacing the original error.

/// Guard that asserts its flag was cleared before drop.
pub struct Guard {
    armed: bool,
}

impl Drop for Guard {
    fn drop(&mut self) {
        assert!(!self.armed, "guard dropped while armed");
    }
}
