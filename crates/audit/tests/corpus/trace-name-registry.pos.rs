//! Seeded violation: emits a counter whose name is missing from the
//! observability registry (metric-name drift, code side).

/// Records one fixture event under an unregistered name.
pub fn emit() {
    merlin_trace::counter("flows.fixture.unregistered", 1);
}
