//! Negative fixture: the subtraction is dominated by an `is_empty`
//! guard in the preceding window, so it must not be flagged.

/// Last index of `v`, or `None` when the slice is empty.
pub fn last_index(v: &[u32]) -> Option<usize> {
    if v.is_empty() {
        return None;
    }
    Some(v.len() - 1)
}
