//! Negative fixture: the product is capped with `.min(…)` in the same
//! statement, so the arithmetic is bounded and must not be flagged.

use std::time::Duration;

/// Scales `base` by `factor`, saturating at `cap`.
pub fn scale(base: Duration, factor: f64, cap: Duration) -> Duration {
    base.mul_f64(factor).min(cap)
}
