//! Seeded violation: an unclamped narrowing cast in a DP crate.

/// Packs `i` into a 16-bit key; silently truncates above `u16::MAX`.
pub fn pack(i: usize) -> u16 {
    i as u16
}
