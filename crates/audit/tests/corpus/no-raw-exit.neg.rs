//! Negative fixture: every sanctioned way to terminate stays silent —
//! returning an `ExitCode` from main, a deliberate `abort` (the crash
//! the supervision layer is built to survive), an allow-marked exit
//! wrapper, and an `exit` confined to test code.

use std::process::ExitCode;

/// Terminates by returning an exit code, destructors intact.
pub fn main() -> ExitCode {
    ExitCode::FAILURE
}

/// Simulates a hard fault for crash-isolation testing.
pub fn die_hard() -> ! {
    std::process::abort()
}

/// The sanctioned wrapper: the one place a raw exit is allowed.
pub fn worker_exit(code: u8) -> ! {
    // audit:allow(no-raw-exit) — this fn IS the sanctioned wrapper.
    std::process::exit(i32::from(code))
}

#[cfg(test)]
mod tests {
    #[test]
    fn exiting_a_forked_test_child_is_fine() {
        std::process::exit(0);
    }
}
