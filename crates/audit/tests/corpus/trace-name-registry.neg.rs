//! Negative fixture: the emitted counter name is present in the
//! observability registry, so neither drift direction fires.

/// Records one fixture event under a registered name.
pub fn emit() {
    merlin_trace::counter("flows.fixture.registered", 1);
}
