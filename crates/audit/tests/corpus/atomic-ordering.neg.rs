//! Negative fixture: every atomic access spells an explicit
//! `Ordering`, so nothing is flagged outside the hot-path crates.

use std::sync::atomic::{AtomicU64, Ordering};

/// Bumps the shared generation counter with a relaxed RMW.
pub fn bump(generation: &AtomicU64) -> u64 {
    generation.fetch_add(1, Ordering::Relaxed)
}
