//! The rule pack: legacy line-pattern hygiene rules (ported onto the
//! lexer's sanitized view) and the token-window semantic rules targeting
//! the overflow/concurrency bug classes this repo has actually shipped.

use std::collections::HashSet;

use crate::engine::{Severity, Violation};
use crate::lexer::{TokKind, Token};

/// Rule name: `.unwrap()` in DP-crate code (tests included).
pub const RULE_NO_UNWRAP: &str = "no-unwrap";
/// Rule name: `.expect("")` with an empty message.
pub const RULE_EMPTY_EXPECT: &str = "empty-expect";
/// Rule name: `panic!` outside `#[cfg(test)]`.
pub const RULE_PANIC: &str = "panic";
/// Rule name: raw `partial_cmp` / `total_cmp` instead of the units helpers.
pub const RULE_FLOAT_CMP: &str = "float-cmp";
/// Rule name: `==` against a float literal outside tests.
pub const RULE_FLOAT_EQ: &str = "float-eq";
/// Rule name: `CurvePoint` pushes with no reachable `prune()` in the same
/// function.
pub const RULE_PUSH_WITHOUT_PRUNE: &str = "push-without-prune";
/// Rule name: undocumented non-test `pub fn`.
pub const RULE_DOC_PUB_FN: &str = "doc-pub-fn";
/// Rule name: `catch_unwind` outside `crates/resilience/` and test code.
pub const RULE_CATCH_UNWIND: &str = "catch-unwind";
/// Rule name: `std::rc::Rc` inside the thread-sharded DP crates.
pub const RULE_NO_RC_IN_DP: &str = "no-rc-in-dp";
/// Rule name: unguarded `len()`/count subtraction that can underflow.
pub const RULE_UNCHECKED_ARITH: &str = "unchecked-arith";
/// Rule name: unclamped `Duration` multiplication/addition in retry and
/// backoff paths.
pub const RULE_DURATION_ARITH: &str = "duration-arith";
/// Rule name: `as` cast that can truncate (int narrowing, float→int).
pub const RULE_LOSSY_CAST: &str = "lossy-cast";
/// Rule name: atomic access without an explicit `Ordering`, or `SeqCst`
/// in the DP hot path.
pub const RULE_ATOMIC_ORDERING: &str = "atomic-ordering";
/// Rule name: panicking call inside an `impl Drop`.
pub const RULE_PANIC_IN_DROP: &str = "panic-in-drop";
/// Rule name: trace name used in code but missing from the
/// `docs/OBSERVABILITY.md` registry, or vice versa.
pub const RULE_TRACE_NAME_REGISTRY: &str = "trace-name-registry";
/// Rule name: bare `std::process::exit` outside the sanctioned worker
/// exit wrapper.
pub const RULE_NO_RAW_EXIT: &str = "no-raw-exit";
/// Rule name: an `audit:allow` marker that suppresses nothing.
pub const RULE_STALE_ALLOW: &str = "stale-allow";

/// Static metadata for one rule, feeding the SARIF `rules` array and the
/// docs catalog.
#[derive(Clone, Copy, Debug)]
pub struct RuleInfo {
    /// Rule name.
    pub name: &'static str,
    /// Default severity of the rule's findings.
    pub severity: Severity,
    /// One-line description.
    pub summary: &'static str,
}

/// All rules, in report order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: RULE_NO_UNWRAP,
        severity: Severity::Error,
        summary: "no .unwrap() in DP-crate code; use .expect(\"<invariant>\") or control flow",
    },
    RuleInfo {
        name: RULE_EMPTY_EXPECT,
        severity: Severity::Error,
        summary: ".expect(\"\") explains nothing",
    },
    RuleInfo {
        name: RULE_PANIC,
        severity: Severity::Error,
        summary: "no panic!/todo!/unimplemented! outside #[cfg(test)]",
    },
    RuleInfo {
        name: RULE_FLOAT_CMP,
        severity: Severity::Error,
        summary: "raw partial_cmp/total_cmp on delays; use merlin_tech::units helpers",
    },
    RuleInfo {
        name: RULE_FLOAT_EQ,
        severity: Severity::Error,
        summary: "== against a float literal outside tests",
    },
    RuleInfo {
        name: RULE_PUSH_WITHOUT_PRUNE,
        severity: Severity::Error,
        summary: "CurvePoint pushes with no reachable prune() in the same function",
    },
    RuleInfo {
        name: RULE_DOC_PUB_FN,
        severity: Severity::Warning,
        summary: "undocumented non-test pub fn",
    },
    RuleInfo {
        name: RULE_CATCH_UNWIND,
        severity: Severity::Error,
        summary: "catch_unwind outside crates/resilience/ and test code",
    },
    RuleInfo {
        name: RULE_NO_RC_IN_DP,
        severity: Severity::Error,
        summary: "std::rc::Rc is not Send; the sharded DP crates must use Arc",
    },
    RuleInfo {
        name: RULE_UNCHECKED_ARITH,
        severity: Severity::Error,
        summary: "bare subtraction on len()/count/index expressions without a \
                  saturating_/checked_ call or emptiness guard",
    },
    RuleInfo {
        name: RULE_DURATION_ARITH,
        severity: Severity::Error,
        summary: "Duration multiplication/addition without a min()/clamp() cap \
                  (Duration::mul_f64 panics on overflow)",
    },
    RuleInfo {
        name: RULE_LOSSY_CAST,
        severity: Severity::Warning,
        summary: "as cast that can truncate: int narrowing or float→int",
    },
    RuleInfo {
        name: RULE_ATOMIC_ORDERING,
        severity: Severity::Error,
        summary: "atomic load/store/fetch_* must name an explicit Ordering; \
                  SeqCst in the DP hot path is flagged",
    },
    RuleInfo {
        name: RULE_PANIC_IN_DROP,
        severity: Severity::Error,
        summary: "no panicking call inside impl Drop (unwrap/expect/assert!/ \
                  panic!/RefCell borrow/LocalKey::with)",
    },
    RuleInfo {
        name: RULE_TRACE_NAME_REGISTRY,
        severity: Severity::Error,
        summary: "every merlin_trace span/counter/histogram name must appear in \
                  the docs/OBSERVABILITY.md registry and vice versa",
    },
    RuleInfo {
        name: RULE_NO_RAW_EXIT,
        severity: Severity::Error,
        summary: "std::process::exit skips destructors (journal flushes, trace \
                  guards); return an ExitCode or go through the sanctioned \
                  worker_exit wrapper",
    },
    RuleInfo {
        name: RULE_STALE_ALLOW,
        severity: Severity::Warning,
        summary: "an audit:allow marker that suppresses nothing is itself a finding",
    },
];

/// All rule names, in report order.
pub const ALL_RULES: &[&str] = &[
    RULE_NO_UNWRAP,
    RULE_EMPTY_EXPECT,
    RULE_PANIC,
    RULE_FLOAT_CMP,
    RULE_FLOAT_EQ,
    RULE_PUSH_WITHOUT_PRUNE,
    RULE_DOC_PUB_FN,
    RULE_CATCH_UNWIND,
    RULE_NO_RC_IN_DP,
    RULE_UNCHECKED_ARITH,
    RULE_DURATION_ARITH,
    RULE_LOSSY_CAST,
    RULE_ATOMIC_ORDERING,
    RULE_PANIC_IN_DROP,
    RULE_TRACE_NAME_REGISTRY,
    RULE_NO_RAW_EXIT,
    RULE_STALE_ALLOW,
];

/// Looks up a rule's metadata.
pub fn rule_info(name: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.name == name)
}

/// Workspace-relative path prefixes of the crates under full DP-hygiene
/// rules. `crates/trace/` is included because its RAII guards run `Drop`
/// code inside every instrumented hot loop; `crates/audit/` audits itself
/// under the same bar.
pub const DP_CRATE_PREFIXES: &[&str] = &[
    "crates/core/",
    "crates/curves/",
    "crates/ptree/",
    "crates/lttree/",
    "crates/vanginneken/",
    "crates/trace/",
    "crates/audit/",
];

/// Workspace-relative prefix of the one crate allowed to `catch_unwind`.
pub const RESILIENCE_PREFIX: &str = "crates/resilience/";

/// Crates whose data structures cross the parallel DP's worker-thread
/// boundary, where `Rc` is forbidden.
pub const RC_FORBIDDEN_PREFIXES: &[&str] = &["crates/core/", "crates/curves/"];

/// Crates whose arithmetic feeds the DP's index/length math; the
/// `unchecked-arith` rule applies here (the buffer-library container in
/// `crates/tech/` is included — PR 5's `len() - 1` underflow lived on the
/// core/tech seam).
pub const UNCHECKED_ARITH_PREFIXES: &[&str] = &[
    "crates/core/",
    "crates/curves/",
    "crates/ptree/",
    "crates/lttree/",
    "crates/vanginneken/",
    "crates/trace/",
    "crates/audit/",
    "crates/tech/",
];

/// Retry/backoff crates where the `duration-arith` rule applies.
pub const DURATION_ARITH_PREFIXES: &[&str] = &["crates/resilience/", "crates/supervisor/"];

/// Hot-path crates where `Ordering::SeqCst` is flagged (a fence on every
/// DP iteration) and where `lossy-cast`'s stricter posture matters most.
pub const HOT_PATH_PREFIXES: &[&str] = &["crates/core/", "crates/curves/"];

/// Crates excluded from trace-name collection: the collector itself and
/// the bench harness use synthetic names, and the auditor's own fixtures
/// would self-trip.
pub const TRACE_NAME_EXEMPT_PREFIXES: &[&str] =
    &["crates/trace/", "crates/bench/", "crates/audit/"];

/// Whether `path` (workspace-relative, forward slashes) belongs to a DP
/// hot-path crate.
pub fn is_dp_crate_path(path: &str) -> bool {
    DP_CRATE_PREFIXES.iter().any(|p| path.starts_with(p))
}

fn has_prefix(path: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| path.starts_with(p))
}

/// A non-trivia token projected for rule matching: kind, lexeme, line.
#[derive(Clone, Copy, Debug)]
pub(crate) struct CTok<'a> {
    pub kind: TokKind,
    pub text: &'a str,
    pub line: usize,
}

/// Projects the lossless token stream onto code tokens only.
pub(crate) fn code_tokens<'a>(src: &'a str, tokens: &[Token]) -> Vec<CTok<'a>> {
    tokens
        .iter()
        .filter(|t| !t.kind.is_trivia())
        .map(|t| CTok {
            kind: t.kind,
            text: t.text(src),
            line: t.line,
        })
        .collect()
}

fn is_punct(t: Option<&CTok<'_>>, c: &str) -> bool {
    t.is_some_and(|t| t.kind == TokKind::Punct && t.text == c)
}

fn is_ident(t: Option<&CTok<'_>>, name: &str) -> bool {
    t.is_some_and(|t| t.kind == TokKind::Ident && t.text == name)
}

fn ident_in(t: Option<&CTok<'_>>, names: &[&str]) -> bool {
    t.is_some_and(|t| t.kind == TokKind::Ident && names.contains(&t.text))
}

/// Statement window around token `i`: back to just past the nearest
/// `;`/`{`/`}`, forward to the nearest `;`/`{`/`}` (exclusive), both
/// bounded so a pathological file stays linear.
fn stmt_bounds(toks: &[CTok<'_>], i: usize) -> (usize, usize) {
    const LIMIT: usize = 160;
    let mut lo = i;
    while lo > 0 && i - lo < LIMIT {
        let t = &toks[lo - 1];
        if t.kind == TokKind::Punct && matches!(t.text, ";" | "{" | "}") {
            break;
        }
        lo -= 1;
    }
    let mut hi = i;
    while hi + 1 < toks.len() && hi - i < LIMIT {
        let t = &toks[hi + 1];
        if t.kind == TokKind::Punct && matches!(t.text, ";" | "{" | "}") {
            break;
        }
        hi += 1;
    }
    (lo, hi)
}

fn window_has_ident(toks: &[CTok<'_>], lo: usize, hi: usize, names: &[&str]) -> bool {
    toks.iter()
        .take(hi.saturating_add(1))
        .skip(lo)
        .any(|t| t.kind == TokKind::Ident && names.contains(&t.text))
}

/// Index of the matching `)` for the `(` at `open`, or `None`.
fn matching_paren(toks: &[CTok<'_>], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            match t.text {
                "(" => depth += 1,
                ")" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return Some(j);
                    }
                }
                _ => {}
            }
        }
    }
    None
}

fn line_in_test(in_test: &[bool], line: usize) -> bool {
    in_test
        .get(line.saturating_sub(1))
        .copied()
        .unwrap_or(false)
}

fn finding(
    rule: &'static str,
    path: &str,
    raw_lines: &[&str],
    line: usize,
    severity: Severity,
) -> Violation {
    Violation {
        rule,
        path: path.to_owned(),
        line,
        snippet: raw_lines
            .get(line.saturating_sub(1))
            .map(|l| l.trim().to_owned())
            .unwrap_or_default(),
        severity,
        fingerprint: String::new(),
    }
}

// ---------------------------------------------------------------------------
// Legacy line rules (ported from the v1 per-line state machine, now fed by
// the lexer's sanitized view).
// ---------------------------------------------------------------------------

/// Whether the sanitized line mentions `std::rc` or the `Rc` type as a
/// standalone token.
fn mentions_rc(code: &str) -> bool {
    if code.contains("std::rc") {
        return true;
    }
    let bytes = code.as_bytes();
    for (i, _) in code.match_indices("Rc") {
        let before_ok = i == 0 || {
            let c = bytes[i - 1] as char;
            !c.is_alphanumeric() && c != '_'
        };
        let after_ok = match bytes.get(i + 2) {
            Some(&b) => {
                let c = b as char;
                !c.is_alphanumeric() && c != '_'
            }
            None => true,
        };
        if before_ok && after_ok {
            return true;
        }
    }
    false
}

/// Whether `code` contains `==` or `!=` adjacent to a float literal.
fn has_float_literal_eq(code: &str) -> bool {
    let bytes = code.as_bytes();
    for (i, w) in bytes.windows(2).enumerate() {
        if (w == b"==" || w == b"!=")
            && bytes.get(i.wrapping_sub(1)) != Some(&b'=')
            && bytes.get(i + 2) != Some(&b'=')
        {
            let left = code[..i].trim_end();
            let right = code[i + 2..].trim_start();
            if ends_with_float_literal(left) || starts_with_float_literal(right) {
                return true;
            }
        }
    }
    false
}

fn starts_with_float_literal(s: &str) -> bool {
    let s = s.strip_prefix('-').unwrap_or(s);
    let mut saw_digit = false;
    for c in s.chars() {
        if c.is_ascii_digit() {
            saw_digit = true;
        } else if c == '.' && saw_digit {
            return true;
        } else if c == '_' && saw_digit {
            continue;
        } else {
            return false;
        }
    }
    false
}

fn ends_with_float_literal(s: &str) -> bool {
    let mut saw_digit = false;
    for c in s.chars().rev() {
        if c.is_ascii_digit() {
            saw_digit = true;
        } else if c == '.' && saw_digit {
            return true;
        } else if c == '_' && saw_digit {
            continue;
        } else {
            return false;
        }
    }
    false
}

/// Whether the sanitized line introduces a function definition.
fn is_fn_def(code: &str) -> bool {
    let t = code.trim_start();
    for prefix in ["fn ", "pub fn ", "async fn ", "const fn ", "unsafe fn "] {
        if t.starts_with(prefix) {
            return true;
        }
    }
    if let Some(pos) = code.find("fn ") {
        let before = code[..pos].trim();
        if before.is_empty() {
            return true;
        }
        let ok = before.split_whitespace().all(|w| {
            w == "pub"
                || w.starts_with("pub(")
                || w == "const"
                || w == "async"
                || w == "unsafe"
                || w.starts_with("extern")
        });
        return ok && (code[pos + 3..].contains('(') || code[pos + 3..].is_empty());
    }
    false
}

/// Whether the sanitized line declares a documented-API candidate.
fn is_pub_fn_def(code: &str) -> bool {
    let t = code.trim_start();
    if !t.starts_with("pub ") {
        return false;
    }
    let mut r = t[4..].trim_start();
    loop {
        if let Some(x) = r.strip_prefix("const ") {
            r = x;
        } else if let Some(x) = r.strip_prefix("async ") {
            r = x;
        } else if let Some(x) = r.strip_prefix("unsafe ") {
            r = x;
        } else {
            break;
        }
    }
    r.starts_with("fn ")
}

struct FnFrame {
    depth: usize,
    push_lines: Vec<usize>,
    has_prune: bool,
}

#[allow(clippy::too_many_arguments)]
fn track_braces(
    code: &str,
    depth: &mut usize,
    test_stack: &mut Vec<usize>,
    pending_test_attr: &mut bool,
    pending_fn: &mut bool,
    fn_stack: &mut Vec<FnFrame>,
    resolved_pushes: &mut HashSet<usize>,
) {
    for c in code.chars() {
        match c {
            '{' => {
                if *pending_test_attr {
                    test_stack.push(*depth);
                    *pending_test_attr = false;
                }
                if *pending_fn {
                    fn_stack.push(FnFrame {
                        depth: *depth,
                        push_lines: Vec::new(),
                        has_prune: false,
                    });
                    *pending_fn = false;
                }
                *depth += 1;
            }
            '}' => {
                *depth = depth.saturating_sub(1);
                if test_stack.last() == Some(depth) {
                    test_stack.pop();
                }
                while fn_stack.last().map(|f| f.depth) == Some(*depth) {
                    let frame = fn_stack.pop().expect("frame checked above");
                    if frame.has_prune {
                        resolved_pushes.extend(frame.push_lines);
                    }
                }
            }
            ';' => {
                *pending_fn = false;
            }
            _ => {}
        }
    }
}

/// Runs the legacy line-pattern rules over the sanitized view, and returns
/// `(raw findings, per-line in-test flags)`. Findings are *unfiltered*:
/// allow-marker suppression happens centrally in the engine so stale
/// markers can be detected.
pub(crate) fn legacy_line_rules(
    path: &str,
    raw_lines: &[&str],
    code_lines: &[String],
) -> (Vec<Violation>, Vec<bool>) {
    let full = is_dp_crate_path(path);
    let catch_rule_applies = !path.starts_with(RESILIENCE_PREFIX);
    let rc_rule_applies = has_prefix(path, RC_FORBIDDEN_PREFIXES);
    let whole_file_is_test = path.contains("/tests/") || path.contains("/benches/");

    let mut violations = Vec::new();
    let mut in_test_flags = vec![whole_file_is_test; raw_lines.len()];
    let mut depth: usize = 0;
    let mut test_stack: Vec<usize> = Vec::new();
    let mut pending_test_attr = false;
    let mut pending_fn = false;
    let mut fn_stack: Vec<FnFrame> = Vec::new();
    let mut resolved_pushes: HashSet<usize> = HashSet::new();
    let mut all_pushes: Vec<(usize, bool)> = Vec::new();

    for (idx, code) in code_lines.iter().enumerate() {
        let in_test = whole_file_is_test || !test_stack.is_empty();
        in_test_flags[idx] = in_test;

        if code.contains("#[cfg(test)]") || code.contains("cfg(all(test") {
            pending_test_attr = true;
        }
        if is_fn_def(code) {
            pending_fn = true;
        }

        if catch_rule_applies && !in_test && code.contains("catch_unwind") {
            violations.push(finding(
                RULE_CATCH_UNWIND,
                path,
                raw_lines,
                idx + 1,
                Severity::Error,
            ));
        }
        if rc_rule_applies && mentions_rc(code) {
            violations.push(finding(
                RULE_NO_RC_IN_DP,
                path,
                raw_lines,
                idx + 1,
                Severity::Error,
            ));
        }

        if !full {
            track_braces(
                code,
                &mut depth,
                &mut test_stack,
                &mut pending_test_attr,
                &mut pending_fn,
                &mut fn_stack,
                &mut resolved_pushes,
            );
            continue;
        }

        if code.contains(".unwrap()") {
            violations.push(finding(
                RULE_NO_UNWRAP,
                path,
                raw_lines,
                idx + 1,
                Severity::Error,
            ));
        }
        if code.contains(".expect(") && raw_lines[idx].contains(".expect(\"\")") {
            violations.push(finding(
                RULE_EMPTY_EXPECT,
                path,
                raw_lines,
                idx + 1,
                Severity::Error,
            ));
        }
        if !in_test
            && (code.contains("panic!")
                || code.contains("unimplemented!")
                || code.contains("todo!("))
        {
            violations.push(finding(
                RULE_PANIC,
                path,
                raw_lines,
                idx + 1,
                Severity::Error,
            ));
        }
        if code.contains(".partial_cmp(") || code.contains(".total_cmp(") {
            violations.push(finding(
                RULE_FLOAT_CMP,
                path,
                raw_lines,
                idx + 1,
                Severity::Error,
            ));
        }
        if !in_test && has_float_literal_eq(code) {
            violations.push(finding(
                RULE_FLOAT_EQ,
                path,
                raw_lines,
                idx + 1,
                Severity::Error,
            ));
        }
        if code.contains(".push(CurvePoint") {
            for frame in &mut fn_stack {
                frame.push_lines.push(idx);
            }
            all_pushes.push((idx, in_test));
        }
        if code.contains("prune(") {
            for frame in &mut fn_stack {
                frame.has_prune = true;
            }
        }
        if !in_test && is_pub_fn_def(code) {
            let mut j = idx;
            let mut documented = false;
            while j > 0 {
                j -= 1;
                let prev = raw_lines[j].trim();
                if prev.is_empty()
                    || prev.starts_with("#[")
                    || prev.ends_with(")]")
                    || prev.ends_with(']') && prev.contains("#[")
                {
                    continue;
                }
                documented =
                    prev.starts_with("///") || prev.starts_with("//!") || prev.ends_with("*/");
                break;
            }
            if !documented {
                violations.push(finding(
                    RULE_DOC_PUB_FN,
                    path,
                    raw_lines,
                    idx + 1,
                    Severity::Warning,
                ));
            }
        }

        track_braces(
            code,
            &mut depth,
            &mut test_stack,
            &mut pending_test_attr,
            &mut pending_fn,
            &mut fn_stack,
            &mut resolved_pushes,
        );
    }
    for frame in fn_stack {
        if frame.has_prune {
            resolved_pushes.extend(frame.push_lines);
        }
    }
    for (idx, in_test) in all_pushes {
        if !in_test && !resolved_pushes.contains(&idx) {
            violations.push(finding(
                RULE_PUSH_WITHOUT_PRUNE,
                path,
                raw_lines,
                idx + 1,
                Severity::Error,
            ));
        }
    }
    (violations, in_test_flags)
}

// ---------------------------------------------------------------------------
// Token-window semantic rules.
// ---------------------------------------------------------------------------

/// Idents whose presence in the statement window marks a subtraction as
/// guarded (the arithmetic is explicit about the empty case).
const SUB_GUARDS: &[&str] = &[
    "saturating_sub",
    "checked_sub",
    "wrapping_sub",
    "saturating_add",
    "checked_add",
    "max",
];

/// How many lines above a `len() - …` site an emptiness guard
/// (`is_empty`, `len() >`, `len() !=` …) still counts as covering it.
const GUARD_LOOKBACK_LINES: usize = 14;

/// `unchecked-arith`: bare subtraction on `len()`/`count()` calls or
/// count/index-named locals, with no saturating/checked call in the
/// statement and no emptiness guard in the preceding window — the
/// PR 5 `len() - 1`-on-empty-library underflow class.
pub(crate) fn rule_unchecked_arith(
    path: &str,
    raw_lines: &[&str],
    toks: &[CTok<'_>],
    in_test: &[bool],
    out: &mut Vec<Violation>,
) {
    if !has_prefix(path, UNCHECKED_ARITH_PREFIXES) {
        return;
    }
    let guarded_above = |line: usize, ident: Option<&str>| -> bool {
        let lo = line.saturating_sub(GUARD_LOOKBACK_LINES);
        for (j, t) in toks.iter().enumerate() {
            if t.line < lo || t.line >= line {
                continue;
            }
            if t.kind == TokKind::Ident && t.text == "is_empty" {
                return true;
            }
            // `len() >`, `len() >=`, `len() !=`, `len() <` comparisons.
            if t.kind == TokKind::Ident
                && (t.text == "len" || t.text == "count")
                && is_punct(toks.get(j + 1), "(")
                && is_punct(toks.get(j + 2), ")")
                && toks.get(j + 3).is_some_and(|n| {
                    n.kind == TokKind::Punct && matches!(n.text, ">" | "<" | "!" | "=")
                })
            {
                return true;
            }
            // A comparison on the subtracted ident itself (`if idx == 0`,
            // `if idx > 0`, `idx != 0` …) dominates the subtraction.
            if let Some(name) = ident {
                if t.kind == TokKind::Ident
                    && t.text == name
                    && toks.get(j + 1).is_some_and(|n| {
                        n.kind == TokKind::Punct && matches!(n.text, ">" | "<" | "!" | "=")
                    })
                {
                    return true;
                }
            }
        }
        false
    };
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        let mut hit_line = None;
        let mut hit_ident: Option<&str> = None;
        // `.len() - …` / `.count() - …` (excluding `->` arrows).
        if t.kind == TokKind::Punct
            && t.text == "."
            && ident_in(toks.get(i + 1), &["len", "count"])
            && is_punct(toks.get(i + 2), "(")
            && is_punct(toks.get(i + 3), ")")
            && is_punct(toks.get(i + 4), "-")
            && !is_punct(toks.get(i + 5), ">")
            && !is_punct(toks.get(i + 5), "=")
        {
            hit_line = Some(toks[i + 1].line);
        }
        // `<count-ish ident> - 1`.
        if hit_line.is_none()
            && t.kind == TokKind::Ident
            && (t.text.ends_with("count")
                || t.text.ends_with("idx")
                || t.text.ends_with("index")
                || t.text == "n_sinks")
            && is_punct(toks.get(i + 1), "-")
            && toks
                .get(i + 2)
                .is_some_and(|n| n.kind == TokKind::Int && n.text == "1")
        {
            hit_line = Some(t.line);
            hit_ident = Some(t.text);
        }
        if let Some(line) = hit_line {
            if !line_in_test(in_test, line) {
                let (lo, hi) = stmt_bounds(toks, i);
                if !window_has_ident(toks, lo, hi, SUB_GUARDS) && !guarded_above(line, hit_ident) {
                    out.push(finding(
                        RULE_UNCHECKED_ARITH,
                        path,
                        raw_lines,
                        line,
                        Severity::Error,
                    ));
                }
            }
        }
        i += 1;
    }
}

/// Idents that mark Duration arithmetic as capped.
const DURATION_GUARDS: &[&str] = &[
    "min",
    "clamp",
    "checked_mul",
    "saturating_mul",
    "checked_add",
    "saturating_add",
];

/// `duration-arith`: `Duration::mul_f64`-family calls, or arithmetic
/// directly on a `Duration::from_*` constructor, with no cap in the
/// statement — the PR 5 `RetryPolicy::backoff` overflow-panic class.
pub(crate) fn rule_duration_arith(
    path: &str,
    raw_lines: &[&str],
    toks: &[CTok<'_>],
    in_test: &[bool],
    out: &mut Vec<Violation>,
) {
    if !has_prefix(path, DURATION_ARITH_PREFIXES) {
        return;
    }
    for i in 0..toks.len() {
        let t = &toks[i];
        let mut hit_line = None;
        // `.mul_f64(` / `.mul_f32(`.
        if t.kind == TokKind::Punct
            && t.text == "."
            && ident_in(toks.get(i + 1), &["mul_f64", "mul_f32"])
            && is_punct(toks.get(i + 2), "(")
        {
            hit_line = Some(toks[i + 1].line);
        }
        // `Duration::from_*(…) *` / `… +`.
        if hit_line.is_none()
            && t.kind == TokKind::Ident
            && t.text == "Duration"
            && is_punct(toks.get(i + 1), ":")
            && is_punct(toks.get(i + 2), ":")
            && toks
                .get(i + 3)
                .is_some_and(|n| n.kind == TokKind::Ident && n.text.starts_with("from_"))
            && is_punct(toks.get(i + 4), "(")
        {
            if let Some(close) = matching_paren(toks, i + 4) {
                if toks
                    .get(close + 1)
                    .is_some_and(|n| n.kind == TokKind::Punct && matches!(n.text, "*" | "+"))
                {
                    hit_line = Some(t.line);
                }
            }
        }
        if let Some(line) = hit_line {
            if !line_in_test(in_test, line) {
                let (lo, hi) = stmt_bounds(toks, i);
                if !window_has_ident(toks, lo, hi, DURATION_GUARDS) {
                    out.push(finding(
                        RULE_DURATION_ARITH,
                        path,
                        raw_lines,
                        line,
                        Severity::Error,
                    ));
                }
            }
        }
    }
}

const NARROW_INT_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];
const WIDE_INT_TARGETS: &[&str] = &["u64", "i64", "u128", "i128", "usize", "isize"];
/// Idents that mark a cast as deliberately rounded/clamped/saturated.
const CAST_HANDLED: &[&str] = &["round", "floor", "ceil", "trunc", "clamp", "min"];

/// Maximum value representable by a narrow target, for the
/// literal-source exemption (`255 as u8` is exact).
fn narrow_max(target: &str) -> Option<u128> {
    Some(match target {
        "u8" => u8::MAX as u128,
        "u16" => u16::MAX as u128,
        "u32" => u32::MAX as u128,
        "i8" => i8::MAX as u128,
        "i16" => i16::MAX as u128,
        "i32" => i32::MAX as u128,
        _ => return None,
    })
}

fn int_literal_value(text: &str) -> Option<u128> {
    let cleaned: String = text.chars().filter(|&c| c != '_').collect();
    let (digits, radix) = if let Some(x) = cleaned.strip_prefix("0x") {
        (x, 16)
    } else if let Some(o) = cleaned.strip_prefix("0o") {
        (o, 8)
    } else if let Some(b) = cleaned.strip_prefix("0b") {
        (b, 2)
    } else {
        (cleaned.as_str(), 10)
    };
    let digits: String = digits
        .chars()
        .take_while(|c| c.is_ascii_hexdigit())
        .collect();
    u128::from_str_radix(&digits, radix).ok()
}

/// Walks back from the `as` keyword over one postfix expression
/// (`recv.a().b().c`), returning the start index of the expression.
fn cast_source_start(toks: &[CTok<'_>], as_idx: usize) -> usize {
    const LIMIT: usize = 48;
    let mut k = as_idx; // exclusive upper bound walks down
    loop {
        if k == 0 || as_idx - k >= LIMIT {
            return k;
        }
        let prev = &toks[k - 1];
        match prev.kind {
            TokKind::Punct if prev.text == ")" => {
                // Match backward to the opening paren.
                let mut depth = 0isize;
                let mut j = k - 1;
                loop {
                    let t = &toks[j];
                    if t.kind == TokKind::Punct && t.text == ")" {
                        depth += 1;
                    } else if t.kind == TokKind::Punct && t.text == "(" {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    if j == 0 || k - 1 - j >= LIMIT {
                        break;
                    }
                    j -= 1;
                }
                k = j;
                // Consume the call's callee ident (`.min(`, `floor(`) so
                // handled-cast detection sees it.
                if k > 0 && toks[k - 1].kind == TokKind::Ident {
                    k -= 1;
                }
            }
            TokKind::Ident | TokKind::Int | TokKind::Float => {
                k -= 1;
            }
            TokKind::Punct if prev.text == "." => {
                k -= 1;
                continue;
            }
            _ => return k,
        }
        // Continue only through a method/field chain.
        if k > 0 && toks[k - 1].kind == TokKind::Punct && toks[k - 1].text == "." {
            continue;
        }
        return k;
    }
}

/// `lossy-cast`: `as` casts that can truncate — any cast to a narrow int
/// (unless the source is a literal that provably fits), and float→int
/// casts without an explicit `round`/`floor`/`ceil`/`trunc`/`clamp` in
/// the source expression.
pub(crate) fn rule_lossy_cast(
    path: &str,
    raw_lines: &[&str],
    toks: &[CTok<'_>],
    in_test: &[bool],
    out: &mut Vec<Violation>,
) {
    if !is_dp_crate_path(path) {
        return;
    }
    for i in 0..toks.len() {
        if !(toks[i].kind == TokKind::Ident && toks[i].text == "as") {
            continue;
        }
        let Some(target) = toks.get(i + 1) else {
            continue;
        };
        if target.kind != TokKind::Ident {
            continue;
        }
        let narrow = NARROW_INT_TARGETS.contains(&target.text);
        if !narrow && !WIDE_INT_TARGETS.contains(&target.text) {
            continue;
        }
        let line = toks[i].line;
        if line_in_test(in_test, line) {
            continue;
        }
        let start = cast_source_start(toks, i);
        let src_toks = &toks[start..i];
        let has_float = src_toks.iter().any(|t| {
            t.kind == TokKind::Float
                || (t.kind == TokKind::Ident && matches!(t.text, "f64" | "f32"))
        });
        let handled = src_toks
            .iter()
            .any(|t| t.kind == TokKind::Ident && CAST_HANDLED.contains(&t.text));
        let fits = narrow
            && src_toks.len() == 1
            && src_toks[0].kind == TokKind::Int
            && match (int_literal_value(src_toks[0].text), narrow_max(target.text)) {
                (Some(v), Some(max)) => v <= max,
                _ => false,
            };
        let lossy = if narrow {
            !fits && !handled
        } else {
            has_float && !handled
        };
        if lossy {
            out.push(finding(
                RULE_LOSSY_CAST,
                path,
                raw_lines,
                line,
                Severity::Warning,
            ));
        }
    }
}

const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];
const ORDERING_NAMES: &[&str] = &[
    "Ordering", "Relaxed", "Acquire", "Release", "AcqRel", "SeqCst",
];

/// `atomic-ordering`: in any file that names an `Atomic*` type, every
/// `load`/`store`/`swap`/`fetch_*`/`compare_exchange` call must spell an
/// explicit `Ordering` in its arguments; and `SeqCst` inside the DP
/// hot-path crates is flagged (a full fence per DP iteration needs a
/// written justification via `audit:allow`).
pub(crate) fn rule_atomic_ordering(
    path: &str,
    raw_lines: &[&str],
    toks: &[CTok<'_>],
    in_test: &[bool],
    out: &mut Vec<Violation>,
) {
    let mentions_atomic = toks
        .iter()
        .any(|t| t.kind == TokKind::Ident && t.text.starts_with("Atomic"));
    if mentions_atomic {
        for i in 0..toks.len() {
            if !(toks[i].kind == TokKind::Punct
                && toks[i].text == "."
                && ident_in(toks.get(i + 1), ATOMIC_METHODS)
                && is_punct(toks.get(i + 2), "("))
            {
                continue;
            }
            let line = toks[i + 1].line;
            if line_in_test(in_test, line) {
                continue;
            }
            let Some(close) = matching_paren(toks, i + 2) else {
                continue;
            };
            let named = toks[i + 2..=close]
                .iter()
                .any(|t| t.kind == TokKind::Ident && ORDERING_NAMES.contains(&t.text));
            if !named {
                out.push(finding(
                    RULE_ATOMIC_ORDERING,
                    path,
                    raw_lines,
                    line,
                    Severity::Error,
                ));
            }
        }
    }
    if has_prefix(path, HOT_PATH_PREFIXES) {
        for t in toks {
            if t.kind == TokKind::Ident && t.text == "SeqCst" && !line_in_test(in_test, t.line) {
                out.push(finding(
                    RULE_ATOMIC_ORDERING,
                    path,
                    raw_lines,
                    t.line,
                    Severity::Warning,
                ));
            }
        }
    }
}

const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
];
const PANICKY_METHODS: &[&str] = &[
    "unwrap",
    "unwrap_err",
    "expect",
    "expect_err",
    "borrow",
    "borrow_mut",
    "with",
];

/// `panic-in-drop`: no panicking call inside an `impl Drop` block,
/// anywhere in the workspace, tests included — a panic in `Drop` during
/// unwind aborts the process, which is how tracing (or any RAII guard)
/// turns into a crash amplifier. The sanctioned pattern is fallible
/// access: `try_with`, `try_borrow_mut`, `let _ = …`.
pub(crate) fn rule_panic_in_drop(
    path: &str,
    raw_lines: &[&str],
    toks: &[CTok<'_>],
    out: &mut Vec<Violation>,
) {
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].kind == TokKind::Ident && toks[i].text == "impl") {
            i += 1;
            continue;
        }
        // Scan ahead to the impl body's `{`, checking for `Drop … for`.
        let mut brace = None;
        let mut saw_drop = false;
        let mut saw_for_after_drop = false;
        for (j, t) in toks.iter().enumerate().skip(i + 1).take(39) {
            if t.kind == TokKind::Punct && t.text == "{" {
                brace = Some(j);
                break;
            }
            if t.kind == TokKind::Ident && t.text == "Drop" {
                saw_drop = true;
            } else if saw_drop && t.kind == TokKind::Ident && t.text == "for" {
                saw_for_after_drop = true;
            }
        }
        let Some(open) = brace else {
            i += 1;
            continue;
        };
        if !(saw_drop && saw_for_after_drop) {
            i = open + 1;
            continue;
        }
        // Brace-match to the end of the impl block.
        let mut depth = 0usize;
        let mut end = toks.len();
        for (j, t) in toks.iter().enumerate().skip(open) {
            if t.kind == TokKind::Punct {
                match t.text {
                    "{" => depth += 1,
                    "}" => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            end = j;
                            break;
                        }
                    }
                    _ => {}
                }
            }
        }
        for j in open..end {
            let t = &toks[j];
            if t.kind != TokKind::Ident {
                continue;
            }
            let hit = (PANIC_MACROS.contains(&t.text) && is_punct(toks.get(j + 1), "!"))
                || (PANICKY_METHODS.contains(&t.text)
                    && j > 0
                    && is_punct(toks.get(j - 1), ".")
                    && is_punct(toks.get(j + 1), "("));
            if hit {
                out.push(finding(
                    RULE_PANIC_IN_DROP,
                    path,
                    raw_lines,
                    t.line,
                    Severity::Error,
                ));
            }
        }
        i = end.max(open + 1);
    }
}

/// `no-raw-exit`: a bare `std::process::exit` call outside test code,
/// anywhere in the workspace. `exit` runs no destructors — journal
/// writers are not flushed, trace guards never fire — so process
/// termination must either return an `ExitCode` from `main` or go
/// through the one sanctioned wrapper
/// (`merlin_supervisor::proc::worker_exit`, which carries the
/// `audit:allow` marker). `std::process::abort` is *not* flagged: the
/// crash-isolation machinery aborts deliberately to simulate hard
/// faults, and an abort is what the supervision layer is built to
/// survive.
pub(crate) fn rule_no_raw_exit(
    path: &str,
    raw_lines: &[&str],
    toks: &[CTok<'_>],
    in_test: &[bool],
    out: &mut Vec<Violation>,
) {
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Ident
            && t.text == "process"
            && is_punct(toks.get(i + 1), ":")
            && is_punct(toks.get(i + 2), ":")
            && is_ident(toks.get(i + 3), "exit")
            && is_punct(toks.get(i + 4), "(")
            && !line_in_test(in_test, toks[i + 3].line)
        {
            out.push(finding(
                RULE_NO_RAW_EXIT,
                path,
                raw_lines,
                toks[i + 3].line,
                Severity::Error,
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// Trace-name registry (global rule).
// ---------------------------------------------------------------------------

/// Crate-prefix whitelist a trace-name-shaped literal must start with.
const TRACE_NAME_PREFIXES: &[&str] = &[
    "cli.",
    "core.",
    "curves.",
    "flows.",
    "resilience.",
    "server.",
    "supervisor.",
];

/// Whether a string literal's content is shaped like a trace name.
pub fn is_trace_name_shaped(s: &str) -> bool {
    TRACE_NAME_PREFIXES.iter().any(|p| s.starts_with(p))
        && !s.contains("..")
        && !s.ends_with('.')
        && s.bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'.' || b == b'_')
}

/// Strips the quotes (and `b`/`r#` fences) off a string-literal lexeme.
pub(crate) fn str_content(lexeme: &str) -> &str {
    let s = lexeme
        .trim_start_matches('b')
        .trim_start_matches('r')
        .trim_start_matches('#');
    let s = s.strip_prefix('"').unwrap_or(s);
    let s = s.trim_end_matches('#');
    s.strip_suffix('"').unwrap_or(s)
}

/// Trace names observed in one file: precise call-site names (the literal
/// is the name argument of `merlin_trace::span!` / `counter` / `observe`)
/// and loosely "mentioned" name-shaped literals (covers names routed
/// through locals/tuples, like the flow-column emitter).
#[derive(Clone, Debug, Default)]
pub struct TraceNames {
    /// `(line, name)` for literals directly at an emit call site.
    pub call_sites: Vec<(usize, String)>,
    /// Every name-shaped string literal in non-test code.
    pub mentioned: Vec<String>,
}

/// Collects trace names from one file's tokens. Returns `None` for files
/// exempt from collection (the trace/bench/audit crates, test code).
pub(crate) fn collect_trace_names(
    path: &str,
    toks: &[CTok<'_>],
    in_test: &[bool],
) -> Option<TraceNames> {
    if has_prefix(path, TRACE_NAME_EXEMPT_PREFIXES) {
        return None;
    }
    if path.contains("/tests/") || path.contains("/benches/") {
        return None;
    }
    let mut names = TraceNames::default();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Str {
            let content = str_content(t.text);
            if !line_in_test(in_test, t.line) && is_trace_name_shaped(content) {
                names.mentioned.push(content.to_owned());
                // Call-site detection: `span ! ( "name"` or
                // `merlin_trace :: counter ( "name"` / `observe ( "name"`.
                let at_call = (i >= 3
                    && is_ident(toks.get(i - 3), "span")
                    && is_punct(toks.get(i - 2), "!")
                    && is_punct(toks.get(i - 1), "("))
                    || (i >= 2
                        && ident_in(toks.get(i - 2), &["counter", "observe"])
                        && is_punct(toks.get(i - 1), "("));
                if at_call {
                    names.call_sites.push((t.line, content.to_owned()));
                }
            }
        }
    }
    Some(names)
}

/// Parses the machine-readable registry block out of
/// `docs/OBSERVABILITY.md`: lines between
/// `<!-- trace-name-registry:begin -->` and
/// `<!-- trace-name-registry:end -->`, ignoring blank lines, fences and
/// comments. Returns `(1-based line, name)` pairs.
pub fn parse_trace_registry(doc: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut inside = false;
    for (i, line) in doc.lines().enumerate() {
        let t = line.trim();
        if t.contains("trace-name-registry:begin") {
            inside = true;
            continue;
        }
        if t.contains("trace-name-registry:end") {
            inside = false;
            continue;
        }
        if inside && !t.is_empty() && !t.starts_with("```") && !t.starts_with('#') {
            out.push((i + 1, t.to_owned()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_name_shape() {
        assert!(is_trace_name_shaped("curves.prune.calls"));
        assert!(is_trace_name_shaped("core.merlin.cycle_breaks"));
        assert!(!is_trace_name_shaped("Curves.prune"));
        assert!(!is_trace_name_shaped("curves..prune"));
        assert!(!is_trace_name_shaped("curves.prune."));
        assert!(!is_trace_name_shaped("not a name"));
        assert!(!is_trace_name_shaped("mycrate.phase"));
    }

    #[test]
    fn str_content_strips_fences() {
        assert_eq!(str_content("\"abc\""), "abc");
        assert_eq!(str_content("r#\"abc\"#"), "abc");
        assert_eq!(str_content("b\"abc\""), "abc");
    }

    #[test]
    fn registry_parse() {
        let doc = "\
intro text
<!-- trace-name-registry:begin -->
```text
cli.solve
core.construct
```
<!-- trace-name-registry:end -->
outro `core.never` text
";
        let names = parse_trace_registry(doc);
        assert_eq!(
            names,
            vec![
                (4, "cli.solve".to_owned()),
                (5, "core.construct".to_owned())
            ]
        );
    }
}
