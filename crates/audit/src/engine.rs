//! Rule framework: findings, allow-marker suppression, token-context
//! fingerprints, and the baseline ratchet (v1 counts, v2 fingerprints).

use std::collections::BTreeMap;
use std::fmt;

use crate::lexer::{lex, Token};

/// Finding severity, carried into the SARIF `level` field. Both severities
/// count against the baseline ratchet; severity is reporting metadata, not
/// an enforcement tier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// A violated invariant: the finding names a construct that can panic,
    /// corrupt, or race.
    Error,
    /// A hazard that may be intentional (a baselined lossy cast, a
    /// hot-path `SeqCst`, a stale allow marker).
    Warning,
}

impl Severity {
    /// SARIF level string.
    pub fn sarif_level(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// One rule finding at a specific source line.
#[derive(Clone, Debug, PartialEq)]
pub struct Violation {
    /// Rule name (one of [`crate::ALL_RULES`]).
    pub rule: &'static str,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Trimmed source line for the report.
    pub snippet: String,
    /// Finding severity.
    pub severity: Severity,
    /// Token-context fingerprint (16 hex chars), stable across unrelated
    /// line shifts. See [`fingerprint_context`].
    pub fingerprint: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path, self.line, self.rule, self.snippet
        )
    }
}

/// 64-bit FNV-1a, the fingerprint hash. Dependency-free and stable across
/// platforms and releases (the baseline file depends on it).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Builds the token-context string a fingerprint hashes: the normalized
/// lexemes of the finding line and its nearest non-blank code neighbors,
/// joined with single spaces. Line numbers never enter the hash, so a
/// finding's fingerprint survives unrelated edits elsewhere in the file.
pub fn fingerprint_context(src: &str, tokens: &[Token], line: usize) -> String {
    let on = |l: usize| -> Vec<&str> {
        tokens
            .iter()
            .filter(|t| t.line == l && !t.kind.is_trivia())
            .map(|t| t.text(src))
            .collect()
    };
    let mut ctx: Vec<&str> = Vec::new();
    // Nearest non-blank code line above, the line itself, nearest below.
    let mut above = line;
    while above > 1 {
        above -= 1;
        let toks = on(above);
        if !toks.is_empty() {
            ctx.extend(toks);
            break;
        }
    }
    ctx.extend(on(line));
    let last_line = tokens.last().map(|t| t.line).unwrap_or(line);
    let mut below = line;
    while below < last_line {
        below += 1;
        let toks = on(below);
        if !toks.is_empty() {
            ctx.extend(toks);
            break;
        }
    }
    ctx.join(" ")
}

/// Hashes `(rule, path, context)` into the 16-hex fingerprint stored in
/// the v2 baseline.
pub fn fingerprint(rule: &str, path: &str, context: &str) -> String {
    let mut buf = Vec::with_capacity(rule.len() + path.len() + context.len() + 2);
    buf.extend_from_slice(rule.as_bytes());
    buf.push(0);
    buf.extend_from_slice(path.as_bytes());
    buf.push(0);
    buf.extend_from_slice(context.as_bytes());
    format!("{:016x}", fnv1a64(&buf))
}

/// An `// audit:allow(<rule>)` marker found in a file's comments.
#[derive(Clone, Debug)]
pub struct AllowMarker {
    /// 1-based line the marker comment occupies.
    pub line: usize,
    /// The rule name inside the parentheses (not validated here).
    pub rule: String,
    /// Whether any finding consulted and was suppressed by this marker.
    pub used: bool,
}

/// Extracts every `audit:allow(<rule>)` marker from the comment tokens of
/// a lexed file. Markers outside comments (e.g. inside string literals)
/// are deliberately ignored: an allow must be visible as a comment. Doc
/// comments (`///`, `//!`, `/** */`) are also skipped — prose *describing*
/// the marker syntax is not a suppression.
pub fn collect_allow_markers(src: &str, tokens: &[Token]) -> Vec<AllowMarker> {
    use crate::lexer::TokKind;
    let mut out = Vec::new();
    for tok in tokens {
        if !tok.kind.is_comment() {
            continue;
        }
        if matches!(
            tok.kind,
            TokKind::LineComment { doc: true } | TokKind::BlockComment { doc: true }
        ) {
            continue;
        }
        let text = tok.text(src);
        for (off, raw_line) in text.split('\n').enumerate() {
            let line = tok.line + off;
            let mut rest = raw_line;
            while let Some(at) = rest.find("audit:allow(") {
                let tail = &rest[at + "audit:allow(".len()..];
                if let Some(close) = tail.find(')') {
                    out.push(AllowMarker {
                        line,
                        rule: tail[..close].to_owned(),
                        used: false,
                    });
                    rest = &tail[close + 1..];
                } else {
                    break;
                }
            }
        }
    }
    out
}

/// Whether `trimmed` is (the start of) an attribute line — `#[derive(...)]`,
/// `#[cfg(...)]`, `#[inline]` — or an attribute continuation ending in `)]`.
fn is_attribute_line(trimmed: &str) -> bool {
    trimmed.starts_with("#[")
        || trimmed.starts_with("#![")
        || (trimmed.ends_with(")]") && !trimmed.contains("//"))
}

/// Suppression check: a finding at `line` (1-based) is allowed when a
/// marker for its rule sits on the same line, on the directly preceding
/// comment line, or on a comment line above the finding's attribute stack
/// (so one marker can cover a `fn` buried under `#[derive(...)]` /
/// `#[cfg(...)]` attributes). Matching markers are flagged `used` so stale
/// ones can be reported.
pub fn is_allowed(
    rule: &str,
    raw_lines: &[&str],
    markers: &mut [AllowMarker],
    line: usize,
) -> bool {
    let mut hit = false;
    let matches_at = |l: usize, markers: &mut [AllowMarker]| -> bool {
        let mut any = false;
        for m in markers.iter_mut() {
            if m.line == l && m.rule == rule {
                m.used = true;
                any = true;
            }
        }
        any
    };
    // Same line.
    if matches_at(line, markers) {
        hit = true;
    }
    // Walk upward over the attribute stack (if any) and the contiguous
    // comment block directly above the finding: a marker on any line of
    // that block binds (justifications often wrap onto several comment
    // lines). The walk stops at the first code or blank line, so a marker
    // can never leak past unrelated code.
    let mut j = line;
    while j > 1 {
        j -= 1;
        let idx = j - 1; // raw_lines is 0-based
        let Some(text) = raw_lines.get(idx) else {
            break;
        };
        let trimmed = text.trim_start();
        if is_attribute_line(trimmed) {
            continue;
        }
        if trimmed.starts_with("//") {
            if matches_at(j, markers) {
                hit = true;
            }
            continue;
        }
        break;
    }
    hit
}

/// Parsed baseline file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Baseline {
    /// Legacy v1 format: `(rule, path) -> permitted count`. Auto-migrated
    /// to v2 by the CLI on the first clean run.
    V1(BTreeMap<(String, String), usize>),
    /// v2 format: `(rule, path, fingerprint) -> permitted count`, stable
    /// across unrelated line shifts.
    V2(BTreeMap<(String, String, String), usize>),
}

impl Baseline {
    /// An empty v2 baseline.
    pub fn empty() -> Baseline {
        Baseline::V2(BTreeMap::new())
    }

    /// Whether this baseline is the legacy v1 count format.
    pub fn is_legacy(&self) -> bool {
        matches!(self, Baseline::V1(_))
    }

    /// Total permitted findings.
    pub fn total(&self) -> usize {
        match self {
            Baseline::V1(m) => m.values().sum(),
            Baseline::V2(m) => m.values().sum(),
        }
    }
}

fn is_fingerprint(s: &str) -> bool {
    s.len() == 16 && s.bytes().all(|b| b.is_ascii_hexdigit())
}

/// Parses a baseline file. v2 lines are
/// `<rule> <path> <16-hex-fingerprint> <count>`; legacy v1 lines are
/// `<rule> <path> <count>`. A file must be all one format; `#` comments
/// and blank lines are ignored.
pub fn parse_baseline(text: &str) -> Result<Baseline, String> {
    let mut v1: BTreeMap<(String, String), usize> = BTreeMap::new();
    let mut v2: BTreeMap<(String, String, String), usize> = BTreeMap::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts.as_slice() {
            [rule, path, fp, count] if is_fingerprint(fp) => {
                let count: usize = count
                    .parse()
                    .map_err(|_| format!("baseline line {}: bad count `{count}`", i + 1))?;
                *v2.entry(((*rule).to_owned(), (*path).to_owned(), (*fp).to_owned()))
                    .or_insert(0) += count;
            }
            [rule, path, count] => {
                let count: usize = count
                    .parse()
                    .map_err(|_| format!("baseline line {}: bad count `{count}`", i + 1))?;
                v1.insert(((*rule).to_owned(), (*path).to_owned()), count);
            }
            _ => {
                return Err(format!(
                    "baseline line {}: expected `<rule> <path> <fingerprint> <count>` \
                     (v2) or `<rule> <path> <count>` (legacy v1)",
                    i + 1
                ));
            }
        }
    }
    if !v1.is_empty() && !v2.is_empty() {
        return Err("baseline mixes v1 and v2 entry formats".to_owned());
    }
    if !v1.is_empty() {
        Ok(Baseline::V1(v1))
    } else {
        Ok(Baseline::V2(v2))
    }
}

/// Renders violations as a v2 baseline file body (sorted, deduplicated
/// into per-fingerprint counts).
pub fn format_baseline(violations: &[Violation]) -> String {
    let mut counts: BTreeMap<(String, String, String), usize> = BTreeMap::new();
    for v in violations {
        *counts
            .entry((v.rule.to_owned(), v.path.clone(), v.fingerprint.clone()))
            .or_insert(0) += 1;
    }
    let mut out = String::from(
        "# merlin-audit baseline v2: `<rule> <path> <fingerprint> <count>` per line.\n\
         # Fingerprints hash the rule + path + finding's token context, so entries\n\
         # survive unrelated line shifts. The ratchet may tighten (counts shrink,\n\
         # via --update-baseline) but the auditor fails if any finding appears\n\
         # that is not fingerprinted here.\n",
    );
    for ((rule, path, fp), count) in counts {
        out.push_str(&format!("{rule} {path} {fp} {count}\n"));
    }
    out
}

/// Outcome of comparing findings to the baseline.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AuditOutcome {
    /// Findings exceeding the baseline — the audit fails if non-empty.
    pub over: Vec<Violation>,
    /// Baseline entries whose live count dropped:
    /// `(rule, path-or-path#fp, permitted, live)`.
    pub improved: Vec<(String, String, usize, usize)>,
}

/// Compares findings against the baseline ratchet.
///
/// v2: each `(rule, path, fingerprint)` group fails when its live count
/// exceeds the permitted count; a finding whose fingerprint is absent from
/// the baseline always fails. v1 (pre-migration): `(rule, path)` group
/// counts, as the legacy auditor checked them. Groups under their
/// permitted count surface as `improved` so the ratchet can tighten.
pub fn check_against_baseline(violations: &[Violation], baseline: &Baseline) -> AuditOutcome {
    let mut outcome = AuditOutcome::default();
    match baseline {
        Baseline::V1(permitted) => {
            let mut groups: BTreeMap<(String, String), Vec<&Violation>> = BTreeMap::new();
            for v in violations {
                groups
                    .entry((v.rule.to_owned(), v.path.clone()))
                    .or_default()
                    .push(v);
            }
            for (key, group) in &groups {
                let cap = permitted.get(key).copied().unwrap_or(0);
                if group.len() > cap {
                    outcome.over.extend(group.iter().map(|v| (*v).clone()));
                } else if group.len() < cap {
                    outcome
                        .improved
                        .push((key.0.clone(), key.1.clone(), cap, group.len()));
                }
            }
            for (key, &cap) in permitted {
                if !groups.contains_key(key) && cap > 0 {
                    outcome
                        .improved
                        .push((key.0.clone(), key.1.clone(), cap, 0));
                }
            }
        }
        Baseline::V2(permitted) => {
            let mut groups: BTreeMap<(String, String, String), Vec<&Violation>> = BTreeMap::new();
            for v in violations {
                groups
                    .entry((v.rule.to_owned(), v.path.clone(), v.fingerprint.clone()))
                    .or_default()
                    .push(v);
            }
            for (key, group) in &groups {
                let cap = permitted.get(key).copied().unwrap_or(0);
                if group.len() > cap {
                    outcome.over.extend(group.iter().map(|v| (*v).clone()));
                } else if group.len() < cap {
                    outcome.improved.push((
                        key.0.clone(),
                        format!("{}#{}", key.1, key.2),
                        cap,
                        group.len(),
                    ));
                }
            }
            for (key, &cap) in permitted {
                if !groups.contains_key(key) && cap > 0 {
                    outcome
                        .improved
                        .push((key.0.clone(), format!("{}#{}", key.1, key.2), cap, 0));
                }
            }
        }
    }
    outcome
}

/// Computes the fingerprint for a violation found in `src` and fills it
/// in. `tokens` must be the lex of `src`.
pub fn stamp_fingerprint(v: &mut Violation, src: &str, tokens: &[Token]) {
    let ctx = fingerprint_context(src, tokens, v.line);
    // An empty context (finding on a blank line, or a non-code artifact)
    // falls back to the snippet so two different findings still separate.
    let ctx = if ctx.is_empty() {
        v.snippet.clone()
    } else {
        ctx
    };
    v.fingerprint = fingerprint(v.rule, &v.path, &ctx);
}

/// Convenience for non-Rust findings (e.g. the trace-name registry doc):
/// fingerprint from the snippet text alone.
pub fn stamp_fingerprint_from_snippet(v: &mut Violation) {
    v.fingerprint = fingerprint(v.rule, &v.path, &v.snippet);
}

/// Lexes once and returns `(tokens, raw lines)` — the shared inputs every
/// per-file phase consumes.
pub fn lex_file(src: &str) -> (Vec<Token>, Vec<&str>) {
    (lex(src), src.lines().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(rule: &'static str, path: &str, line: usize, fp: &str) -> Violation {
        Violation {
            rule,
            path: path.to_owned(),
            line,
            snippet: "x".to_owned(),
            severity: Severity::Error,
            fingerprint: fp.to_owned(),
        }
    }

    #[test]
    fn fingerprint_stable_across_line_shifts() {
        let a = "fn f() {\n    x.unwrap();\n}\n";
        let b = "// a new comment\n\nfn f() {\n    x.unwrap();\n}\n";
        let (ta, _) = lex_file(a);
        let (tb, _) = lex_file(b);
        let ca = fingerprint_context(a, &ta, 2);
        let cb = fingerprint_context(b, &tb, 4);
        assert_eq!(ca, cb);
        assert_eq!(
            fingerprint("no-unwrap", "p.rs", &ca),
            fingerprint("no-unwrap", "p.rs", &cb)
        );
    }

    #[test]
    fn fingerprint_changes_with_context() {
        let a = "fn f() {\n    x.unwrap();\n}\n";
        let b = "fn g() {\n    x.unwrap();\n}\n";
        let (ta, _) = lex_file(a);
        let (tb, _) = lex_file(b);
        assert_ne!(
            fingerprint_context(a, &ta, 2),
            fingerprint_context(b, &tb, 2)
        );
    }

    #[test]
    fn baseline_v2_round_trip_and_ratchet() {
        let fp = fingerprint("no-unwrap", "crates/core/src/a.rs", "ctx");
        let vio = vec![
            v("no-unwrap", "crates/core/src/a.rs", 3, &fp),
            v("no-unwrap", "crates/core/src/a.rs", 9, &fp),
        ];
        let text = format_baseline(&vio);
        let baseline = parse_baseline(&text).expect("formatted baseline always parses");
        assert_eq!(baseline.total(), 2);
        let ok = check_against_baseline(&vio, &baseline);
        assert!(ok.over.is_empty() && ok.improved.is_empty());
        // A third identical-fingerprint finding overflows the count.
        let mut more = vio.clone();
        more.push(v("no-unwrap", "crates/core/src/a.rs", 12, &fp));
        assert_eq!(check_against_baseline(&more, &baseline).over.len(), 3);
        // A different fingerprint is always over.
        let other = vec![v(
            "no-unwrap",
            "crates/core/src/a.rs",
            3,
            "aaaaaaaaaaaaaaaa",
        )];
        assert_eq!(check_against_baseline(&other, &baseline).over.len(), 1);
        // Fewer: improved, not failing.
        let better = check_against_baseline(&vio[..1], &baseline);
        assert!(better.over.is_empty());
        assert_eq!(better.improved.len(), 1);
    }

    #[test]
    fn baseline_v1_legacy_parses_and_checks_by_count() {
        let baseline =
            parse_baseline("# old format\nno-unwrap crates/core/src/a.rs 2\n").expect("v1 parses");
        assert!(baseline.is_legacy());
        let vio = vec![
            v("no-unwrap", "crates/core/src/a.rs", 3, "0000000000000000"),
            v("no-unwrap", "crates/core/src/a.rs", 9, "1111111111111111"),
        ];
        assert!(check_against_baseline(&vio, &baseline).over.is_empty());
        let mut more = vio.clone();
        more.push(v(
            "no-unwrap",
            "crates/core/src/a.rs",
            12,
            "2222222222222222",
        ));
        assert_eq!(check_against_baseline(&more, &baseline).over.len(), 3);
    }

    #[test]
    fn baseline_rejects_malformed_and_mixed() {
        assert!(parse_baseline("no-unwrap crates/a.rs").is_err());
        assert!(parse_baseline("no-unwrap crates/a.rs three").is_err());
        assert!(parse_baseline(
            "no-unwrap crates/a.rs 3\nno-unwrap crates/a.rs aaaaaaaaaaaaaaaa 1\n"
        )
        .is_err());
        assert!(parse_baseline("# comment\n\nno-unwrap crates/a.rs 3\n").is_ok());
    }

    #[test]
    fn allow_markers_collected_from_comments_only() {
        let src = "// audit:allow(no-unwrap): reason\nlet s = \"audit:allow(panic)\";\n";
        let (toks, _) = lex_file(src);
        let markers = collect_allow_markers(src, &toks);
        assert_eq!(markers.len(), 1);
        assert_eq!(markers[0].rule, "no-unwrap");
        assert_eq!(markers[0].line, 1);
    }

    #[test]
    fn allow_skips_attribute_stack() {
        let src = "\
// audit:allow(panic): fires through the derive stack
#[derive(Clone, Debug)]
#[cfg(feature = \"x\")]
fn f() { panic!(\"x\") }
";
        let (toks, _) = lex_file(src);
        let raw: Vec<&str> = src.lines().collect();
        let mut markers = collect_allow_markers(src, &toks);
        assert!(is_allowed("panic", &raw, &mut markers, 4));
        assert!(markers[0].used);
        // A different rule is not covered.
        assert!(!is_allowed("no-unwrap", &raw, &mut markers, 4));
    }

    #[test]
    fn allow_does_not_leak_past_code_lines() {
        let src = "// audit:allow(panic)\nlet y = 1;\npanic!(\"x\");\n";
        let (toks, _) = lex_file(src);
        let raw: Vec<&str> = src.lines().collect();
        let mut markers = collect_allow_markers(src, &toks);
        assert!(!is_allowed("panic", &raw, &mut markers, 3));
        assert!(!markers[0].used);
    }
}
