//! Machine-readable report emitters: SARIF 2.1.0 and a flat JSON findings
//! list. Hand-rolled serialization — the auditor takes no dependencies.

use crate::engine::Violation;
use crate::rules::RULES;

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", u32::from(c)));
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the findings as a SARIF 2.1.0 log with one run, one driver,
/// a populated rule catalog, and one result per violation.
pub fn sarif_report(violations: &[Violation]) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str(
        "{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \
         \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n      \"tool\": {\n        \
         \"driver\": {\n          \"name\": \"merlin-audit\",\n          \
         \"informationUri\": \"docs/INVARIANTS.md\",\n          \"rules\": [\n",
    );
    for (i, rule) in RULES.iter().enumerate() {
        out.push_str(&format!(
            "            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}, \
             \"defaultConfiguration\": {{\"level\": \"{}\"}}}}{}\n",
            json_escape(rule.name),
            json_escape(rule.summary),
            rule.severity.sarif_level(),
            if i + 1 < RULES.len() { "," } else { "" }
        ));
    }
    out.push_str("          ]\n        }\n      },\n      \"results\": [\n");
    for (i, v) in violations.iter().enumerate() {
        out.push_str(&format!(
            "        {{\"ruleId\": \"{}\", \"level\": \"{}\", \
             \"message\": {{\"text\": \"{}\"}}, \
             \"partialFingerprints\": {{\"merlinAudit/v2\": \"{}\"}}, \
             \"locations\": [{{\"physicalLocation\": {{\
             \"artifactLocation\": {{\"uri\": \"{}\"}}, \
             \"region\": {{\"startLine\": {}}}}}}}]}}{}\n",
            json_escape(v.rule),
            v.severity.sarif_level(),
            json_escape(&v.snippet),
            json_escape(&v.fingerprint),
            json_escape(&v.path),
            v.line.max(1),
            if i + 1 < violations.len() { "," } else { "" }
        ));
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

/// Renders the findings as a flat JSON array, one object per violation.
pub fn json_report(violations: &[Violation]) -> String {
    let mut out = String::with_capacity(2048);
    out.push_str("[\n");
    for (i, v) in violations.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \
             \"severity\": \"{}\", \"fingerprint\": \"{}\", \"snippet\": \"{}\"}}{}\n",
            json_escape(v.rule),
            json_escape(&v.path),
            v.line,
            v.severity.sarif_level(),
            json_escape(&v.fingerprint),
            json_escape(&v.snippet),
            if i + 1 < violations.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Severity;

    fn sample() -> Vec<Violation> {
        vec![Violation {
            rule: "no-unwrap",
            path: "crates/core/src/lib.rs".to_owned(),
            line: 7,
            snippet: "x.unwrap() // \"quoted\"\\path".to_owned(),
            severity: Severity::Error,
            fingerprint: "deadbeefdeadbeef".to_owned(),
        }]
    }

    #[test]
    fn escape_covers_quotes_backslashes_and_controls() {
        assert_eq!(json_escape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn sarif_contains_rule_catalog_and_result() {
        let s = sarif_report(&sample());
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"id\": \"no-unwrap\""));
        assert!(s.contains("\"startLine\": 7"));
        assert!(s.contains("merlinAudit/v2"));
        assert!(s.contains("\\\"quoted\\\""));
    }

    #[test]
    fn json_report_is_flat_array() {
        let s = json_report(&sample());
        assert!(s.starts_with("[\n"));
        assert!(s.trim_end().ends_with(']'));
        assert!(s.contains("\"line\": 7"));
    }

    #[test]
    fn empty_reports_are_valid() {
        assert!(sarif_report(&[]).contains("\"results\": [\n      ]"));
        assert_eq!(json_report(&[]), "[\n]\n");
    }
}
