//! CLI for the workspace invariant auditor.
//!
//! ```text
//! cargo run -p merlin-audit                 # audit against the baseline
//! cargo run -p merlin-audit -- --update-baseline
//! cargo run -p merlin-audit -- --root /path/to/workspace
//! ```
//!
//! Exit codes: `0` clean (or within baseline), `1` findings over the
//! baseline, `2` usage or I/O error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use merlin_audit::{
    check_against_baseline, format_baseline, parse_baseline, scan_source, Baseline, Violation,
};

/// Directories never scanned (build output, vendored shims, VCS metadata).
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", ".claude"];

fn workspace_root(explicit: Option<PathBuf>) -> PathBuf {
    if let Some(root) = explicit {
        return root;
    }
    // Under `cargo run` the manifest dir is crates/audit; the workspace
    // root is two levels up. Fall back to the current directory.
    if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
        if let Some(root) = Path::new(&manifest).parent().and_then(Path::parent) {
            return root.to_path_buf();
        }
    }
    PathBuf::from(".")
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut update_baseline = false;
    let mut root_arg: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--update-baseline" => update_baseline = true,
            "--root" => match args.next() {
                Some(p) => root_arg = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: merlin-audit [--root <workspace>] [--update-baseline]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let root = workspace_root(root_arg);
    let mut files = Vec::new();
    if let Err(e) = collect_rs_files(&root, &mut files) {
        eprintln!("error: walking {}: {e}", root.display());
        return ExitCode::from(2);
    }
    files.sort();

    let mut violations: Vec<Violation> = Vec::new();
    let mut scanned = 0usize;
    for file in &files {
        let rel = file
            .strip_prefix(&root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let source = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: reading {rel}: {e}");
                return ExitCode::from(2);
            }
        };
        scanned += 1;
        violations.extend(scan_source(&rel, &source));
    }

    let baseline_path = root.join("audit-baseline.txt");
    if update_baseline {
        let body = format_baseline(&violations);
        if let Err(e) = std::fs::write(&baseline_path, body) {
            eprintln!("error: writing {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "audit: baseline updated with {} finding(s) across {} file(s) scanned",
            violations.len(),
            scanned
        );
        return ExitCode::SUCCESS;
    }

    let baseline: Baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match parse_baseline(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        },
        Err(_) => Baseline::new(),
    };

    let outcome = check_against_baseline(&violations, &baseline);
    for (rule, path, was, now) in &outcome.improved {
        println!(
            "audit: ratchet can tighten: {rule} {path} {was} -> {now} (run --update-baseline)"
        );
    }
    if outcome.over.is_empty() {
        println!(
            "audit: clean ({} file(s) scanned, {} baselined finding(s))",
            scanned,
            violations.len()
        );
        ExitCode::SUCCESS
    } else {
        for v in &outcome.over {
            eprintln!("{v}");
        }
        eprintln!(
            "audit: {} finding(s) over baseline; fix them, add `// audit:allow(<rule>)` with a reason, or re-baseline",
            outcome.over.len()
        );
        ExitCode::FAILURE
    }
}
