//! CLI for the workspace invariant auditor.
//!
//! ```text
//! cargo run -p merlin-audit                 # audit against the baseline
//! cargo run -p merlin-audit -- --update-baseline
//! cargo run -p merlin-audit -- --root /path/to/workspace
//! cargo run -p merlin-audit -- --sarif audit.sarif --json audit.json
//! cargo run -p merlin-audit -- --max-runtime-ms 10000
//! ```
//!
//! Exit codes: `0` clean (or within baseline), `1` findings over the
//! baseline or runtime guard exceeded, `2` usage or I/O error.
//!
//! A legacy count-based baseline (`<rule> <path> <count>`) is evaluated
//! under its own semantics and, on a clean run, automatically rewritten
//! in the fingerprinted v2 format (`<rule> <path> <fingerprint> <count>`).

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use merlin_audit::{
    audit_files, check_against_baseline, format_baseline, json_report, parse_baseline,
    sarif_report, Baseline,
};

/// Directories never scanned: build output, vendored shims, VCS metadata,
/// and the auditor's own seeded-violation corpus (its fixtures exist to
/// trip rules and must not reach the workspace audit).
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", ".claude", "corpus"];

/// Workspace-relative path of the trace-name registry document.
const REGISTRY_DOC: &str = "docs/OBSERVABILITY.md";

fn workspace_root(explicit: Option<PathBuf>) -> PathBuf {
    if let Some(root) = explicit {
        return root;
    }
    // Under `cargo run` the manifest dir is crates/audit; the workspace
    // root is two levels up. Fall back to the current directory.
    if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
        if let Some(root) = Path::new(&manifest).parent().and_then(Path::parent) {
            return root.to_path_buf();
        }
    }
    PathBuf::from(".")
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

struct Options {
    update_baseline: bool,
    root: Option<PathBuf>,
    sarif: Option<PathBuf>,
    json: Option<PathBuf>,
    max_runtime_ms: Option<u64>,
}

fn parse_args() -> Result<Option<Options>, String> {
    let mut opts = Options {
        update_baseline: false,
        root: None,
        sarif: None,
        json: None,
        max_runtime_ms: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--update-baseline" => opts.update_baseline = true,
            "--root" => match args.next() {
                Some(p) => opts.root = Some(PathBuf::from(p)),
                None => return Err("--root needs a path".to_owned()),
            },
            "--sarif" => match args.next() {
                Some(p) => opts.sarif = Some(PathBuf::from(p)),
                None => return Err("--sarif needs a path".to_owned()),
            },
            "--json" => match args.next() {
                Some(p) => opts.json = Some(PathBuf::from(p)),
                None => return Err("--json needs a path".to_owned()),
            },
            "--max-runtime-ms" => match args.next().map(|v| v.parse::<u64>()) {
                Some(Ok(ms)) => opts.max_runtime_ms = Some(ms),
                Some(Err(_)) => return Err("--max-runtime-ms needs an integer".to_owned()),
                None => return Err("--max-runtime-ms needs a value".to_owned()),
            },
            "--help" | "-h" => {
                println!(
                    "usage: merlin-audit [--root <workspace>] [--update-baseline]\n\
                     \x20                  [--sarif <path>] [--json <path>]\n\
                     \x20                  [--max-runtime-ms <n>]"
                );
                return Ok(None);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Some(opts))
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(Some(opts)) => opts,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    let started = Instant::now();
    let root = workspace_root(opts.root);
    let mut paths = Vec::new();
    if let Err(e) = collect_rs_files(&root, &mut paths) {
        eprintln!("error: walking {}: {e}", root.display());
        return ExitCode::from(2);
    }
    paths.sort();

    let mut files: Vec<(String, String)> = Vec::with_capacity(paths.len());
    for file in &paths {
        let rel = file
            .strip_prefix(&root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        match std::fs::read_to_string(file) {
            Ok(source) => files.push((rel, source)),
            Err(e) => {
                eprintln!("error: reading {rel}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let scanned = files.len();

    let registry_text = std::fs::read_to_string(root.join(REGISTRY_DOC)).ok();
    if registry_text.is_none() {
        eprintln!("audit: note: {REGISTRY_DOC} not found; trace-name-registry rule skipped");
    }
    let registry_doc = registry_text.as_deref().map(|t| (REGISTRY_DOC, t));

    let violations = audit_files(&files, registry_doc);

    let mut io_failed = false;
    if let Some(path) = &opts.sarif {
        if let Err(e) = std::fs::write(path, sarif_report(&violations)) {
            eprintln!("error: writing {}: {e}", path.display());
            io_failed = true;
        }
    }
    if let Some(path) = &opts.json {
        if let Err(e) = std::fs::write(path, json_report(&violations)) {
            eprintln!("error: writing {}: {e}", path.display());
            io_failed = true;
        }
    }
    if io_failed {
        return ExitCode::from(2);
    }

    let baseline_path = root.join("audit-baseline.txt");
    if opts.update_baseline {
        let body = format_baseline(&violations);
        if let Err(e) = std::fs::write(&baseline_path, body) {
            eprintln!("error: writing {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "audit: baseline updated with {} finding(s) across {} file(s) scanned",
            violations.len(),
            scanned
        );
        return ExitCode::SUCCESS;
    }

    let baseline: Baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match parse_baseline(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        },
        Err(_) => Baseline::empty(),
    };

    let outcome = check_against_baseline(&violations, &baseline);
    for (rule, path, was, now) in &outcome.improved {
        println!(
            "audit: ratchet can tighten: {rule} {path} {was} -> {now} (run --update-baseline)"
        );
    }

    let elapsed_ms = started.elapsed().as_millis();
    let over_budget = opts
        .max_runtime_ms
        .is_some_and(|max| elapsed_ms > u128::from(max));

    if outcome.over.is_empty() {
        // A clean run under a legacy baseline is the migration point:
        // rewrite it with fingerprints so future runs ratchet per-finding.
        if baseline.is_legacy() {
            let body = format_baseline(&violations);
            if let Err(e) = std::fs::write(&baseline_path, body) {
                eprintln!("error: writing {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
            println!("audit: legacy baseline migrated to fingerprint format (v2)");
        }
        println!(
            "audit: clean ({} file(s) scanned, {} baselined finding(s), {} ms)",
            scanned,
            violations.len(),
            elapsed_ms
        );
        if over_budget {
            eprintln!(
                "audit: runtime guard exceeded: {} ms > {} ms budget",
                elapsed_ms,
                opts.max_runtime_ms.unwrap_or(0)
            );
            return ExitCode::FAILURE;
        }
        ExitCode::SUCCESS
    } else {
        for v in &outcome.over {
            eprintln!("{v}");
        }
        eprintln!(
            "audit: {} finding(s) over baseline; fix them, add `// audit:allow(<rule>)` with a reason, or re-baseline",
            outcome.over.len()
        );
        ExitCode::FAILURE
    }
}
