//! Hand-rolled lossless Rust lexer for the token-level audit engine.
//!
//! The auditor must understand real Rust token boundaries — raw strings
//! with arbitrary hash fences, nested block comments, lifetimes vs char
//! literals, numeric suffixes — without pulling in `syn` (the workspace is
//! offline and the audit crate is deliberately dependency-free). This
//! lexer is *lossless*: every byte of the input belongs to exactly one
//! token, so concatenating the lexemes reproduces the source verbatim.
//! That property is what the round-trip proptests pin, and it is what
//! makes line/column attribution exact for findings and fingerprints.
//!
//! The lexer never fails: malformed input (an unterminated string, a stray
//! byte) degrades to [`TokKind::Unknown`] or an unterminated literal token
//! running to end-of-file, because the auditor must keep scanning a
//! workspace that may be mid-edit.

/// Token classification. Trivia ([`TokKind::Whitespace`] and the comment
/// kinds) is kept in the stream so the engine can see doc comments and
/// `audit:allow` markers; rules operate on the non-trivia projection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// A run of whitespace (spaces, tabs, newlines).
    Whitespace,
    /// `// ...` to end of line; `doc` when `///` or `//!`.
    LineComment {
        /// Whether this is a doc comment (`///` or `//!`).
        doc: bool,
    },
    /// `/* ... */`, nesting-aware; `doc` when `/**` or `/*!`.
    BlockComment {
        /// Whether this is a doc comment (`/**` or `/*!`).
        doc: bool,
    },
    /// Identifier or keyword (including raw `r#ident`).
    Ident,
    /// Lifetime such as `'a` or `'static`.
    Lifetime,
    /// Integer literal (any base, `_` separators, suffix).
    Int,
    /// Float literal (fraction, exponent, or `f32`/`f64` suffix).
    Float,
    /// `"..."` or `b"..."` string literal (escapes honored).
    Str,
    /// `r"..."` / `r#"..."#` / `br#"..."#` raw string literal.
    RawStr,
    /// `'x'`, `'\n'`, `b'x'` char/byte literal.
    Char,
    /// One punctuation byte (`.`, `-`, `(` …). Multi-byte operators are
    /// emitted as consecutive single-byte tokens; rules match sequences.
    Punct,
    /// A byte the lexer does not recognize (kept so the stream stays
    /// lossless).
    Unknown,
}

impl TokKind {
    /// Whether this kind is trivia (whitespace or a comment).
    pub fn is_trivia(self) -> bool {
        matches!(
            self,
            TokKind::Whitespace | TokKind::LineComment { .. } | TokKind::BlockComment { .. }
        )
    }

    /// Whether this kind is a comment.
    pub fn is_comment(self) -> bool {
        matches!(
            self,
            TokKind::LineComment { .. } | TokKind::BlockComment { .. }
        )
    }
}

/// One token: a classified byte range of the source.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Token {
    /// Classification.
    pub kind: TokKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: usize,
}

impl Token {
    /// The lexeme text within `src` (the source the token was lexed from).
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

struct Lexer<'s> {
    src: &'s [u8],
    pos: usize,
    line: usize,
}

impl<'s> Lexer<'s> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump_to(&mut self, end: usize) {
        for &b in &self.src[self.pos..end.min(self.src.len())] {
            if b == b'\n' {
                self.line += 1;
            }
        }
        self.pos = end.min(self.src.len());
    }

    fn whitespace(&mut self) -> TokKind {
        let mut j = self.pos;
        while j < self.src.len() && self.src[j].is_ascii_whitespace() {
            j += 1;
        }
        self.bump_to(j);
        TokKind::Whitespace
    }

    fn line_comment(&mut self) -> TokKind {
        let rest = &self.src[self.pos..];
        let doc =
            rest.starts_with(b"///") && !rest.starts_with(b"////") || rest.starts_with(b"//!");
        let mut j = self.pos;
        while j < self.src.len() && self.src[j] != b'\n' {
            j += 1;
        }
        self.bump_to(j);
        TokKind::LineComment { doc }
    }

    fn block_comment(&mut self) -> TokKind {
        let rest = &self.src[self.pos..];
        let doc =
            (rest.starts_with(b"/**") && !rest.starts_with(b"/**/")) || rest.starts_with(b"/*!");
        let mut depth = 0usize;
        let mut j = self.pos;
        while j < self.src.len() {
            if self.src[j] == b'/' && self.src.get(j + 1) == Some(&b'*') {
                depth += 1;
                j += 2;
            } else if self.src[j] == b'*' && self.src.get(j + 1) == Some(&b'/') {
                depth -= 1;
                j += 2;
                if depth == 0 {
                    break;
                }
            } else {
                j += 1;
            }
        }
        self.bump_to(j);
        TokKind::BlockComment { doc }
    }

    /// A `"` string body starting at `open_quote` (escape-aware); returns
    /// the end offset one past the closing quote (or end of input).
    fn string_end(&self, open_quote: usize) -> usize {
        let mut j = open_quote + 1;
        while j < self.src.len() {
            match self.src[j] {
                b'\\' => j += 2,
                b'"' => return j + 1,
                _ => j += 1,
            }
        }
        self.src.len()
    }

    /// A raw string starting at the `r` (after any `b`); `at` points at
    /// the `r`. Returns `Some(end)` past the closing fence if this really
    /// is a raw string opener.
    fn raw_string_end(&self, at: usize) -> Option<usize> {
        let mut j = at + 1;
        let mut hashes = 0usize;
        while self.src.get(j) == Some(&b'#') {
            hashes += 1;
            j += 1;
        }
        if self.src.get(j) != Some(&b'"') {
            return None;
        }
        j += 1;
        while j < self.src.len() {
            if self.src[j] == b'"' {
                let fence = &self.src[j + 1..(j + 1 + hashes).min(self.src.len())];
                if fence.len() == hashes && fence.iter().all(|&b| b == b'#') {
                    return Some(j + 1 + hashes);
                }
            }
            j += 1;
        }
        Some(self.src.len())
    }

    /// A `'` at `self.pos`: decide lifetime vs char literal and return the
    /// token kind + end offset.
    fn quote(&self) -> (TokKind, usize) {
        let i = self.pos;
        match self.peek(1) {
            Some(b'\\') => {
                // Escaped char literal: skip the escape pair, then scan to
                // the closing quote.
                let mut j = i + 3;
                while j < self.src.len() && self.src[j] != b'\'' {
                    j += 1;
                }
                (TokKind::Char, (j + 1).min(self.src.len()))
            }
            Some(c) if is_ident_start(c) => {
                if self.peek(2) == Some(b'\'') {
                    // 'a'
                    (TokKind::Char, i + 3)
                } else {
                    // Lifetime: 'ident (no closing quote).
                    let mut j = i + 2;
                    while j < self.src.len() && is_ident_continue(self.src[j]) {
                        j += 1;
                    }
                    (TokKind::Lifetime, j)
                }
            }
            Some(_) if self.peek(2) == Some(b'\'') => (TokKind::Char, i + 3),
            _ => (TokKind::Unknown, i + 1),
        }
    }

    /// A numeric literal starting at a digit.
    fn number(&self) -> (TokKind, usize) {
        let i = self.pos;
        let mut j = i;
        let mut float = false;
        if self.src[i] == b'0' && matches!(self.peek(1), Some(b'x') | Some(b'o') | Some(b'b')) {
            j = i + 2;
            while j < self.src.len() && (self.src[j].is_ascii_hexdigit() || self.src[j] == b'_') {
                j += 1;
            }
        } else {
            while j < self.src.len() && (self.src[j].is_ascii_digit() || self.src[j] == b'_') {
                j += 1;
            }
            // Fraction: `1.5` (but not `1..2` ranges or `x.0` field access
            // — the dot must be followed by a digit).
            if self.src.get(j) == Some(&b'.')
                && self.src.get(j + 1).is_some_and(|b| b.is_ascii_digit())
            {
                float = true;
                j += 1;
                while j < self.src.len() && (self.src[j].is_ascii_digit() || self.src[j] == b'_') {
                    j += 1;
                }
            }
            // Exponent: `1e6`, `1.5e-3`.
            if matches!(self.src.get(j), Some(b'e') | Some(b'E')) {
                let mut k = j + 1;
                if matches!(self.src.get(k), Some(b'+') | Some(b'-')) {
                    k += 1;
                }
                if self.src.get(k).is_some_and(|b| b.is_ascii_digit()) {
                    float = true;
                    j = k;
                    while j < self.src.len()
                        && (self.src[j].is_ascii_digit() || self.src[j] == b'_')
                    {
                        j += 1;
                    }
                }
            }
        }
        // Suffix (`u32`, `f64`, `usize` …) is part of the literal token.
        if self.src.get(j).copied().is_some_and(is_ident_start) {
            let suffix_start = j;
            while j < self.src.len() && is_ident_continue(self.src[j]) {
                j += 1;
            }
            let suffix = &self.src[suffix_start..j];
            if suffix.starts_with(b"f32") || suffix.starts_with(b"f64") {
                float = true;
            }
        }
        (if float { TokKind::Float } else { TokKind::Int }, j)
    }

    fn next_token(&mut self) -> Option<Token> {
        if self.pos >= self.src.len() {
            return None;
        }
        let start = self.pos;
        let line = self.line;
        let b = self.src[start];
        let kind = if b.is_ascii_whitespace() {
            self.whitespace()
        } else if b == b'/' && self.peek(1) == Some(b'/') {
            self.line_comment()
        } else if b == b'/' && self.peek(1) == Some(b'*') {
            self.block_comment()
        } else if b == b'"' {
            let end = self.string_end(start);
            self.bump_to(end);
            TokKind::Str
        } else if b == b'r' || b == b'b' {
            // Raw strings (r", r#"), byte strings (b", br#"), byte chars
            // (b'x'), raw idents (r#ident) — or a plain identifier.
            let raw_at = if b == b'b' && self.peek(1) == Some(b'r') {
                Some(start + 1)
            } else if b == b'r' {
                Some(start)
            } else {
                None
            };
            if b == b'b' && self.peek(1) == Some(b'"') {
                let end = self.string_end(start + 1);
                self.bump_to(end);
                TokKind::Str
            } else if b == b'b' && self.peek(1) == Some(b'\'') {
                let saved = self.pos;
                self.pos = saved + 1;
                let (_, end) = self.quote();
                self.pos = saved;
                self.bump_to(end);
                TokKind::Char
            } else if let Some(end) = raw_at.and_then(|at| {
                // `r#ident` is a raw identifier, not a raw string: only
                // treat as raw string when the fence really opens one.
                self.raw_string_end(at)
            }) {
                self.bump_to(end);
                TokKind::RawStr
            } else if b == b'r'
                && self.peek(1) == Some(b'#')
                && self.peek(2).is_some_and(is_ident_start)
            {
                // Raw identifier r#match.
                let mut j = start + 3;
                while j < self.src.len() && is_ident_continue(self.src[j]) {
                    j += 1;
                }
                self.bump_to(j);
                TokKind::Ident
            } else {
                let mut j = start + 1;
                while j < self.src.len() && is_ident_continue(self.src[j]) {
                    j += 1;
                }
                self.bump_to(j);
                TokKind::Ident
            }
        } else if is_ident_start(b) {
            let mut j = start + 1;
            while j < self.src.len() && is_ident_continue(self.src[j]) {
                j += 1;
            }
            self.bump_to(j);
            TokKind::Ident
        } else if b == b'\'' {
            let (kind, end) = self.quote();
            self.bump_to(end);
            kind
        } else if b.is_ascii_digit() {
            let (kind, end) = self.number();
            self.bump_to(end);
            kind
        } else if b.is_ascii_punctuation() {
            self.bump_to(start + 1);
            TokKind::Punct
        } else {
            self.bump_to(start + 1);
            TokKind::Unknown
        };
        Some(Token {
            kind,
            start,
            end: self.pos,
            line,
        })
    }
}

/// Lexes `src` into a lossless token stream: the concatenation of every
/// token's lexeme reproduces `src` byte-for-byte.
pub fn lex(src: &str) -> Vec<Token> {
    let mut lx = Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut out = Vec::new();
    while let Some(t) = lx.next_token() {
        out.push(t);
    }
    out
}

/// Returns `src` with comment bodies and string/char-literal contents
/// replaced by spaces (newlines preserved), so pattern matching over the
/// result only ever sees real code. Built on [`lex`], this replaces the
/// old per-line `Sanitizer` state machine.
pub fn sanitize_source(src: &str) -> String {
    let mut out = String::with_capacity(src.len());
    for tok in lex(src) {
        let text = tok.text(src);
        match tok.kind {
            TokKind::LineComment { .. }
            | TokKind::BlockComment { .. }
            | TokKind::Str
            | TokKind::RawStr
            | TokKind::Char => {
                for c in text.chars() {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                }
            }
            _ => out.push_str(text),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(src: &str) {
        let toks = lex(src);
        let rebuilt: String = toks.iter().map(|t| t.text(src)).collect();
        assert_eq!(rebuilt, src, "lexer must be lossless");
    }

    #[test]
    fn lossless_on_basics() {
        for src in [
            "fn main() { let x = 1 + 2; }",
            "let s = \"str with \\\" escape\"; // trailing",
            "let r = r#\"raw \" with hash\"#; let n = 0xFF_u32;",
            "let c = '\\n'; let l: &'static str = \"x\";",
            "/* outer /* inner */ still */ code()",
            "let f = 1.5e-3f64; let t = x.0; let rr = 1..2;",
            "let b = b\"bytes\"; let bc = b'x'; let ri = r#match;",
            "",
            "unterminated \"string runs to eof",
        ] {
            round_trip(src);
        }
    }

    #[test]
    fn strings_and_comments_are_blanked() {
        let src = "let x = \"call .unwrap() now\"; // .unwrap()\n";
        let s = sanitize_source(src);
        assert!(!s.contains(".unwrap()"));
        assert!(s.contains("let x ="));
        assert_eq!(s.len(), src.len());
    }

    #[test]
    fn nested_block_comments_blank_across_lines() {
        let src = "/* a /* b */ still comment */ real.unwrap()";
        let s = sanitize_source(src);
        assert!(!s.contains("still"));
        assert!(s.contains("real.unwrap()"));
    }

    #[test]
    fn lifetimes_survive_sanitizing_char_literals_do_not() {
        let src = "fn f<'a>(c: char) -> bool { c == '\"' }";
        let s = sanitize_source(src);
        assert!(s.contains("'a"));
        assert!(!s.contains('"'));
        round_trip(src);
    }

    #[test]
    fn raw_string_fences_respect_hash_count() {
        let src = "let s = r##\"inner \"# not the end\"##; tail()";
        round_trip(src);
        let s = sanitize_source(src);
        assert!(!s.contains("inner"));
        assert!(s.contains("tail()"));
    }

    #[test]
    fn number_kinds() {
        let toks = lex("1 1.5 1e6 0x1F 1_000 2f64 3usize");
        let kinds: Vec<TokKind> = toks
            .iter()
            .filter(|t| !t.kind.is_trivia())
            .map(|t| t.kind)
            .collect();
        assert_eq!(
            kinds,
            vec![
                TokKind::Int,
                TokKind::Float,
                TokKind::Float,
                TokKind::Int,
                TokKind::Int,
                TokKind::Float,
                TokKind::Int,
            ]
        );
    }

    #[test]
    fn line_numbers_are_one_based_and_accurate() {
        let toks = lex("a\nb\n  c");
        let idents: Vec<(String, usize)> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| (t.text("a\nb\n  c").to_owned(), t.line))
            .collect();
        assert_eq!(
            idents,
            vec![("a".into(), 1), ("b".into(), 2), ("c".into(), 3)]
        );
    }

    #[test]
    fn doc_comments_classified() {
        let toks = lex("/// doc\n// plain\n//! inner\n/** block doc */\n/* plain */");
        let docs: Vec<bool> = toks
            .iter()
            .filter_map(|t| match t.kind {
                TokKind::LineComment { doc } | TokKind::BlockComment { doc } => Some(doc),
                _ => None,
            })
            .collect();
        assert_eq!(docs, vec![true, false, true, true, false]);
    }
}
