//! Workspace invariant auditor.
//!
//! A dependency-free lint pass over the workspace's Rust sources enforcing
//! the hygiene rules the DP hot-path crates (`core`, `curves`, `ptree`,
//! `lttree`, `vanginneken`) — and `trace`, whose collector sits *inside*
//! those hot paths — must satisfy:
//!
//! * [`no-unwrap`](RULE_NO_UNWRAP) — no `.unwrap()`; use `.expect("<why the
//!   invariant holds>")` or real control flow,
//! * [`empty-expect`](RULE_EMPTY_EXPECT) — `.expect("")` explains nothing,
//! * [`panic`](RULE_PANIC) — no `panic!` outside `#[cfg(test)]`,
//! * [`float-cmp`](RULE_FLOAT_CMP) — no raw `partial_cmp` / `total_cmp` on
//!   delays; go through `merlin_tech::units::ps_cmp` and friends,
//! * [`float-eq`](RULE_FLOAT_EQ) — no `==` against float literals outside
//!   tests,
//! * [`push-without-prune`](RULE_PUSH_WITHOUT_PRUNE) — a function that
//!   pushes `CurvePoint`s must also reach a `prune()` call, otherwise an
//!   unpruned curve can escape into the DP,
//! * [`doc-pub-fn`](RULE_DOC_PUB_FN) — every non-test `pub fn` carries a
//!   doc comment.
//!
//! One rule applies workspace-wide rather than only to the DP crates:
//!
//! * [`catch-unwind`](RULE_CATCH_UNWIND) — `catch_unwind` outside test code
//!   is forbidden everywhere except `crates/resilience/`, the one
//!   sanctioned panic-isolation boundary (see `merlin_resilience::isolate`).
//!   Swallowing panics anywhere else hides DP invariant violations.
//!
//! And one applies only to the crates the parallel DP shards across
//! threads (`crates/core/`, `crates/curves/`):
//!
//! * [`no-rc-in-dp`](RULE_NO_RC_IN_DP) — `std::rc::Rc` is not [`Send`], so
//!   a single `Rc` smuggled into a Γ table or a curve family would stop
//!   the level-sharded `BUBBLE_CONSTRUCT` from crossing its worker
//!   boundary (or, worse, force an `unsafe` bypass). Shared ownership in
//!   these crates must use `std::sync::Arc`.
//!
//! Any finding can be suppressed in place with `// audit:allow(<rule>)` on
//! the offending line or the line above it. Pre-existing findings live in a
//! checked-in baseline file (`audit-baseline.txt`); the auditor fails only
//! on *new* findings, so the baseline acts as a ratchet that may shrink but
//! never silently grow.
//!
//! The scanner is a hand-rolled line state machine (no `syn`, no regex):
//! string literals, char literals and comments are blanked before pattern
//! matching so `"call .unwrap() here"` in a message never trips a rule.

use std::collections::{BTreeMap, HashSet};
use std::fmt;

/// Rule name: `.unwrap()` in DP-crate code (tests included).
pub const RULE_NO_UNWRAP: &str = "no-unwrap";
/// Rule name: `.expect("")` with an empty message.
pub const RULE_EMPTY_EXPECT: &str = "empty-expect";
/// Rule name: `panic!` outside `#[cfg(test)]`.
pub const RULE_PANIC: &str = "panic";
/// Rule name: raw `partial_cmp` / `total_cmp` instead of the units helpers.
pub const RULE_FLOAT_CMP: &str = "float-cmp";
/// Rule name: `==` against a float literal outside tests.
pub const RULE_FLOAT_EQ: &str = "float-eq";
/// Rule name: `CurvePoint` pushes with no reachable `prune()` in the same
/// function.
pub const RULE_PUSH_WITHOUT_PRUNE: &str = "push-without-prune";
/// Rule name: undocumented non-test `pub fn`.
pub const RULE_DOC_PUB_FN: &str = "doc-pub-fn";
/// Rule name: `catch_unwind` outside `crates/resilience/` and test code.
pub const RULE_CATCH_UNWIND: &str = "catch-unwind";
/// Rule name: `std::rc::Rc` inside the thread-sharded DP crates.
pub const RULE_NO_RC_IN_DP: &str = "no-rc-in-dp";

/// All rule names, in report order.
pub const ALL_RULES: &[&str] = &[
    RULE_NO_UNWRAP,
    RULE_EMPTY_EXPECT,
    RULE_PANIC,
    RULE_FLOAT_CMP,
    RULE_FLOAT_EQ,
    RULE_PUSH_WITHOUT_PRUNE,
    RULE_DOC_PUB_FN,
    RULE_CATCH_UNWIND,
    RULE_NO_RC_IN_DP,
];

/// Workspace-relative path prefixes of the DP hot-path crates the rules
/// apply to. `crates/trace/` is included deliberately: its RAII span
/// guards run `Drop` code inside every instrumented hot loop, so it is
/// held to the same no-unwrap/no-panic bar (the collector's fallible TLS
/// accesses — `try_with`, `try_borrow_mut` — are the sanctioned pattern;
/// a `Drop` that can panic would turn tracing into a crash amplifier).
pub const DP_CRATE_PREFIXES: &[&str] = &[
    "crates/core/",
    "crates/curves/",
    "crates/ptree/",
    "crates/lttree/",
    "crates/vanginneken/",
    "crates/trace/",
];

/// One rule finding at a specific source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Rule name (one of [`ALL_RULES`]).
    pub rule: &'static str,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Trimmed source line for the report.
    pub snippet: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path, self.line, self.rule, self.snippet
        )
    }
}

/// Workspace-relative prefix of the one crate allowed to `catch_unwind`:
/// the resilience driver's panic-isolation boundary.
pub const RESILIENCE_PREFIX: &str = "crates/resilience/";

/// Whether `path` (workspace-relative, forward slashes) belongs to a DP
/// hot-path crate.
pub fn is_dp_crate_path(path: &str) -> bool {
    DP_CRATE_PREFIXES.iter().any(|p| path.starts_with(p))
}

/// Workspace-relative prefixes of the crates whose data structures cross
/// the parallel DP's worker-thread boundary, where `Rc` is forbidden (see
/// [`RULE_NO_RC_IN_DP`]).
pub const RC_FORBIDDEN_PREFIXES: &[&str] = &["crates/core/", "crates/curves/"];

/// Whether the sanitized line mentions `std::rc` or the `Rc` type as a
/// standalone token (so `Arc`, `StarCache`, identifiers merely *ending*
/// in `Rc`, and `Rc`-containing words never match).
fn mentions_rc(code: &str) -> bool {
    if code.contains("std::rc") {
        return true;
    }
    let bytes = code.as_bytes();
    for (i, _) in code.match_indices("Rc") {
        let before_ok = i == 0 || {
            let c = bytes[i - 1] as char;
            !c.is_alphanumeric() && c != '_'
        };
        let after_ok = match bytes.get(i + 2) {
            Some(&b) => {
                let c = b as char;
                !c.is_alphanumeric() && c != '_'
            }
            None => true,
        };
        if before_ok && after_ok {
            return true;
        }
    }
    false
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LexState {
    Normal,
    Block(u32),
    Str,
    RawStr(u8),
}

/// Line-by-line lexer state blanking comments, string literals and char
/// literals so rule patterns only ever match real code.
pub struct Sanitizer {
    state: LexState,
}

impl Default for Sanitizer {
    fn default() -> Self {
        Self::new()
    }
}

impl Sanitizer {
    /// Creates a sanitizer in the initial (code) state.
    pub fn new() -> Self {
        Sanitizer {
            state: LexState::Normal,
        }
    }

    /// Returns `raw` with comment, string and char-literal content replaced
    /// by spaces, carrying multi-line state (block comments, multi-line and
    /// raw strings) to the next call.
    pub fn sanitize_line(&mut self, raw: &str) -> String {
        let bytes = raw.as_bytes();
        let mut out = Vec::with_capacity(bytes.len());
        let mut i = 0;
        while i < bytes.len() {
            match self.state {
                LexState::Normal => {
                    let c = bytes[i];
                    if c == b'/' && bytes.get(i + 1) == Some(&b'/') {
                        // Line comment: drop the rest of the line.
                        break;
                    } else if c == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        self.state = LexState::Block(1);
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else if c == b'"' {
                        self.state = LexState::Str;
                        out.push(b' ');
                        i += 1;
                    } else if c == b'r' && matches!(bytes.get(i + 1), Some(b'"') | Some(b'#')) {
                        // Raw string r"..." or r#"..."#
                        let mut hashes = 0u8;
                        let mut j = i + 1;
                        while bytes.get(j) == Some(&b'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if bytes.get(j) == Some(&b'"') {
                            self.state = LexState::RawStr(hashes);
                            out.resize(out.len() + (j - i + 1), b' ');
                            i = j + 1;
                        } else {
                            out.push(c);
                            i += 1;
                        }
                    } else if c == b'\'' {
                        // Char literal or lifetime.
                        if bytes.get(i + 1) == Some(&b'\\') {
                            // Escaped char literal: blank to the closing quote.
                            let mut j = i + 2;
                            while j < bytes.len() && bytes[j] != b'\'' {
                                j += 1;
                            }
                            let end = j.min(bytes.len() - 1);
                            out.resize(out.len() + (end - i + 1), b' ');
                            i = j + 1;
                        } else if bytes.get(i + 2) == Some(&b'\'') {
                            out.extend_from_slice(b"   ");
                            i += 3;
                        } else {
                            // Lifetime: keep as-is.
                            out.push(c);
                            i += 1;
                        }
                    } else {
                        out.push(c);
                        i += 1;
                    }
                }
                LexState::Block(depth) => {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        self.state = LexState::Block(depth + 1);
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        self.state = if depth == 1 {
                            LexState::Normal
                        } else {
                            LexState::Block(depth - 1)
                        };
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else {
                        out.push(b' ');
                        i += 1;
                    }
                }
                LexState::Str => {
                    if bytes[i] == b'\\' {
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else if bytes[i] == b'"' {
                        self.state = LexState::Normal;
                        out.push(b' ');
                        i += 1;
                    } else {
                        out.push(b' ');
                        i += 1;
                    }
                }
                LexState::RawStr(hashes) => {
                    if bytes[i] == b'"' {
                        let mut ok = true;
                        for k in 0..hashes as usize {
                            if bytes.get(i + 1 + k) != Some(&b'#') {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            self.state = LexState::Normal;
                            out.resize(out.len() + 1 + hashes as usize, b' ');
                            i += 1 + hashes as usize;
                            continue;
                        }
                    }
                    out.push(b' ');
                    i += 1;
                }
            }
        }
        String::from_utf8_lossy(&out).into_owned()
    }
}

/// Whether the finding on `line` (0-based index into `raw_lines`) is
/// suppressed by an `// audit:allow(<rule>)` marker on the same line or the
/// line above.
fn is_allowed(rule: &str, raw_lines: &[&str], line: usize) -> bool {
    let marker = format!("audit:allow({rule})");
    if raw_lines[line].contains(&marker) {
        return true;
    }
    if line > 0 {
        let prev = raw_lines[line - 1].trim_start();
        if prev.starts_with("//") && prev.contains(&marker) {
            return true;
        }
    }
    false
}

/// Whether `code` contains `==` or `!=` adjacent to a float literal
/// (`1.0 == x`, `x == 0.5`, …).
fn has_float_literal_eq(code: &str) -> bool {
    let bytes = code.as_bytes();
    for (i, w) in bytes.windows(2).enumerate() {
        if (w == b"==" || w == b"!=")
            && bytes.get(i.wrapping_sub(1)) != Some(&b'=')
            && bytes.get(i + 2) != Some(&b'=')
        {
            let left = code[..i].trim_end();
            let right = code[i + 2..].trim_start();
            if ends_with_float_literal(left) || starts_with_float_literal(right) {
                return true;
            }
        }
    }
    false
}

fn starts_with_float_literal(s: &str) -> bool {
    let s = s.strip_prefix('-').unwrap_or(s);
    let mut chars = s.chars();
    let mut saw_digit = false;
    for c in chars.by_ref() {
        if c.is_ascii_digit() {
            saw_digit = true;
        } else if c == '.' && saw_digit {
            // `1.` or `1.5`
            return true;
        } else if c == '_' && saw_digit {
            continue;
        } else {
            return false;
        }
    }
    false
}

fn ends_with_float_literal(s: &str) -> bool {
    let mut rev = s.chars().rev();
    let mut saw_digit = false;
    for c in rev.by_ref() {
        if c.is_ascii_digit() {
            saw_digit = true;
        } else if c == '.' && saw_digit {
            // Need a digit before the dot too (`.5` alone is a member access
            // misparse we ignore).
            return true;
        } else if c == '_' && saw_digit {
            continue;
        } else {
            return false;
        }
    }
    false
}

/// Whether the sanitized line introduces a function definition.
fn is_fn_def(code: &str) -> bool {
    let t = code.trim_start();
    for prefix in ["fn ", "pub fn ", "async fn ", "const fn ", "unsafe fn "] {
        if t.starts_with(prefix) {
            return true;
        }
    }
    // `pub(crate) fn`, `pub const fn`, `pub async unsafe fn`, ...
    if let Some(pos) = code.find("fn ") {
        let before = code[..pos].trim();
        if before.is_empty() {
            return true;
        }
        let ok = before.split_whitespace().all(|w| {
            w == "pub"
                || w.starts_with("pub(")
                || w == "const"
                || w == "async"
                || w == "unsafe"
                || w.starts_with("extern")
        });
        return ok && (code[pos + 3..].contains('(') || code[pos + 3..].is_empty());
    }
    false
}

/// Whether the sanitized line declares a documented-API candidate
/// (`pub fn`, possibly with `const` / `async` / `unsafe` qualifiers).
fn is_pub_fn_def(code: &str) -> bool {
    let t = code.trim_start();
    if !t.starts_with("pub ") {
        return false;
    }
    let rest = &t[4..];
    let rest = rest.trim_start_matches(|c: char| c.is_whitespace());
    let mut r = rest;
    loop {
        if let Some(x) = r.strip_prefix("const ") {
            r = x;
        } else if let Some(x) = r.strip_prefix("async ") {
            r = x;
        } else if let Some(x) = r.strip_prefix("unsafe ") {
            r = x;
        } else {
            break;
        }
    }
    r.starts_with("fn ")
}

struct FnFrame {
    depth: usize,
    push_lines: Vec<usize>,
    has_prune: bool,
}

/// Advances the brace/test/function tracking state over one sanitized line.
#[allow(clippy::too_many_arguments)]
fn track_braces(
    code: &str,
    depth: &mut usize,
    test_stack: &mut Vec<usize>,
    pending_test_attr: &mut bool,
    pending_fn: &mut bool,
    fn_stack: &mut Vec<FnFrame>,
    resolved_pushes: &mut HashSet<usize>,
) {
    for c in code.chars() {
        match c {
            '{' => {
                if *pending_test_attr {
                    test_stack.push(*depth);
                    *pending_test_attr = false;
                }
                if *pending_fn {
                    fn_stack.push(FnFrame {
                        depth: *depth,
                        push_lines: Vec::new(),
                        has_prune: false,
                    });
                    *pending_fn = false;
                }
                *depth += 1;
            }
            '}' => {
                *depth = depth.saturating_sub(1);
                if test_stack.last() == Some(depth) {
                    test_stack.pop();
                }
                while fn_stack.last().map(|f| f.depth) == Some(*depth) {
                    let frame = fn_stack.pop().expect("frame checked above");
                    if frame.has_prune {
                        resolved_pushes.extend(frame.push_lines);
                    }
                }
            }
            ';' => {
                // `fn f();` in a trait: no body, drop the pending flag.
                *pending_fn = false;
            }
            _ => {}
        }
    }
}

/// Scans one file's source text and returns every rule finding.
///
/// `path` must be workspace-relative with forward slashes. The DP hygiene
/// rules only fire for files inside the DP hot-path crates (see
/// [`DP_CRATE_PREFIXES`]); the [`catch-unwind`](RULE_CATCH_UNWIND) rule
/// fires everywhere except under [`RESILIENCE_PREFIX`].
pub fn scan_source(path: &str, source: &str) -> Vec<Violation> {
    let full = is_dp_crate_path(path);
    let catch_rule_applies = !path.starts_with(RESILIENCE_PREFIX);
    let rc_rule_applies = RC_FORBIDDEN_PREFIXES.iter().any(|p| path.starts_with(p));
    if !full && !catch_rule_applies {
        return Vec::new();
    }
    // Integration tests and benches are test code in their entirety even
    // though they never spell `#[cfg(test)]`.
    let whole_file_is_test = path.contains("/tests/") || path.contains("/benches/");
    let raw_lines: Vec<&str> = source.lines().collect();
    let mut sanitizer = Sanitizer::new();
    let code_lines: Vec<String> = raw_lines
        .iter()
        .map(|l| sanitizer.sanitize_line(l))
        .collect();

    let mut violations = Vec::new();
    let mut depth: usize = 0;
    let mut test_stack: Vec<usize> = Vec::new();
    let mut pending_test_attr = false;
    let mut pending_fn = false;
    let mut fn_stack: Vec<FnFrame> = Vec::new();
    let mut resolved_pushes: HashSet<usize> = HashSet::new();
    let mut all_pushes: Vec<(usize, bool)> = Vec::new(); // (line idx, in_test)

    let report = |rule: &'static str, line: usize, raw_lines: &[&str], out: &mut Vec<Violation>| {
        if !is_allowed(rule, raw_lines, line) {
            out.push(Violation {
                rule,
                path: path.to_owned(),
                line: line + 1,
                snippet: raw_lines[line].trim().to_owned(),
            });
        }
    };

    for (idx, code) in code_lines.iter().enumerate() {
        let in_test = whole_file_is_test || !test_stack.is_empty();

        // `#[cfg(test)]` and compound forms like
        // `#[cfg(all(test, feature = "..."))]`.
        if code.contains("#[cfg(test)]") || code.contains("cfg(all(test") {
            pending_test_attr = true;
        }
        if is_fn_def(code) {
            pending_fn = true;
        }

        // Workspace-wide rule: panic containment belongs to the resilience
        // driver alone. Test code may assert on panics.
        if catch_rule_applies && !in_test && code.contains("catch_unwind") {
            report(RULE_CATCH_UNWIND, idx, &raw_lines, &mut violations);
        }

        // `Rc` would poison Send-ness for the parallel DP; test code is
        // held to the same bar so a test helper can never hand an `Rc`
        // back into engine structures.
        if rc_rule_applies && mentions_rc(code) {
            report(RULE_NO_RC_IN_DP, idx, &raw_lines, &mut violations);
        }

        if !full {
            // Non-DP crates get only the workspace-wide rule; still run the
            // brace tracking below so `in_test` stays accurate.
            track_braces(
                code,
                &mut depth,
                &mut test_stack,
                &mut pending_test_attr,
                &mut pending_fn,
                &mut fn_stack,
                &mut resolved_pushes,
            );
            continue;
        }

        // Per-line pattern rules.
        if code.contains(".unwrap()") {
            report(RULE_NO_UNWRAP, idx, &raw_lines, &mut violations);
        }
        // The sanitizer blanks string contents, so an empty expect message
        // shows up as `.expect( )` / `.expect(  )` (quotes blanked too);
        // check the raw line for the literal empty string instead.
        if code.contains(".expect(") && raw_lines[idx].contains(".expect(\"\")") {
            report(RULE_EMPTY_EXPECT, idx, &raw_lines, &mut violations);
        }
        if !in_test
            && (code.contains("panic!")
                || code.contains("unimplemented!")
                || code.contains("todo!("))
        {
            report(RULE_PANIC, idx, &raw_lines, &mut violations);
        }
        if code.contains(".partial_cmp(") || code.contains(".total_cmp(") {
            report(RULE_FLOAT_CMP, idx, &raw_lines, &mut violations);
        }
        if !in_test && has_float_literal_eq(code) {
            report(RULE_FLOAT_EQ, idx, &raw_lines, &mut violations);
        }
        if code.contains(".push(CurvePoint") {
            if is_allowed(RULE_PUSH_WITHOUT_PRUNE, &raw_lines, idx) {
                resolved_pushes.insert(idx);
            }
            for frame in &mut fn_stack {
                frame.push_lines.push(idx);
            }
            all_pushes.push((idx, in_test));
        }
        if code.contains("prune(") {
            for frame in &mut fn_stack {
                frame.has_prune = true;
            }
        }
        if !in_test && is_pub_fn_def(code) {
            // Walk back over attributes and blank lines to the nearest
            // comment; require a doc comment.
            let mut j = idx;
            let mut documented = false;
            while j > 0 {
                j -= 1;
                let prev = raw_lines[j].trim();
                if prev.is_empty()
                    || prev.starts_with("#[")
                    || prev.ends_with(")]")
                    || prev.ends_with("]") && prev.contains("#[")
                {
                    continue;
                }
                documented =
                    prev.starts_with("///") || prev.starts_with("//!") || prev.ends_with("*/");
                break;
            }
            if !documented {
                report(RULE_DOC_PUB_FN, idx, &raw_lines, &mut violations);
            }
        }

        // Brace tracking (after pattern rules so a rule on the `}` line of
        // a test module still counts as in-test).
        track_braces(
            code,
            &mut depth,
            &mut test_stack,
            &mut pending_test_attr,
            &mut pending_fn,
            &mut fn_stack,
            &mut resolved_pushes,
        );
    }
    // File ended while frames were open (unbalanced braces): treat their
    // pushes as resolved rather than guessing.
    for frame in fn_stack {
        if frame.has_prune {
            resolved_pushes.extend(frame.push_lines);
        }
    }

    for (idx, in_test) in all_pushes {
        if !in_test && !resolved_pushes.contains(&idx) {
            report(RULE_PUSH_WITHOUT_PRUNE, idx, &raw_lines, &mut violations);
        }
    }

    violations.sort_by_key(|v| v.line);
    violations
}

/// Parsed baseline: `(rule, path) -> permitted count`.
pub type Baseline = BTreeMap<(String, String), usize>;

/// Parses a baseline file (`<rule> <path> <count>` per line; `#` comments
/// and blank lines ignored).
pub fn parse_baseline(text: &str) -> Result<Baseline, String> {
    let mut map = Baseline::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(rule), Some(path), Some(count)) = (parts.next(), parts.next(), parts.next())
        else {
            return Err(format!(
                "baseline line {}: expected `<rule> <path> <count>`",
                i + 1
            ));
        };
        let count: usize = count
            .parse()
            .map_err(|_| format!("baseline line {}: bad count `{count}`", i + 1))?;
        map.insert((rule.to_owned(), path.to_owned()), count);
    }
    Ok(map)
}

/// Renders violations as a baseline file body (sorted, deduplicated into
/// per-file counts).
pub fn format_baseline(violations: &[Violation]) -> String {
    let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
    for v in violations {
        *counts
            .entry((v.rule.to_owned(), v.path.clone()))
            .or_insert(0) += 1;
    }
    let mut out = String::from(
        "# merlin-audit baseline ratchet: `<rule> <path> <count>` per line.\n\
         # Counts may go down (tighten the ratchet with --update-baseline)\n\
         # but the auditor fails if any count goes up.\n",
    );
    for ((rule, path), count) in counts {
        out.push_str(&format!("{rule} {path} {count}\n"));
    }
    out
}

/// Outcome of comparing findings to the baseline.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AuditOutcome {
    /// Findings exceeding the baseline, grouped by `(rule, path)` — the
    /// audit fails if this is non-empty.
    pub over: Vec<Violation>,
    /// Baseline entries whose actual count dropped (informational: the
    /// ratchet can be tightened).
    pub improved: Vec<(String, String, usize, usize)>,
}

/// Compares findings against the baseline ratchet.
///
/// A `(rule, path)` group fails when its live count exceeds the baselined
/// count; all of the group's findings are reported so the offender is easy
/// to locate. Groups at or under their baseline pass; under-count groups
/// are surfaced as `improved` so the ratchet can be tightened.
pub fn check_against_baseline(violations: &[Violation], baseline: &Baseline) -> AuditOutcome {
    let mut groups: BTreeMap<(String, String), Vec<&Violation>> = BTreeMap::new();
    for v in violations {
        groups
            .entry((v.rule.to_owned(), v.path.clone()))
            .or_default()
            .push(v);
    }
    let mut outcome = AuditOutcome::default();
    for (key, group) in &groups {
        let permitted = baseline.get(key).copied().unwrap_or(0);
        if group.len() > permitted {
            outcome.over.extend(group.iter().map(|v| (*v).clone()));
        } else if group.len() < permitted {
            outcome
                .improved
                .push((key.0.clone(), key.1.clone(), permitted, group.len()));
        }
    }
    for (key, &permitted) in baseline {
        if !groups.contains_key(key) && permitted > 0 {
            outcome
                .improved
                .push((key.0.clone(), key.1.clone(), permitted, 0));
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    const DP: &str = "crates/core/src/fixture.rs";

    fn rules_of(violations: &[Violation]) -> Vec<&'static str> {
        violations.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn sanitizer_blanks_strings_and_comments() {
        let mut s = Sanitizer::new();
        let out = s.sanitize_line(r#"let x = "call .unwrap() now"; // .unwrap()"#);
        assert!(!out.contains(".unwrap()"));
        assert!(out.contains("let x ="));
    }

    #[test]
    fn sanitizer_tracks_block_comments_across_lines() {
        let mut s = Sanitizer::new();
        let a = s.sanitize_line("/* start .unwrap()");
        let b = s.sanitize_line("   still .unwrap() */ real.unwrap()");
        assert!(!a.contains("unwrap"));
        assert!(b.contains("real.unwrap()"));
        assert!(!b.contains("still"));
    }

    #[test]
    fn sanitizer_handles_char_literals_and_lifetimes() {
        let mut s = Sanitizer::new();
        let out = s.sanitize_line("fn f<'a>(c: char) -> bool { c == '\"' }");
        assert!(out.contains("'a"));
        assert!(!out.contains('"'));
    }

    #[test]
    fn trace_crate_gets_full_hygiene() {
        assert!(is_dp_crate_path("crates/trace/src/lib.rs"));
        // The sanctioned collector pattern — fallible TLS access inside a
        // Drop impl — is clean under every rule; a panicking Drop is not.
        let ok = "impl Drop for SpanGuard {\n\
                  \x20   fn drop(&mut self) {\n\
                  \x20       let _ = COLLECTOR.try_with(|c| c.try_borrow_mut().ok().map(|_| ()));\n\
                  \x20   }\n\
                  }\n";
        assert!(scan_source("crates/trace/src/lib.rs", ok).is_empty());
        let bad = "impl Drop for SpanGuard {\n\
                   \x20   fn drop(&mut self) {\n\
                   \x20       COLLECTOR.with(|c| c.borrow_mut()).unwrap();\n\
                   \x20   }\n\
                   }\n";
        assert_eq!(
            rules_of(&scan_source("crates/trace/src/lib.rs", bad)),
            vec![RULE_NO_UNWRAP]
        );
    }

    #[test]
    fn rc_flagged_in_core_and_curves_only() {
        for src in [
            "use std::rc::Rc;\n",
            "pub type CurveFam = Rc<Vec<Curve>>;\n",
            "fn f() { let fam = Rc::new(Vec::new()); }\n",
        ] {
            assert_eq!(rules_of(&scan_source(DP, src)), vec![RULE_NO_RC_IN_DP]);
            assert_eq!(
                rules_of(&scan_source("crates/curves/src/fixture.rs", src)),
                vec![RULE_NO_RC_IN_DP]
            );
            // Other DP crates keep their single-threaded engines; the
            // Send-ness rule stops at the sharded ones.
            assert!(scan_source("crates/ptree/src/fixture.rs", src).is_empty());
            assert!(scan_source("crates/flows/src/fixture.rs", src).is_empty());
        }
        // Flagged in test code too: a test helper must not hand an Rc
        // back into engine structures.
        let test_src =
            "#[cfg(test)]\nmod tests {\n    fn t() { let _ = std::rc::Rc::new(3); }\n}\n";
        assert_eq!(rules_of(&scan_source(DP, test_src)), vec![RULE_NO_RC_IN_DP]);
    }

    #[test]
    fn rc_rule_ignores_arc_and_lookalikes() {
        let src = "use std::sync::Arc;\n\
                   fn f(c: &StarCache) -> Arc<Vec<Curve>> { Arc::new(vec![]) }\n\
                   struct MyRc;\n\
                   fn g(x: RcLike, y: MyRc) {}\n";
        assert!(scan_source("crates/curves/src/fixture.rs", src).is_empty());
    }

    #[test]
    fn rc_rule_allow_marker_suppresses() {
        let src = "// audit:allow(no-rc-in-dp): doc example, never crosses a thread\n\
                   use std::rc::Rc;\n";
        assert!(scan_source(DP, src).is_empty());
    }

    #[test]
    fn unwrap_flagged_even_in_tests() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); }\n}\n";
        assert_eq!(rules_of(&scan_source(DP, src)), vec![RULE_NO_UNWRAP]);
    }

    #[test]
    fn unwrap_in_string_not_flagged() {
        let src = "fn f() { let m = \"please .unwrap() me\"; }\n";
        assert!(scan_source(DP, src).is_empty());
    }

    #[test]
    fn non_dp_crate_is_exempt() {
        let src = "fn f() { x.unwrap(); panic!(\"no\"); }\n";
        assert!(scan_source("crates/geom/src/fixture.rs", src).is_empty());
    }

    #[test]
    fn catch_unwind_flagged_everywhere_but_resilience() {
        let src = "fn f() { let r = std::panic::catch_unwind(|| g()); }\n";
        // Non-DP crate: the workspace-wide rule still fires there.
        assert_eq!(
            rules_of(&scan_source("crates/flows/src/fixture.rs", src)),
            vec![RULE_CATCH_UNWIND]
        );
        // DP crate: fires alongside the usual hygiene rules.
        assert_eq!(rules_of(&scan_source(DP, src)), vec![RULE_CATCH_UNWIND]);
        // The sanctioned panic boundary is exempt.
        assert!(scan_source("crates/resilience/src/isolate.rs", src).is_empty());
    }

    #[test]
    fn catch_unwind_allowed_in_test_code() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { let _ = std::panic::catch_unwind(|| g()); }\n}\n";
        assert!(scan_source("crates/flows/src/fixture.rs", src).is_empty());
        // Compound `#[cfg(all(test, ...))]` modules count as test code too.
        let compound = "#[cfg(all(test, feature = \"fault-inject\"))]\nmod tests {\n    fn t() { let _ = std::panic::catch_unwind(|| g()); }\n}\n";
        assert!(scan_source("crates/curves/src/fixture.rs", compound).is_empty());
        // Integration-test files are test code in their entirety.
        let plain = "fn t() { let _ = std::panic::catch_unwind(|| g()); }\n";
        assert!(scan_source("crates/flows/tests/fixture.rs", plain).is_empty());
    }

    #[test]
    fn catch_unwind_allow_marker_suppresses() {
        let src = "fn f() { std::panic::catch_unwind(|| g()); } // audit:allow(catch-unwind)\n";
        assert!(scan_source("crates/flows/src/fixture.rs", src).is_empty());
    }

    #[test]
    fn empty_expect_flagged() {
        let src = "fn f() { x.expect(\"\"); }\n";
        assert_eq!(rules_of(&scan_source(DP, src)), vec![RULE_EMPTY_EXPECT]);
    }

    #[test]
    fn nonempty_expect_ok() {
        let src = "fn f() { x.expect(\"queue is non-empty by loop guard\"); }\n";
        assert!(scan_source(DP, src).is_empty());
    }

    #[test]
    fn panic_flagged_outside_tests_only() {
        let src = "fn f() { panic!(\"boom\"); }\n";
        assert_eq!(rules_of(&scan_source(DP, src)), vec![RULE_PANIC]);
        let test_src =
            "#[cfg(test)]\nmod tests {\n    fn t() { panic!(\"expected in tests\"); }\n}\n";
        assert!(scan_source(DP, test_src).is_empty());
    }

    #[test]
    fn float_cmp_flagged() {
        let src = "fn f() { a.partial_cmp(&b); }\n";
        assert_eq!(rules_of(&scan_source(DP, src)), vec![RULE_FLOAT_CMP]);
        let src2 = "fn f() { a.total_cmp(&b); }\n";
        assert_eq!(rules_of(&scan_source(DP, src2)), vec![RULE_FLOAT_CMP]);
    }

    #[test]
    fn float_eq_flagged_outside_tests() {
        let src = "fn f() { if x == 0.0 { y(); } }\n";
        assert_eq!(rules_of(&scan_source(DP, src)), vec![RULE_FLOAT_EQ]);
        let src2 = "fn f() { if 1.5 != x { y(); } }\n";
        assert_eq!(rules_of(&scan_source(DP, src2)), vec![RULE_FLOAT_EQ]);
        let int_src = "fn f() { if x == 0 { y(); } }\n";
        assert!(scan_source(DP, int_src).is_empty());
    }

    #[test]
    fn push_without_prune_flagged() {
        let src = "fn f(c: &mut Curve) {\n    c.push(CurvePoint::new(1, 2.0, 3, p));\n}\n";
        assert_eq!(
            rules_of(&scan_source(DP, src)),
            vec![RULE_PUSH_WITHOUT_PRUNE]
        );
    }

    #[test]
    fn push_with_prune_in_same_fn_ok() {
        let src =
            "fn f(c: &mut Curve) {\n    c.push(CurvePoint::new(1, 2.0, 3, p));\n    c.prune();\n}\n";
        assert!(scan_source(DP, src).is_empty());
    }

    #[test]
    fn push_in_test_code_ok() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t(c: &mut Curve) { c.push(CurvePoint::new(1, 2.0, 3, p)); }\n}\n";
        assert!(scan_source(DP, src).is_empty());
    }

    #[test]
    fn integration_test_files_are_test_code() {
        let src = "fn helper() { panic!(\"fine in tests\"); }\n\
                   #[test]\nfn t(c: &mut Curve) { c.push(CurvePoint::new(1, 2.0, 3, p)); }\n";
        assert!(scan_source("crates/curves/tests/props.rs", src).is_empty());
        // ... but unwrap is still banned there.
        let with_unwrap = "#[test]\nfn t() { x.unwrap(); }\n";
        assert_eq!(
            rules_of(&scan_source("crates/curves/tests/props.rs", with_unwrap)),
            vec![RULE_NO_UNWRAP]
        );
    }

    #[test]
    fn undocumented_pub_fn_flagged() {
        let src = "impl X {\n    pub fn naked(&self) {}\n}\n";
        assert_eq!(rules_of(&scan_source(DP, src)), vec![RULE_DOC_PUB_FN]);
    }

    #[test]
    fn documented_pub_fn_ok() {
        let src =
            "impl X {\n    /// Does the thing.\n    #[inline]\n    pub fn clothed(&self) {}\n}\n";
        assert!(scan_source(DP, src).is_empty());
    }

    #[test]
    fn private_fn_needs_no_doc() {
        let src = "fn helper() {}\n";
        assert!(scan_source(DP, src).is_empty());
    }

    #[test]
    fn allow_marker_suppresses_same_line_and_preceding_line() {
        let same = "fn f() { x.unwrap(); } // audit:allow(no-unwrap)\n";
        assert!(scan_source(DP, same).is_empty());
        let above =
            "// audit:allow(panic): unreachable by construction\nfn f() { panic!(\"no\"); }\n";
        assert!(scan_source(DP, above).is_empty());
        let wrong_rule = "// audit:allow(no-unwrap)\nfn f() { panic!(\"no\"); }\n";
        assert_eq!(rules_of(&scan_source(DP, wrong_rule)), vec![RULE_PANIC]);
    }

    #[test]
    fn baseline_round_trip_and_ratchet() {
        let violations = vec![
            Violation {
                rule: RULE_NO_UNWRAP,
                path: "crates/core/src/a.rs".into(),
                line: 3,
                snippet: "x.unwrap()".into(),
            },
            Violation {
                rule: RULE_NO_UNWRAP,
                path: "crates/core/src/a.rs".into(),
                line: 9,
                snippet: "y.unwrap()".into(),
            },
        ];
        let text = format_baseline(&violations);
        let baseline = parse_baseline(&text).expect("formatted baseline always parses");
        assert_eq!(
            baseline.get(&(RULE_NO_UNWRAP.into(), "crates/core/src/a.rs".into())),
            Some(&2)
        );
        // At baseline: passes.
        let ok = check_against_baseline(&violations, &baseline);
        assert!(ok.over.is_empty() && ok.improved.is_empty());
        // One more: fails, reporting the whole group.
        let mut more = violations.clone();
        more.push(Violation {
            rule: RULE_NO_UNWRAP,
            path: "crates/core/src/a.rs".into(),
            line: 12,
            snippet: "z.unwrap()".into(),
        });
        assert_eq!(check_against_baseline(&more, &baseline).over.len(), 3);
        // One fewer: improved, not failing.
        let fewer = &violations[..1];
        let better = check_against_baseline(fewer, &baseline);
        assert!(better.over.is_empty());
        assert_eq!(better.improved.len(), 1);
    }

    #[test]
    fn baseline_rejects_malformed_lines() {
        assert!(parse_baseline("no-unwrap crates/a.rs").is_err());
        assert!(parse_baseline("no-unwrap crates/a.rs three").is_err());
        assert!(parse_baseline("# comment\n\nno-unwrap crates/a.rs 3\n").is_ok());
    }

    #[test]
    fn seeded_violation_fails_with_empty_baseline() {
        // The end-to-end property the CI gate relies on: a fresh violation
        // with no baseline entry makes the audit fail.
        let src = "fn f() { x.unwrap(); }\n";
        let violations = scan_source(DP, src);
        let outcome = check_against_baseline(&violations, &Baseline::new());
        assert_eq!(outcome.over.len(), 1);
        assert_eq!(outcome.over[0].rule, RULE_NO_UNWRAP);
    }
}
