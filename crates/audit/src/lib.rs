//! Workspace invariant auditor — token-level semantic analysis engine.
//!
//! A dependency-free analysis pass over the workspace's Rust sources. A
//! hand-rolled lossless lexer ([`lexer`]) feeds a token-stream rule
//! framework ([`rules`]) with expression-window matching, per-rule
//! severity, fingerprinted baselines ([`engine`]) and machine-readable
//! SARIF/JSON output ([`output`]).
//!
//! ## Rules
//!
//! The DP hot-path crates (`core`, `curves`, `ptree`, `lttree`,
//! `vanginneken`, plus `trace`, whose RAII guards run inside every
//! instrumented hot loop, and `audit` itself) are held to the full
//! hygiene bar:
//!
//! * `no-unwrap` — no `.unwrap()`; use `.expect("<why the invariant
//!   holds>")` or real control flow,
//! * `empty-expect` — `.expect("")` explains nothing,
//! * `panic` — no `panic!` outside `#[cfg(test)]`,
//! * `float-cmp` — no raw `partial_cmp` / `total_cmp` on delays; go
//!   through `merlin_tech::units::ps_cmp` and friends,
//! * `float-eq` — no `==` against float literals outside tests,
//! * `push-without-prune` — a function that pushes `CurvePoint`s must
//!   also reach a `prune()` call,
//! * `doc-pub-fn` — every non-test `pub fn` carries a doc comment,
//! * `lossy-cast` — `as` casts that can truncate (int narrowing,
//!   float→int without an explicit `round`/`floor`/`ceil`/`clamp`).
//!
//! Rules targeting the bug classes this repo has actually shipped:
//!
//! * `unchecked-arith` — bare subtraction on `len()`/count/index
//!   expressions with no `saturating_`/`checked_` call or emptiness
//!   guard (the PR 5 empty-buffer-library underflow),
//! * `duration-arith` — unclamped `Duration` multiplication/addition in
//!   the retry/backoff crates (the PR 5 `backoff` overflow panic),
//! * `atomic-ordering` — every atomic access names an explicit
//!   `Ordering`; `SeqCst` in the DP hot path is flagged,
//! * `panic-in-drop` — no panicking call inside `impl Drop`, anywhere,
//!   tests included (the trace collector's fallible-TLS discipline),
//! * `trace-name-registry` — every `merlin_trace` span/counter/histogram
//!   name used in code appears in the `docs/OBSERVABILITY.md` registry
//!   and vice versa,
//! * `catch-unwind` — `catch_unwind` outside test code is forbidden
//!   everywhere except `crates/resilience/`,
//! * `no-rc-in-dp` — `std::rc::Rc` is not `Send`; the level-sharded
//!   parallel DP crates (`core`, `curves`) must use `Arc`.
//!
//! ## Allow escapes and the baseline ratchet
//!
//! Any finding can be suppressed in place with `// audit:allow(<rule>)`
//! on the offending line, the comment line above it, or above the
//! attribute stack (`#[derive(...)]`, `#[cfg(...)]`) of the offending
//! item. A marker that suppresses nothing is itself a finding
//! (`stale-allow`). Pre-existing findings live in a checked-in baseline
//! (`audit-baseline.txt`) keyed by **fingerprint** — a hash of rule,
//! path and the finding's local token context, stable across unrelated
//! line shifts — so the baseline acts as a ratchet that may shrink but
//! never silently grow. The legacy count-based baseline format is
//! auto-migrated.

pub mod engine;
pub mod lexer;
pub mod output;
pub mod rules;

pub use engine::{
    check_against_baseline, collect_allow_markers, fingerprint, fingerprint_context, fnv1a64,
    format_baseline, parse_baseline, stamp_fingerprint, stamp_fingerprint_from_snippet,
    AllowMarker, AuditOutcome, Baseline, Severity, Violation,
};
pub use lexer::{lex, sanitize_source, TokKind, Token};
pub use output::{json_report, sarif_report};
pub use rules::{
    is_dp_crate_path, is_trace_name_shaped, parse_trace_registry, rule_info, RuleInfo, ALL_RULES,
    DP_CRATE_PREFIXES, RC_FORBIDDEN_PREFIXES, RESILIENCE_PREFIX, RULES, RULE_ATOMIC_ORDERING,
    RULE_CATCH_UNWIND, RULE_DOC_PUB_FN, RULE_DURATION_ARITH, RULE_EMPTY_EXPECT, RULE_FLOAT_CMP,
    RULE_FLOAT_EQ, RULE_LOSSY_CAST, RULE_NO_RAW_EXIT, RULE_NO_RC_IN_DP, RULE_NO_UNWRAP, RULE_PANIC,
    RULE_PANIC_IN_DROP, RULE_PUSH_WITHOUT_PRUNE, RULE_STALE_ALLOW, RULE_TRACE_NAME_REGISTRY,
    RULE_UNCHECKED_ARITH,
};

use std::collections::BTreeSet;

/// Audits a set of files as one workspace.
///
/// `files` holds `(workspace-relative path, source text)` pairs.
/// `registry_doc`, when present, is the `(path, text)` of the
/// observability catalog; it enables the global `trace-name-registry`
/// rule. Findings come back allow-filtered, fingerprinted and sorted by
/// `(path, line, rule)`; unused `audit:allow` markers surface as
/// `stale-allow` findings.
pub fn audit_files(
    files: &[(String, String)],
    registry_doc: Option<(&str, &str)>,
) -> Vec<Violation> {
    struct FileState<'a> {
        path: &'a str,
        src: &'a str,
        tokens: Vec<Token>,
        markers: Vec<AllowMarker>,
        findings: Vec<Violation>,
    }

    let mut states: Vec<FileState<'_>> = Vec::with_capacity(files.len());
    // (state index, line, name) of precise trace-emit call sites.
    let mut call_sites: Vec<(usize, usize, String)> = Vec::new();
    // Every trace-name-shaped literal seen anywhere in non-test code.
    let mut mentioned: BTreeSet<String> = BTreeSet::new();

    for (path, src) in files {
        let tokens = lex(src);
        let raw_lines: Vec<&str> = src.lines().collect();
        let sanitized = sanitize_source(src);
        let code_lines: Vec<String> = sanitized.lines().map(str::to_owned).collect();

        let (mut findings, in_test) = rules::legacy_line_rules(path, &raw_lines, &code_lines);
        let ctoks = rules::code_tokens(src, &tokens);
        rules::rule_unchecked_arith(path, &raw_lines, &ctoks, &in_test, &mut findings);
        rules::rule_duration_arith(path, &raw_lines, &ctoks, &in_test, &mut findings);
        rules::rule_lossy_cast(path, &raw_lines, &ctoks, &in_test, &mut findings);
        rules::rule_atomic_ordering(path, &raw_lines, &ctoks, &in_test, &mut findings);
        rules::rule_panic_in_drop(path, &raw_lines, &ctoks, &mut findings);
        rules::rule_no_raw_exit(path, &raw_lines, &ctoks, &in_test, &mut findings);

        if registry_doc.is_some() {
            if let Some(names) = rules::collect_trace_names(path, &ctoks, &in_test) {
                for (line, name) in names.call_sites {
                    mentioned.insert(name.clone());
                    call_sites.push((states.len(), line, name));
                }
                mentioned.extend(names.mentioned);
            }
        }

        let markers = collect_allow_markers(src, &tokens);
        states.push(FileState {
            path,
            src,
            tokens,
            markers,
            findings,
        });
    }

    let mut all: Vec<Violation> = Vec::new();

    if let Some((doc_path, doc_text)) = registry_doc {
        let registry = parse_trace_registry(doc_text);
        let registered: BTreeSet<&str> = registry.iter().map(|(_, n)| n.as_str()).collect();
        for (sidx, line, name) in &call_sites {
            if !registered.contains(name.as_str()) {
                let path = states[*sidx].path.to_owned();
                states[*sidx].findings.push(Violation {
                    rule: RULE_TRACE_NAME_REGISTRY,
                    path,
                    line: *line,
                    snippet: format!("trace name `{name}` missing from the registry"),
                    severity: Severity::Error,
                    fingerprint: String::new(),
                });
            }
        }
        for (doc_line, name) in &registry {
            if !mentioned.contains(name) {
                let mut v = Violation {
                    rule: RULE_TRACE_NAME_REGISTRY,
                    path: doc_path.to_owned(),
                    line: *doc_line,
                    snippet: format!("registry name `{name}` is not emitted anywhere in code"),
                    severity: Severity::Error,
                    fingerprint: String::new(),
                };
                stamp_fingerprint_from_snippet(&mut v);
                all.push(v);
            }
        }
    }

    for mut st in states {
        let raw_lines: Vec<&str> = st.src.lines().collect();
        let mut kept: Vec<Violation> = Vec::new();
        for v in st.findings.drain(..) {
            if !engine::is_allowed(v.rule, &raw_lines, &mut st.markers, v.line) {
                kept.push(v);
            }
        }
        for m in &st.markers {
            if !m.used {
                kept.push(Violation {
                    rule: RULE_STALE_ALLOW,
                    path: st.path.to_owned(),
                    line: m.line,
                    snippet: format!("audit:allow({}) suppresses nothing", m.rule),
                    severity: Severity::Warning,
                    fingerprint: String::new(),
                });
            }
        }
        for mut v in kept {
            if v.fingerprint.is_empty() {
                stamp_fingerprint(&mut v, st.src, &st.tokens);
            }
            all.push(v);
        }
    }

    all.sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    all
}

/// Scans one file's source text and returns every rule finding.
///
/// `path` must be workspace-relative with forward slashes. This is the
/// single-file convenience wrapper over [`audit_files`]; the global
/// `trace-name-registry` rule does not run here.
pub fn scan_source(path: &str, source: &str) -> Vec<Violation> {
    audit_files(&[(path.to_owned(), source.to_owned())], None)
}

#[cfg(test)]
mod tests {
    use super::*;

    const DP: &str = "crates/core/src/fixture.rs";

    fn rules_of(violations: &[Violation]) -> Vec<&'static str> {
        violations.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn trace_crate_gets_full_hygiene() {
        assert!(is_dp_crate_path("crates/trace/src/lib.rs"));
        // The sanctioned collector pattern — fallible TLS access inside a
        // Drop impl — is clean under every rule; a panicking Drop is not.
        let ok = "impl Drop for SpanGuard {\n\
                  \x20   fn drop(&mut self) {\n\
                  \x20       let _ = COLLECTOR.try_with(|c| c.try_borrow_mut().ok().map(|_| ()));\n\
                  \x20   }\n\
                  }\n";
        assert!(scan_source("crates/trace/src/lib.rs", ok).is_empty());
        let bad = "impl Drop for SpanGuard {\n\
                   \x20   fn drop(&mut self) {\n\
                   \x20       COLLECTOR.with(|c| c.borrow_mut()).unwrap();\n\
                   \x20   }\n\
                   }\n";
        // `no-unwrap` plus one `panic-in-drop` per panicking call
        // (`with`, `borrow_mut`, `unwrap`).
        assert_eq!(
            rules_of(&scan_source("crates/trace/src/lib.rs", bad)),
            vec![
                RULE_NO_UNWRAP,
                RULE_PANIC_IN_DROP,
                RULE_PANIC_IN_DROP,
                RULE_PANIC_IN_DROP
            ]
        );
    }

    #[test]
    fn rc_flagged_in_core_and_curves_only() {
        for src in [
            "use std::rc::Rc;\n",
            "pub type CurveFam = Rc<Vec<Curve>>;\n",
            "fn f() { let fam = Rc::new(Vec::new()); }\n",
        ] {
            assert_eq!(rules_of(&scan_source(DP, src)), vec![RULE_NO_RC_IN_DP]);
            assert_eq!(
                rules_of(&scan_source("crates/curves/src/fixture.rs", src)),
                vec![RULE_NO_RC_IN_DP]
            );
            // Other DP crates keep their single-threaded engines; the
            // Send-ness rule stops at the sharded ones.
            assert!(scan_source("crates/ptree/src/fixture.rs", src).is_empty());
            assert!(scan_source("crates/flows/src/fixture.rs", src).is_empty());
        }
        // Flagged in test code too: a test helper must not hand an Rc
        // back into engine structures.
        let test_src =
            "#[cfg(test)]\nmod tests {\n    fn t() { let _ = std::rc::Rc::new(3); }\n}\n";
        assert_eq!(rules_of(&scan_source(DP, test_src)), vec![RULE_NO_RC_IN_DP]);
    }

    #[test]
    fn rc_rule_ignores_arc_and_lookalikes() {
        let src = "use std::sync::Arc;\n\
                   fn f(c: &StarCache) -> Arc<Vec<Curve>> { Arc::new(vec![]) }\n\
                   struct MyRc;\n\
                   fn g(x: RcLike, y: MyRc) {}\n";
        assert!(scan_source("crates/curves/src/fixture.rs", src).is_empty());
    }

    #[test]
    fn rc_rule_allow_marker_suppresses() {
        let src = "// audit:allow(no-rc-in-dp): doc example, never crosses a thread\n\
                   use std::rc::Rc;\n";
        assert!(scan_source(DP, src).is_empty());
    }

    #[test]
    fn unwrap_flagged_even_in_tests() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); }\n}\n";
        assert_eq!(rules_of(&scan_source(DP, src)), vec![RULE_NO_UNWRAP]);
    }

    #[test]
    fn unwrap_in_string_not_flagged() {
        let src = "fn f() { let m = \"please .unwrap() me\"; }\n";
        assert!(scan_source(DP, src).is_empty());
    }

    #[test]
    fn non_dp_crate_is_exempt() {
        let src = "fn f() { x.unwrap(); panic!(\"no\"); }\n";
        assert!(scan_source("crates/geom/src/fixture.rs", src).is_empty());
    }

    #[test]
    fn catch_unwind_flagged_everywhere_but_resilience() {
        let src = "fn f() { let r = std::panic::catch_unwind(|| g()); }\n";
        // Non-DP crate: the workspace-wide rule still fires there.
        assert_eq!(
            rules_of(&scan_source("crates/flows/src/fixture.rs", src)),
            vec![RULE_CATCH_UNWIND]
        );
        // DP crate: fires alongside the usual hygiene rules.
        assert_eq!(rules_of(&scan_source(DP, src)), vec![RULE_CATCH_UNWIND]);
        // The sanctioned panic boundary is exempt.
        assert!(scan_source("crates/resilience/src/isolate.rs", src).is_empty());
    }

    #[test]
    fn catch_unwind_allowed_in_test_code() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { let _ = std::panic::catch_unwind(|| g()); }\n}\n";
        assert!(scan_source("crates/flows/src/fixture.rs", src).is_empty());
        // Compound `#[cfg(all(test, ...))]` modules count as test code too.
        let compound = "#[cfg(all(test, feature = \"fault-inject\"))]\nmod tests {\n    fn t() { let _ = std::panic::catch_unwind(|| g()); }\n}\n";
        assert!(scan_source("crates/curves/src/fixture.rs", compound).is_empty());
        // Integration-test files are test code in their entirety.
        let plain = "fn t() { let _ = std::panic::catch_unwind(|| g()); }\n";
        assert!(scan_source("crates/flows/tests/fixture.rs", plain).is_empty());
    }

    #[test]
    fn catch_unwind_allow_marker_suppresses() {
        let src = "fn f() { std::panic::catch_unwind(|| g()); } // audit:allow(catch-unwind)\n";
        assert!(scan_source("crates/flows/src/fixture.rs", src).is_empty());
    }

    #[test]
    fn empty_expect_flagged() {
        let src = "fn f() { x.expect(\"\"); }\n";
        assert_eq!(rules_of(&scan_source(DP, src)), vec![RULE_EMPTY_EXPECT]);
    }

    #[test]
    fn nonempty_expect_ok() {
        let src = "fn f() { x.expect(\"queue is non-empty by loop guard\"); }\n";
        assert!(scan_source(DP, src).is_empty());
    }

    #[test]
    fn panic_flagged_outside_tests_only() {
        let src = "fn f() { panic!(\"boom\"); }\n";
        assert_eq!(rules_of(&scan_source(DP, src)), vec![RULE_PANIC]);
        let test_src =
            "#[cfg(test)]\nmod tests {\n    fn t() { panic!(\"expected in tests\"); }\n}\n";
        assert!(scan_source(DP, test_src).is_empty());
    }

    #[test]
    fn float_cmp_flagged() {
        let src = "fn f() { a.partial_cmp(&b); }\n";
        assert_eq!(rules_of(&scan_source(DP, src)), vec![RULE_FLOAT_CMP]);
        let src2 = "fn f() { a.total_cmp(&b); }\n";
        assert_eq!(rules_of(&scan_source(DP, src2)), vec![RULE_FLOAT_CMP]);
    }

    #[test]
    fn float_eq_flagged_outside_tests() {
        let src = "fn f() { if x == 0.0 { y(); } }\n";
        assert_eq!(rules_of(&scan_source(DP, src)), vec![RULE_FLOAT_EQ]);
        let src2 = "fn f() { if 1.5 != x { y(); } }\n";
        assert_eq!(rules_of(&scan_source(DP, src2)), vec![RULE_FLOAT_EQ]);
        let int_src = "fn f() { if x == 0 { y(); } }\n";
        assert!(scan_source(DP, int_src).is_empty());
    }

    #[test]
    fn push_without_prune_flagged() {
        let src = "fn f(c: &mut Curve) {\n    c.push(CurvePoint::new(1, 2.0, 3, p));\n}\n";
        assert_eq!(
            rules_of(&scan_source(DP, src)),
            vec![RULE_PUSH_WITHOUT_PRUNE]
        );
    }

    #[test]
    fn push_with_prune_in_same_fn_ok() {
        let src =
            "fn f(c: &mut Curve) {\n    c.push(CurvePoint::new(1, 2.0, 3, p));\n    c.prune();\n}\n";
        assert!(scan_source(DP, src).is_empty());
    }

    #[test]
    fn push_in_test_code_ok() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t(c: &mut Curve) { c.push(CurvePoint::new(1, 2.0, 3, p)); }\n}\n";
        assert!(scan_source(DP, src).is_empty());
    }

    #[test]
    fn integration_test_files_are_test_code() {
        let src = "fn helper() { panic!(\"fine in tests\"); }\n\
                   #[test]\nfn t(c: &mut Curve) { c.push(CurvePoint::new(1, 2.0, 3, p)); }\n";
        assert!(scan_source("crates/curves/tests/props.rs", src).is_empty());
        // ... but unwrap is still banned there.
        let with_unwrap = "#[test]\nfn t() { x.unwrap(); }\n";
        assert_eq!(
            rules_of(&scan_source("crates/curves/tests/props.rs", with_unwrap)),
            vec![RULE_NO_UNWRAP]
        );
    }

    #[test]
    fn undocumented_pub_fn_flagged() {
        let src = "impl X {\n    pub fn naked(&self) {}\n}\n";
        assert_eq!(rules_of(&scan_source(DP, src)), vec![RULE_DOC_PUB_FN]);
    }

    #[test]
    fn documented_pub_fn_ok() {
        let src =
            "impl X {\n    /// Does the thing.\n    #[inline]\n    pub fn clothed(&self) {}\n}\n";
        assert!(scan_source(DP, src).is_empty());
    }

    #[test]
    fn private_fn_needs_no_doc() {
        let src = "fn helper() {}\n";
        assert!(scan_source(DP, src).is_empty());
    }

    #[test]
    fn allow_marker_suppresses_same_line_and_preceding_line() {
        let same = "fn f() { x.unwrap(); } // audit:allow(no-unwrap)\n";
        assert!(scan_source(DP, same).is_empty());
        let above =
            "// audit:allow(panic): unreachable by construction\nfn f() { panic!(\"no\"); }\n";
        assert!(scan_source(DP, above).is_empty());
        // A marker for the wrong rule suppresses nothing: the original
        // finding survives and the marker is reported stale.
        let wrong_rule = "// audit:allow(no-unwrap)\nfn f() { panic!(\"no\"); }\n";
        assert_eq!(
            rules_of(&scan_source(DP, wrong_rule)),
            vec![RULE_STALE_ALLOW, RULE_PANIC]
        );
    }

    #[test]
    fn allow_marker_respected_above_attribute_stack() {
        let src = "// audit:allow(panic): fires only on poisoned state\n\
                   #[derive(Debug)]\n\
                   #[cfg(feature = \"strict\")]\n\
                   pub fn f() { panic!(\"poisoned\"); }\n";
        // The attribute stack sits between the marker and the finding
        // line; the marker must still bind (and the undocumented pub fn
        // is a separate finding).
        let got = rules_of(&scan_source(DP, src));
        assert!(!got.contains(&RULE_PANIC), "got {got:?}");
        assert!(!got.contains(&RULE_STALE_ALLOW), "got {got:?}");
    }

    #[test]
    fn stale_allow_reported_for_unused_marker() {
        let src = "// audit:allow(no-unwrap): removed long ago\nfn f() { let x = 1; }\n";
        let got = scan_source(DP, src);
        assert_eq!(rules_of(&got), vec![RULE_STALE_ALLOW]);
        assert_eq!(got[0].line, 1);
    }

    #[test]
    fn new_rules_fire_through_scan_source() {
        let arith = "fn f(v: &[u32]) -> usize {\n    v.len() - 1\n}\n";
        assert_eq!(
            rules_of(&scan_source("crates/tech/src/fixture.rs", arith)),
            vec![RULE_UNCHECKED_ARITH]
        );
        let dur = "fn f(d: Duration) -> Duration {\n    d.mul_f64(2.0)\n}\n";
        assert_eq!(
            rules_of(&scan_source("crates/resilience/src/fixture.rs", dur)),
            vec![RULE_DURATION_ARITH]
        );
    }

    #[test]
    fn violations_carry_fingerprints_and_severity() {
        let src = "fn f() { x.unwrap(); }\n";
        let got = scan_source(DP, src);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].fingerprint.len(), 16);
        assert_eq!(got[0].severity, Severity::Error);
        assert!(got[0].fingerprint.bytes().all(|b| b.is_ascii_hexdigit()));
    }

    #[test]
    fn baseline_round_trip_and_ratchet_v2() {
        // Findings separated by unchanged code lines: the ±1 code-line
        // fingerprint context stays stable when an edit is more than one
        // code line away.
        let src = "fn f() { x.unwrap(); }\nfn sep1() {}\nfn g() { y.unwrap(); }\nfn sep2() {}\n";
        let violations = scan_source(DP, src);
        assert_eq!(violations.len(), 2);
        let text = format_baseline(&violations);
        let baseline = parse_baseline(&text).expect("formatted baseline always parses");
        assert!(!baseline.is_legacy());
        // At baseline: passes.
        let ok = check_against_baseline(&violations, &baseline);
        assert!(ok.over.is_empty() && ok.improved.is_empty());
        // A new finding (different context → different fingerprint) fails
        // without disturbing the baselined ones.
        let more_src = "fn f() { x.unwrap(); }\nfn sep1() {}\nfn g() { y.unwrap(); }\nfn sep2() {}\nfn h() { z.unwrap(); }\n";
        let more = scan_source(DP, more_src);
        let outcome = check_against_baseline(&more, &baseline);
        assert_eq!(outcome.over.len(), 1);
        assert!(outcome.over[0].snippet.contains("z.unwrap"));
        // Removing one finding (its surrounding code lines intact):
        // improved, not failing.
        let fewer = scan_source(DP, "fn f() { x.unwrap(); }\nfn sep1() {}\nfn sep2() {}\n");
        let better = check_against_baseline(&fewer, &baseline);
        assert!(better.over.is_empty(), "over: {:?}", better.over);
        assert_eq!(better.improved.len(), 1);
    }

    #[test]
    fn seeded_violation_fails_with_empty_baseline() {
        // The end-to-end property the CI gate relies on: a fresh violation
        // with no baseline entry makes the audit fail.
        let src = "fn f() { x.unwrap(); }\n";
        let violations = scan_source(DP, src);
        let outcome = check_against_baseline(&violations, &Baseline::empty());
        assert_eq!(outcome.over.len(), 1);
        assert_eq!(outcome.over[0].rule, RULE_NO_UNWRAP);
    }

    #[test]
    fn trace_registry_rule_both_directions() {
        let code = "fn run() {\n    merlin_trace::counter(\"core.construct.calls\", 1);\n    \
                    let _g = merlin_trace::span!(\"core.unregistered.name\");\n}\n";
        let doc = "<!-- trace-name-registry:begin -->\n\
                   core.construct.calls\n\
                   core.never.emitted\n\
                   <!-- trace-name-registry:end -->\n";
        let files = vec![("crates/flows/src/fixture.rs".to_owned(), code.to_owned())];
        let got = audit_files(&files, Some(("docs/OBSERVABILITY.md", doc)));
        let regs: Vec<&Violation> = got
            .iter()
            .filter(|v| v.rule == RULE_TRACE_NAME_REGISTRY)
            .collect();
        assert_eq!(regs.len(), 2, "got {got:?}");
        assert!(regs.iter().any(
            |v| v.path.ends_with("fixture.rs") && v.snippet.contains("core.unregistered.name")
        ));
        assert!(
            regs.iter()
                .any(|v| v.path == "docs/OBSERVABILITY.md"
                    && v.snippet.contains("core.never.emitted"))
        );
    }

    #[test]
    fn trace_registry_accepts_indirect_mentions() {
        // Names routed through locals/tuples (the flow-column emitter
        // pattern) count as mentioned, so the docs direction stays quiet.
        let code = "fn cols() -> (&'static str, u64) {\n    (\"flows.flow3.runs\", 1)\n}\n";
        let doc = "<!-- trace-name-registry:begin -->\n\
                   flows.flow3.runs\n\
                   <!-- trace-name-registry:end -->\n";
        let files = vec![("crates/flows/src/fixture.rs".to_owned(), code.to_owned())];
        let got = audit_files(&files, Some(("docs/OBSERVABILITY.md", doc)));
        assert!(got.is_empty(), "got {got:?}");
    }
}
