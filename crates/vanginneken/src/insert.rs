//! The bottom-up insertion DP and tree reconstruction.

use merlin_curves::{Curve, CurvePoint, ProvArena, ProvId};
use merlin_geom::{manhattan, Point, Route};
use merlin_tech::units::{ps_cmp, Cap, PsTime};
use merlin_tech::{BufferedTree, Driver, NodeId, NodeKind, Technology};

/// Construction step for van Ginneken provenance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum VgStep {
    /// A sink leaf (tree node id).
    Leaf { node: u32 },
    /// Children of a branch node combined.
    Merge { left: ProvId, right: ProvId },
    /// Plain wire walked, no insertion (kept so the provenance graph
    /// remains a tree; carries no geometric payload).
    Wire { child: ProvId },
    /// Buffer `buf` inserted on the edge above tree node `below`, at
    /// `dist_up` λ from that node.
    Buffer {
        buf: u16,
        below: u32,
        dist_up: u64,
        child: ProvId,
    },
}

/// Tuning knobs for buffer insertion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VgConfig {
    /// Spacing of candidate stations along edges, in λ.
    pub station_step: u64,
    /// Restrict insertion to a single library buffer (the classical [Gi90]
    /// setting), by library index. `None` uses the whole library.
    pub single_buffer: Option<u16>,
    /// Curve thinning bound (`0` = exact).
    pub max_curve_points: usize,
    /// Reject insertions whose driven load exceeds the buffer's
    /// characterized `max_load`.
    pub enforce_max_load: bool,
}

impl Default for VgConfig {
    fn default() -> Self {
        VgConfig {
            station_step: 500,
            single_buffer: None,
            max_curve_points: 32,
            enforce_max_load: false,
        }
    }
}

/// The insertion engine.
#[derive(Debug)]
pub struct VanGinneken<'a> {
    tech: &'a Technology,
    config: VgConfig,
}

/// A solved insertion instance.
#[derive(Debug)]
pub struct VgSolved {
    /// Non-inferior `(root load, req at root, buffer area)` curve at the
    /// source (before the driver delay).
    pub curve: Curve,
    arena: ProvArena<VgStep>,
    route: BufferedTree,
    driver: Driver,
}

impl<'a> VanGinneken<'a> {
    /// Creates an insertion engine.
    pub fn new(tech: &'a Technology, config: VgConfig) -> Self {
        VanGinneken { tech, config }
    }

    /// Runs the DP over `route` (a buffer-free routing tree).
    ///
    /// # Panics
    ///
    /// Panics if `route` contains buffer nodes (insertion must start from a
    /// plain routing tree) or if a sink index is out of range of the load /
    /// required-time slices.
    pub fn solve(
        &self,
        route: &BufferedTree,
        driver: &Driver,
        sink_loads: &[Cap],
        sink_reqs_ps: &[PsTime],
    ) -> VgSolved {
        let mut arena = ProvArena::new();
        let curve = self.curve_below(route, route.root(), sink_loads, sink_reqs_ps, &mut arena);
        VgSolved {
            curve,
            arena,
            route: route.clone(),
            driver: driver.clone(),
        }
    }

    /// Curve describing the subtree hanging below `node`, evaluated at the
    /// location of `node` (merging children and lifting each child curve up
    /// its edge through the stations).
    fn curve_below(
        &self,
        route: &BufferedTree,
        node: NodeId,
        sink_loads: &[Cap],
        sink_reqs_ps: &[PsTime],
        arena: &mut ProvArena<VgStep>,
    ) -> Curve {
        let n = route.node(node);
        match n.kind {
            NodeKind::Sink(s) => {
                let mut c = Curve::with_capacity(1);
                // audit:allow(push-without-prune): one point is trivially non-inferior.
                c.push(CurvePoint::with_load(
                    sink_loads[s as usize],
                    sink_reqs_ps[s as usize],
                    0,
                    arena.push(VgStep::Leaf {
                        node: node.index() as u32,
                    }),
                ));
                c
            }
            // audit:allow(panic): documented input contract of `VanGinneken::solve`.
            NodeKind::Buffer(_) => panic!("van Ginneken input must be a plain routing tree"),
            NodeKind::Source | NodeKind::Steiner => {
                let mut acc: Option<Curve> = None;
                for &ch in &n.children {
                    let child_curve = self.curve_below(route, ch, sink_loads, sink_reqs_ps, arena);
                    let lifted = self.lift_edge(route, node, ch, child_curve, arena);
                    acc = Some(match acc {
                        None => lifted,
                        Some(prev) => prev.merged_with(&lifted, |a, b| {
                            arena.push(VgStep::Merge { left: a, right: b })
                        }),
                    });
                }
                let mut c = acc.unwrap_or_default();
                c.thin_to(self.config.max_curve_points);
                c
            }
        }
    }

    /// Walks the edge `parent → child` from the child upwards, extending
    /// the curve across wire segments and offering buffer insertion at each
    /// station (including at the child node itself, `dist_up = 0`).
    fn lift_edge(
        &self,
        route: &BufferedTree,
        parent: NodeId,
        child: NodeId,
        mut curve: Curve,
        arena: &mut ProvArena<VgStep>,
    ) -> Curve {
        let p = route.node(parent).at;
        let x = route.node(child).at;
        let len = manhattan(p, x);
        let below = child.index() as u32;
        // Station at the child itself.
        curve = self.buffer_station(curve, below, 0, arena);
        if len == 0 {
            return curve;
        }
        let step = self.config.station_step.max(1);
        let mut walked = 0u64;
        while walked < len {
            let seg = step.min(len - walked);
            curve = curve.extended(&self.tech.wire, seg, |c| {
                arena.push(VgStep::Wire { child: c })
            });
            walked += seg;
            if walked < len {
                curve = self.buffer_station(curve, below, walked, arena);
            }
            curve.thin_to(self.config.max_curve_points);
        }
        curve
    }

    /// Adds buffer options at a station; keeps the un-buffered points.
    fn buffer_station(
        &self,
        curve: Curve,
        below: u32,
        dist_up: u64,
        arena: &mut ProvArena<VgStep>,
    ) -> Curve {
        let lib = &self.tech.library;
        let mut out = curve.clone();
        let mut additions = Curve::new();
        for (bi, buf) in lib.iter().enumerate() {
            if let Some(only) = self.config.single_buffer {
                if bi as u16 != only {
                    continue;
                }
            }
            for p in curve.iter() {
                if self.config.enforce_max_load && p.load > buf.max_load {
                    continue;
                }
                additions.push(CurvePoint::with_load(
                    buf.cin,
                    p.req - buf.delay_linear_ps(p.load),
                    p.area + buf.area,
                    arena.push(VgStep::Buffer {
                        buf: bi as u16,
                        below,
                        dist_up,
                        child: p.prov,
                    }),
                ));
            }
        }
        additions.prune();
        out.absorb(additions);
        out
    }
}

impl VgSolved {
    /// Required time at the driver input for a curve point.
    pub fn driver_required(&self, p: &CurvePoint) -> PsTime {
        p.req - self.driver.delay_linear_ps(p.load)
    }

    /// The curve point with the best driver-input required time.
    pub fn best_point(&self) -> Option<CurvePoint> {
        self.curve
            .iter()
            .max_by(|a, b| ps_cmp(self.driver_required(a), self.driver_required(b)))
            .copied()
    }

    /// Extracts the buffered tree of the best point.
    pub fn best_tree(&self) -> Option<BufferedTree> {
        self.best_point().map(|p| self.extract(&p))
    }

    /// The cheapest point meeting a required-time target at the driver
    /// input, if any (problem variant II).
    pub fn min_area_point(&self, target: PsTime) -> Option<CurvePoint> {
        self.curve
            .iter()
            .filter(|p| self.driver_required(p) >= target)
            .min_by_key(|p| p.area)
            .copied()
    }

    /// Rebuilds the buffered tree of a curve point: the original routing
    /// tree with the point's buffers spliced into its edges.
    ///
    /// # Panics
    ///
    /// Panics if `point` did not come from this instance's curve.
    pub fn extract(&self, point: &CurvePoint) -> BufferedTree {
        // Collect (below-node, dist_up, buffer) placements.
        let mut placements: Vec<(u32, u64, u16)> = Vec::new();
        let mut stack = vec![point.prov];
        while let Some(id) = stack.pop() {
            match self.arena[id] {
                VgStep::Leaf { .. } => {}
                VgStep::Wire { child } => stack.push(child),
                VgStep::Merge { left, right } => {
                    stack.push(left);
                    stack.push(right);
                }
                VgStep::Buffer {
                    buf,
                    below,
                    dist_up,
                    child,
                } => {
                    placements.push((below, dist_up, buf));
                    stack.push(child);
                }
            }
        }

        // Rebuild by DFS over the original route.
        let src = self.route.node(self.route.root()).at;
        let mut out = BufferedTree::new(src);
        // (original node, its copy in the output) pairs; buffers are
        // spliced while descending each edge.
        let mut work: Vec<(NodeId, merlin_tech::NodeId)> = vec![(self.route.root(), out.root())];
        while let Some((orig, new_parent)) = work.pop() {
            for &ch in &self.route.node(orig).children {
                let p = self.route.node(orig).at;
                let x = self.route.node(ch).at;
                let len = manhattan(p, x);
                // Placements on this edge, ordered top (closest to parent)
                // first.
                let mut here: Vec<(u64, u16)> = placements
                    .iter()
                    .filter(|(below, _, _)| *below == ch.index() as u32)
                    .map(|&(_, d, b)| (d, b))
                    .collect();
                here.sort_unstable_by_key(|x| std::cmp::Reverse(x.0));
                let mut attach = new_parent;
                for (dist_up, buf) in here {
                    let at = point_along(p, x, len.saturating_sub(dist_up));
                    attach = out.add_child(attach, NodeKind::Buffer(buf), at);
                }
                let kind = match self.route.node(ch).kind {
                    NodeKind::Sink(s) => NodeKind::Sink(s),
                    _ => NodeKind::Steiner,
                };
                let new_child = out.add_child(attach, kind, x);
                work.push((ch, new_child));
            }
        }
        out
    }
}

/// The point at arclength `dist` from `from` along the canonical L-route to
/// `to`.
fn point_along(from: Point, to: Point, dist: u64) -> Point {
    let len = Route::l_shaped(from, to).len();
    let dist = dist.min(len);
    let dx = from.x.abs_diff(to.x);
    if dist <= dx {
        let step = dist as i64 * (to.x - from.x).signum();
        Point::new(from.x + step, from.y)
    } else {
        let rest = (dist - dx) as i64 * (to.y - from.y).signum();
        Point::new(to.x, from.y + rest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> Technology {
        Technology::synthetic_035()
    }

    fn line_route(len: i64) -> BufferedTree {
        let mut t = BufferedTree::new(Point::new(0, 0));
        t.add_child(t.root(), NodeKind::Sink(0), Point::new(len, 0));
        t
    }

    #[test]
    fn point_along_l_route() {
        let a = Point::new(0, 0);
        let b = Point::new(3, 4);
        assert_eq!(point_along(a, b, 0), a);
        assert_eq!(point_along(a, b, 3), Point::new(3, 0));
        assert_eq!(point_along(a, b, 5), Point::new(3, 2));
        assert_eq!(point_along(a, b, 7), b);
    }

    #[test]
    fn long_wire_gets_buffered_and_bookkeeping_matches() {
        let t = tech();
        let driver = Driver::with_strength(2.0);
        let loads = [Cap::from_ff(120.0)];
        let reqs = [1500.0];
        let route = line_route(12_000);
        let vg = VanGinneken::new(&t, VgConfig::default());
        let solved = vg.solve(&route, &driver, &loads, &reqs);
        assert!(!solved.curve.is_empty());
        for p in solved.curve.iter() {
            let tree = solved.extract(p);
            tree.validate(1, &t).expect("produced tree is well-formed");
            let eval = tree.evaluate(&t, &driver, &loads, &reqs);
            assert!(
                (solved.driver_required(p) - eval.root_required_ps).abs() < 0.5,
                "req mismatch: {} vs {}",
                solved.driver_required(p),
                eval.root_required_ps
            );
            assert_eq!(eval.buffer_area, p.area);
            assert_eq!(eval.root_load, p.load);
        }
        let best = solved.best_tree().expect("DP always yields a routed tree");
        let eval = best.evaluate(&t, &driver, &loads, &reqs);
        assert!(eval.num_buffers >= 1, "12 kλ + 120 fF wants a buffer");
        // And buffering must beat the bare wire.
        let bare = route.evaluate(&t, &driver, &loads, &reqs);
        assert!(eval.root_required_ps > bare.root_required_ps);
    }

    #[test]
    fn branch_merge_handles_asymmetric_subtrees() {
        let t = tech();
        let driver = Driver::default();
        let mut route = BufferedTree::new(Point::new(0, 0));
        let br = route.add_child(route.root(), NodeKind::Steiner, Point::new(2000, 0));
        route.add_child(br, NodeKind::Sink(0), Point::new(2000, 9000));
        route.add_child(br, NodeKind::Sink(1), Point::new(2500, 0));
        let loads = [Cap::from_ff(90.0), Cap::from_ff(5.0)];
        let reqs = [1400.0, 1000.0];
        let solved =
            VanGinneken::new(&t, VgConfig::default()).solve(&route, &driver, &loads, &reqs);
        let best = solved.best_point().expect("DP curve is non-empty");
        let tree = solved.extract(&best);
        tree.validate(2, &t).expect("produced tree is well-formed");
        let eval = tree.evaluate(&t, &driver, &loads, &reqs);
        assert!((solved.driver_required(&best) - eval.root_required_ps).abs() < 0.5);
        // Wirelength is preserved by splicing.
        assert_eq!(tree.wirelength(), route.wirelength());
    }

    #[test]
    fn single_buffer_mode_restricts_choice() {
        let t = tech();
        let driver = Driver::with_strength(1.0);
        let loads = [Cap::from_ff(200.0)];
        let reqs = [2000.0];
        let route = line_route(20_000);
        let cfg = VgConfig {
            single_buffer: Some(10),
            ..VgConfig::default()
        };
        let solved = VanGinneken::new(&t, cfg).solve(&route, &driver, &loads, &reqs);
        let tree = solved.best_tree().expect("DP always yields a routed tree");
        for (_, node) in tree.iter() {
            if let NodeKind::Buffer(b) = node.kind {
                assert_eq!(b, 10);
            }
        }
    }

    #[test]
    fn insertion_never_hurts() {
        // The unbuffered original is always on the curve, so the best
        // solution is at least as good as no insertion at all.
        let t = tech();
        let driver = Driver::default();
        for (len, ff) in [(500i64, 4.0), (3000, 30.0), (15000, 200.0)] {
            let loads = [Cap::from_ff(ff)];
            let reqs = [1000.0];
            let route = line_route(len);
            let bare = route.evaluate(&t, &driver, &loads, &reqs);
            let solved =
                VanGinneken::new(&t, VgConfig::default()).solve(&route, &driver, &loads, &reqs);
            let best = solved.best_point().expect("DP curve is non-empty");
            assert!(
                solved.driver_required(&best) >= bare.root_required_ps - 0.5,
                "len {len}: insertion made things worse"
            );
        }
    }

    #[test]
    fn enforced_max_load_yields_legal_insertions() {
        let t = tech();
        let driver = Driver::with_strength(1.0);
        let loads = [Cap::from_ff(180.0)];
        let reqs = [2500.0];
        let route = line_route(24_000);
        let cfg = VgConfig {
            enforce_max_load: true,
            ..VgConfig::default()
        };
        let solved = VanGinneken::new(&t, cfg).solve(&route, &driver, &loads, &reqs);
        let tree = solved.best_tree().expect("DP always yields a routed tree");
        assert_eq!(tree.buffer_load_violations(&t, &loads), 0);
    }

    #[test]
    #[should_panic(expected = "plain routing tree")]
    fn rejects_pre_buffered_input() {
        let t = tech();
        let mut route = BufferedTree::new(Point::new(0, 0));
        let b = route.add_child(route.root(), NodeKind::Buffer(0), Point::new(10, 0));
        route.add_child(b, NodeKind::Sink(0), Point::new(20, 0));
        let _ = VanGinneken::new(&t, VgConfig::default()).solve(
            &route,
            &Driver::default(),
            &[Cap::ZERO],
            &[0.0],
        );
    }
}
