//! van Ginneken's optimal buffer insertion on a fixed routing tree [Gi90].
//!
//! Given an already-routed tree, distribute buffers over candidate
//! *stations* (the internal nodes plus points every `station_step` λ along
//! the edges) so as to maximize the required time at the driver. The
//! classical algorithm propagates `(load, required time)` pairs bottom-up;
//! we carry the buffer-area dimension too, so the result is the same
//! three-dimensional non-inferior curve used everywhere else in the
//! workspace and both problem variants are answerable.
//!
//! This is the second stage of the paper's experimental **Flow II**
//! (PTREE routing followed by buffer insertion): the strongest conventional
//! *sequential* flow MERLIN is compared against — buffering decisions are
//! made after (and therefore constrained by) the routing.
//!
//! # Examples
//!
//! ```
//! use merlin_geom::Point;
//! use merlin_tech::{BufferedTree, NodeKind, Technology, Driver, units::Cap};
//! use merlin_vanginneken::{VanGinneken, VgConfig};
//!
//! let tech = Technology::synthetic_035();
//! let mut route = BufferedTree::new(Point::new(0, 0));
//! route.add_child(route.root(), NodeKind::Sink(0), Point::new(9000, 0));
//! let vg = VanGinneken::new(&tech, VgConfig::default());
//! let solved = vg.solve(&route, &Driver::default(), &[Cap::from_ff(150.0)], &[1200.0]);
//! let buffered = solved.best_tree().expect("solvable");
//! // A 9 mm-equivalent heavily loaded wire wants at least one buffer.
//! assert!(buffered.evaluate(&tech, &Driver::default(), &[Cap::from_ff(150.0)], &[1200.0]).num_buffers >= 1);
//! ```

pub mod insert;

pub use insert::{VanGinneken, VgConfig, VgSolved};
