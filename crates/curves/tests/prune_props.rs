//! Property tests for the non-inferiority invariants of [`Curve`].
//!
//! These are the contracts the debug-mode invariant checkers
//! (`Curve::debug_check_noninferior`) assert after every curve operator;
//! here they are exercised on randomized inputs so the checkers themselves
//! are cross-validated against the O(s²) reference predicate
//! [`Curve::is_pruned`].

use merlin_curves::{Curve, CurvePoint, ProvId};
use merlin_tech::{BufferLibrary, Technology};
use proptest::prelude::*;

type RawPoint = (u32, f64, u32);

fn curve_from(points: &[RawPoint]) -> Curve {
    let mut c = Curve::new();
    for (i, &(load, req, area)) in points.iter().enumerate() {
        c.push(CurvePoint::new(
            load,
            req,
            area as u64,
            ProvId::new(i as u32),
        ));
    }
    c
}

fn triples(c: &Curve) -> Vec<(u64, f64, u64)> {
    c.iter().map(|p| (p.load.0 as u64, p.req, p.area)).collect()
}

fn raw_points() -> impl Strategy<Value = Vec<RawPoint>> {
    prop::collection::vec((1u32..400, 0.0f64..1000.0, 0u32..64), 0..40)
}

proptest! {
    #[test]
    fn prune_is_idempotent(points in raw_points()) {
        let mut c = curve_from(&points);
        c.prune();
        let once = triples(&c);
        c.prune();
        prop_assert_eq!(once, triples(&c));
    }

    #[test]
    fn prune_output_is_load_sorted(points in raw_points()) {
        let mut c = curve_from(&points);
        c.prune();
        for w in c.points().windows(2) {
            // Post-prune contract: strictly increasing (load, area), so
            // load is non-decreasing overall.
            prop_assert!((w[0].load, w[0].area) < (w[1].load, w[1].area));
            prop_assert!(w[0].load <= w[1].load);
        }
    }

    #[test]
    fn prune_output_is_pairwise_non_inferior(points in raw_points()) {
        let mut c = curve_from(&points);
        c.prune();
        // O(s log s) staircase checker agrees with the O(s²) reference.
        prop_assert!(c.is_pruned());
        prop_assert!(c.check_invariants().is_ok());
    }

    #[test]
    fn prune_keeps_the_best_required_time(points in raw_points()) {
        let mut c = curve_from(&points);
        let best_before = c
            .iter()
            .map(|p| p.req)
            .fold(f64::NEG_INFINITY, f64::max);
        c.prune();
        let best_after = c
            .iter()
            .map(|p| p.req)
            .fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(best_before, best_after);
    }

    #[test]
    fn merged_with_yields_pruned_curve(
        left in raw_points(),
        right in raw_points(),
    ) {
        let mut a = curve_from(&left);
        let mut b = curve_from(&right);
        a.prune();
        b.prune();
        let merged = a.merged_with(&b, |x, _| x);
        prop_assert!(merged.is_pruned());
        prop_assert!(merged.check_invariants().is_ok());
        prop_assert!(merged.len() <= a.len() * b.len());
    }

    #[test]
    fn extended_yields_pruned_curve(points in raw_points(), len in 1u64..5000) {
        let tech = Technology::synthetic_035();
        let mut c = curve_from(&points);
        c.prune();
        let ext = c.extended(&tech.wire, len, |p| p);
        prop_assert!(ext.is_pruned());
        prop_assert!(ext.check_invariants().is_ok());
        prop_assert_eq!(ext.len() <= c.len(), true);
    }

    #[test]
    fn buffer_options_yield_pruned_curve(points in raw_points()) {
        let mut c = curve_from(&points);
        c.prune();
        let library = BufferLibrary::tiny_test();
        let buffered = c.with_buffer_options(&library, |_, p| p);
        prop_assert!(buffered.is_pruned());
        prop_assert!(buffered.check_invariants().is_ok());
        // The unbuffered originals never disappear entirely: the minimum
        // load in the buffered curve is at most the smallest buffer cin or
        // the original minimum.
        if !c.is_empty() {
            prop_assert!(!buffered.is_empty());
        }
    }

    #[test]
    fn absorb_yields_pruned_curve(left in raw_points(), right in raw_points()) {
        let mut a = curve_from(&left);
        let mut b = curve_from(&right);
        a.prune();
        b.prune();
        a.absorb(b);
        prop_assert!(a.is_pruned());
        prop_assert!(a.check_invariants().is_ok());
    }
}
