//! Property tests for the non-inferiority invariants of [`Curve`].
//!
//! These are the contracts the debug-mode invariant checkers
//! (`Curve::debug_check_noninferior`) assert after every curve operator;
//! here they are exercised on randomized inputs so the checkers themselves
//! are cross-validated against the O(s²) reference predicate
//! [`Curve::is_pruned`].

use merlin_curves::{Curve, CurvePoint, ProvId, PrunePolicy};
use merlin_tech::units::ps_cmp;
use merlin_tech::{BufferLibrary, Technology};
use proptest::prelude::*;

type RawPoint = (u32, f64, u32);

/// Every observable field of a point, provenance included — two prune
/// implementations agree only if these sequences are identical.
fn keys(pts: &[CurvePoint]) -> Vec<(u32, u64, u64, usize)> {
    pts.iter()
        .map(|p| (p.load.0, p.req.to_bits(), p.area, p.prov.index()))
        .collect()
}

/// Independent reimplementation of the pre-index prune: the total-order
/// sort (load, area, req desc, provenance) followed by the original
/// BTreeMap staircase sweep with keep-first tie semantics. Written from
/// the spec, not shared with the library, so it can serve as the oracle
/// for the indexed sweep.
fn oracle_prune(c: &Curve) -> Vec<CurvePoint> {
    use std::collections::BTreeMap;
    let mut pts: Vec<CurvePoint> = c.points().to_vec();
    pts.sort_unstable_by(|a, b| {
        a.load
            .cmp(&b.load)
            .then(a.area.cmp(&b.area))
            .then(ps_cmp(b.req, a.req))
            .then(a.prov.index().cmp(&b.prov.index()))
    });
    let mut stair: BTreeMap<u64, f64> = BTreeMap::new();
    let mut out = Vec::new();
    for p in pts {
        let dominated = stair
            .range(..=p.area)
            .next_back()
            .is_some_and(|(_, &r)| r >= p.req);
        if dominated {
            continue;
        }
        let stale: Vec<u64> = stair
            .range(p.area..)
            .take_while(|(_, &r)| r <= p.req)
            .map(|(&a, _)| a)
            .collect();
        for a in stale {
            stair.remove(&a);
        }
        stair.insert(p.area, p.req);
        out.push(p);
    }
    out
}

fn curve_from(points: &[RawPoint]) -> Curve {
    let mut c = Curve::new();
    for (i, &(load, req, area)) in points.iter().enumerate() {
        c.push(CurvePoint::new(
            load,
            req,
            area as u64,
            ProvId::new(i as u32),
        ));
    }
    c
}

fn triples(c: &Curve) -> Vec<(u64, f64, u64)> {
    c.iter().map(|p| (p.load.0 as u64, p.req, p.area)).collect()
}

fn raw_points() -> impl Strategy<Value = Vec<RawPoint>> {
    prop::collection::vec((1u32..400, 0.0f64..1000.0, 0u32..64), 0..40)
}

proptest! {
    #[test]
    fn prune_is_idempotent(points in raw_points()) {
        let mut c = curve_from(&points);
        c.prune();
        let once = triples(&c);
        c.prune();
        prop_assert_eq!(once, triples(&c));
    }

    #[test]
    fn prune_output_is_load_sorted(points in raw_points()) {
        let mut c = curve_from(&points);
        c.prune();
        for w in c.points().windows(2) {
            // Post-prune contract: strictly increasing (load, area), so
            // load is non-decreasing overall.
            prop_assert!((w[0].load, w[0].area) < (w[1].load, w[1].area));
            prop_assert!(w[0].load <= w[1].load);
        }
    }

    #[test]
    fn prune_output_is_pairwise_non_inferior(points in raw_points()) {
        let mut c = curve_from(&points);
        c.prune();
        // O(s log s) staircase checker agrees with the O(s²) reference.
        prop_assert!(c.is_pruned());
        prop_assert!(c.check_invariants().is_ok());
    }

    #[test]
    fn prune_keeps_the_best_required_time(points in raw_points()) {
        let mut c = curve_from(&points);
        let best_before = c
            .iter()
            .map(|p| p.req)
            .fold(f64::NEG_INFINITY, f64::max);
        c.prune();
        let best_after = c
            .iter()
            .map(|p| p.req)
            .fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(best_before, best_after);
    }

    #[test]
    fn merged_with_yields_pruned_curve(
        left in raw_points(),
        right in raw_points(),
    ) {
        let mut a = curve_from(&left);
        let mut b = curve_from(&right);
        a.prune();
        b.prune();
        let merged = a.merged_with(&b, |x, _| x);
        prop_assert!(merged.is_pruned());
        prop_assert!(merged.check_invariants().is_ok());
        prop_assert!(merged.len() <= a.len() * b.len());
    }

    #[test]
    fn extended_yields_pruned_curve(points in raw_points(), len in 1u64..5000) {
        let tech = Technology::synthetic_035();
        let mut c = curve_from(&points);
        c.prune();
        let ext = c.extended(&tech.wire, len, |p| p);
        prop_assert!(ext.is_pruned());
        prop_assert!(ext.check_invariants().is_ok());
        prop_assert_eq!(ext.len() <= c.len(), true);
    }

    #[test]
    fn buffer_options_yield_pruned_curve(points in raw_points()) {
        let mut c = curve_from(&points);
        c.prune();
        let library = BufferLibrary::tiny_test();
        let buffered = c.with_buffer_options(&library, |_, p| p);
        prop_assert!(buffered.is_pruned());
        prop_assert!(buffered.check_invariants().is_ok());
        // The unbuffered originals never disappear entirely: the minimum
        // load in the buffered curve is at most the smallest buffer cin or
        // the original minimum.
        if !c.is_empty() {
            prop_assert!(!buffered.is_empty());
        }
    }

    #[test]
    fn indexed_prune_matches_the_legacy_sweep(points in raw_points()) {
        let mut c = curve_from(&points);
        let expect = keys(&oracle_prune(&c));
        c.prune();
        prop_assert_eq!(keys(c.points()), expect,
            "indexed prune diverged from the BTreeMap oracle");
    }

    #[test]
    fn indexed_prune_matches_the_legacy_sweep_under_heavy_ties(
        raw in prop::collection::vec((1u32..6, 0u32..8, 0u32..5), 0..60),
    ) {
        // Tiny value domains force load/req/area collisions — the regime
        // where tie-break order (and therefore provenance survival)
        // actually distinguishes implementations. Loads are spread to a
        // coarse grid so load-quantization bucket mates collide too.
        let points: Vec<RawPoint> = raw
            .iter()
            .map(|&(l, r, a)| (l * 10, f64::from(r) * 0.5, a))
            .collect();
        let mut c = curve_from(&points);
        let expect = keys(&oracle_prune(&c));
        c.prune();
        prop_assert_eq!(keys(c.points()), expect,
            "indexed prune diverged from the oracle on tie-heavy input");
        // Keep-first means the survivor of any duplicate group is the
        // lowest-provenance copy, which (prov = input index here) is the
        // first occurrence of its exact triple in the input.
        for p in c.iter() {
            let first = points
                .iter()
                .position(|&(l, r, a)| {
                    l == p.load.0 && r.to_bits() == p.req.to_bits() && u64::from(a) == p.area
                })
                .expect("survivor came from the input");
            prop_assert_eq!(p.prov.index(), first,
                "a duplicate survived with a later provenance than its first copy");
        }
    }

    #[test]
    fn reduce_keeps_a_subsequence_of_the_exact_front(
        points in raw_points(),
        q in 1u32..12,
    ) {
        let mut exact = curve_from(&points);
        exact.prune();
        let mut dialed = exact.clone();
        dialed.reduce(PrunePolicy { load_quant: q, rmin_ps_per_cap: 0.25 });
        prop_assert!(dialed.check_invariants().is_ok(),
            "reduce must preserve the exact-curve invariants");
        // Survivors are a subsequence of the exact front, in order.
        let front = keys(exact.points());
        let kept = keys(dialed.points());
        let mut it = front.iter();
        for k in &kept {
            prop_assert!(it.any(|f| f == k),
                "reduce produced a point outside the exact front (or reordered)");
        }
        // The exact policy is the identity.
        let mut same = exact.clone();
        same.reduce(PrunePolicy::EXACT);
        prop_assert_eq!(keys(same.points()), front);
    }

    #[test]
    fn absorb_yields_pruned_curve(left in raw_points(), right in raw_points()) {
        let mut a = curve_from(&left);
        let mut b = curve_from(&right);
        a.prune();
        b.prune();
        a.absorb(b);
        prop_assert!(a.is_pruned());
        prop_assert!(a.check_invariants().is_ok());
    }
}
