//! Provenance arena: back-pointers for solution extraction.

use std::fmt;

/// Handle to a construction step stored in a [`ProvArena`].
///
/// `ProvId` is deliberately opaque: each optimization engine defines its own
/// step type `S` and interprets the ids it stored. Ids are only meaningful
/// relative to the arena that issued them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProvId(u32);

impl ProvId {
    /// Creates a handle from a raw index (mostly useful in tests).
    pub const fn new(idx: u32) -> Self {
        ProvId(idx)
    }

    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProvId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A construction step whose referenced provenance handles can be
/// enumerated, enabling structural validation of a [`ProvArena`].
///
/// Engines implement this for their step enums so the arena can check the
/// two invariants every extraction relies on: every referenced handle is
/// in bounds, and handles only point *backwards* (the arena is append-only,
/// so a well-formed DP can never store a forward reference — that ordering
/// is also what makes the step graph acyclic).
pub trait ProvStep {
    /// Appends every [`ProvId`] this step references to `out`.
    fn push_children(&self, out: &mut Vec<ProvId>);
}

/// Structural defect found by [`ProvArena::validate`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProvArenaError {
    /// A step references a handle outside the arena.
    OutOfBounds { step: usize, child: ProvId },
    /// A step references itself or a later step, which would make the
    /// back-pointer graph cyclic (or at least non-topological).
    ForwardReference { step: usize, child: ProvId },
}

impl fmt::Display for ProvArenaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProvArenaError::OutOfBounds { step, child } => {
                write!(f, "step #{step} references out-of-bounds handle {child}")
            }
            ProvArenaError::ForwardReference { step, child } => {
                write!(f, "step #{step} references non-earlier handle {child}")
            }
        }
    }
}

impl std::error::Error for ProvArenaError {}

/// Append-only arena of construction steps of type `S`.
///
/// Every point on a solution curve carries a [`ProvId`] into such an arena;
/// following the ids recursively rebuilds the buffered routing structure
/// that the point describes (the "pointers stored during the generation of
/// the solution curves" of the paper's Figure 9, lines 21–22).
///
/// # Examples
///
/// ```
/// use merlin_curves::ProvArena;
///
/// #[derive(Debug, PartialEq)]
/// enum Step { Leaf(u32), Join(merlin_curves::ProvId, merlin_curves::ProvId) }
///
/// let mut arena = ProvArena::new();
/// let a = arena.push(Step::Leaf(0));
/// let b = arena.push(Step::Leaf(1));
/// let j = arena.push(Step::Join(a, b));
/// assert_eq!(arena[j], Step::Join(a, b));
/// assert_eq!(arena.len(), 3);
/// ```
#[derive(Clone, Debug, Default)]
pub struct ProvArena<S> {
    steps: Vec<S>,
    base: u32,
}

impl<S> ProvArena<S> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        ProvArena {
            steps: Vec::new(),
            base: 0,
        }
    }

    /// Creates an empty arena with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        ProvArena {
            steps: Vec::with_capacity(cap),
            base: 0,
        }
    }

    /// Creates an empty *segment* arena whose handles start at `base`
    /// instead of 0.
    ///
    /// A parallel DP gives each worker a segment based at the global
    /// arena's current length: handles below `base` unambiguously refer to
    /// pre-existing global steps, handles at or above it to this worker's
    /// own steps — so the merge can rebase a segment into the global arena
    /// with one offset per segment (see [`ProvArena::into_steps`]).
    ///
    /// # Panics
    ///
    /// Panics if `base` exceeds `u32::MAX`.
    pub fn with_base(base: usize) -> Self {
        ProvArena {
            steps: Vec::new(),
            base: u32::try_from(base).expect("provenance arena overflow"),
        }
    }

    /// The handle offset of this arena (0 for ordinary arenas).
    pub fn base(&self) -> usize {
        self.base as usize
    }

    /// Consumes a segment arena, yielding its locally stored steps (the
    /// first returned step corresponds to handle [`ProvArena::base`]).
    pub fn into_steps(self) -> Vec<S> {
        self.steps
    }

    /// Stores a step and returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if a handle past `u32::MAX` would be issued.
    pub fn push(&mut self, step: S) -> ProvId {
        let id = u32::try_from(self.base as usize + self.steps.len())
            .expect("provenance arena overflow");
        self.steps.push(step);
        ProvId(id)
    }

    /// Step by handle, if the handle came from this arena.
    pub fn get(&self, id: ProvId) -> Option<&S> {
        self.steps.get(id.index().checked_sub(self.base as usize)?)
    }

    /// Number of stored steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Bytes-ish occupancy proxy used by memory-scaling experiments.
    pub fn approx_size_of(&self) -> usize {
        self.steps.capacity() * std::mem::size_of::<S>()
    }
}

impl<S: ProvStep> ProvArena<S> {
    /// Checks that every step only references earlier, in-bounds steps.
    ///
    /// Because the arena is append-only, a well-formed DP run can only
    /// store handles to steps that already existed; `validate` confirms
    /// that property, which in turn guarantees the back-pointer graph is
    /// acyclic and every extraction walk terminates. Runs in O(total
    /// number of references).
    pub fn validate(&self) -> Result<(), ProvArenaError> {
        let base = self.base as usize;
        let mut children = Vec::new();
        for (i, step) in self.steps.iter().enumerate() {
            children.clear();
            step.push_children(&mut children);
            for &child in &children {
                // Handles below `base` point at pre-existing global steps
                // (segment arenas only; `base` is 0 for ordinary arenas):
                // they are backward by construction and their bounds belong
                // to the global arena this segment will merge into.
                if child.index() >= base + self.steps.len() {
                    return Err(ProvArenaError::OutOfBounds { step: i, child });
                }
                if child.index() >= base + i {
                    return Err(ProvArenaError::ForwardReference { step: i, child });
                }
            }
        }
        Ok(())
    }

    /// Debug-build / `invariant-checks` assertion wrapper around
    /// [`validate`](Self::validate). Compiles to nothing in plain release
    /// builds.
    #[allow(unused_variables)]
    #[inline]
    pub fn debug_validate(&self, ctx: &str) {
        #[cfg(any(debug_assertions, feature = "invariant-checks"))]
        if let Err(e) = self.validate() {
            // audit:allow(panic): this IS the invariant checker.
            panic!("provenance arena invariant violated at {ctx}: {e}");
        }
    }
}

impl<S> std::ops::Index<ProvId> for ProvArena<S> {
    type Output = S;
    fn index(&self, id: ProvId) -> &S {
        &self.steps[id.index() - self.base as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_index_round_trip() {
        let mut a = ProvArena::new();
        let ids: Vec<_> = (0..10).map(|i| a.push(i * i)).collect();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(a[*id], (i * i) as i32);
        }
        assert_eq!(a.len(), 10);
    }

    #[test]
    fn get_out_of_range_is_none() {
        let a: ProvArena<u8> = ProvArena::new();
        assert!(a.get(ProvId::new(3)).is_none());
        assert!(a.is_empty());
    }

    enum TestStep {
        Leaf,
        Join(ProvId, ProvId),
    }

    impl ProvStep for TestStep {
        fn push_children(&self, out: &mut Vec<ProvId>) {
            if let TestStep::Join(l, r) = self {
                out.push(*l);
                out.push(*r);
            }
        }
    }

    #[test]
    fn validate_accepts_topological_arena() {
        let mut a = ProvArena::new();
        let l = a.push(TestStep::Leaf);
        let r = a.push(TestStep::Leaf);
        let j = a.push(TestStep::Join(l, r));
        a.push(TestStep::Join(j, l));
        assert_eq!(a.validate(), Ok(()));
        a.debug_validate("test");
    }

    #[test]
    fn segment_arena_issues_offset_handles() {
        let mut seg: ProvArena<TestStep> = ProvArena::with_base(10);
        assert_eq!(seg.base(), 10);
        let a = seg.push(TestStep::Leaf);
        assert_eq!(a, ProvId::new(10));
        // A global reference (below base) plus a local one: both legal.
        let j = seg.push(TestStep::Join(ProvId::new(3), a));
        assert_eq!(j, ProvId::new(11));
        assert_eq!(seg.len(), 2);
        assert!(matches!(seg.get(a), Some(TestStep::Leaf)));
        assert!(seg.get(ProvId::new(3)).is_none(), "below base is not ours");
        assert_eq!(seg.validate(), Ok(()));
        // Forward/self references are still caught relative to the base.
        let mut bad: ProvArena<TestStep> = ProvArena::with_base(10);
        bad.push(TestStep::Join(ProvId::new(10), ProvId::new(0)));
        assert_eq!(
            bad.validate(),
            Err(ProvArenaError::ForwardReference {
                step: 0,
                child: ProvId::new(10)
            })
        );
        let steps = seg.into_steps();
        assert_eq!(steps.len(), 2);
    }

    #[test]
    fn validate_rejects_forward_reference() {
        let mut a = ProvArena::new();
        let l = a.push(TestStep::Leaf);
        a.push(TestStep::Join(l, ProvId::new(1))); // step 1 references itself
        assert_eq!(
            a.validate(),
            Err(ProvArenaError::ForwardReference {
                step: 1,
                child: ProvId::new(1)
            })
        );
    }

    #[test]
    fn validate_rejects_out_of_bounds() {
        let mut a = ProvArena::new();
        let l = a.push(TestStep::Leaf);
        a.push(TestStep::Join(l, ProvId::new(99)));
        assert_eq!(
            a.validate(),
            Err(ProvArenaError::OutOfBounds {
                step: 1,
                child: ProvId::new(99)
            })
        );
    }
}
