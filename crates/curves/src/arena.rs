//! Provenance arena: back-pointers for solution extraction.

use std::fmt;

/// Handle to a construction step stored in a [`ProvArena`].
///
/// `ProvId` is deliberately opaque: each optimization engine defines its own
/// step type `S` and interprets the ids it stored. Ids are only meaningful
/// relative to the arena that issued them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProvId(u32);

impl ProvId {
    /// Creates a handle from a raw index (mostly useful in tests).
    pub const fn new(idx: u32) -> Self {
        ProvId(idx)
    }

    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProvId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Append-only arena of construction steps of type `S`.
///
/// Every point on a solution curve carries a [`ProvId`] into such an arena;
/// following the ids recursively rebuilds the buffered routing structure
/// that the point describes (the "pointers stored during the generation of
/// the solution curves" of the paper's Figure 9, lines 21–22).
///
/// # Examples
///
/// ```
/// use merlin_curves::ProvArena;
///
/// #[derive(Debug, PartialEq)]
/// enum Step { Leaf(u32), Join(merlin_curves::ProvId, merlin_curves::ProvId) }
///
/// let mut arena = ProvArena::new();
/// let a = arena.push(Step::Leaf(0));
/// let b = arena.push(Step::Leaf(1));
/// let j = arena.push(Step::Join(a, b));
/// assert_eq!(arena[j], Step::Join(a, b));
/// assert_eq!(arena.len(), 3);
/// ```
#[derive(Clone, Debug, Default)]
pub struct ProvArena<S> {
    steps: Vec<S>,
}

impl<S> ProvArena<S> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        ProvArena { steps: Vec::new() }
    }

    /// Creates an empty arena with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        ProvArena {
            steps: Vec::with_capacity(cap),
        }
    }

    /// Stores a step and returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX` steps are stored.
    pub fn push(&mut self, step: S) -> ProvId {
        let id = u32::try_from(self.steps.len()).expect("provenance arena overflow");
        self.steps.push(step);
        ProvId(id)
    }

    /// Step by handle, if the handle came from this arena.
    pub fn get(&self, id: ProvId) -> Option<&S> {
        self.steps.get(id.index())
    }

    /// Number of stored steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Bytes-ish occupancy proxy used by memory-scaling experiments.
    pub fn approx_size_of(&self) -> usize {
        self.steps.capacity() * std::mem::size_of::<S>()
    }
}

impl<S> std::ops::Index<ProvId> for ProvArena<S> {
    type Output = S;
    fn index(&self, id: ProvId) -> &S {
        &self.steps[id.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_index_round_trip() {
        let mut a = ProvArena::new();
        let ids: Vec<_> = (0..10).map(|i| a.push(i * i)).collect();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(a[*id], (i * i) as i32);
        }
        assert_eq!(a.len(), 10);
    }

    #[test]
    fn get_out_of_range_is_none() {
        let a: ProvArena<u8> = ProvArena::new();
        assert!(a.get(ProvId::new(3)).is_none());
        assert!(a.is_empty());
    }
}
