//! Deterministic fault injection for chaos testing (feature
//! `fault-inject`, off by default).
//!
//! The DP stack is sprinkled with *named injection sites* — cheap
//! [`trip`] calls that compile to an inlined `false` unless the feature is
//! on. Chaos tests arm a site with a [`FaultKind`] and a hit ordinal, then
//! drive the resilient solver and assert it degrades instead of dying:
//!
//! * [`FaultKind::Panic`] — the site panics once, on its Nth hit,
//! * [`FaultKind::Stall`] — the site sleeps once, on its Nth hit, burning
//!   wall-clock budget so deadline handling can be exercised
//!   deterministically,
//! * [`FaultKind::EmptyCurve`] — the site reports "produce an empty
//!   result" on every hit from the Nth onward (persistent, so a poisoned
//!   DP cannot heal itself through untouched sub-problems).
//!
//! The registry is thread-local: parallel test threads cannot interfere
//! with each other, and no synchronization taxes the hot path. Sites live
//! wherever the failure is interesting — `curves.prune` here, group /
//! final assembly sites in `merlin` (core), and the flow entry points in
//! `merlin-flows`. The canonical site list is documented in
//! `docs/RESILIENCE.md`.

use std::time::Duration;

/// What an armed injection site does when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic with a recognizable message (tests panic isolation).
    Panic,
    /// Sleep for the armed duration (tests deadline budgets).
    Stall,
    /// Ask the site to produce an empty result (tests empty-curve
    /// handling); [`trip`] returns `true` and the site is expected to act
    /// on it.
    EmptyCurve,
}

impl FaultKind {
    /// Short stable label, used by the CLI `--chaos` syntax and the
    /// supervisor's `.repro` artifact format.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Stall => "stall",
            FaultKind::EmptyCurve => "empty",
        }
    }

    /// Inverse of [`FaultKind::label`].
    pub fn parse(s: &str) -> Option<FaultKind> {
        match s {
            "panic" => Some(FaultKind::Panic),
            "stall" => Some(FaultKind::Stall),
            "empty" => Some(FaultKind::EmptyCurve),
            _ => None,
        }
    }
}

/// A portable, clonable description of a set of armed fault plans.
///
/// The registry itself is thread-local, which means a worker thread
/// spawned by a batch supervisor starts with an *empty* registry no matter
/// what the spawning thread armed. A `FaultConfig` closes that gap: build
/// one (via [`snapshot`] of the current thread, or [`FaultConfig::arm`]),
/// hand it to the spawned thread, and call [`seed_thread`] there. With the
/// `fault-inject` feature off the struct is a zero-sized token and every
/// operation is a no-op.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultConfig {
    #[cfg(feature = "fault-inject")]
    specs: Vec<(String, FaultKind, u64, Duration)>,
}

impl FaultConfig {
    /// An empty config (arms nothing).
    pub fn none() -> Self {
        FaultConfig::default()
    }

    /// Adds a plan: fire `kind` at `site` on its `nth` hit, sleeping
    /// `stall` for [`FaultKind::Stall`]. Returns `false` (and records
    /// nothing) when the `fault-inject` feature is compiled out, so
    /// callers can warn instead of silently dropping chaos requests.
    pub fn arm(&mut self, site: &str, kind: FaultKind, nth: u64, stall: Duration) -> bool {
        #[cfg(feature = "fault-inject")]
        {
            self.specs.push((site.to_owned(), kind, nth.max(1), stall));
            true
        }
        #[cfg(not(feature = "fault-inject"))]
        {
            let _ = (site, kind, nth, stall);
            false
        }
    }

    /// The armed plans as `(site, kind, nth, stall)` tuples (empty when
    /// the feature is off). Used to serialize chaos configs into repro
    /// artifacts.
    pub fn specs(&self) -> Vec<(String, FaultKind, u64, Duration)> {
        #[cfg(feature = "fault-inject")]
        {
            self.specs.clone()
        }
        #[cfg(not(feature = "fault-inject"))]
        {
            Vec::new()
        }
    }

    /// Whether the config arms any site.
    pub fn is_empty(&self) -> bool {
        #[cfg(feature = "fault-inject")]
        {
            self.specs.is_empty()
        }
        #[cfg(not(feature = "fault-inject"))]
        {
            true
        }
    }
}

#[cfg(feature = "fault-inject")]
mod registry {
    use super::FaultKind;
    use std::cell::RefCell;
    use std::collections::HashMap;
    use std::time::Duration;

    #[derive(Clone, Debug)]
    struct Plan {
        kind: FaultKind,
        nth: u64,
        hits: u64,
        fired: bool,
        stall: Duration,
    }

    thread_local! {
        static REGISTRY: RefCell<HashMap<String, Plan>> = RefCell::new(HashMap::new());
    }

    /// Default sleep for [`FaultKind::Stall`] when armed via
    /// [`arm`](super::arm).
    pub const DEFAULT_STALL: Duration = Duration::from_millis(40);

    /// Arms `site` to fire `kind` on its `nth` hit (1-based; 0 is treated
    /// as 1) with the default stall duration. Re-arming a site replaces
    /// its previous plan and resets its hit counter.
    pub fn arm(site: &str, kind: FaultKind, nth: u64) {
        arm_with_stall(site, kind, nth, DEFAULT_STALL);
    }

    /// Like [`arm`], with an explicit stall duration for
    /// [`FaultKind::Stall`].
    pub fn arm_with_stall(site: &str, kind: FaultKind, nth: u64, stall: Duration) {
        REGISTRY.with(|r| {
            r.borrow_mut().insert(
                site.to_owned(),
                Plan {
                    kind,
                    nth: nth.max(1),
                    hits: 0,
                    fired: false,
                    stall,
                },
            );
        });
    }

    /// Disarms every site on this thread.
    pub fn disarm_all() {
        REGISTRY.with(|r| r.borrow_mut().clear());
    }

    /// Captures this thread's armed plans as a portable
    /// [`FaultConfig`](super::FaultConfig). Hit counters are *not*
    /// captured: seeding another thread gives each plan a fresh counter,
    /// the same state the plans had right after [`arm`].
    pub fn snapshot() -> super::FaultConfig {
        let mut cfg = super::FaultConfig::none();
        REGISTRY.with(|r| {
            for (site, plan) in r.borrow().iter() {
                cfg.arm(site, plan.kind, plan.nth, plan.stall);
            }
        });
        cfg
    }

    /// Arms every plan of `cfg` on the *current* thread (fresh hit
    /// counters). Call this first thing in a spawned worker thread so it
    /// inherits the chaos config of the thread that built `cfg`; without
    /// it the thread-local registry silently starts empty.
    pub fn seed_thread(cfg: &super::FaultConfig) {
        for (site, kind, nth, stall) in cfg.specs() {
            arm_with_stall(&site, kind, nth, stall);
        }
    }

    /// How often `site` has been hit since it was (re-)armed; 0 for sites
    /// that were never armed.
    pub fn hits(site: &str) -> u64 {
        REGISTRY.with(|r| r.borrow().get(site).map_or(0, |p| p.hits))
    }

    /// The armed-build implementation of [`trip`](super::trip).
    pub fn trip(site: &str) -> bool {
        let action = REGISTRY.with(|r| {
            let mut reg = r.borrow_mut();
            let plan = reg.get_mut(site)?;
            plan.hits += 1;
            match plan.kind {
                // Persistent from the Nth hit on: a poisoned DP must not
                // heal through sub-problems the fault never touched.
                FaultKind::EmptyCurve if plan.hits >= plan.nth => Some((plan.kind, plan.stall)),
                // One-shot on exactly the Nth hit.
                FaultKind::Panic | FaultKind::Stall if plan.hits == plan.nth && !plan.fired => {
                    plan.fired = true;
                    Some((plan.kind, plan.stall))
                }
                _ => None,
            }
        });
        match action {
            // audit:allow(panic): the whole point of this site is a deliberate, injected panic.
            Some((FaultKind::Panic, _)) => panic!("injected fault at site `{site}`"),
            Some((FaultKind::Stall, stall)) => {
                std::thread::sleep(stall);
                false
            }
            Some((FaultKind::EmptyCurve, _)) => true,
            None => false,
        }
    }
}

#[cfg(feature = "fault-inject")]
pub use registry::{
    arm, arm_with_stall, disarm_all, hits, seed_thread, snapshot, trip, DEFAULT_STALL,
};

/// Fault-injection hook; returns whether the site must produce an empty
/// result. With the `fault-inject` feature off (the default) this is an
/// inlined constant `false` and the whole registry does not exist.
#[cfg(not(feature = "fault-inject"))]
#[inline(always)]
pub fn trip(_site: &str) -> bool {
    false
}

/// No-op [`snapshot`](registry::snapshot) stand-in for unarmed builds.
#[cfg(not(feature = "fault-inject"))]
pub fn snapshot() -> FaultConfig {
    FaultConfig::none()
}

/// No-op [`seed_thread`](registry::seed_thread) stand-in for unarmed
/// builds.
#[cfg(not(feature = "fault-inject"))]
pub fn seed_thread(_cfg: &FaultConfig) {}

/// No-op [`disarm_all`](registry::disarm_all) stand-in for unarmed
/// builds.
#[cfg(not(feature = "fault-inject"))]
pub fn disarm_all() {}

#[cfg(test)]
mod kind_tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for kind in [FaultKind::Panic, FaultKind::Stall, FaultKind::EmptyCurve] {
            assert_eq!(FaultKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(FaultKind::parse("nope"), None);
    }

    #[cfg(not(feature = "fault-inject"))]
    #[test]
    fn unarmed_builds_reject_arming() {
        let mut cfg = FaultConfig::none();
        assert!(!cfg.arm(
            "x",
            FaultKind::Panic,
            1,
            std::time::Duration::from_millis(1)
        ));
        assert!(cfg.is_empty());
        assert!(cfg.specs().is_empty());
        seed_thread(&cfg); // no-op, must not panic
        disarm_all();
        let _ = snapshot();
    }
}

#[cfg(all(test, feature = "fault-inject"))]
mod tests {
    use super::*;

    #[test]
    fn unarmed_sites_never_fire() {
        disarm_all();
        assert!(!trip("curves.test.unarmed"));
        assert_eq!(hits("curves.test.unarmed"), 0);
    }

    #[test]
    fn empty_curve_fires_from_nth_hit_onward() {
        disarm_all();
        arm("curves.test.empty", FaultKind::EmptyCurve, 3);
        assert!(!trip("curves.test.empty"));
        assert!(!trip("curves.test.empty"));
        assert!(trip("curves.test.empty"));
        assert!(trip("curves.test.empty"), "persistent after the nth hit");
        assert_eq!(hits("curves.test.empty"), 4);
        disarm_all();
    }

    #[test]
    fn panic_fires_once_on_the_nth_hit() {
        disarm_all();
        arm("curves.test.panic", FaultKind::Panic, 2);
        assert!(!trip("curves.test.panic"));
        let caught = std::panic::catch_unwind(|| trip("curves.test.panic"));
        assert!(caught.is_err(), "second hit panics");
        disarm_all();
    }

    #[test]
    fn spawned_threads_inherit_via_seed_thread() {
        disarm_all();
        arm("curves.test.seed", FaultKind::EmptyCurve, 1);
        let cfg = snapshot();
        assert!(!cfg.is_empty());
        let handle = std::thread::spawn(move || {
            // A fresh thread starts with an empty registry: the armed site
            // does not fire until the config is seeded.
            let before = trip("curves.test.seed");
            seed_thread(&cfg);
            let after = trip("curves.test.seed");
            (before, after)
        });
        let (before, after) = handle.join().expect("seed thread test worker");
        assert!(!before, "unseeded thread must start with an empty registry");
        assert!(after, "seeded thread must inherit the armed plan");
        disarm_all();
    }

    #[test]
    fn fault_config_round_trips_specs() {
        let mut cfg = FaultConfig::none();
        assert!(cfg.is_empty());
        assert!(cfg.arm(
            "a.site",
            FaultKind::Stall,
            3,
            std::time::Duration::from_millis(7)
        ));
        let specs = cfg.specs();
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].0, "a.site");
        assert_eq!(specs[0].1, FaultKind::Stall);
        assert_eq!(specs[0].2, 3);
        assert_eq!(specs[0].3, std::time::Duration::from_millis(7));
    }

    #[test]
    fn rearming_resets_the_counter() {
        disarm_all();
        arm("curves.test.rearm", FaultKind::EmptyCurve, 1);
        assert!(trip("curves.test.rearm"));
        arm("curves.test.rearm", FaultKind::EmptyCurve, 2);
        assert!(!trip("curves.test.rearm"), "counter was reset");
        assert!(trip("curves.test.rearm"));
        disarm_all();
    }
}
