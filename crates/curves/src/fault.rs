//! Deterministic fault injection for chaos testing (feature
//! `fault-inject`, off by default).
//!
//! The DP stack is sprinkled with *named injection sites* — cheap
//! [`trip`] calls that compile to an inlined `false` unless the feature is
//! on. Chaos tests arm a site with a [`FaultKind`] and a hit ordinal, then
//! drive the resilient solver and assert it degrades instead of dying:
//!
//! * [`FaultKind::Panic`] — the site panics once, on its Nth hit,
//! * [`FaultKind::Stall`] — the site sleeps once, on its Nth hit, burning
//!   wall-clock budget so deadline handling can be exercised
//!   deterministically,
//! * [`FaultKind::EmptyCurve`] — the site reports "produce an empty
//!   result" on every hit from the Nth onward (persistent, so a poisoned
//!   DP cannot heal itself through untouched sub-problems).
//!
//! The registry is thread-local: parallel test threads cannot interfere
//! with each other, and no synchronization taxes the hot path. Sites live
//! wherever the failure is interesting — `curves.prune` here, group /
//! final assembly sites in `merlin` (core), and the flow entry points in
//! `merlin-flows`. The canonical site list is documented in
//! `docs/RESILIENCE.md`.

/// What an armed injection site does when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic with a recognizable message (tests panic isolation).
    Panic,
    /// Sleep for the armed duration (tests deadline budgets).
    Stall,
    /// Ask the site to produce an empty result (tests empty-curve
    /// handling); [`trip`] returns `true` and the site is expected to act
    /// on it.
    EmptyCurve,
}

#[cfg(feature = "fault-inject")]
mod registry {
    use super::FaultKind;
    use std::cell::RefCell;
    use std::collections::HashMap;
    use std::time::Duration;

    #[derive(Clone, Debug)]
    struct Plan {
        kind: FaultKind,
        nth: u64,
        hits: u64,
        fired: bool,
        stall: Duration,
    }

    thread_local! {
        static REGISTRY: RefCell<HashMap<String, Plan>> = RefCell::new(HashMap::new());
    }

    /// Default sleep for [`FaultKind::Stall`] when armed via
    /// [`arm`](super::arm).
    pub const DEFAULT_STALL: Duration = Duration::from_millis(40);

    /// Arms `site` to fire `kind` on its `nth` hit (1-based; 0 is treated
    /// as 1) with the default stall duration. Re-arming a site replaces
    /// its previous plan and resets its hit counter.
    pub fn arm(site: &str, kind: FaultKind, nth: u64) {
        arm_with_stall(site, kind, nth, DEFAULT_STALL);
    }

    /// Like [`arm`], with an explicit stall duration for
    /// [`FaultKind::Stall`].
    pub fn arm_with_stall(site: &str, kind: FaultKind, nth: u64, stall: Duration) {
        REGISTRY.with(|r| {
            r.borrow_mut().insert(
                site.to_owned(),
                Plan {
                    kind,
                    nth: nth.max(1),
                    hits: 0,
                    fired: false,
                    stall,
                },
            );
        });
    }

    /// Disarms every site on this thread.
    pub fn disarm_all() {
        REGISTRY.with(|r| r.borrow_mut().clear());
    }

    /// How often `site` has been hit since it was (re-)armed; 0 for sites
    /// that were never armed.
    pub fn hits(site: &str) -> u64 {
        REGISTRY.with(|r| r.borrow().get(site).map_or(0, |p| p.hits))
    }

    /// The armed-build implementation of [`trip`](super::trip).
    pub fn trip(site: &str) -> bool {
        let action = REGISTRY.with(|r| {
            let mut reg = r.borrow_mut();
            let plan = reg.get_mut(site)?;
            plan.hits += 1;
            match plan.kind {
                // Persistent from the Nth hit on: a poisoned DP must not
                // heal through sub-problems the fault never touched.
                FaultKind::EmptyCurve if plan.hits >= plan.nth => Some((plan.kind, plan.stall)),
                // One-shot on exactly the Nth hit.
                FaultKind::Panic | FaultKind::Stall if plan.hits == plan.nth && !plan.fired => {
                    plan.fired = true;
                    Some((plan.kind, plan.stall))
                }
                _ => None,
            }
        });
        match action {
            // audit:allow(panic): the whole point of this site is a deliberate, injected panic.
            Some((FaultKind::Panic, _)) => panic!("injected fault at site `{site}`"),
            Some((FaultKind::Stall, stall)) => {
                std::thread::sleep(stall);
                false
            }
            Some((FaultKind::EmptyCurve, _)) => true,
            None => false,
        }
    }
}

#[cfg(feature = "fault-inject")]
pub use registry::{arm, arm_with_stall, disarm_all, hits, trip, DEFAULT_STALL};

/// Fault-injection hook; returns whether the site must produce an empty
/// result. With the `fault-inject` feature off (the default) this is an
/// inlined constant `false` and the whole registry does not exist.
#[cfg(not(feature = "fault-inject"))]
#[inline(always)]
pub fn trip(_site: &str) -> bool {
    false
}

#[cfg(all(test, feature = "fault-inject"))]
mod tests {
    use super::*;

    #[test]
    fn unarmed_sites_never_fire() {
        disarm_all();
        assert!(!trip("curves.test.unarmed"));
        assert_eq!(hits("curves.test.unarmed"), 0);
    }

    #[test]
    fn empty_curve_fires_from_nth_hit_onward() {
        disarm_all();
        arm("curves.test.empty", FaultKind::EmptyCurve, 3);
        assert!(!trip("curves.test.empty"));
        assert!(!trip("curves.test.empty"));
        assert!(trip("curves.test.empty"));
        assert!(trip("curves.test.empty"), "persistent after the nth hit");
        assert_eq!(hits("curves.test.empty"), 4);
        disarm_all();
    }

    #[test]
    fn panic_fires_once_on_the_nth_hit() {
        disarm_all();
        arm("curves.test.panic", FaultKind::Panic, 2);
        assert!(!trip("curves.test.panic"));
        let caught = std::panic::catch_unwind(|| trip("curves.test.panic"));
        assert!(caught.is_err(), "second hit panics");
        disarm_all();
    }

    #[test]
    fn rearming_resets_the_counter() {
        disarm_all();
        arm("curves.test.rearm", FaultKind::EmptyCurve, 1);
        assert!(trip("curves.test.rearm"));
        arm("curves.test.rearm", FaultKind::EmptyCurve, 2);
        assert!(!trip("curves.test.rearm"), "counter was reset");
        assert!(trip("curves.test.rearm"));
        disarm_all();
    }
}
