//! Non-inferior solution curves and the DP operators over them.

use merlin_tech::units::{ps_cmp, Cap, PsTime};
use merlin_tech::{BufferLibrary, WireModel};

use crate::arena::ProvId;
use crate::point::CurvePoint;

/// The total order [`Curve::prune`] sorts by: `(load, area, −req, prov)`.
///
/// The provenance tie-break matters: `sort_unstable` would otherwise order
/// identical `(load, req, area)` triples by their incidental positions in
/// the input vector, making the keep-first duplicate choice depend on
/// which *other* candidates happened to be generated — and the predictive
/// generation filters in `merlin-core` legitimately shrink that set. With
/// a total order the pruned curve is a function of the point set alone.
#[inline]
fn cmp_total(a: &CurvePoint, b: &CurvePoint) -> std::cmp::Ordering {
    a.load
        .cmp(&b.load)
        .then_with(|| a.area.cmp(&b.area))
        .then_with(|| ps_cmp(b.req, a.req))
        .then_with(|| a.prov.index().cmp(&b.prov.index()))
}

/// The indexed (area → best req) staircase behind the Definition-6 sweep.
///
/// Corners sit in a flat vector sorted by strictly increasing area *and*
/// strictly increasing req, so the domination probe is one binary search
/// plus one compare, and the corners a newly accepted point makes stale
/// form one contiguous run spliced out in place. Replacing the previous
/// `BTreeMap` removes the per-point stale-key allocation and all node
/// traffic; the corner count is bounded by the survivor count, so the
/// splice memmoves stay within a few cache lines.
#[derive(Debug)]
struct Stair<V> {
    corners: Vec<(u64, f64, V)>,
}

impl<V: Copy> Stair<V> {
    fn new() -> Self {
        Stair {
            corners: Vec::new(),
        }
    }

    /// The corner with the largest area `<= area`, if any. By the sweep
    /// order its req is the best among accepted points whose area (and
    /// load) are at or below the probe's.
    #[inline]
    fn floor(&self, area: u64) -> Option<(u64, f64, V)> {
        let i = self.corners.partition_point(|c| c.0 <= area);
        i.checked_sub(1).map(|i| self.corners[i])
    }

    /// Records an accepted point, retiring the corners it strictly
    /// improves on (area `>= area` with req `<= req` — one contiguous run,
    /// by the invariant). Returns how many corners were retired.
    #[inline]
    fn accept(&mut self, area: u64, req: f64, v: V) -> usize {
        let lo = self.corners.partition_point(|c| c.0 < area);
        let mut hi = lo;
        while hi < self.corners.len() && self.corners[hi].1 <= req {
            hi += 1;
        }
        let stale = hi - lo;
        if stale == 0 {
            self.corners.insert(lo, (area, req, v));
        } else {
            self.corners[lo] = (area, req, v);
            if stale > 1 {
                self.corners.drain(lo + 1..hi);
            }
        }
        stale
    }

    fn len(&self) -> usize {
        self.corners.len()
    }
}

/// Post-prune speed/quality dial (see [`Curve::reduce`]): load
/// quantization plus Li & Shi-style predictive pruning.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PrunePolicy {
    /// Load-quantization bucket width in capacitance units: points whose
    /// loads share a `load / load_quant` bucket compete under Definition 6
    /// as if their loads were equal (survivors keep their exact values).
    /// `0` or `1` keeps every exact trade-off.
    pub load_quant: u32,
    /// Predictive resistance floor in ps per capacitance unit. Every
    /// structure is eventually driven through at least the net driver's
    /// resistance, so domination may be tested on the *adjusted* required
    /// time `req − rmin·load` (Li & Shi's predictive pruning): a point
    /// that loses on adjusted req cannot win the final selection when the
    /// true upstream resistance is at least `rmin`. `0.0` disables the
    /// adjustment; larger-than-justified values trade quality for curve
    /// size.
    pub rmin_ps_per_cap: f64,
}

impl PrunePolicy {
    /// The lossless policy: plain Definition 6.
    pub const EXACT: PrunePolicy = PrunePolicy {
        load_quant: 1,
        rmin_ps_per_cap: 0.0,
    };

    /// Whether this policy never discards an exact-front point.
    pub fn is_exact(&self) -> bool {
        self.load_quant <= 1 && self.rmin_ps_per_cap <= 0.0
    }
}

impl Default for PrunePolicy {
    fn default() -> Self {
        PrunePolicy::EXACT
    }
}

/// Forcing the legacy `BTreeMap` sweep at runtime (oracle builds only).
///
/// The A/B harness (`merlin-bench`'s `prune_ab`, via the `legacy-sweep`
/// feature) flips this to run *whole solves* against the reference sweep
/// inside one binary; the differential tests use it to cross-check the
/// indexed staircase. Production builds compile none of this.
#[cfg(any(test, feature = "legacy-sweep"))]
pub mod legacy {
    use std::sync::atomic::{AtomicBool, Ordering};

    static FORCE: AtomicBool = AtomicBool::new(false);

    /// Routes every subsequent [`super::Curve::prune`] in this process
    /// through the legacy sweep until turned off again.
    pub fn force_legacy_sweep(on: bool) {
        FORCE.store(on, Ordering::Relaxed);
    }

    /// Whether the legacy sweep is forced on.
    pub fn forced() -> bool {
        FORCE.load(Ordering::Relaxed)
    }
}

/// A set of mutually non-inferior `(load, req, area)` solutions.
///
/// A curve owns its points and keeps them sorted by increasing load after
/// [`Curve::prune`]. All dynamic programs in the workspace are built from
/// the four operators here: [`push`](Curve::push) (base cases),
/// [`merged_with`](Curve::merged_with) (joining two subtrees at a common
/// point), [`extended`](Curve::extended) (prepending a wire), and
/// [`with_buffer_options`](Curve::with_buffer_options) (optionally driving
/// the structure with each library buffer).
///
/// # Examples
///
/// ```
/// use merlin_curves::{Curve, CurvePoint, ProvId};
///
/// let mut c = Curve::new();
/// c.push(CurvePoint::new(10, 100.0, 0, ProvId::new(0)));
/// c.push(CurvePoint::new(5, 80.0, 0, ProvId::new(1)));
/// c.prune();
/// assert_eq!(c.len(), 2); // trade-off: load vs required time
/// assert!(c.best_req_within_area(u64::MAX).unwrap().req == 100.0);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Curve {
    pts: Vec<CurvePoint>,
}

/// A violation of the post-[`Curve::prune`] invariant (Definition 6 plus
/// the load-sorted storage contract), reported by
/// [`Curve::check_invariants`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CurveInvariantError {
    /// `pts[index].req` is NaN — NaN must never reach a curve comparison.
    NanReq {
        /// Index of the offending point.
        index: usize,
    },
    /// `pts[index]` is not in strictly increasing `(load, area)` order
    /// relative to its predecessor.
    NotSorted {
        /// Index of the out-of-order point.
        index: usize,
    },
    /// `pts[index]` is rendered inferior (Definition 6) by `pts[by]`.
    Dominated {
        /// Index of the inferior point.
        index: usize,
        /// Index of a dominating point.
        by: usize,
    },
}

impl std::fmt::Display for CurveInvariantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            CurveInvariantError::NanReq { index } => {
                write!(f, "point {index} has a NaN required time")
            }
            CurveInvariantError::NotSorted { index } => {
                write!(f, "point {index} breaks the (load, area) sort order")
            }
            CurveInvariantError::Dominated { index, by } => {
                write!(f, "point {index} is inferior to point {by} (Definition 6)")
            }
        }
    }
}

impl std::error::Error for CurveInvariantError {}

impl Curve {
    /// Creates an empty curve.
    pub fn new() -> Self {
        Curve { pts: Vec::new() }
    }

    /// Creates an empty curve with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Curve {
            pts: Vec::with_capacity(cap),
        }
    }

    /// Appends a point **without** pruning (call [`Curve::prune`] when
    /// done inserting).
    pub fn push(&mut self, p: CurvePoint) {
        self.pts.push(p);
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.pts.len()
    }

    /// Whether the curve has no points.
    pub fn is_empty(&self) -> bool {
        self.pts.is_empty()
    }

    /// The points as a slice.
    pub fn points(&self) -> &[CurvePoint] {
        &self.pts
    }

    /// Iterates over the points.
    pub fn iter(&self) -> std::slice::Iter<'_, CurvePoint> {
        self.pts.iter()
    }

    /// Rewrites every point's provenance handle in place, preserving
    /// values and ordering. Used when a parallel DP merges per-worker
    /// arena segments into the global arena: the `(load, req, area)`
    /// content is final, only the arena ids need rebasing.
    pub fn map_prov(&mut self, mut f: impl FnMut(ProvId) -> ProvId) {
        for p in &mut self.pts {
            p.prov = f(p.prov);
        }
    }

    /// Removes every inferior point (Definition 6), keeping one
    /// representative of identical points, and sorts by increasing load.
    ///
    /// Runs in `O(s log s)`: points are sorted by the total order
    /// `(load, area, −req, prov)` and swept through the indexed
    /// [`Stair`], exactly the "pruning operation" of lines 19–20 of the
    /// paper's Figure 9. Lemma 9: no non-inferior solution is lost.
    pub fn prune(&mut self) {
        if crate::fault::trip("curves.prune") {
            self.pts.clear();
            return;
        }
        if self.pts.len() <= 1 {
            return;
        }
        self.pts.sort_unstable_by(cmp_total);
        #[cfg(any(test, feature = "legacy-sweep"))]
        if legacy::forced() {
            self.sweep_legacy();
            self.debug_check_noninferior("prune");
            return;
        }
        // The instrumented sweep is a physically separate copy of the loop
        // (not a `traced` flag threaded through the hot one): prune is the
        // hottest function in the workspace, and keeping even a
        // perfectly-predicted per-point branch plus the tally locals out
        // of the untraced path is what keeps disabled tracing free.
        if merlin_trace::is_enabled() {
            self.prune_sweep_traced();
        } else {
            self.prune_sweep();
        }
        self.debug_check_noninferior("prune");
    }

    /// The Definition-6 sweep over the indexed staircase: a point is
    /// inferior iff the floor corner at its area already reaches its req
    /// (that corner's load and area are at or below the point's, by the
    /// sweep order). Survivors are compacted in place — no output vector,
    /// no per-point allocations.
    ///
    /// `inline(always)`: this is `prune`'s untraced hot path — measured
    /// against the uninstrumented code, letting the two-callee dispatch
    /// demote this call to an outlined one costs ~3% end-to-end.
    #[inline(always)]
    fn prune_sweep(&mut self) {
        let mut stair: Stair<()> = Stair::new();
        let mut w = 0usize;
        for i in 0..self.pts.len() {
            let p = self.pts[i];
            if stair.floor(p.area).is_some_and(|(_, r, ())| r >= p.req) {
                continue;
            }
            stair.accept(p.area, p.req, ());
            self.pts[w] = p;
            w += 1;
        }
        self.pts.truncate(w);
    }

    /// [`Curve::prune_sweep`] plus the `curves.prune.*` trace counters and
    /// the Definition-6 kill taxonomy: a killer staircase corner with the
    /// identical (area, bit-identical req) means the point is a duplicate
    /// of one already kept; anything else is genuine domination. The
    /// `curves.prune.index.*` names size the staircase itself.
    #[cold]
    #[inline(never)]
    fn prune_sweep_traced(&mut self) {
        let before = self.pts.len();
        let mut killed_duplicate = 0u64;
        let mut stale_corners = 0u64;
        let mut peak_corners = 0usize;
        let mut stair: Stair<()> = Stair::new();
        let mut w = 0usize;
        for i in 0..self.pts.len() {
            let p = self.pts[i];
            if let Some((area, req, ())) = stair.floor(p.area) {
                if req >= p.req {
                    if area == p.area && req.to_bits() == p.req.to_bits() {
                        killed_duplicate += 1;
                    }
                    continue;
                }
            }
            stale_corners += stair.accept(p.area, p.req, ()) as u64;
            peak_corners = peak_corners.max(stair.len());
            self.pts[w] = p;
            w += 1;
        }
        self.pts.truncate(w);
        let killed = (before - w) as u64;
        merlin_trace::counter("curves.prune.calls", 1);
        merlin_trace::counter("curves.prune.in", before as u64);
        merlin_trace::counter("curves.pruned", killed);
        merlin_trace::counter("curves.prune.kill.duplicate", killed_duplicate);
        merlin_trace::counter(
            "curves.prune.kill.dominated",
            killed.saturating_sub(killed_duplicate),
        );
        merlin_trace::counter("curves.prune.index.stale", stale_corners);
        merlin_trace::observe("curves.prune.index.peak", peak_corners as u64);
        merlin_trace::observe("curves.prune.size", w as u64);
    }

    /// The pre-index `BTreeMap` staircase sweep, kept verbatim as the
    /// differential-testing oracle: [`Curve::prune`] must keep identical
    /// points in identical order. Compiled for tests and the
    /// `legacy-sweep` feature only.
    #[cfg(any(test, feature = "legacy-sweep"))]
    fn sweep_legacy(&mut self) {
        let mut stair: std::collections::BTreeMap<u64, f64> = std::collections::BTreeMap::new();
        let mut out = Vec::with_capacity(self.pts.len());
        for p in self.pts.drain(..) {
            let dominated = stair
                .range(..=p.area)
                .next_back()
                .is_some_and(|(_, &r)| r >= p.req);
            if dominated {
                continue;
            }
            let stale: Vec<u64> = stair
                .range(p.area..)
                .take_while(|(_, &r)| r <= p.req)
                .map(|(&a, _)| a)
                .collect();
            for a in stale {
                stair.remove(&a);
            }
            stair.insert(p.area, p.req);
            out.push(p);
        }
        self.pts = out;
    }

    /// Sorts and prunes through the legacy sweep regardless of the
    /// [`legacy`] process-wide switch — the curve-level oracle entry
    /// point for differential tests and the A/B harness.
    #[cfg(any(test, feature = "legacy-sweep"))]
    pub fn prune_legacy(&mut self) {
        if self.pts.len() <= 1 {
            return;
        }
        self.pts.sort_unstable_by(cmp_total);
        self.sweep_legacy();
    }

    /// Applies a [`PrunePolicy`] to an already-pruned curve: re-runs the
    /// Definition-6 sweep with loads bucketed by `load_quant` and
    /// required times adjusted by `rmin_ps_per_cap`, then restores the
    /// exact `(load, area)` storage order. Survivors keep their exact
    /// values, so the result is a subset of the exact front — a
    /// speed/quality dial in the same family as [`Curve::thin_to`],
    /// threaded per resilience-ladder tier through `MerlinConfig`. The
    /// [`PrunePolicy::EXACT`] default is a no-op.
    pub fn reduce(&mut self, policy: PrunePolicy) {
        if policy.is_exact() || self.pts.len() <= 1 {
            return;
        }
        let q = policy.load_quant.max(1);
        let rmin = policy.rmin_ps_per_cap.max(0.0);
        let adj = |p: &CurvePoint| p.req - rmin * f64::from(p.load.units());
        let before = self.pts.len();
        self.pts.sort_unstable_by(|a, b| {
            (a.load.units() / q)
                .cmp(&(b.load.units() / q))
                .then_with(|| a.area.cmp(&b.area))
                .then_with(|| ps_cmp(adj(b), adj(a)))
                .then_with(|| a.prov.index().cmp(&b.prov.index()))
        });
        let mut stair: Stair<()> = Stair::new();
        let mut w = 0usize;
        for i in 0..self.pts.len() {
            let p = self.pts[i];
            let r = adj(&p);
            if stair.floor(p.area).is_some_and(|(_, fr, ())| fr >= r) {
                continue;
            }
            stair.accept(p.area, r, ());
            self.pts[w] = p;
            w += 1;
        }
        self.pts.truncate(w);
        self.pts.sort_unstable_by(cmp_total);
        if merlin_trace::is_enabled() {
            merlin_trace::counter(
                "curves.prune.predictive.reduced",
                (before - self.pts.len()) as u64,
            );
        }
        self.debug_check_noninferior("reduce");
    }

    /// Verifies the post-[`Curve::prune`] contract: no NaN required time,
    /// points in strictly increasing `(load, area)` order, and no point
    /// inferior to another (Definition 6).
    ///
    /// Runs in `O(s log s)` with the same staircase sweep as the pruning
    /// operation, so it is cheap enough to assert after every DP operator
    /// in debug builds. The `O(s²)` [`Curve::is_pruned`] stays as the
    /// brute-force cross-check in tests.
    ///
    /// # Errors
    ///
    /// The first violation found, in storage order.
    pub fn check_invariants(&self) -> Result<(), CurveInvariantError> {
        // (area, req, index) staircase of already-seen points: the floor
        // corner at A holds the best req among seen points with area <= A
        // (and load <= current, by sweep order).
        let mut stair: Stair<usize> = Stair::new();
        for (i, p) in self.pts.iter().enumerate() {
            if p.req.is_nan() {
                return Err(CurveInvariantError::NanReq { index: i });
            }
            if i > 0 {
                let q = &self.pts[i - 1];
                if (q.load, q.area) >= (p.load, p.area) {
                    return Err(CurveInvariantError::NotSorted { index: i });
                }
            }
            if let Some((_, r, by)) = stair.floor(p.area) {
                if r >= p.req {
                    return Err(CurveInvariantError::Dominated { index: i, by });
                }
            }
            stair.accept(p.area, p.req, i);
        }
        Ok(())
    }

    /// Debug-mode Definition-6 assertion: panics if
    /// [`Curve::check_invariants`] fails.
    ///
    /// Compiled to a no-op unless `debug_assertions` are on or the
    /// `invariant-checks` feature is enabled, so release-mode DP hot paths
    /// pay nothing. `ctx` names the operator being checked for the panic
    /// message.
    #[inline]
    pub fn debug_check_noninferior(&self, ctx: &str) {
        #[cfg(any(debug_assertions, feature = "invariant-checks"))]
        if let Err(e) = self.check_invariants() {
            // audit:allow(panic): this IS the invariant checker.
            panic!(
                "curve invariant violated after {ctx}: {e} ({} points)",
                self.len()
            );
        }
        #[cfg(not(any(debug_assertions, feature = "invariant-checks")))]
        let _ = ctx;
    }

    /// Whether no point dominates another (used by tests; `O(s²)`).
    pub fn is_pruned(&self) -> bool {
        for (i, a) in self.pts.iter().enumerate() {
            for (j, b) in self.pts.iter().enumerate() {
                if i != j && a.dominates(b) {
                    return false;
                }
            }
        }
        true
    }

    /// Cross-product combination of two curves rooted at the same point:
    /// loads and areas add, required times take the minimum.
    ///
    /// `combine(prov_a, prov_b)` records the provenance of each produced
    /// point. The result is pruned.
    pub fn merged_with<F>(&self, other: &Curve, mut combine: F) -> Curve
    where
        F: FnMut(ProvId, ProvId) -> ProvId,
    {
        let mut out = Curve::with_capacity(self.len() * other.len());
        for a in &self.pts {
            for b in &other.pts {
                out.push(CurvePoint {
                    load: a.load + b.load,
                    req: a.req.min(b.req),
                    area: a.area + b.area,
                    prov: combine(a.prov, b.prov),
                });
            }
        }
        out.prune();
        out.debug_check_noninferior("merged_with");
        out
    }

    /// Prepends a wire of `len` λ to every solution: load grows by the wire
    /// capacitance, required time shrinks by the Elmore delay of the wire
    /// into the old load. The result is pruned (extension is monotone, so
    /// pruning only collapses load-quantization ties).
    pub fn extended<F>(&self, wire: &WireModel, len: u64, mut step: F) -> Curve
    where
        F: FnMut(ProvId) -> ProvId,
    {
        let wc = wire.wire_cap(len);
        let mut out = Curve::with_capacity(self.len());
        for p in &self.pts {
            out.push(CurvePoint {
                load: p.load + wc,
                req: p.req - wire.elmore_ps(len, p.load),
                area: p.area,
                prov: step(p.prov),
            });
        }
        out.prune();
        out.debug_check_noninferior("extended");
        out
    }

    /// Adds, for every library buffer, the option of driving each solution
    /// with that buffer (load collapses to the buffer input capacitance,
    /// required time shrinks by the buffer delay, area grows by the buffer
    /// area). The unbuffered originals are kept; the result is pruned.
    pub fn with_buffer_options<F>(&self, library: &BufferLibrary, mut step: F) -> Curve
    where
        F: FnMut(u16, ProvId) -> ProvId,
    {
        let mut out = Curve::with_capacity(self.len() * (library.len() + 1));
        for p in &self.pts {
            out.push(*p);
        }
        for (bi, buf) in library.iter().enumerate() {
            for p in &self.pts {
                out.push(CurvePoint {
                    load: buf.cin,
                    req: p.req - buf.delay_linear_ps(p.load),
                    area: p.area + buf.area,
                    prov: step(bi as u16, p.prov),
                });
            }
        }
        out.prune();
        out.debug_check_noninferior("with_buffer_options");
        out
    }

    /// Merges another curve's points into this one in place, re-pruning.
    pub fn absorb(&mut self, other: Curve) {
        if other.is_empty() {
            return;
        }
        if self.is_empty() {
            *self = other;
            return;
        }
        self.pts.extend(other.pts);
        self.prune();
        self.debug_check_noninferior("absorb");
    }

    /// Best (largest) required time among solutions with `area ≤ budget`
    /// and, optionally, further criteria applied by the caller.
    pub fn best_req_within_area(&self, budget: u64) -> Option<&CurvePoint> {
        self.pts
            .iter()
            .filter(|p| p.area <= budget)
            .max_by(|a, b| ps_cmp(a.req, b.req))
    }

    /// Cheapest (smallest-area) solution achieving `req ≥ target`.
    pub fn min_area_with_req(&self, target: PsTime) -> Option<&CurvePoint> {
        self.pts
            .iter()
            .filter(|p| p.req >= target)
            .min_by_key(|p| p.area)
    }

    /// Quality-controlled thinning: if the curve has more than `max_points`
    /// points, keep `max_points` of them spread evenly across the load
    /// range (always keeping both extremes and the best-required-time
    /// point).
    ///
    /// This is a *speed knob*, not part of the paper's algorithm; with it
    /// disabled (the default in the accuracy configurations) all curves are
    /// exact. The scaling benchmarks quantify its effect.
    pub fn thin_to(&mut self, max_points: usize) {
        if max_points == 0 || self.pts.len() <= max_points {
            return;
        }
        self.pts.sort_unstable_by_key(|a| a.load);
        let best_req_idx = self
            .pts
            .iter()
            .enumerate()
            .max_by(|a, b| ps_cmp(a.1.req, b.1.req))
            .map(|(i, _)| i)
            .unwrap_or(0);
        let n = self.pts.len();
        let mut keep = vec![false; n];
        keep[0] = true;
        keep[n - 1] = true;
        keep[best_req_idx] = true;
        let remaining = max_points.saturating_sub(3).max(1);
        for k in 0..remaining {
            let idx = (k * (n - 1)) / remaining;
            keep[idx] = true;
        }
        let mut i = 0;
        self.pts.retain(|_| {
            let k = keep[i];
            i += 1;
            k
        });
    }

    /// Minimum load over the curve, if non-empty.
    pub fn min_load(&self) -> Option<Cap> {
        self.pts.iter().map(|p| p.load).min()
    }
}

impl FromIterator<CurvePoint> for Curve {
    fn from_iter<T: IntoIterator<Item = CurvePoint>>(iter: T) -> Self {
        let mut c = Curve {
            pts: iter.into_iter().collect(),
        };
        c.prune();
        c
    }
}

impl Extend<CurvePoint> for Curve {
    fn extend<T: IntoIterator<Item = CurvePoint>>(&mut self, iter: T) {
        self.pts.extend(iter);
        self.prune();
    }
}

impl<'a> IntoIterator for &'a Curve {
    type Item = &'a CurvePoint;
    type IntoIter = std::slice::Iter<'a, CurvePoint>;
    fn into_iter(self) -> Self::IntoIter {
        self.pts.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: u32) -> ProvId {
        ProvId::new(i)
    }

    /// Brute-force O(s²) reference pruning.
    fn brute_prune(pts: &[CurvePoint]) -> Vec<CurvePoint> {
        let mut out: Vec<CurvePoint> = Vec::new();
        'outer: for (i, p) in pts.iter().enumerate() {
            for (j, q) in pts.iter().enumerate() {
                let strictly_better =
                    q.dominates(p) && (q.load != p.load || q.req != p.req || q.area != p.area);
                if strictly_better {
                    continue 'outer;
                }
                // exact duplicate: keep only first occurrence
                if j < i && q.load == p.load && q.req == p.req && q.area == p.area {
                    continue 'outer;
                }
            }
            out.push(*p);
        }
        out
    }

    fn assert_same_front(fast: &Curve, slow: &[CurvePoint]) {
        let mut a: Vec<_> = fast
            .iter()
            .map(|p| (p.load.units(), p.area, p.req.to_bits()))
            .collect();
        let mut b: Vec<_> = slow
            .iter()
            .map(|p| (p.load.units(), p.area, p.req.to_bits()))
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn prune_matches_brute_force_on_fixed_set() {
        let pts = vec![
            CurvePoint::new(10, 100.0, 5, pid(0)),
            CurvePoint::new(10, 100.0, 5, pid(1)), // duplicate
            CurvePoint::new(12, 99.0, 4, pid(2)),
            CurvePoint::new(8, 90.0, 9, pid(3)),
            CurvePoint::new(20, 120.0, 5, pid(4)),
            CurvePoint::new(20, 119.0, 6, pid(5)), // dominated by previous
            CurvePoint::new(5, 50.0, 0, pid(6)),
            CurvePoint::new(6, 50.0, 0, pid(7)), // dominated
        ];
        let mut c = Curve::new();
        for p in &pts {
            c.push(*p);
        }
        c.prune();
        assert!(c.is_pruned());
        assert_same_front(&c, &brute_prune(&pts));
    }

    #[test]
    fn prune_is_idempotent() {
        let mut c = Curve::new();
        for i in 0..50u32 {
            c.push(CurvePoint::new(
                (i * 7) % 23,
                ((i * 13) % 31) as f64,
                ((i * 5) % 11) as u64,
                pid(i),
            ));
        }
        c.prune();
        let once = c.clone();
        c.prune();
        assert_eq!(once, c);
    }

    #[test]
    fn merge_adds_loads_and_areas_and_mins_req() {
        let mut a = Curve::new();
        a.push(CurvePoint::new(10, 100.0, 1, pid(0)));
        let mut b = Curve::new();
        b.push(CurvePoint::new(20, 80.0, 2, pid(1)));
        let m = a.merged_with(&b, |_, _| pid(99));
        assert_eq!(m.len(), 1);
        let p = m.points()[0];
        assert_eq!(p.load, Cap(30));
        assert_eq!(p.req, 80.0);
        assert_eq!(p.area, 3);
        assert_eq!(p.prov, pid(99));
    }

    #[test]
    fn merge_is_commutative_up_to_provenance() {
        let mut a = Curve::new();
        a.push(CurvePoint::new(10, 100.0, 1, pid(0)));
        a.push(CurvePoint::new(5, 60.0, 0, pid(1)));
        let mut b = Curve::new();
        b.push(CurvePoint::new(7, 90.0, 2, pid(2)));
        b.push(CurvePoint::new(3, 70.0, 1, pid(3)));
        let ab = a.merged_with(&b, |_, _| pid(0));
        let ba = b.merged_with(&a, |_, _| pid(0));
        let key = |c: &Curve| {
            let mut v: Vec<_> = c
                .iter()
                .map(|p| (p.load.units(), p.area, p.req.to_bits()))
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(key(&ab), key(&ba));
    }

    #[test]
    fn extension_uses_old_load_for_elmore() {
        let wire = WireModel::synthetic_035();
        let mut c = Curve::new();
        c.push(CurvePoint::with_load(Cap::from_ff(40.0), 500.0, 0, pid(0)));
        let e = c.extended(&wire, 100, |p| p);
        assert_eq!(e.len(), 1);
        let p = e.points()[0];
        assert_eq!(p.load, Cap::from_ff(40.0) + wire.wire_cap(100));
        let expect = 500.0 - wire.elmore_ps(100, Cap::from_ff(40.0));
        assert!((p.req - expect).abs() < 1e-9);
    }

    #[test]
    fn buffer_options_keep_originals_when_non_inferior() {
        let lib = BufferLibrary::tiny_test();
        let mut c = Curve::new();
        c.push(CurvePoint::with_load(Cap::from_ff(500.0), 900.0, 0, pid(0)));
        let b = c.with_buffer_options(&lib, |_, p| p);
        // The huge unbuffered load means a buffered variant survives (small
        // load) alongside the original (best req, zero area).
        assert!(b.len() >= 2);
        assert!(b.iter().any(|p| p.area == 0));
        assert!(b.iter().any(|p| p.area > 0));
    }

    #[test]
    fn constraint_queries() {
        let mut c = Curve::new();
        c.push(CurvePoint::new(10, 100.0, 50, pid(0)));
        c.push(CurvePoint::new(10, 80.0, 20, pid(1)));
        c.push(CurvePoint::new(10, 60.0, 0, pid(2)));
        c.prune();
        assert_eq!(
            c.best_req_within_area(30)
                .expect("curve has a point within the area budget")
                .req,
            80.0
        );
        assert_eq!(
            c.best_req_within_area(0)
                .expect("curve has a point within the area budget")
                .req,
            60.0
        );
        assert!(
            c.best_req_within_area(u64::MAX)
                .expect("curve has a point within the area budget")
                .req
                == 100.0
        );
        assert_eq!(
            c.min_area_with_req(70.0)
                .expect("a point meets the required time")
                .area,
            20
        );
        assert!(c.min_area_with_req(1000.0).is_none());
    }

    #[test]
    fn thinning_respects_bounds_and_keeps_best() {
        let mut c = Curve::new();
        for i in 0..100u32 {
            // A genuine 2D front: increasing load, increasing req.
            c.push(CurvePoint::new(i, i as f64, (100 - i) as u64, pid(i)));
        }
        c.prune();
        assert_eq!(c.len(), 100);
        let best = c
            .best_req_within_area(u64::MAX)
            .expect("curve has a point within the area budget")
            .req;
        c.thin_to(10);
        assert!(c.len() <= 10 + 2);
        assert_eq!(
            c.best_req_within_area(u64::MAX)
                .expect("curve has a point within the area budget")
                .req,
            best
        );
    }

    #[test]
    fn absorb_unions_and_prunes() {
        let mut a = Curve::new();
        a.push(CurvePoint::new(10, 100.0, 5, pid(0)));
        let mut b = Curve::new();
        b.push(CurvePoint::new(10, 120.0, 5, pid(1)));
        a.absorb(b);
        assert_eq!(a.len(), 1);
        assert_eq!(a.points()[0].req, 120.0);
    }

    /// Points and order must be *identical* between the indexed staircase
    /// and the legacy BTreeMap sweep — provenance included.
    fn assert_identical(a: &Curve, b: &Curve) {
        let key = |c: &Curve| {
            c.iter()
                .map(|p| (p.load.units(), p.area, p.req.to_bits(), p.prov.index()))
                .collect::<Vec<_>>()
        };
        assert_eq!(key(a), key(b));
    }

    #[test]
    fn indexed_sweep_matches_legacy_sweep_randomized() {
        let mut state = 0x9e3779b9u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..200 {
            let n = (next() % 120) as usize;
            // Small value ranges force heavy collisions, including exact
            // duplicates and load-quantization-style load ties.
            let pts: Vec<CurvePoint> = (0..n)
                .map(|i| {
                    CurvePoint::new(
                        (next() % 12) as u32,
                        (next() % 12) as f64,
                        next() % 12,
                        pid(i as u32),
                    )
                })
                .collect();
            let mut fast = Curve::new();
            let mut slow = Curve::new();
            for p in &pts {
                fast.push(*p);
                slow.push(*p);
            }
            fast.prune();
            slow.prune_legacy();
            assert_identical(&fast, &slow);
            // And through the process-wide oracle switch, which exercises
            // the `prune()` entry itself.
            let mut forced = Curve::new();
            for p in &pts {
                forced.push(*p);
            }
            legacy::force_legacy_sweep(true);
            forced.prune();
            legacy::force_legacy_sweep(false);
            assert_identical(&fast, &forced);
            assert!(fast.is_pruned(), "round {round}");
        }
    }

    #[test]
    fn duplicate_triples_keep_the_lowest_provenance() {
        // Identical (load, req, area) triples: the total-order sort makes
        // the keep-first choice the lowest prov id, independent of input
        // order or surrounding points.
        for order in [[2u32, 0, 1], [0, 1, 2], [1, 2, 0]] {
            let mut c = Curve::new();
            for i in order {
                c.push(CurvePoint::new(10, 50.0, 5, pid(i)));
            }
            c.push(CurvePoint::new(3, 40.0, 5, pid(7)));
            c.prune();
            let dup = c
                .iter()
                .find(|p| p.load == Cap(10))
                .expect("one duplicate representative survives");
            assert_eq!(dup.prov, pid(0));
        }
    }

    #[test]
    fn exact_policy_reduce_is_identity() {
        let mut c = Curve::new();
        for i in 0..40u32 {
            c.push(CurvePoint::new(
                (i * 7) % 23,
                ((i * 13) % 31) as f64,
                ((i * 5) % 11) as u64,
                pid(i),
            ));
        }
        c.prune();
        let before = c.clone();
        c.reduce(PrunePolicy::EXACT);
        assert_eq!(before, c);
        c.reduce(PrunePolicy {
            load_quant: 0,
            rmin_ps_per_cap: -1.0,
        });
        assert_eq!(before, c, "degenerate dial values mean exact");
    }

    #[test]
    fn load_quantization_collapses_bucket_ties() {
        let mut c = Curve::new();
        // Loads 10 and 11 share a bucket at q=4; the higher-req one wins.
        c.push(CurvePoint::new(10, 90.0, 5, pid(0)));
        c.push(CurvePoint::new(11, 100.0, 5, pid(1)));
        // Load 13 sits in the next bucket and survives regardless.
        c.push(CurvePoint::new(13, 110.0, 5, pid(2)));
        c.prune();
        assert_eq!(c.len(), 3);
        c.reduce(PrunePolicy {
            load_quant: 4,
            rmin_ps_per_cap: 0.0,
        });
        assert_eq!(c.len(), 2);
        assert!(c.iter().all(|p| p.prov != pid(0)));
        assert!(c.check_invariants().is_ok(), "storage order restored");
    }

    #[test]
    fn predictive_rmin_charges_load() {
        let mut c = Curve::new();
        // Same area: p1 has 10 more load units and only 5 ps more req, so
        // under rmin = 1 ps/unit it is predictively dominated by p0.
        c.push(CurvePoint::new(10, 100.0, 5, pid(0)));
        c.push(CurvePoint::new(20, 105.0, 5, pid(1)));
        c.prune();
        assert_eq!(c.len(), 2);
        let mut quantized = c.clone();
        quantized.reduce(PrunePolicy {
            load_quant: 100,
            rmin_ps_per_cap: 0.0,
        });
        assert_eq!(quantized.len(), 1, "bucket-mates with equal area collapse");
        assert_eq!(
            quantized.points()[0].prov,
            pid(1),
            "without rmin the raw-req winner is kept"
        );
        c.reduce(PrunePolicy {
            load_quant: 100,
            rmin_ps_per_cap: 1.0,
        });
        assert_eq!(c.len(), 1);
        assert_eq!(
            c.points()[0].prov,
            pid(0),
            "rmin charges the extra load, flipping the winner"
        );
    }

    #[test]
    fn reduce_result_is_subset_of_exact_front() {
        let mut state = 0xfeedbeefu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..50 {
            let n = 1 + (next() % 80) as usize;
            let mut c = Curve::new();
            for i in 0..n {
                c.push(CurvePoint::new(
                    (next() % 64) as u32,
                    (next() % 64) as f64,
                    next() % 16,
                    pid(i as u32),
                ));
            }
            c.prune();
            let exact: Vec<_> = c
                .iter()
                .map(|p| (p.load.units(), p.area, p.req.to_bits(), p.prov.index()))
                .collect();
            c.reduce(PrunePolicy {
                load_quant: 8,
                rmin_ps_per_cap: 0.5,
            });
            assert!(!c.is_empty());
            assert!(c.check_invariants().is_ok());
            for p in c.iter() {
                let key = (p.load.units(), p.area, p.req.to_bits(), p.prov.index());
                assert!(exact.contains(&key), "reduce must not invent points");
            }
        }
    }

    #[test]
    fn randomized_prune_matches_brute_force() {
        // Deterministic pseudo-random stress (proptest covers more in the
        // suite-level tests; this keeps the crate self-contained).
        let mut state = 0x12345678u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..50 {
            let n = 1 + (next() % 60) as usize;
            let pts: Vec<CurvePoint> = (0..n)
                .map(|i| {
                    CurvePoint::new(
                        (next() % 16) as u32,
                        (next() % 16) as f64,
                        next() % 16,
                        pid(i as u32),
                    )
                })
                .collect();
            let mut c = Curve::new();
            for p in &pts {
                c.push(*p);
            }
            c.prune();
            assert!(c.is_pruned(), "round {round}");
            assert_same_front(&c, &brute_prune(&pts));
        }
    }
}
