//! Points of a three-dimensional solution curve.

use std::fmt;

use merlin_tech::units::{Cap, PsTime};

use crate::arena::ProvId;

/// One solution on a three-dimensional curve: the triple the paper's
/// Figure 8 plots, plus a provenance handle for structure extraction.
///
/// Definition 6 (non-inferiority): σ₂ is *inferior* to σ₁ iff
/// `load(σ₁) ≤ load(σ₂)`, `req(σ₂) ≤ req(σ₁)` and `area(σ₁) ≤ area(σ₂)`.
/// [`CurvePoint::dominates`] implements exactly that predicate.
///
/// # Examples
///
/// ```
/// use merlin_curves::{CurvePoint, ProvId};
///
/// let strong = CurvePoint::new(10, 100.0, 5, ProvId::new(0));
/// let weak = CurvePoint::new(20, 90.0, 7, ProvId::new(1));
/// assert!(strong.dominates(&weak));
/// assert!(!weak.dominates(&strong));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CurvePoint {
    /// Capacitive load presented at the root of the structure.
    pub load: Cap,
    /// Required time at the root, in ps (larger is better).
    pub req: PsTime,
    /// Total buffer area of the structure, in λ².
    pub area: u64,
    /// Back-pointer into the engine's [`crate::ProvArena`].
    pub prov: ProvId,
}

impl CurvePoint {
    /// Creates a point from raw quantized load units (see
    /// [`merlin_tech::units::Cap`]).
    pub fn new(load_units: u32, req: PsTime, area: u64, prov: ProvId) -> Self {
        CurvePoint {
            load: Cap(load_units),
            req,
            area,
            prov,
        }
    }

    /// Creates a point from a typed load.
    pub fn with_load(load: Cap, req: PsTime, area: u64, prov: ProvId) -> Self {
        CurvePoint {
            load,
            req,
            area,
            prov,
        }
    }

    /// Whether `self` renders `other` inferior (Definition 6).
    ///
    /// Non-strict in all three dimensions: identical points dominate each
    /// other, so pruning keeps exactly one representative.
    pub fn dominates(&self, other: &CurvePoint) -> bool {
        self.load <= other.load && self.req >= other.req && self.area <= other.area
    }
}

impl fmt::Display for CurvePoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "(load={}, req={:.1}ps, area={}λ²)",
            self.load, self.req, self.area
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_is_reflexive() {
        let p = CurvePoint::new(5, 10.0, 3, ProvId::new(0));
        assert!(p.dominates(&p));
    }

    #[test]
    fn dominance_requires_all_three_dimensions() {
        let base = CurvePoint::new(10, 50.0, 10, ProvId::new(0));
        // Better req but more load: incomparable.
        let a = CurvePoint::new(12, 60.0, 10, ProvId::new(1));
        assert!(!base.dominates(&a));
        assert!(!a.dominates(&base));
        // Less area but worse req: incomparable.
        let b = CurvePoint::new(10, 40.0, 5, ProvId::new(2));
        assert!(!base.dominates(&b));
        assert!(!b.dominates(&base));
    }

    #[test]
    fn dominance_is_transitive_on_chain() {
        let a = CurvePoint::new(1, 30.0, 1, ProvId::new(0));
        let b = CurvePoint::new(2, 20.0, 2, ProvId::new(1));
        let c = CurvePoint::new(3, 10.0, 3, ProvId::new(2));
        assert!(a.dominates(&b) && b.dominates(&c) && a.dominates(&c));
    }
}
