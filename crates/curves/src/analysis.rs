//! Curve-front analysis helpers.
//!
//! Used by the ablation experiments (E5/E7/E8) to compare the quality of
//! whole non-inferior fronts rather than single best points, and by tests
//! that need a quantitative "how much better" answer.

use merlin_tech::units::ps_max;

use crate::curve::Curve;
use crate::point::CurvePoint;

/// Summary statistics of a curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CurveStats {
    /// Number of points.
    pub len: usize,
    /// Best (maximum) required time.
    pub best_req: f64,
    /// Smallest area on the front.
    pub min_area: u64,
    /// Largest area on the front.
    pub max_area: u64,
    /// Smallest load on the front (in quantized units).
    pub min_load: u32,
}

/// Computes summary statistics; `None` for an empty curve.
pub fn stats(curve: &Curve) -> Option<CurveStats> {
    if curve.is_empty() {
        return None;
    }
    Some(CurveStats {
        len: curve.len(),
        best_req: curve.iter().map(|p| p.req).fold(f64::NEG_INFINITY, ps_max),
        min_area: curve.iter().map(|p| p.area).min().expect("non-empty"),
        max_area: curve.iter().map(|p| p.area).max().expect("non-empty"),
        min_load: curve
            .iter()
            .map(|p| p.load.units())
            .min()
            .expect("non-empty"),
    })
}

/// Fraction of `b`'s points that are dominated (Definition 6, non-strict)
/// by some point of `a`. `1.0` means `a`'s front completely covers `b`'s;
/// symmetric values near `1.0` in both directions mean the fronts are
/// equivalent — the property the paper claims for different
/// candidate-location strategies.
pub fn coverage(a: &Curve, b: &Curve) -> f64 {
    if b.is_empty() {
        return 1.0;
    }
    let covered = b
        .iter()
        .filter(|q| a.iter().any(|p| p.dominates(q)))
        .count();
    covered as f64 / b.len() as f64
}

/// The best required time achievable from `curve` under an area budget,
/// sampled at `samples` evenly spaced budgets between the front's min and
/// max area — a 1-D "quality profile" that two fronts can be compared on.
pub fn req_profile(curve: &Curve, samples: usize) -> Vec<(u64, f64)> {
    let Some(st) = stats(curve) else {
        return Vec::new();
    };
    let samples = samples.max(2);
    (0..samples)
        .map(|i| {
            let budget = st.min_area
                + ((st.max_area - st.min_area) as u128 * i as u128 / (samples - 1) as u128) as u64;
            let best = curve
                .iter()
                .filter(|p| p.area <= budget)
                .map(|p| p.req)
                .fold(f64::NEG_INFINITY, ps_max);
            (budget, best)
        })
        .collect()
}

/// Points of `a` that are *strictly better* than everything in `b`
/// (dominate some point of `b` without being dominated themselves) —
/// a quick qualitative diff between two fronts.
pub fn strict_improvements<'a>(a: &'a Curve, b: &Curve) -> Vec<&'a CurvePoint> {
    a.iter()
        .filter(|p| b.iter().any(|q| p.dominates(q)) && !b.iter().any(|q| q.dominates(p)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::ProvId;

    fn curve(pts: &[(u32, f64, u64)]) -> Curve {
        let mut c = Curve::new();
        for (i, (l, r, a)) in pts.iter().enumerate() {
            c.push(CurvePoint::new(*l, *r, *a, ProvId::new(i as u32)));
        }
        c.prune();
        c
    }

    #[test]
    fn stats_basics() {
        let c = curve(&[(10, 100.0, 5), (5, 60.0, 0)]);
        let s = stats(&c).expect("curve is non-empty");
        assert_eq!(s.len, 2);
        assert_eq!(s.best_req, 100.0);
        assert_eq!(s.min_area, 0);
        assert_eq!(s.max_area, 5);
        assert_eq!(s.min_load, 5);
        assert!(stats(&Curve::new()).is_none());
    }

    #[test]
    fn coverage_detects_equivalence_and_gaps() {
        let a = curve(&[(10, 100.0, 5), (5, 60.0, 0)]);
        let b = curve(&[(10, 90.0, 5), (5, 50.0, 0)]);
        assert_eq!(coverage(&a, &b), 1.0); // a dominates everything in b
        assert!(coverage(&b, &a) < 1.0);
        assert_eq!(coverage(&a, &a), 1.0); // non-strict: self-coverage
        assert_eq!(coverage(&a, &Curve::new()), 1.0);
    }

    #[test]
    fn req_profile_is_monotone_in_budget() {
        let c = curve(&[(10, 100.0, 50), (10, 80.0, 20), (10, 60.0, 0)]);
        let prof = req_profile(&c, 6);
        assert_eq!(prof.len(), 6);
        for w in prof.windows(2) {
            assert!(w[1].1 >= w[0].1);
            assert!(w[1].0 >= w[0].0);
        }
        assert_eq!(prof.last().expect("profile is non-empty").1, 100.0);
    }

    #[test]
    fn strict_improvements_found() {
        let a = curve(&[(10, 100.0, 5)]);
        let b = curve(&[(10, 90.0, 5)]);
        assert_eq!(strict_improvements(&a, &b).len(), 1);
        assert!(strict_improvements(&b, &a).is_empty());
    }
}
