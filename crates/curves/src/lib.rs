//! Three-dimensional solution curves for the MERLIN reproduction.
//!
//! The paper's central data structure is the *three-dimensional solution
//! curve* (§3.2.3, Figure 8): the set of non-inferior
//! `(load, required time, total buffer area)` triples describing all
//! Pareto-optimal buffered routing structures for a sub-problem. The load
//! and required-time dimensions make the principle of dynamic programming
//! valid; the area dimension lets the user solve either problem variant
//! (minimum delay under an area budget, or minimum area under a delay
//! target).
//!
//! * [`CurvePoint`] — one non-inferior solution with a provenance handle,
//! * [`Curve`] — a pruned set of curve points with the merge / wire-extend /
//!   buffer operators every DP in the workspace is built from,
//! * [`ProvArena`] — a generic append-only arena for construction steps so
//!   the winning structure can be rebuilt by following back-pointers
//!   (lines 21–22 of the paper's Figure 9).
//!
//! # Examples
//!
//! ```
//! use merlin_curves::{Curve, CurvePoint, ProvId};
//!
//! let mut c = Curve::new();
//! c.push(CurvePoint::new(100, 50.0, 10, ProvId::new(0)));
//! c.push(CurvePoint::new(120, 40.0, 10, ProvId::new(1))); // inferior: more load, less req
//! c.push(CurvePoint::new(80, 30.0, 5, ProvId::new(2)));   // non-inferior: cheaper
//! c.prune();
//! assert_eq!(c.len(), 2);
//! ```

pub mod analysis;
pub mod arena;
pub mod curve;
pub mod fault;
pub mod point;

pub use arena::{ProvArena, ProvArenaError, ProvId, ProvStep};
pub use curve::{Curve, CurveInvariantError, PrunePolicy};
pub use fault::FaultKind;
pub use point::CurvePoint;
