//! Deterministic row placement for synthetic circuits.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use merlin_geom::Point;

use crate::circuit::Circuit;

/// Row pitch in λ (site height of the synthetic cells).
pub const ROW_PITCH: i64 = 2400;

/// Places the circuit's gates, primary inputs and primary outputs.
///
/// Gates are laid out in topological order into rows of a roughly square
/// core (topological order correlates with connectivity, so connected gates
/// land near each other — a cheap stand-in for a real placer), with a small
/// seeded jitter so nets are not degenerate collinear sets. PIs sit on the
/// left edge, POs on the right edge.
pub fn place(circuit: &mut Circuit, seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x9A7CE);
    let n = circuit.gates.len().max(1);
    let per_row = (n as f64).sqrt().ceil() as usize;
    let row_width = per_row as i64 * ROW_PITCH;

    for (i, gate) in circuit.gates.iter_mut().enumerate() {
        let row = (i / per_row) as i64;
        let col = (i % per_row) as i64;
        // Serpentine rows keep consecutive gates adjacent across row breaks.
        let x = if row % 2 == 0 {
            col * ROW_PITCH
        } else {
            (per_row as i64 - 1 - col) * ROW_PITCH
        };
        let jx = rng.gen_range(-ROW_PITCH / 4..=ROW_PITCH / 4);
        let jy = rng.gen_range(-ROW_PITCH / 4..=ROW_PITCH / 4);
        gate.pos = Point::new(ROW_PITCH + x + jx, ROW_PITCH + row * ROW_PITCH + jy);
    }

    let rows = n.div_ceil(per_row) as i64;
    let core_h = (rows + 2) * ROW_PITCH;
    let ni = circuit.input_pos.len().max(1) as i64;
    for (i, p) in circuit.input_pos.iter_mut().enumerate() {
        *p = Point::new(0, (i as i64 + 1) * core_h / (ni + 1));
    }
    let no = circuit.output_pos.len().max(1) as i64;
    for (i, p) in circuit.output_pos.iter_mut().enumerate() {
        *p = Point::new(
            row_width + 2 * ROW_PITCH,
            (i as i64 + 1) * core_h / (no + 1),
        );
    }
}

#[cfg(test)]
mod tests {
    use crate::generator::synthetic_circuit;
    use merlin_geom::BBox;

    #[test]
    fn placement_is_roughly_square() {
        let c = synthetic_circuit("t", 200, 3); // generator places internally
        let bb = BBox::from_points(c.gates.iter().map(|g| g.pos)).unwrap();
        let aspect = bb.width().max(1) as f64 / bb.height().max(1) as f64;
        assert!(
            (0.3..3.5).contains(&aspect),
            "aspect ratio {aspect} too skewed"
        );
    }

    #[test]
    fn ios_are_on_the_edges() {
        let c = synthetic_circuit("t", 100, 5);
        let core = BBox::from_points(c.gates.iter().map(|g| g.pos)).unwrap();
        for p in &c.input_pos {
            assert!(p.x < core.min().x);
        }
        for p in &c.output_pos {
            assert!(p.x > core.max().x);
        }
    }

    #[test]
    fn gates_do_not_all_collide() {
        let c = synthetic_circuit("t", 64, 8);
        let mut pts: Vec<_> = c.gates.iter().map(|g| g.pos).collect();
        pts.sort_unstable();
        pts.dedup();
        assert!(pts.len() > c.gates.len() / 2);
    }
}
