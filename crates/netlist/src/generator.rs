//! Synthetic mapped-circuit generation for the Table 2 experiments.
//!
//! We do not have the SIS-mapped MCNC/ISCAS netlists the paper used, so the
//! Table 2 harness generates random mapped DAGs whose **cell areas are
//! scaled to the paper's published Flow I areas** and whose fanout
//! distribution matches what technology mapping produces (many low-fanout
//! nets, a tail of high-fanout nets). The per-net optimization problem each
//! flow solves on these circuits is exactly the paper's.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::cell::synthetic_cells;
use crate::circuit::{Circuit, CircuitNet, Gate, Terminal};
use crate::placement;

/// `(circuit name, Flow I post-layout area in 1000·λ²)` from Table 2.
pub const TABLE2_SPECS: [(&str, u64); 15] = [
    ("C1355", 3_630),
    ("C1908", 7_768),
    ("C2670", 9_428),
    ("C3540", 15_762),
    ("C432", 3_574),
    ("C6288", 28_497),
    ("C7552", 35_189),
    ("Alu4", 8_191),
    ("B9", 1_210),
    ("Dalu", 10_344),
    ("Desa", 32_388),
    ("Duke2", 5_499),
    ("K2", 22_823),
    ("Rot", 8_315),
    ("T481", 8_917),
];

/// Generates a synthetic mapped circuit with roughly `target_gates` gates.
///
/// The construction:
/// 1. deal gates into `O(√target)` topological levels,
/// 2. give each gate 1..=`max_fanin(cell)` fanins drawn from earlier levels
///    with a strong recency bias (mapped logic is mostly local),
/// 3. derive nets from the resulting fanout lists; fanout-free gates feed
///    primary outputs,
/// 4. row-place everything ([`placement::place`]).
///
/// Deterministic per `(target_gates, seed)`.
pub fn synthetic_circuit(name: &str, target_gates: usize, seed: u64) -> Circuit {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xC1C517);
    let cells = synthetic_cells();
    let n = target_gates.max(4);
    let num_inputs = (n / 8).clamp(3, 64);

    let mut gates = Vec::with_capacity(n);
    for _ in 0..n {
        let cell = rng.gen_range(0..cells.len() as u16);
        gates.push(Gate {
            cell,
            pos: merlin_geom::Point::new(0, 0), // placed below
        });
    }

    // Fanin selection. Gate g may use PIs or gates < g; bias toward recent
    // gates to get mapped-netlist-like locality, but let a fraction reach
    // far back, which is what creates the high-fanout nets Table 1 samples.
    let mut fanouts: Vec<Vec<Terminal>> = vec![Vec::new(); num_inputs + n];
    for g in 0..n {
        let max_fanin = cells[gates[g].cell as usize].max_fanin;
        let fanin = rng.gen_range(1..=max_fanin);
        for _ in 0..fanin {
            let src = if g == 0 || rng.gen_bool(0.15) {
                // A primary input.
                rng.gen_range(0..num_inputs)
            } else if rng.gen_bool(0.8) {
                // Recent gate: within the last 32.
                let lo = g.saturating_sub(32);
                num_inputs + rng.gen_range(lo..g)
            } else {
                // Anywhere earlier (creates long nets and shared signals).
                num_inputs + rng.gen_range(0..g)
            };
            fanouts[src].push(Terminal::Gate(g as u32));
        }
    }

    // Fanout-free gates drive primary outputs; PIs with no fanout get a PO
    // too so that every net is non-trivial.
    let mut num_outputs = 0u32;
    for fanout in fanouts.iter_mut().take(num_inputs + n) {
        if fanout.is_empty() {
            fanout.push(Terminal::Output(num_outputs));
            num_outputs += 1;
        }
    }

    let nets: Vec<CircuitNet> = fanouts
        .into_iter()
        .enumerate()
        .map(|(src, mut sinks)| {
            sinks.sort_by_key(|t| match t {
                Terminal::Gate(g) => (0, *g),
                Terminal::Output(o) => (1, *o),
                Terminal::Input(i) => (2, *i),
            });
            sinks.dedup();
            CircuitNet {
                driver: if src < num_inputs {
                    Terminal::Input(src as u32)
                } else {
                    Terminal::Gate((src - num_inputs) as u32)
                },
                sinks,
            }
        })
        .collect();

    let mut circuit = Circuit {
        name: name.to_owned(),
        cells,
        gates,
        input_pos: vec![merlin_geom::Point::new(0, 0); num_inputs],
        output_pos: vec![merlin_geom::Point::new(0, 0); num_outputs as usize],
        nets,
    };
    placement::place(&mut circuit, seed);
    circuit
}

/// Gate count that scales a circuit to `area_kl2 / divisor` thousand λ² of
/// cell area (the Table 2 harness uses `divisor` to trade fidelity for
/// runtime; `DESIGN.md` §3 documents this substitution).
pub fn gates_for_area(area_kl2: u64, divisor: u64) -> usize {
    // Average synthetic cell is ≈ 1.6 kλ².
    ((area_kl2 / divisor.max(1)) as f64 / 1.6).round().max(8.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_circuits_validate() {
        for seed in 0..5 {
            let c = synthetic_circuit("t", 120, seed);
            c.validate().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(c.num_gates() >= 120);
        }
    }

    #[test]
    fn fanout_distribution_has_a_tail() {
        let c = synthetic_circuit("t", 400, 1);
        let max_fanout = c.nets.iter().map(|n| n.sinks.len()).max().unwrap();
        assert!(max_fanout >= 5, "max fanout {max_fanout} too small");
        assert!(c.avg_fanout() >= 1.0);
    }

    #[test]
    fn determinism() {
        let a = synthetic_circuit("t", 100, 9);
        let b = synthetic_circuit("t", 100, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn area_scaling_is_monotone() {
        assert!(gates_for_area(35_189, 20) > gates_for_area(1_210, 20));
        assert!(gates_for_area(1_210, 20) >= 8);
    }

    #[test]
    fn table2_spec_names_are_unique() {
        let mut names: Vec<_> = TABLE2_SPECS.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 15);
    }
}
