//! Single-net problem instances.

use merlin_geom::{BBox, Point};
use merlin_tech::units::{Cap, PsTime};
use merlin_tech::Driver;

/// One sink of a net: the paper's `s_i = (x, y, load, required time)`.
#[derive(Clone, Debug, PartialEq)]
pub struct Sink {
    /// Location on the layout lattice.
    pub pos: Point,
    /// Input pin capacitance.
    pub load: Cap,
    /// Required time at the pin, in ps.
    pub req_ps: PsTime,
}

impl Sink {
    /// Creates a sink.
    pub fn new(pos: Point, load: Cap, req_ps: PsTime) -> Self {
        Sink { pos, load, req_ps }
    }
}

/// A net to be realized as a buffered routing tree: a driver location and
/// electrical model plus the sink set — the full problem input of §III.1
/// (the candidate-location set and parameters arrive separately, as
/// configuration).
#[derive(Clone, Debug, PartialEq)]
pub struct Net {
    /// Net name (diagnostics and tables).
    pub name: String,
    /// Driver output location `s`.
    pub source: Point,
    /// Driver electrical model.
    pub driver: Driver,
    /// The sinks `s_1 … s_n`.
    pub sinks: Vec<Sink>,
}

impl Net {
    /// Creates a net.
    pub fn new(name: impl Into<String>, source: Point, driver: Driver, sinks: Vec<Sink>) -> Self {
        Net {
            name: name.into(),
            source,
            driver,
            sinks,
        }
    }

    /// Number of sinks.
    pub fn num_sinks(&self) -> usize {
        self.sinks.len()
    }

    /// Sink locations, index-aligned with [`Net::sinks`].
    pub fn sink_positions(&self) -> Vec<Point> {
        self.sinks.iter().map(|s| s.pos).collect()
    }

    /// Sink loads, index-aligned with [`Net::sinks`].
    pub fn sink_loads(&self) -> Vec<Cap> {
        self.sinks.iter().map(|s| s.load).collect()
    }

    /// Sink required times, index-aligned with [`Net::sinks`].
    pub fn sink_reqs(&self) -> Vec<PsTime> {
        self.sinks.iter().map(|s| s.req_ps).collect()
    }

    /// Bounding box of driver and sinks.
    pub fn bbox(&self) -> BBox {
        BBox::from_points(self.sinks.iter().map(|s| s.pos).chain(Some(self.source)))
            .expect("net has a source")
    }

    /// Sum of all sink loads (a lower bound on any root load).
    pub fn total_sink_load(&self) -> Cap {
        self.sinks.iter().map(|s| s.load).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Net {
        Net::new(
            "t",
            Point::new(0, 0),
            Driver::default(),
            vec![
                Sink::new(Point::new(100, 0), Cap::from_ff(5.0), 900.0),
                Sink::new(Point::new(0, 50), Cap::from_ff(7.0), 850.0),
            ],
        )
    }

    #[test]
    fn accessors_are_index_aligned() {
        let n = sample();
        assert_eq!(n.num_sinks(), 2);
        assert_eq!(n.sink_positions()[1], Point::new(0, 50));
        assert_eq!(n.sink_loads()[0], Cap::from_ff(5.0));
        assert_eq!(n.sink_reqs()[1], 850.0);
        assert_eq!(n.total_sink_load(), Cap::from_ff(12.0));
    }

    #[test]
    fn bbox_covers_source_and_sinks() {
        let n = sample();
        let b = n.bbox();
        assert!(b.contains(Point::new(0, 0)));
        assert!(b.contains(Point::new(100, 0)));
        assert_eq!(b.width(), 100);
        assert_eq!(b.height(), 50);
    }
}
