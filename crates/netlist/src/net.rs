//! Single-net problem instances.

use std::fmt;

use merlin_geom::{BBox, Point};
use merlin_tech::units::{Cap, PsTime};
use merlin_tech::Driver;

/// Largest coordinate magnitude [`Net::validate`] accepts, in λ.
///
/// Far below any plausible die size, yet small enough that Manhattan
/// distances, squared terms and wire-capacitance products stay clear of
/// `i64` / `f64` precision cliffs inside the DP engines.
pub const COORD_LIMIT: i64 = 1 << 40;

/// A structural defect found by [`Net::validate`].
///
/// Each variant names the first offending sink (or the source) so batch
/// drivers can report actionable diagnostics instead of panicking mid-DP.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetValidationError {
    /// The net has no sinks; there is nothing to route.
    NoSinks,
    /// Two sinks occupy the same lattice point (`first < second`, sink
    /// indices). Coincident sinks break the window/permutation model.
    CoincidentSinks {
        /// Lower sink index of the coincident pair.
        first: usize,
        /// Higher sink index of the coincident pair.
        second: usize,
    },
    /// A sink has zero input capacitance — physically meaningless and a
    /// classic symptom of an unmapped library pin upstream.
    ZeroLoadSink {
        /// Offending sink index.
        index: usize,
    },
    /// A sink's required time is NaN or infinite.
    NonFiniteRequired {
        /// Offending sink index.
        index: usize,
    },
    /// A coordinate magnitude exceeds [`COORD_LIMIT`]. `index` is the sink
    /// index, or `None` for the source.
    CoordOutOfRange {
        /// Offending sink index; `None` means the source location.
        index: Option<usize>,
    },
}

impl fmt::Display for NetValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetValidationError::NoSinks => write!(f, "net has no sinks"),
            NetValidationError::CoincidentSinks { first, second } => {
                write!(f, "sinks {first} and {second} occupy the same point")
            }
            NetValidationError::ZeroLoadSink { index } => {
                write!(f, "sink {index} has zero input capacitance")
            }
            NetValidationError::NonFiniteRequired { index } => {
                write!(f, "sink {index} has a non-finite required time")
            }
            NetValidationError::CoordOutOfRange { index: Some(i) } => {
                write!(
                    f,
                    "sink {i} lies outside the ±{COORD_LIMIT} λ coordinate range"
                )
            }
            NetValidationError::CoordOutOfRange { index: None } => {
                write!(
                    f,
                    "source lies outside the ±{COORD_LIMIT} λ coordinate range"
                )
            }
        }
    }
}

impl std::error::Error for NetValidationError {}

/// One sink of a net: the paper's `s_i = (x, y, load, required time)`.
#[derive(Clone, Debug, PartialEq)]
pub struct Sink {
    /// Location on the layout lattice.
    pub pos: Point,
    /// Input pin capacitance.
    pub load: Cap,
    /// Required time at the pin, in ps.
    pub req_ps: PsTime,
}

impl Sink {
    /// Creates a sink.
    pub fn new(pos: Point, load: Cap, req_ps: PsTime) -> Self {
        Sink { pos, load, req_ps }
    }
}

/// A net to be realized as a buffered routing tree: a driver location and
/// electrical model plus the sink set — the full problem input of §III.1
/// (the candidate-location set and parameters arrive separately, as
/// configuration).
#[derive(Clone, Debug, PartialEq)]
pub struct Net {
    /// Net name (diagnostics and tables).
    pub name: String,
    /// Driver output location `s`.
    pub source: Point,
    /// Driver electrical model.
    pub driver: Driver,
    /// The sinks `s_1 … s_n`.
    pub sinks: Vec<Sink>,
}

impl Net {
    /// Creates a net.
    pub fn new(name: impl Into<String>, source: Point, driver: Driver, sinks: Vec<Sink>) -> Self {
        Net {
            name: name.into(),
            source,
            driver,
            sinks,
        }
    }

    /// Number of sinks.
    pub fn num_sinks(&self) -> usize {
        self.sinks.len()
    }

    /// Sink locations, index-aligned with [`Net::sinks`].
    pub fn sink_positions(&self) -> Vec<Point> {
        self.sinks.iter().map(|s| s.pos).collect()
    }

    /// Sink loads, index-aligned with [`Net::sinks`].
    pub fn sink_loads(&self) -> Vec<Cap> {
        self.sinks.iter().map(|s| s.load).collect()
    }

    /// Sink required times, index-aligned with [`Net::sinks`].
    pub fn sink_reqs(&self) -> Vec<PsTime> {
        self.sinks.iter().map(|s| s.req_ps).collect()
    }

    /// Bounding box of driver and sinks.
    pub fn bbox(&self) -> BBox {
        BBox::from_points(self.sinks.iter().map(|s| s.pos).chain(Some(self.source)))
            .expect("net has a source")
    }

    /// Sum of all sink loads (a lower bound on any root load).
    pub fn total_sink_load(&self) -> Cap {
        self.sinks.iter().map(|s| s.load).sum()
    }

    /// Checks the net against the structural preconditions of every DP
    /// engine in the workspace, returning the first defect found.
    ///
    /// Degenerate inputs — empty nets, coincident sinks, zero pin caps,
    /// non-finite required times, out-of-range coordinates — are rejected
    /// here so batch drivers fail with a typed error up-front instead of
    /// panicking (or silently misbehaving) somewhere inside the DP.
    ///
    /// # Errors
    ///
    /// Returns the first [`NetValidationError`] in the order: no sinks,
    /// coordinate range (source first), zero loads / non-finite required
    /// times per sink, then coincident sink pairs.
    pub fn validate(&self) -> Result<(), NetValidationError> {
        if self.sinks.is_empty() {
            return Err(NetValidationError::NoSinks);
        }
        let in_range = |p: Point| p.x.abs() <= COORD_LIMIT && p.y.abs() <= COORD_LIMIT;
        if !in_range(self.source) {
            return Err(NetValidationError::CoordOutOfRange { index: None });
        }
        for (index, sink) in self.sinks.iter().enumerate() {
            if !in_range(sink.pos) {
                return Err(NetValidationError::CoordOutOfRange { index: Some(index) });
            }
            if sink.load.units() == 0 {
                return Err(NetValidationError::ZeroLoadSink { index });
            }
            if !sink.req_ps.is_finite() {
                return Err(NetValidationError::NonFiniteRequired { index });
            }
        }
        let mut order: Vec<usize> = (0..self.sinks.len()).collect();
        order.sort_by_key(|&i| (self.sinks[i].pos.x, self.sinks[i].pos.y));
        for pair in order.windows(2) {
            if self.sinks[pair[0]].pos == self.sinks[pair[1]].pos {
                return Err(NetValidationError::CoincidentSinks {
                    first: pair[0].min(pair[1]),
                    second: pair[0].max(pair[1]),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Net {
        Net::new(
            "t",
            Point::new(0, 0),
            Driver::default(),
            vec![
                Sink::new(Point::new(100, 0), Cap::from_ff(5.0), 900.0),
                Sink::new(Point::new(0, 50), Cap::from_ff(7.0), 850.0),
            ],
        )
    }

    #[test]
    fn accessors_are_index_aligned() {
        let n = sample();
        assert_eq!(n.num_sinks(), 2);
        assert_eq!(n.sink_positions()[1], Point::new(0, 50));
        assert_eq!(n.sink_loads()[0], Cap::from_ff(5.0));
        assert_eq!(n.sink_reqs()[1], 850.0);
        assert_eq!(n.total_sink_load(), Cap::from_ff(12.0));
    }

    #[test]
    fn validate_accepts_well_formed_nets() {
        assert_eq!(sample().validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_empty_nets() {
        let n = Net::new("e", Point::new(0, 0), Driver::default(), vec![]);
        assert_eq!(n.validate(), Err(NetValidationError::NoSinks));
    }

    #[test]
    fn validate_rejects_coincident_sinks() {
        let mut n = sample();
        n.sinks
            .push(Sink::new(Point::new(100, 0), Cap::from_ff(4.0), 800.0));
        assert_eq!(
            n.validate(),
            Err(NetValidationError::CoincidentSinks {
                first: 0,
                second: 2
            })
        );
    }

    #[test]
    fn validate_rejects_zero_load_sinks() {
        let mut n = sample();
        n.sinks[1].load = Cap::ZERO;
        assert_eq!(
            n.validate(),
            Err(NetValidationError::ZeroLoadSink { index: 1 })
        );
    }

    #[test]
    fn validate_rejects_non_finite_required_times() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut n = sample();
            n.sinks[0].req_ps = bad;
            assert_eq!(
                n.validate(),
                Err(NetValidationError::NonFiniteRequired { index: 0 })
            );
        }
    }

    #[test]
    fn validate_rejects_out_of_range_coordinates() {
        let mut n = sample();
        n.sinks[1].pos = Point::new(COORD_LIMIT + 1, 0);
        assert_eq!(
            n.validate(),
            Err(NetValidationError::CoordOutOfRange { index: Some(1) })
        );
        let mut n = sample();
        n.source = Point::new(0, -(COORD_LIMIT + 1));
        assert_eq!(
            n.validate(),
            Err(NetValidationError::CoordOutOfRange { index: None })
        );
    }

    #[test]
    fn validate_allows_sink_at_source_position() {
        // A sink on top of the driver is legal (zero-length route), only
        // sink/sink coincidence is rejected.
        let mut n = sample();
        n.sinks[0].pos = n.source;
        assert_eq!(n.validate(), Ok(()));
    }

    #[test]
    fn validation_errors_display() {
        let msgs = [
            NetValidationError::NoSinks.to_string(),
            NetValidationError::CoincidentSinks {
                first: 1,
                second: 3,
            }
            .to_string(),
            NetValidationError::ZeroLoadSink { index: 2 }.to_string(),
            NetValidationError::NonFiniteRequired { index: 0 }.to_string(),
            NetValidationError::CoordOutOfRange { index: Some(4) }.to_string(),
            NetValidationError::CoordOutOfRange { index: None }.to_string(),
        ];
        for m in &msgs {
            assert!(!m.is_empty());
        }
        assert!(msgs[1].contains('1') && msgs[1].contains('3'));
    }

    #[test]
    fn bbox_covers_source_and_sinks() {
        let n = sample();
        let b = n.bbox();
        assert!(b.contains(Point::new(0, 0)));
        assert!(b.contains(Point::new(100, 0)));
        assert_eq!(b.width(), 100);
        assert_eq!(b.height(), 50);
    }
}
