//! Standard cells for the synthetic mapped circuits.

use merlin_tech::units::{rc_ps, Cap, PsTime};
use merlin_tech::Driver;

/// A combinational standard cell (as seen by timing: one output, uniform
/// input pins).
#[derive(Clone, Debug, PartialEq)]
pub struct Cell {
    /// Cell name.
    pub name: String,
    /// Cell area in λ².
    pub area: u64,
    /// Input pin capacitance.
    pub cin: Cap,
    /// Output drive resistance in Ω.
    pub rdrv_ohm: f64,
    /// Intrinsic delay in ps.
    pub intrinsic_ps: PsTime,
    /// Maximum fanin the generator may give instances of this cell.
    pub max_fanin: usize,
}

impl Cell {
    /// Linear RC delay of the cell driving `load`.
    pub fn delay_ps(&self, load: Cap) -> PsTime {
        self.intrinsic_ps + rc_ps(self.rdrv_ohm, load.to_ff())
    }

    /// The driver model of this cell's output (for per-net optimization).
    pub fn as_driver(&self) -> Driver {
        Driver {
            rdrv_ohm: self.rdrv_ohm,
            intrinsic_ps: self.intrinsic_ps,
            four_param: merlin_tech::delay::FourParam::from_rc(self.intrinsic_ps, self.rdrv_ohm),
        }
    }
}

/// The synthetic mapped-library cells the circuit generator instantiates:
/// a small mix of NAND/NOR/INV/AOI-ish cells at three drive strengths,
/// spanning the area/cap/speed range of a 0.35 µm library.
pub fn synthetic_cells() -> Vec<Cell> {
    let mut cells = Vec::new();
    let archetypes: [(&str, f64, usize); 4] = [
        ("INV", 0.6, 1),
        ("NAND2", 1.0, 2),
        ("NOR3", 1.5, 3),
        ("AOI22", 2.0, 4),
    ];
    for (base, weight, fanin) in archetypes {
        for (suffix, size) in [("X1", 1.0f64), ("X2", 2.0), ("X4", 4.0)] {
            cells.push(Cell {
                name: format!("{base}_{suffix}"),
                area: (900.0 * weight * (0.6 + 0.4 * size)).round() as u64,
                cin: Cap::from_ff(2.0 * weight.sqrt() * size),
                rdrv_ohm: 5200.0 * weight.sqrt() / size,
                intrinsic_ps: 35.0 * weight.sqrt() + 9.0 * size.ln().max(0.0),
                max_fanin: fanin,
            });
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_library_shape() {
        let cells = synthetic_cells();
        assert_eq!(cells.len(), 12);
        assert!(cells.iter().all(|c| c.area > 0 && c.max_fanin >= 1));
    }

    #[test]
    fn bigger_drive_is_faster() {
        let cells = synthetic_cells();
        let x1 = cells.iter().find(|c| c.name == "NAND2_X1").unwrap();
        let x4 = cells.iter().find(|c| c.name == "NAND2_X4").unwrap();
        let load = Cap::from_ff(120.0);
        assert!(x4.delay_ps(load) < x1.delay_ps(load));
        assert!(x4.area > x1.area);
    }

    #[test]
    fn as_driver_preserves_rc() {
        let cells = synthetic_cells();
        let c = &cells[0];
        let d = c.as_driver();
        assert_eq!(d.rdrv_ohm, c.rdrv_ohm);
        assert_eq!(
            d.delay_linear_ps(Cap::from_ff(10.0)),
            c.delay_ps(Cap::from_ff(10.0))
        );
    }
}
