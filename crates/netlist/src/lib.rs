//! Nets, circuits, timing analysis and benchmark generators.
//!
//! The paper's experiments consume two kinds of workloads:
//!
//! * **Table 1** — 18 individual nets extracted from SIS-mapped ISCAS'85
//!   circuits, with known sink loads/required times and randomized sink
//!   locations inside a bounding box sized so that interconnect delay is
//!   comparable to gate delay. [`bench_nets`] regenerates nets with exactly
//!   the published sink counts under those rules (see `DESIGN.md` §3 for
//!   the substitution rationale — we do not have the SIS netlists, and the
//!   paper randomized the geometry anyway).
//! * **Table 2** — whole mapped circuits pushed through a full flow.
//!   [`circuit`]/[`generator`] provide a synthetic mapped-DAG circuit
//!   model, [`placement`] a deterministic row placement, and [`sta`] a
//!   static timing analysis that consumes per-net buffered-routing results.
//!
//! # Examples
//!
//! ```
//! use merlin_netlist::bench_nets;
//! use merlin_tech::Technology;
//!
//! let tech = Technology::synthetic_035();
//! let cases = bench_nets::table1_cases(&tech);
//! assert_eq!(cases.len(), 18);
//! assert_eq!(cases[8].net.sinks.len(), 73); // net9 of C3540
//! ```

pub mod bench_nets;
pub mod cell;
pub mod circuit;
pub mod generator;
pub mod io;
pub mod net;
pub mod placement;
pub mod sta;

pub use circuit::{Circuit, CircuitNet, Gate, Terminal};
pub use net::{Net, NetValidationError, Sink, COORD_LIMIT};
