//! Static timing analysis over a circuit with per-net interconnect results.
//!
//! The Table 2 experiment ("post-layout area and delay") needs chip-level
//! timing: each net's buffered routing tree contributes per-sink delays
//! (including the driving gate's load-dependent delay), and the STA here
//! propagates arrivals through the DAG to the primary outputs.

use merlin_geom::manhattan;
use merlin_tech::units::{ps_cmp, Cap, PsTime};
use merlin_tech::Technology;

use crate::circuit::{Circuit, Terminal};

/// Per-net timing handed to the STA: one source-to-pin delay per sink slot
/// (index-aligned with `CircuitNet::sinks`), *including* the driver delay.
#[derive(Clone, Debug, PartialEq)]
pub struct NetTiming {
    /// Delay from the driver's input event to each sink pin.
    pub sink_delays_ps: Vec<PsTime>,
}

/// Result of a full-circuit STA.
#[derive(Clone, Debug, PartialEq)]
pub struct StaResult {
    /// Arrival time at each gate output event (after the gate's input has
    /// settled, before its output net).
    pub gate_arrivals_ps: Vec<PsTime>,
    /// Arrival time at each primary output.
    pub po_arrivals_ps: Vec<PsTime>,
    /// Critical (maximum PO) arrival — the Table 2 "Delay" figure.
    pub critical_ps: PsTime,
}

/// Propagates arrivals: PI events at t = 0; a gate's event is the max
/// arrival over its input pins; pin arrivals are driver event + net delay.
///
/// # Panics
///
/// Panics if `timings` is not index-aligned with `circuit.nets`.
pub fn analyze(circuit: &Circuit, timings: &[NetTiming]) -> StaResult {
    assert_eq!(circuit.nets.len(), timings.len(), "one timing per net");
    let ni = circuit.input_pos.len();
    let mut gate_arr = vec![0.0f64; circuit.gates.len()];
    let mut po_arr = vec![0.0f64; circuit.output_pos.len()];
    // Nets are topologically ordered by construction (PIs first, then gate
    // g's net at index ni + g), so one forward sweep suffices.
    for (idx, (net, t)) in circuit.nets.iter().zip(timings).enumerate() {
        let src_event = match net.driver {
            Terminal::Input(_) => 0.0,
            Terminal::Gate(g) => gate_arr[g as usize],
            Terminal::Output(_) => unreachable!("outputs never drive"),
        };
        assert_eq!(
            net.sinks.len(),
            t.sink_delays_ps.len(),
            "net {idx}: timing arity mismatch"
        );
        for (&sink, &d) in net.sinks.iter().zip(&t.sink_delays_ps) {
            let at = src_event + d;
            match sink {
                Terminal::Gate(g) => {
                    let a = &mut gate_arr[g as usize];
                    if at > *a {
                        *a = at;
                    }
                }
                Terminal::Output(o) => {
                    let a = &mut po_arr[o as usize];
                    if at > *a {
                        *a = at;
                    }
                }
                Terminal::Input(_) => unreachable!("inputs are never sinks"),
            }
        }
        let _ = ni;
    }
    let critical = po_arr.iter().copied().fold(0.0, f64::max);
    StaResult {
        gate_arrivals_ps: gate_arr,
        po_arrivals_ps: po_arr,
        critical_ps: critical,
    }
}

/// The critical path of an analyzed circuit: the chain of terminals from
/// a primary input to the critical primary output, found by walking the
/// arrival times backwards. Returns `(terminal, arrival)` pairs, source
/// first.
pub fn critical_path(
    circuit: &Circuit,
    timings: &[NetTiming],
    sta: &StaResult,
) -> Vec<(Terminal, PsTime)> {
    // Find the critical PO.
    let Some((po, _)) = sta
        .po_arrivals_ps
        .iter()
        .enumerate()
        .max_by(|a, b| ps_cmp(*a.1, *b.1))
    else {
        return Vec::new();
    };
    let mut path = vec![(Terminal::Output(po as u32), sta.po_arrivals_ps[po])];
    let mut target: Terminal = Terminal::Output(po as u32);
    let mut target_arrival = sta.po_arrivals_ps[po];
    loop {
        // Find the net + slot that produced `target_arrival` at `target`.
        let mut found = None;
        'nets: for (idx, net) in circuit.nets.iter().enumerate() {
            let src_event = match net.driver {
                Terminal::Input(_) => 0.0,
                Terminal::Gate(g) => sta.gate_arrivals_ps[g as usize],
                Terminal::Output(_) => unreachable!(),
            };
            for (&sink, &d) in net.sinks.iter().zip(&timings[idx].sink_delays_ps) {
                if sink == target && (src_event + d - target_arrival).abs() < 1e-6 {
                    found = Some((net.driver, src_event));
                    break 'nets;
                }
            }
        }
        match found {
            Some((drv, arr)) => {
                path.push((drv, arr));
                match drv {
                    Terminal::Input(_) => break,
                    _ => {
                        target = drv;
                        target_arrival = arr;
                    }
                }
            }
            None => break,
        }
    }
    path.reverse();
    path
}

/// A quick pre-route timing estimate for a net: driver drives the lumped
/// sum of pin caps plus HPWL wire cap, each sink additionally sees the
/// Elmore delay of a direct source→pin wire. Used to derive sink required
/// times before any real routing exists.
pub fn lumped_net_estimate(circuit: &Circuit, net_idx: usize, tech: &Technology) -> NetTiming {
    let net = &circuit.nets[net_idx];
    let src = circuit.terminal_pos(net.driver);
    let mut lumped = Cap::ZERO;
    for &s in &net.sinks {
        let len = manhattan(src, circuit.terminal_pos(s));
        lumped += tech.wire.wire_cap(len) + circuit.sink_cap(s);
    }
    let drv_delay = match net.driver {
        Terminal::Gate(g) => {
            circuit.cells[circuit.gates[g as usize].cell as usize].delay_ps(lumped)
        }
        // PI pads: a fixed strong driver.
        Terminal::Input(_) => merlin_tech::Driver::with_strength(8.0).delay_linear_ps(lumped),
        Terminal::Output(_) => unreachable!(),
    };
    let sink_delays = net
        .sinks
        .iter()
        .map(|&s| {
            let len = manhattan(src, circuit.terminal_pos(s));
            drv_delay + tech.wire.elmore_ps(len, circuit.sink_cap(s))
        })
        .collect();
    NetTiming {
        sink_delays_ps: sink_delays,
    }
}

/// Derives per-net sink **required times** from a lumped-estimate STA:
/// the chip target is the estimated critical arrival (zero worst slack),
/// and requirements propagate backwards through the DAG.
///
/// Returns, for each net, the required time at each of its sink pins —
/// exactly the per-sink `req` the per-net optimizers consume.
pub fn derive_sink_requirements(circuit: &Circuit, tech: &Technology) -> Vec<Vec<PsTime>> {
    let est: Vec<NetTiming> = (0..circuit.nets.len())
        .map(|i| lumped_net_estimate(circuit, i, tech))
        .collect();
    let sta = analyze(circuit, &est);
    let target = sta.critical_ps;
    let ni = circuit.input_pos.len();

    // Required time at each gate's *input event*.
    let mut gate_req = vec![f64::INFINITY; circuit.gates.len()];
    // Walk nets in reverse topological order.
    for idx in (0..circuit.nets.len()).rev() {
        let net = &circuit.nets[idx];
        let mut req_here = f64::INFINITY;
        for (&sink, &d) in net.sinks.iter().zip(&est[idx].sink_delays_ps) {
            let sink_req = match sink {
                Terminal::Gate(g) => gate_req[g as usize],
                Terminal::Output(_) => target,
                Terminal::Input(_) => unreachable!(),
            };
            req_here = req_here.min(sink_req - d);
        }
        if idx >= ni {
            let g = idx - ni;
            gate_req[g] = gate_req[g].min(req_here);
        }
    }

    // Per-sink requirements: the required time at the pin itself (driver
    // event req + net delay is what the estimate allocated; the pin's own
    // requirement is the downstream gate/PO requirement).
    circuit
        .nets
        .iter()
        .map(|net| {
            net.sinks
                .iter()
                .map(|&s| match s {
                    Terminal::Gate(g) => gate_req[g as usize],
                    Terminal::Output(_) => target,
                    Terminal::Input(_) => unreachable!(),
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::synthetic_circuit;

    fn tech() -> Technology {
        Technology::synthetic_035()
    }

    #[test]
    fn estimate_sta_is_consistent() {
        let c = synthetic_circuit("t", 80, 2);
        let est: Vec<NetTiming> = (0..c.nets.len())
            .map(|i| lumped_net_estimate(&c, i, &tech()))
            .collect();
        let sta = analyze(&c, &est);
        assert!(sta.critical_ps > 0.0);
        assert!(sta
            .po_arrivals_ps
            .iter()
            .all(|&a| a <= sta.critical_ps + 1e-9));
        // Gate arrivals are monotone along nets.
        for (idx, net) in c.nets.iter().enumerate() {
            if let Terminal::Gate(g) = net.driver {
                for &s in &net.sinks {
                    if let Terminal::Gate(h) = s {
                        assert!(
                            sta.gate_arrivals_ps[h as usize] >= sta.gate_arrivals_ps[g as usize]
                        );
                    }
                }
            }
            let _ = idx;
        }
    }

    #[test]
    fn requirements_are_achievable_under_the_estimate() {
        // With the same estimate that derived them, every pin meets its
        // required time (zero-slack design): req_pin - arrival_pin >= 0.
        let c = synthetic_circuit("t", 60, 4);
        let t = tech();
        let est: Vec<NetTiming> = (0..c.nets.len())
            .map(|i| lumped_net_estimate(&c, i, &t))
            .collect();
        let sta = analyze(&c, &est);
        let reqs = derive_sink_requirements(&c, &t);
        for (idx, net) in c.nets.iter().enumerate() {
            let src_event = match net.driver {
                Terminal::Input(_) => 0.0,
                Terminal::Gate(g) => sta.gate_arrivals_ps[g as usize],
                _ => unreachable!(),
            };
            for ((&_sink, &d), &r) in net
                .sinks
                .iter()
                .zip(&est[idx].sink_delays_ps)
                .zip(&reqs[idx])
            {
                assert!(
                    r - (src_event + d) >= -1e-6,
                    "net {idx}: pin misses its requirement"
                );
            }
        }
    }

    #[test]
    fn critical_path_walks_input_to_output() {
        let c = synthetic_circuit("t", 50, 7);
        let t = tech();
        let est: Vec<NetTiming> = (0..c.nets.len())
            .map(|i| lumped_net_estimate(&c, i, &t))
            .collect();
        let sta = analyze(&c, &est);
        let path = critical_path(&c, &est, &sta);
        assert!(path.len() >= 2, "path too short: {path:?}");
        assert!(matches!(path.first().unwrap().0, Terminal::Input(_)));
        assert!(matches!(path.last().unwrap().0, Terminal::Output(_)));
        // Arrivals along the path are non-decreasing and end at the
        // critical arrival.
        for w in path.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-9);
        }
        assert!((path.last().unwrap().1 - sta.critical_ps).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "one timing per net")]
    fn analyze_rejects_misaligned_timings() {
        let c = synthetic_circuit("t", 20, 1);
        let _ = analyze(&c, &[]);
    }
}
