//! Table 1 benchmark nets and random-net generation.
//!
//! The paper's Table 1 reports 18 nets extracted from mapped ISCAS'85
//! circuits; the sink locations were placed *"randomly and a priori in a
//! bounding box which is sized such that the delay of interconnect is
//! approximately equal to the delay of gate"* (§IV). We reproduce exactly
//! that construction with a seeded generator: the published circuit names
//! and sink counts, uniform sink placement in a box sized from the wire
//! model, and sink loads / required times drawn from the ranges a mapped
//! 0.35 µm netlist exhibits.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use merlin_geom::Point;
use merlin_tech::units::Cap;
use merlin_tech::{Driver, Technology};

use crate::net::{Net, Sink};

/// A Table 1 row: the originating circuit name and the generated net.
#[derive(Clone, Debug)]
pub struct NetCase {
    /// ISCAS'85 circuit the paper extracted the net from.
    pub circuit: &'static str,
    /// The net instance.
    pub net: Net,
}

/// `(circuit, net name, sink count)` exactly as published in Table 1.
pub const TABLE1_SPECS: [(&str, &str, usize); 18] = [
    ("C432", "net1", 16),
    ("C432", "net2", 16),
    ("C432", "net3", 10),
    ("C1355", "net4", 9),
    ("C1355", "net5", 9),
    ("C1355", "net6", 13),
    ("C3540", "net7", 12),
    ("C3540", "net8", 35),
    ("C3540", "net9", 73),
    ("C5315", "net10", 49),
    ("C5315", "net11", 21),
    ("C5315", "net12", 50),
    ("C6288", "net13", 16),
    ("C6288", "net14", 20),
    ("C6288", "net15", 60),
    ("C7552", "net16", 12),
    ("C7552", "net17", 16),
    ("C7552", "net18", 23),
];

/// Gate-delay scale used to size bounding boxes (ps). A mid-size buffer of
/// the synthetic library driving a typical fanout load lands near here.
pub const TYPICAL_GATE_DELAY_PS: f64 = 180.0;

/// Generates the 18 Table 1 nets.
///
/// Deterministic: net `k` uses seed `k`, so every flow sees identical
/// instances.
pub fn table1_cases(tech: &Technology) -> Vec<NetCase> {
    TABLE1_SPECS
        .iter()
        .enumerate()
        .map(|(k, (circuit, name, n))| NetCase {
            circuit,
            net: random_net(name, *n, k as u64 + 1, tech),
        })
        .collect()
}

/// Generates a random net with `n` sinks under the paper's §IV rules.
///
/// * The bounding box side is chosen so the corner-to-corner unloaded wire
///   delay approximates [`TYPICAL_GATE_DELAY_PS`] — interconnect and gate
///   delay are then the same order, which is the regime where unified
///   buffering+routing matters.
/// * Sink loads are 2–40 fF (input caps of 1×–16× gates).
/// * Required times spread over ±25 % of a 1.5 ns budget.
/// * The driver sits on the box edge (as a placed cell's output would).
pub fn random_net(name: &str, n: usize, seed: u64, tech: &Technology) -> Net {
    let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0x9E3779B97F4A7C15) ^ 0xC0FFEE);
    // Box sized so diagonal wire delay ≈ gate delay; grow gently with n so
    // dense nets do not collapse onto each other.
    let side = tech.wire.length_for_delay(TYPICAL_GATE_DELAY_PS) as i64;
    let side = side + (side as f64 * 0.1 * (n as f64).sqrt()) as i64;
    let budget = 1500.0;
    let sinks = (0..n)
        .map(|_| {
            let pos = Point::new(rng.gen_range(0..=side), rng.gen_range(0..=side));
            let load = Cap::from_ff(rng.gen_range(2.0..40.0));
            let req = budget * rng.gen_range(0.75..1.25);
            Sink::new(pos, load, req)
        })
        .collect();
    let source = Point::new(0, rng.gen_range(0..=side));
    let driver = Driver::with_strength(rng.gen_range(2.0..8.0));
    Net::new(name, source, driver, sinks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_published_sink_counts() {
        let tech = Technology::synthetic_035();
        let cases = table1_cases(&tech);
        assert_eq!(cases.len(), 18);
        for (case, (circuit, name, n)) in cases.iter().zip(TABLE1_SPECS) {
            assert_eq!(case.circuit, circuit);
            assert_eq!(case.net.name, name);
            assert_eq!(case.net.num_sinks(), n);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let tech = Technology::synthetic_035();
        let a = random_net("x", 12, 7, &tech);
        let b = random_net("x", 12, 7, &tech);
        assert_eq!(a, b);
        let c = random_net("x", 12, 8, &tech);
        assert_ne!(a, c);
    }

    #[test]
    fn box_is_in_the_wire_delay_regime() {
        let tech = Technology::synthetic_035();
        let net = random_net("x", 20, 3, &tech);
        let b = net.bbox();
        // Corner-to-corner unloaded Elmore delay within 4x of the gate scale.
        let d = tech.wire.elmore_ps(b.half_perimeter(), Cap::ZERO);
        assert!(
            d > TYPICAL_GATE_DELAY_PS / 4.0 && d < TYPICAL_GATE_DELAY_PS * 16.0,
            "corner delay {d} ps out of regime"
        );
    }

    #[test]
    fn loads_and_reqs_in_range() {
        let tech = Technology::synthetic_035();
        let net = random_net("x", 50, 11, &tech);
        for s in &net.sinks {
            let ff = s.load.to_ff();
            assert!((2.0..=40.0).contains(&ff));
            assert!((1000.0..=2000.0).contains(&s.req_ps));
        }
    }
}
