//! Plain-text interchange formats for nets and circuits.
//!
//! Downstream users need a way to feed their own instances to the
//! optimizers without linking against a full EDA database, so this module
//! defines two deliberately simple line-oriented formats and their
//! parsers/writers.
//!
//! # Net format (`.net`)
//!
//! ```text
//! # comments and blank lines are ignored
//! net <name>
//! source <x> <y> <driver-strength>
//! sink <x> <y> <load-fF> <required-ps>
//! sink ...
//! ```
//!
//! # Examples
//!
//! ```
//! use merlin_netlist::io;
//!
//! let text = "net demo\nsource 0 0 4.0\nsink 100 200 12.5 900\n";
//! let net = io::parse_net(text).unwrap();
//! assert_eq!(net.num_sinks(), 1);
//! let round = io::write_net(&net);
//! assert_eq!(io::parse_net(&round).unwrap(), net);
//! ```

use std::fmt;

use merlin_geom::Point;
use merlin_tech::units::Cap;
use merlin_tech::Driver;

use crate::net::{Net, Sink};

/// Error with line information produced by the parsers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseNetError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseNetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseNetError {}

fn err(line: usize, message: impl Into<String>) -> ParseNetError {
    ParseNetError {
        line,
        message: message.into(),
    }
}

/// Parses a single net from the `.net` format.
///
/// # Errors
///
/// Returns a [`ParseNetError`] naming the offending line for malformed
/// directives, missing `net`/`source` lines, or nets without sinks.
pub fn parse_net(text: &str) -> Result<Net, ParseNetError> {
    let mut name: Option<String> = None;
    let mut source: Option<(Point, Driver)> = None;
    let mut sinks: Vec<Sink> = Vec::new();
    for (no, raw) in text.lines().enumerate() {
        let lineno = no + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        match it.next() {
            Some("net") => {
                let n = it.next().ok_or_else(|| err(lineno, "net needs a name"))?;
                name = Some(n.to_owned());
            }
            Some("source") => {
                let x = parse_num::<i64>(&mut it, lineno, "source x")?;
                let y = parse_num::<i64>(&mut it, lineno, "source y")?;
                let strength = parse_num::<f64>(&mut it, lineno, "driver strength")?;
                if strength <= 0.0 {
                    return Err(err(lineno, "driver strength must be positive"));
                }
                source = Some((Point::new(x, y), Driver::with_strength(strength)));
            }
            Some("sink") => {
                let x = parse_num::<i64>(&mut it, lineno, "sink x")?;
                let y = parse_num::<i64>(&mut it, lineno, "sink y")?;
                let load = parse_num::<f64>(&mut it, lineno, "sink load")?;
                let req = parse_num::<f64>(&mut it, lineno, "sink required time")?;
                if load < 0.0 {
                    return Err(err(lineno, "sink load must be non-negative"));
                }
                sinks.push(Sink::new(Point::new(x, y), Cap::from_ff(load), req));
            }
            Some(other) => {
                return Err(err(lineno, format!("unknown directive `{other}`")));
            }
            None => unreachable!("empty lines are skipped"),
        }
        if let Some(extra) = it.next() {
            return Err(err(lineno, format!("trailing token `{extra}`")));
        }
    }
    let name = name.ok_or_else(|| err(0, "missing `net <name>` line"))?;
    let (pos, driver) = source.ok_or_else(|| err(0, "missing `source` line"))?;
    if sinks.is_empty() {
        return Err(err(0, "net has no sinks"));
    }
    Ok(Net::new(name, pos, driver, sinks))
}

fn parse_num<T: std::str::FromStr>(
    it: &mut std::str::SplitWhitespace<'_>,
    line: usize,
    what: &str,
) -> Result<T, ParseNetError> {
    it.next()
        .ok_or_else(|| err(line, format!("missing {what}")))?
        .parse::<T>()
        .map_err(|_| err(line, format!("malformed {what}")))
}

/// Writes a net in the `.net` format (inverse of [`parse_net`] up to
/// driver-strength rounding and name normalization).
///
/// The format's `net <name>` line is a single whitespace-delimited token,
/// so names containing whitespace (or the empty name) cannot be written
/// verbatim — they used to serialize fine and then fail [`parse_net`] on
/// read-back, silently breaking journal replay. The writer therefore
/// normalizes the name the same way the batch supervisor does: every
/// whitespace character becomes `_`, and an empty name becomes a single
/// `_`. This keeps the writer infallible (the crash-recovery paths that
/// serialize nets cannot do anything useful with a write error) at the
/// cost of a lossy — but documented and deterministic — name round-trip.
pub fn write_net(net: &Net) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let name: String = net
        .name
        .chars()
        .map(|c| if c.is_whitespace() { '_' } else { c })
        .collect();
    let name = if name.is_empty() {
        "_".to_owned()
    } else {
        name
    };
    let _ = writeln!(s, "net {name}");
    // Recover the strength from the synthetic scaling rule R = 4200/s.
    let strength = 4200.0 / net.driver.rdrv_ohm;
    let _ = writeln!(
        s,
        "source {} {} {:.4}",
        net.source.x, net.source.y, strength
    );
    for sink in &net.sinks {
        let _ = writeln!(
            s,
            "sink {} {} {:.1} {:.3}",
            sink.pos.x,
            sink.pos.y,
            sink.load.to_ff(),
            sink.req_ps
        );
    }
    s
}

/// Parses a circuit from the `.ckt` format:
///
/// ```text
/// circuit <name>
/// cell <name> <area-λ²> <cin-fF> <rdrv-Ω> <intrinsic-ps> <max-fanin>
/// input <x> <y>
/// output <x> <y>
/// gate <cell-name> <x> <y>
/// net <driver> <sink> [<sink> ...]      # terminals: g0, pi1, po2
/// ```
///
/// Nets must appear in the canonical order (one per primary input, then
/// one per gate) and the result must satisfy [`Circuit::validate`].
///
/// # Errors
///
/// Returns a [`ParseNetError`] naming the offending line, or line 0 for
/// whole-circuit problems (missing sections, validation failure).
pub fn parse_circuit(text: &str) -> Result<crate::Circuit, ParseNetError> {
    use crate::circuit::{CircuitNet, Gate, Terminal};
    let mut name = None;
    let mut cells: Vec<crate::cell::Cell> = Vec::new();
    let mut inputs = Vec::new();
    let mut outputs = Vec::new();
    let mut gates = Vec::new();
    let mut nets = Vec::new();
    let parse_terminal = |tok: &str, line: usize| -> Result<Terminal, ParseNetError> {
        let (kind, idx) = if let Some(r) = tok.strip_prefix("pi") {
            ("pi", r)
        } else if let Some(r) = tok.strip_prefix("po") {
            ("po", r)
        } else if let Some(r) = tok.strip_prefix('g') {
            ("g", r)
        } else {
            return Err(err(line, format!("bad terminal `{tok}`")));
        };
        let idx: u32 = idx
            .parse()
            .map_err(|_| err(line, format!("bad terminal index in `{tok}`")))?;
        Ok(match kind {
            "pi" => Terminal::Input(idx),
            "po" => Terminal::Output(idx),
            _ => Terminal::Gate(idx),
        })
    };
    for (no, raw) in text.lines().enumerate() {
        let lineno = no + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        match it.next() {
            Some("circuit") => {
                name = Some(
                    it.next()
                        .ok_or_else(|| err(lineno, "circuit needs a name"))?
                        .to_owned(),
                );
            }
            Some("cell") => {
                let cname = it
                    .next()
                    .ok_or_else(|| err(lineno, "cell needs a name"))?
                    .to_owned();
                let area = parse_num::<u64>(&mut it, lineno, "cell area")?;
                let cin = parse_num::<f64>(&mut it, lineno, "cell cin")?;
                let rdrv = parse_num::<f64>(&mut it, lineno, "cell rdrv")?;
                let intr = parse_num::<f64>(&mut it, lineno, "cell intrinsic")?;
                let fanin = parse_num::<usize>(&mut it, lineno, "cell max fanin")?;
                cells.push(crate::cell::Cell {
                    name: cname,
                    area,
                    cin: Cap::from_ff(cin),
                    rdrv_ohm: rdrv,
                    intrinsic_ps: intr,
                    max_fanin: fanin,
                });
            }
            Some("input") => {
                let x = parse_num::<i64>(&mut it, lineno, "input x")?;
                let y = parse_num::<i64>(&mut it, lineno, "input y")?;
                inputs.push(Point::new(x, y));
            }
            Some("output") => {
                let x = parse_num::<i64>(&mut it, lineno, "output x")?;
                let y = parse_num::<i64>(&mut it, lineno, "output y")?;
                outputs.push(Point::new(x, y));
            }
            Some("gate") => {
                let cname = it
                    .next()
                    .ok_or_else(|| err(lineno, "gate needs a cell name"))?;
                let cell = cells
                    .iter()
                    .position(|c| c.name == cname)
                    .ok_or_else(|| err(lineno, format!("unknown cell `{cname}`")))?;
                let x = parse_num::<i64>(&mut it, lineno, "gate x")?;
                let y = parse_num::<i64>(&mut it, lineno, "gate y")?;
                gates.push(Gate {
                    cell: cell as u16,
                    pos: Point::new(x, y),
                });
            }
            Some("net") => {
                let drv = it.next().ok_or_else(|| err(lineno, "net needs a driver"))?;
                let driver = parse_terminal(drv, lineno)?;
                let mut sinks = Vec::new();
                for tok in it {
                    sinks.push(parse_terminal(tok, lineno)?);
                }
                nets.push(CircuitNet { driver, sinks });
                continue; // `it` consumed; skip the trailing-token check
            }
            Some(other) => return Err(err(lineno, format!("unknown directive `{other}`"))),
            None => unreachable!("empty lines are skipped"),
        }
        if let Some(extra) = it.next() {
            return Err(err(lineno, format!("trailing token `{extra}`")));
        }
    }
    let circuit = crate::Circuit {
        name: name.ok_or_else(|| err(0, "missing `circuit <name>` line"))?,
        cells,
        gates,
        input_pos: inputs,
        output_pos: outputs,
        nets,
    };
    circuit
        .validate()
        .map_err(|e| err(0, format!("invalid circuit: {e}")))?;
    Ok(circuit)
}

/// Writes a circuit in the `.ckt` format (inverse of [`parse_circuit`]).
pub fn write_circuit(circuit: &crate::Circuit) -> String {
    use crate::circuit::Terminal;
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "circuit {}", circuit.name);
    for c in &circuit.cells {
        let _ = writeln!(
            s,
            "cell {} {} {:.2} {:.2} {:.2} {}",
            c.name,
            c.area,
            c.cin.to_ff(),
            c.rdrv_ohm,
            c.intrinsic_ps,
            c.max_fanin
        );
    }
    for p in &circuit.input_pos {
        let _ = writeln!(s, "input {} {}", p.x, p.y);
    }
    for p in &circuit.output_pos {
        let _ = writeln!(s, "output {} {}", p.x, p.y);
    }
    for g in &circuit.gates {
        let _ = writeln!(
            s,
            "gate {} {} {}",
            circuit.cells[g.cell as usize].name, g.pos.x, g.pos.y
        );
    }
    let term = |t: Terminal| match t {
        Terminal::Gate(g) => format!("g{g}"),
        Terminal::Input(i) => format!("pi{i}"),
        Terminal::Output(o) => format!("po{o}"),
    };
    for net in &circuit.nets {
        let _ = write!(s, "net {}", term(net.driver));
        for &sk in &net.sinks {
            let _ = write!(s, " {}", term(sk));
        }
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_nets::random_net;
    use merlin_tech::Technology;

    #[test]
    fn parse_minimal_net() {
        let net = parse_net("net a\nsource 1 2 4\nsink 3 4 5.5 100\n").unwrap();
        assert_eq!(net.name, "a");
        assert_eq!(net.source, Point::new(1, 2));
        assert_eq!(net.sinks[0].load, Cap::from_ff(5.5));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let net = parse_net("# hi\n\nnet a\n  source 0 0 1\n# mid\nsink 1 1 2 3\n\n").unwrap();
        assert_eq!(net.num_sinks(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_net("net a\nsource 0 0 1\nsink 1 1 nope 3\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.to_string().contains("sink load"));

        let e = parse_net("net a\nsource 0 0 1\nsink 1 1 2 3 extra\n").unwrap_err();
        assert!(e.message.contains("trailing"));

        let e = parse_net("net a\nwhat 1\n").unwrap_err();
        assert!(e.message.contains("unknown directive"));
    }

    #[test]
    fn missing_sections_rejected() {
        assert!(parse_net("source 0 0 1\nsink 1 1 1 1\n").is_err());
        assert!(parse_net("net a\nsink 1 1 1 1\n").is_err());
        assert!(parse_net("net a\nsource 0 0 1\n").is_err());
        assert!(parse_net("net a\nsource 0 0 -2\nsink 1 1 1 1\n").is_err());
    }

    #[test]
    fn circuit_round_trips() {
        let c = crate::generator::synthetic_circuit("rt", 30, 5);
        let text = write_circuit(&c);
        let parsed = parse_circuit(&text).unwrap();
        assert_eq!(parsed.name, c.name);
        assert_eq!(parsed.gates.len(), c.gates.len());
        assert_eq!(parsed.nets, c.nets);
        assert_eq!(parsed.input_pos, c.input_pos);
        assert!(parsed.validate().is_ok());
    }

    #[test]
    fn circuit_parse_rejects_bad_terminals_and_cells() {
        let e = parse_circuit("circuit a\nnet zz g0\n").unwrap_err();
        assert!(e.message.contains("bad terminal"));
        let e = parse_circuit("circuit a\ngate NOPE 0 0\n").unwrap_err();
        assert!(e.message.contains("unknown cell"));
    }

    #[test]
    fn circuit_parse_validates_topology() {
        // A net list that violates the canonical ordering invariant.
        let text = "circuit a\ncell C 10 1 100 10 2\ninput 0 0\noutput 9 9\n\
                    gate C 5 5\nnet g0 po0\nnet pi0 g0\n";
        let e = parse_circuit(text).unwrap_err();
        assert!(e.message.contains("invalid circuit"));
    }

    #[test]
    fn whitespace_names_round_trip_sanitized() {
        // Regression: `net my net` serialized fine and then failed
        // parse_net with a trailing-token error, so any journal holding
        // such a net could not be replayed.
        let base = parse_net("net a\nsource 1 2 4\nsink 3 4 5.5 100\n").unwrap();
        for (raw, expect) in [
            ("my net", "my_net"),
            (" lead", "_lead"),
            ("tab\tsep", "tab_sep"),
            ("nl\nname", "nl_name"),
            ("", "_"),
        ] {
            let mut net = base.clone();
            net.name = raw.to_owned();
            let text = write_net(&net);
            let parsed = parse_net(&text)
                .unwrap_or_else(|e| panic!("round-trip of name {raw:?} failed: {e}"));
            assert_eq!(parsed.name, expect);
            assert_eq!(parsed.num_sinks(), net.num_sinks());
            // A second trip is the identity: sanitization is idempotent.
            assert_eq!(write_net(&parsed), text);
        }
    }

    #[test]
    fn round_trip_generated_nets() {
        let tech = Technology::synthetic_035();
        for seed in 1..=5 {
            let net = random_net("rt", 9, seed, &tech);
            let text = write_net(&net);
            let parsed = parse_net(&text).unwrap();
            assert_eq!(parsed.name, net.name);
            assert_eq!(parsed.num_sinks(), net.num_sinks());
            for (a, b) in parsed.sinks.iter().zip(&net.sinks) {
                assert_eq!(a.pos, b.pos);
                assert_eq!(a.load, b.load);
                assert!((a.req_ps - b.req_ps).abs() < 1e-3);
            }
            assert!(
                (parsed.driver.rdrv_ohm - net.driver.rdrv_ohm).abs() / net.driver.rdrv_ohm < 1e-3
            );
        }
    }
}
