//! Mapped-circuit model for the Table 2 full-flow experiments.

use std::fmt;

use merlin_geom::Point;
use merlin_tech::units::Cap;

use crate::cell::Cell;

/// A placed gate instance.
#[derive(Clone, Debug, PartialEq)]
pub struct Gate {
    /// Index into [`Circuit::cells`].
    pub cell: u16,
    /// Placement location.
    pub pos: Point,
}

/// A connection endpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Terminal {
    /// A gate (by index). As a driver: the gate output; as a sink: one of
    /// the gate's input pins.
    Gate(u32),
    /// A primary input (by index). Only valid as a driver.
    Input(u32),
    /// A primary output (by index). Only valid as a sink.
    Output(u32),
}

impl fmt::Display for Terminal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Terminal::Gate(g) => write!(f, "g{g}"),
            Terminal::Input(i) => write!(f, "pi{i}"),
            Terminal::Output(o) => write!(f, "po{o}"),
        }
    }
}

/// One net of a circuit: a driver terminal and its fanout sinks.
#[derive(Clone, Debug, PartialEq)]
pub struct CircuitNet {
    /// Driving terminal (gate output or primary input).
    pub driver: Terminal,
    /// Sink terminals (gate inputs or primary outputs).
    pub sinks: Vec<Terminal>,
}

/// A synthetic mapped combinational circuit.
///
/// # Invariants (checked by [`Circuit::validate`])
///
/// * gates are indexed in topological order: every fanin of gate `g` is a
///   gate with smaller index or a primary input;
/// * every gate drives exactly one net and is a sink of ≥ 1 net;
/// * every primary output is the sink of exactly one net.
#[derive(Clone, Debug, PartialEq)]
pub struct Circuit {
    /// Circuit name (e.g. the Table 2 benchmark it is scaled to).
    pub name: String,
    /// The cell library referenced by [`Gate::cell`].
    pub cells: Vec<Cell>,
    /// Gate instances, topologically ordered.
    pub gates: Vec<Gate>,
    /// Primary input locations.
    pub input_pos: Vec<Point>,
    /// Primary output locations.
    pub output_pos: Vec<Point>,
    /// Nets; net `i` for `i < input_pos.len()` is driven by primary input
    /// `i`, the remaining nets by gate `i - input_pos.len()`.
    pub nets: Vec<CircuitNet>,
}

/// Validation failure of a [`Circuit`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidateCircuitError {
    /// A net's driver violates the net-indexing invariant.
    BadDriver(usize),
    /// A sink terminal refers to a missing gate/output.
    BadSink(usize),
    /// A gate-sink appears before its driver topologically.
    NotTopological(usize),
    /// A gate is never used as a sink target and never drives a PO.
    DanglingGate(u32),
}

impl fmt::Display for ValidateCircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateCircuitError::BadDriver(n) => write!(f, "net {n} has a bad driver"),
            ValidateCircuitError::BadSink(n) => write!(f, "net {n} has a bad sink"),
            ValidateCircuitError::NotTopological(n) => {
                write!(f, "net {n} violates topological order")
            }
            ValidateCircuitError::DanglingGate(g) => write!(f, "gate {g} has no fanout"),
        }
    }
}

impl std::error::Error for ValidateCircuitError {}

impl Circuit {
    /// Number of gates.
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Total placed cell area (λ²), the Table 2 "Area" baseline before
    /// buffers are added.
    pub fn gate_area(&self) -> u64 {
        self.gates
            .iter()
            .map(|g| self.cells[g.cell as usize].area)
            .sum()
    }

    /// The location of a terminal.
    pub fn terminal_pos(&self, t: Terminal) -> Point {
        match t {
            Terminal::Gate(g) => self.gates[g as usize].pos,
            Terminal::Input(i) => self.input_pos[i as usize],
            Terminal::Output(o) => self.output_pos[o as usize],
        }
    }

    /// The capacitance a net sees at a sink terminal.
    pub fn sink_cap(&self, t: Terminal) -> Cap {
        match t {
            Terminal::Gate(g) => self.cells[self.gates[g as usize].cell as usize].cin,
            // Output pad/flop input.
            Terminal::Output(_) => Cap::from_ff(12.0),
            Terminal::Input(_) => Cap::ZERO,
        }
    }

    /// The net driven by gate `g`.
    pub fn net_of_gate(&self, g: u32) -> usize {
        self.input_pos.len() + g as usize
    }

    /// Structural validation; see the type-level invariants.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), ValidateCircuitError> {
        let ni = self.input_pos.len();
        if self.nets.len() != ni + self.gates.len() {
            return Err(ValidateCircuitError::BadDriver(self.nets.len()));
        }
        let mut gate_has_fanout = vec![false; self.gates.len()];
        for (idx, net) in self.nets.iter().enumerate() {
            let expected = if idx < ni {
                Terminal::Input(idx as u32)
            } else {
                Terminal::Gate((idx - ni) as u32)
            };
            if net.driver != expected {
                return Err(ValidateCircuitError::BadDriver(idx));
            }
            for &s in &net.sinks {
                match s {
                    Terminal::Gate(g) => {
                        if g as usize >= self.gates.len() {
                            return Err(ValidateCircuitError::BadSink(idx));
                        }
                        if let Terminal::Gate(d) = net.driver {
                            if g <= d {
                                return Err(ValidateCircuitError::NotTopological(idx));
                            }
                        }
                        if let Terminal::Gate(d) = net.driver {
                            gate_has_fanout[d as usize] |= true;
                            let _ = g;
                        }
                    }
                    Terminal::Output(o) => {
                        if o as usize >= self.output_pos.len() {
                            return Err(ValidateCircuitError::BadSink(idx));
                        }
                        if let Terminal::Gate(d) = net.driver {
                            gate_has_fanout[d as usize] |= true;
                        }
                    }
                    Terminal::Input(_) => return Err(ValidateCircuitError::BadSink(idx)),
                }
            }
        }
        for (g, has) in gate_has_fanout.iter().enumerate() {
            if !has && !self.nets[ni + g].sinks.is_empty() {
                // has fanout recorded through its own net; double check
                continue;
            }
            if self.nets[ni + g].sinks.is_empty() {
                return Err(ValidateCircuitError::DanglingGate(g as u32));
            }
        }
        Ok(())
    }

    /// Average fanout over all nets.
    pub fn avg_fanout(&self) -> f64 {
        if self.nets.is_empty() {
            return 0.0;
        }
        self.nets.iter().map(|n| n.sinks.len()).sum::<usize>() as f64 / self.nets.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::synthetic_cells;

    /// pi0 -> g0 -> g1 -> po0, plus pi0 -> g1 (fanout 2 net).
    pub(crate) fn tiny() -> Circuit {
        let cells = synthetic_cells();
        Circuit {
            name: "tiny".into(),
            cells,
            gates: vec![
                Gate {
                    cell: 0,
                    pos: Point::new(100, 0),
                },
                Gate {
                    cell: 3,
                    pos: Point::new(200, 0),
                },
            ],
            input_pos: vec![Point::new(0, 0)],
            output_pos: vec![Point::new(300, 0)],
            nets: vec![
                CircuitNet {
                    driver: Terminal::Input(0),
                    sinks: vec![Terminal::Gate(0), Terminal::Gate(1)],
                },
                CircuitNet {
                    driver: Terminal::Gate(0),
                    sinks: vec![Terminal::Gate(1)],
                },
                CircuitNet {
                    driver: Terminal::Gate(1),
                    sinks: vec![Terminal::Output(0)],
                },
            ],
        }
    }

    #[test]
    fn tiny_circuit_validates() {
        let c = tiny();
        assert!(c.validate().is_ok());
        assert_eq!(c.num_gates(), 2);
        assert!(c.gate_area() > 0);
        assert!((c.avg_fanout() - 4.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn terminal_queries() {
        let c = tiny();
        assert_eq!(c.terminal_pos(Terminal::Input(0)), Point::new(0, 0));
        assert_eq!(c.terminal_pos(Terminal::Gate(1)), Point::new(200, 0));
        assert!(c.sink_cap(Terminal::Gate(0)) > Cap::ZERO);
        assert_eq!(c.net_of_gate(1), 2);
    }

    #[test]
    fn validation_catches_topology_violation() {
        let mut c = tiny();
        // Make g1's net feed g0 (backwards).
        c.nets[2].sinks = vec![Terminal::Gate(0)];
        assert_eq!(c.validate(), Err(ValidateCircuitError::NotTopological(2)));
    }

    #[test]
    fn validation_catches_dangling_gate() {
        let mut c = tiny();
        c.nets[2].sinks.clear();
        assert_eq!(c.validate(), Err(ValidateCircuitError::DanglingGate(1)));
    }
}
