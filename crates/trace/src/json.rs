//! A minimal JSON *validator* (syntax only, no value tree).
//!
//! The export sinks hand-roll their JSON, so the test suite and the
//! `scripts/check.sh` trace stage need an independent check that the output
//! actually parses. This is a strict RFC 8259 recursive-descent recogniser:
//! it accepts exactly one JSON value (plus surrounding whitespace) and
//! reports the byte offset of the first error.

/// Validate that `input` is exactly one well-formed JSON value.
pub fn validate(input: &str) -> Result<(), String> {
    let b = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(b, &mut pos);
    value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, "true"),
        Some(b'f') => literal(b, pos, "false"),
        Some(b'n') => literal(b, pos, "null"),
        Some(c) if *c == b'-' || c.is_ascii_digit() => number(b, pos),
        Some(c) => Err(format!("unexpected byte {:?} at {}", *c as char, *pos)),
        None => Err(format!("unexpected end of input at byte {pos}")),
    }
}

fn literal(b: &[u8], pos: &mut usize, word: &str) -> Result<(), String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}, expected {word}"))
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume opening '"'
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            if !b.get(*pos).is_some_and(u8::is_ascii_hexdigit) {
                                return Err(format!("bad \\u escape at byte {pos}"));
                            }
                            *pos += 1;
                        }
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
            }
            0x00..=0x1f => return Err(format!("raw control byte in string at {pos}")),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_owned())
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_digits = eat_digits(b, pos);
    if int_digits == 0 {
        return Err(format!("expected digits at byte {pos}"));
    }
    // Leading zeros are not valid JSON ("01").
    if int_digits > 1 && b[if b[start] == b'-' { start + 1 } else { start }] == b'0' {
        return Err(format!("leading zero in number at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if eat_digits(b, pos) == 0 {
            return Err(format!("expected fraction digits at byte {pos}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if eat_digits(b, pos) == 0 {
            return Err(format!("expected exponent digits at byte {pos}"));
        }
    }
    Ok(())
}

fn eat_digits(b: &[u8], pos: &mut usize) -> usize {
    let start = *pos;
    while b.get(*pos).is_some_and(u8::is_ascii_digit) {
        *pos += 1;
    }
    *pos - start
}

#[cfg(test)]
mod tests {
    use super::validate;

    #[test]
    fn accepts_well_formed_documents() {
        for ok in [
            "{}",
            "[]",
            "null",
            "true",
            "-12.5e+3",
            "0.125",
            "\"a\\n\\u00e9\"",
            "{\"a\":[1,2,{\"b\":null}],\"c\":\"x\"}",
            " { \"k\" : [ 1 , 2 ] } ",
        ] {
            validate(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "01",
            "1.",
            "\"unterminated",
            "\"bad\\q\"",
            "{} extra",
            "nul",
            "[1 2]",
        ] {
            assert!(validate(bad).is_err(), "accepted malformed: {bad:?}");
        }
    }
}
