//! Process-wide metrics registry: sharded atomics threads publish into
//! without draining.
//!
//! The thread-local tracer ([`crate::counter`] / [`crate::observe`]) is
//! built for *batch* observability: collect per thread, drain at join,
//! merge into a [`crate::TraceSet`]. A long-running daemon needs the
//! opposite shape — metrics that any thread can bump at any time and that
//! an observer can snapshot at any time, without stopping the world or
//! stealing the values out of the hot path. This module provides that
//! plane and leaves the span/drain path completely untouched.
//!
//! # Design
//!
//! - **One load when dormant.** Every publish method starts with a single
//!   relaxed load of a process-global [`AtomicBool`] and returns if no
//!   exporter has called [`set_active`]. A binary that never activates the
//!   registry (the batch CLI, the benches) pays one predictable branch per
//!   call site, mirroring the tracer's `ENABLED_THREADS` fast path.
//! - **Sharded counters.** Counter and histogram tallies are split across
//!   [`SHARDS`] cache-line-padded atomics; each thread is assigned a shard
//!   round-robin on first use, so concurrent workers do not bounce one hot
//!   cacheline. Snapshots sum the shards (saturating).
//! - **Register-or-get handles.** [`counter`] / [`gauge`] / [`histogram`]
//!   intern the metric under its `&'static str` name behind a mutex (cold
//!   path, startup only) and hand back a cheap `Arc` handle for the hot
//!   path.
//! - **Lock-free snapshots.** [`snapshot`] reads every cell with relaxed
//!   loads. Under concurrent publishing a histogram's bucket total may
//!   momentarily trail its count; the exposition encoder pins the `+Inf`
//!   bucket to the count so the cumulative series stays consistent.
//!
//! Values are exposed in Prometheus-style text format by [`expose`]:
//! dotted merlin names are mangled (`server.metrics.queue` →
//! `merlin_server_metrics_queue`), each metric gets a `# TYPE` line, and
//! histogram buckets are emitted as the cumulative `le` series derived
//! from the log2 bins. Output is deterministically sorted.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::{Hist, HIST_BUCKETS};

/// Number of per-metric tally shards. Snapshot cost is `O(SHARDS)` per
/// metric, so this stays small; eight distinct cachelines is already
/// enough to keep a handful of worker threads from colliding.
pub const SHARDS: usize = 8;

/// Process-global activation flag; see [`set_active`].
static ACTIVE: AtomicBool = AtomicBool::new(false);

/// Round-robin shard assignment for threads (first publish picks one).
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// Turn the registry on or off process-wide. Off (the default) makes every
/// publish a single relaxed load and an early return; nothing is recorded.
/// The server flips this on before accepting connections.
pub fn set_active(on: bool) {
    ACTIVE.store(on, Ordering::Relaxed);
}

/// Whether some exporter has activated the registry.
#[inline]
pub fn is_active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

#[inline]
fn shard_index() -> usize {
    SHARD.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            v
        } else {
            let v = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
            s.set(v);
            v
        }
    })
}

/// One `u64` tally on its own cacheline so shards never false-share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

struct CounterCell {
    shards: [PaddedU64; SHARDS],
}

impl CounterCell {
    fn new() -> Self {
        CounterCell {
            shards: Default::default(),
        }
    }

    fn add(&self, delta: u64) {
        self.shards[shard_index()]
            .0
            .fetch_add(delta, Ordering::Relaxed);
    }

    fn total(&self) -> u64 {
        self.shards.iter().fold(0u64, |acc, s| {
            acc.saturating_add(s.0.load(Ordering::Relaxed))
        })
    }
}

struct HistCell {
    counts: [PaddedU64; SHARDS],
    sums: [PaddedU64; SHARDS],
    /// Initialised to `u64::MAX`, like [`Hist::min`] on an empty hist.
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl HistCell {
    fn new() -> Self {
        HistCell {
            counts: Default::default(),
            sums: Default::default(),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
        }
    }

    fn record(&self, value: u64) {
        let shard = shard_index();
        self.counts[shard].0.fetch_add(1, Ordering::Relaxed);
        self.sums[shard].0.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        self.buckets[Hist::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
    }

    fn read(&self) -> Hist {
        let mut h = Hist::default();
        for shard in 0..SHARDS {
            h.count = h
                .count
                .saturating_add(self.counts[shard].0.load(Ordering::Relaxed));
            h.sum = h
                .sum
                .saturating_add(self.sums[shard].0.load(Ordering::Relaxed));
        }
        if h.count > 0 {
            h.min = self.min.load(Ordering::Relaxed);
            h.max = self.max.load(Ordering::Relaxed);
        }
        for (slot, bucket) in h.buckets.iter_mut().zip(self.buckets.iter()) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        h
    }
}

/// Handle to a registered counter; cheap to clone, safe to share.
#[derive(Clone)]
pub struct Counter(Arc<CounterCell>);

impl Counter {
    /// Add `delta`. One relaxed load and a return when the registry is
    /// dormant.
    #[inline]
    pub fn add(&self, delta: u64) {
        if !is_active() {
            return;
        }
        self.0.add(delta);
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total across shards (reads even when dormant).
    pub fn total(&self) -> u64 {
        self.0.total()
    }
}

/// Handle to a registered gauge: a single last-writer-wins value.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the gauge. One relaxed load and a return when dormant.
    #[inline]
    pub fn set(&self, value: u64) {
        if !is_active() {
            return;
        }
        self.0.store(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Handle to a registered log2 histogram.
#[derive(Clone)]
pub struct Histogram(Arc<HistCell>);

impl Histogram {
    /// Record one observation. One relaxed load and a return when dormant.
    #[inline]
    pub fn observe(&self, value: u64) {
        if !is_active() {
            return;
        }
        self.0.record(value);
    }

    /// Snapshot this histogram alone.
    pub fn read(&self) -> Hist {
        self.0.read()
    }
}

#[derive(Default)]
struct Maps {
    counters: BTreeMap<&'static str, Arc<CounterCell>>,
    gauges: BTreeMap<&'static str, Arc<AtomicU64>>,
    hists: BTreeMap<&'static str, Arc<HistCell>>,
}

fn maps() -> &'static Mutex<Maps> {
    static MAPS: OnceLock<Mutex<Maps>> = OnceLock::new();
    MAPS.get_or_init(|| Mutex::new(Maps::default()))
}

fn lock_maps() -> std::sync::MutexGuard<'static, Maps> {
    match maps().lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Register (or fetch) the counter with this name. Cold path: takes the
/// registry mutex. Call once at startup and keep the handle.
pub fn counter(name: &'static str) -> Counter {
    let mut m = lock_maps();
    let cell = m
        .counters
        .entry(name)
        .or_insert_with(|| Arc::new(CounterCell::new()));
    Counter(Arc::clone(cell))
}

/// Register (or fetch) the gauge with this name.
pub fn gauge(name: &'static str) -> Gauge {
    let mut m = lock_maps();
    let cell = m
        .gauges
        .entry(name)
        .or_insert_with(|| Arc::new(AtomicU64::new(0)));
    Gauge(Arc::clone(cell))
}

/// Register (or fetch) the histogram with this name.
pub fn histogram(name: &'static str) -> Histogram {
    let mut m = lock_maps();
    let cell = m
        .hists
        .entry(name)
        .or_insert_with(|| Arc::new(HistCell::new()));
    Histogram(Arc::clone(cell))
}

/// A point-in-time copy of every registered metric, sorted by name.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, total)` pairs, ascending by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` pairs, ascending by name.
    pub gauges: Vec<(String, u64)>,
    /// `(name, hist)` pairs, ascending by name.
    pub hists: Vec<(String, Hist)>,
}

impl MetricsSnapshot {
    /// Counter total by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |&(_, v)| v)
    }

    /// Gauge value by name (0 when absent).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |&(_, v)| v)
    }

    /// Histogram by name.
    pub fn hist(&self, name: &str) -> Option<&Hist> {
        self.hists.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }
}

/// Snapshot every registered metric. Cells are read with relaxed loads;
/// the caller sees a value no older than the call.
pub fn snapshot() -> MetricsSnapshot {
    let m = lock_maps();
    MetricsSnapshot {
        counters: m
            .counters
            .iter()
            .map(|(name, cell)| ((*name).to_owned(), cell.total()))
            .collect(),
        gauges: m
            .gauges
            .iter()
            .map(|(name, cell)| ((*name).to_owned(), cell.load(Ordering::Relaxed)))
            .collect(),
        hists: m
            .hists
            .iter()
            .map(|(name, cell)| ((*name).to_owned(), cell.read()))
            .collect(),
    }
}

/// Mangle a dotted merlin metric name into a Prometheus-compatible one:
/// `server.metrics.queue` → `merlin_server_metrics_queue`.
pub fn mangle(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 7);
    out.push_str("merlin_");
    for ch in name.chars() {
        out.push(if ch == '.' { '_' } else { ch });
    }
    out
}

/// Inclusive upper bound of log2 bucket `idx`, as the `le` label value.
fn bucket_le(idx: usize) -> u64 {
    if idx == 0 {
        0
    } else if idx >= 64 {
        u64::MAX
    } else {
        (1u64 << idx) - 1
    }
}

/// Render a snapshot as Prometheus-style text exposition.
///
/// Counters and gauges are one sample line each under a `# TYPE` header.
/// Histograms expand the log2 bins into a cumulative `le` series (bucket
/// `k` ≥ 1 covers `[2^(k-1), 2^k)`, so its upper bound is `2^k - 1`),
/// emitted up to the highest non-empty bin, followed by the `+Inf` bucket
/// (pinned to the count so the series is consistent even if a snapshot
/// raced a publish), `_sum`, and `_count`. Output order is: counters,
/// gauges, histograms, each sorted by name.
pub fn expose(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snap.counters {
        let m = mangle(name);
        let _ = writeln!(out, "# TYPE {m} counter");
        let _ = writeln!(out, "{m} {value}");
    }
    for (name, value) in &snap.gauges {
        let m = mangle(name);
        let _ = writeln!(out, "# TYPE {m} gauge");
        let _ = writeln!(out, "{m} {value}");
    }
    for (name, hist) in &snap.hists {
        let m = mangle(name);
        let _ = writeln!(out, "# TYPE {m} histogram");
        let highest = hist
            .buckets
            .iter()
            .rposition(|&c| c > 0)
            .map_or(0, |i| i + 1)
            .min(HIST_BUCKETS);
        let mut cumulative = 0u64;
        for idx in 0..highest {
            cumulative = cumulative.saturating_add(hist.buckets[idx]);
            let le = bucket_le(idx);
            let _ = writeln!(out, "{m}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{m}_bucket{{le=\"+Inf\"}} {}", hist.count);
        let _ = writeln!(out, "{m}_sum {}", hist.sum);
        let _ = writeln!(out, "{m}_count {}", hist.count);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Registry activation is process-global; tests that toggle it or
    /// assert on dormant behaviour serialise here so the parallel test
    /// harness cannot interleave them.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        match GATE.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    #[test]
    fn dormant_registry_records_nothing() {
        let _g = guard();
        set_active(false);
        let c = counter("t.registry.dormant");
        let h = histogram("t.registry.dormant.hist");
        let g = gauge("t.registry.dormant.gauge");
        c.add(5);
        h.observe(7);
        g.set(9);
        assert_eq!(c.total(), 0);
        assert_eq!(h.read().count, 0);
        assert_eq!(g.get(), 0);
        set_active(true);
        c.inc();
        g.set(3);
        assert_eq!(c.total(), 1);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn concurrent_publishers_sum_across_shards() {
        let _g = guard();
        set_active(true);
        let c = counter("t.registry.conc.count");
        let h = histogram("t.registry.conc.hist");
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                let h = h.clone();
                std::thread::spawn(move || {
                    for v in 0..100u64 {
                        c.inc();
                        h.observe(v);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("publisher thread");
        }
        assert_eq!(c.total(), 800);
        let hist = h.read();
        assert_eq!(hist.count, 800);
        assert_eq!(hist.min, 0);
        assert_eq!(hist.max, 99);
        assert_eq!(hist.sum, 8 * (99 * 100 / 2));
        assert_eq!(hist.buckets.iter().sum::<u64>(), 800);
        // Registering the same name again returns the same cell.
        assert_eq!(counter("t.registry.conc.count").total(), 800);
    }

    #[test]
    fn snapshot_is_sorted_and_indexed() {
        let _g = guard();
        set_active(true);
        counter("t.registry.snap.b").add(2);
        counter("t.registry.snap.a").add(1);
        gauge("t.registry.snap.g").set(7);
        histogram("t.registry.snap.h").observe(12);
        let snap = snapshot();
        let names: Vec<_> = snap.counters.iter().map(|(n, _)| n.clone()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        assert!(snap.counter("t.registry.snap.a") >= 1);
        assert!(snap.counter("t.registry.snap.b") >= 2);
        assert_eq!(snap.counter("t.registry.snap.missing"), 0);
        assert_eq!(snap.gauge("t.registry.snap.g"), 7);
        let h = snap.hist("t.registry.snap.h").expect("hist present");
        assert!(h.count >= 1);
    }

    #[test]
    fn exposition_format_is_pinned() {
        let mut h = Hist::default();
        for v in [0u64, 1, 3, 3, 9] {
            h.record(v);
        }
        let snap = MetricsSnapshot {
            counters: vec![("server.events.done".to_owned(), 30)],
            gauges: vec![("server.metrics.queue.depth".to_owned(), 4)],
            hists: vec![("server.metrics.queue".to_owned(), h)],
        };
        let text = expose(&snap);
        let expected = "\
# TYPE merlin_server_events_done counter
merlin_server_events_done 30
# TYPE merlin_server_metrics_queue_depth gauge
merlin_server_metrics_queue_depth 4
# TYPE merlin_server_metrics_queue histogram
merlin_server_metrics_queue_bucket{le=\"0\"} 1
merlin_server_metrics_queue_bucket{le=\"1\"} 2
merlin_server_metrics_queue_bucket{le=\"3\"} 4
merlin_server_metrics_queue_bucket{le=\"7\"} 4
merlin_server_metrics_queue_bucket{le=\"15\"} 5
merlin_server_metrics_queue_bucket{le=\"+Inf\"} 5
merlin_server_metrics_queue_sum 16
merlin_server_metrics_queue_count 5
";
        assert_eq!(text, expected);
    }

    #[test]
    fn empty_histogram_exposes_consistent_series() {
        let snap = MetricsSnapshot {
            counters: vec![],
            gauges: vec![],
            hists: vec![("server.metrics.service_ms".to_owned(), Hist::default())],
        };
        let text = expose(&snap);
        assert!(text.contains("merlin_server_metrics_service_ms_bucket{le=\"+Inf\"} 0"));
        assert!(text.contains("merlin_server_metrics_service_ms_count 0"));
        assert!(text.contains("merlin_server_metrics_service_ms_sum 0"));
    }

    #[test]
    fn bucket_le_matches_bucket_of_ranges() {
        for idx in 1..64usize {
            let le = bucket_le(idx);
            assert_eq!(Hist::bucket_of(le), idx, "upper bound stays in bucket");
            assert_eq!(Hist::bucket_of(le + 1), idx + 1, "next value leaves it");
        }
        assert_eq!(bucket_le(0), 0);
        assert_eq!(bucket_le(64), u64::MAX);
    }
}
