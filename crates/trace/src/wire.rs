//! A text wire format for shipping a [`Trace`] between processes.
//!
//! The process-isolated batch supervisor runs each shard in a worker
//! subprocess; a worker's collector lives in its own address space, so
//! the in-process merge path ([`crate::absorb`], [`crate::TraceSet`])
//! cannot see it. Instead a worker [`encode`]s its drained trace into a
//! small line-oriented file next to its journal segment, and the parent
//! [`decode`]s and merges the streams by shard id.
//!
//! The format is versioned, line-oriented UTF-8 — the same durability
//! conventions as the batch journal (a torn tail damages one line, not
//! the file):
//!
//! ```text
//! #merlin-trace-wire v1
//! counter supervisor.attempts 12
//! hist supervisor.backoff.ms count=3 sum=350 min=50 max=200 buckets=6:1,7:1,8:1
//! span supervisor.net arg=4 start=91042 dur=18773 self=18773 depth=0
//! ```
//!
//! Span timestamps are nanoseconds since the *emitting process's* trace
//! epoch; processes do not share an epoch, so decoded spans from
//! different workers line up only approximately. Counters and histograms
//! are exact.
//!
//! Event names decode as `&'static str` (the collector's key type) via a
//! process-wide intern table; the table grows by the set of *distinct*
//! names ever decoded, which is bounded by the workspace's trace-name
//! registry.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::{Mutex, OnceLock};

use crate::registry::MetricsSnapshot;
use crate::{Hist, SpanEvent, Trace, HIST_BUCKETS};

/// First line of every wire file; readers must refuse unknown versions.
pub const WIRE_HEADER: &str = "#merlin-trace-wire v1";

/// First line of a metrics-snapshot wire file ([`encode_snapshot`]).
pub const METRICS_WIRE_HEADER: &str = "#merlin-metrics-wire v1";

/// Why a wire file failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireDecodeError {
    /// 1-based line number of the offending line (0 for file-level
    /// problems such as a missing header).
    pub line: usize,
    /// Human-readable reason.
    pub reason: String,
}

impl fmt::Display for WireDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad trace wire line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for WireDecodeError {}

fn bad(line: usize, reason: impl Into<String>) -> WireDecodeError {
    WireDecodeError {
        line,
        reason: reason.into(),
    }
}

/// Interns a decoded name, returning the collector's `&'static str` key
/// type. Names are deduplicated process-wide; each distinct name leaks
/// one small allocation, bounded by the trace-name registry.
fn intern(name: &str) -> &'static str {
    static TABLE: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();
    let table = TABLE.get_or_init(|| Mutex::new(BTreeSet::new()));
    let mut guard = match table.lock() {
        Ok(guard) => guard,
        // The critical section cannot panic, but stay poison-tolerant:
        // the set is only ever grown, so inheriting it is safe.
        Err(poisoned) => poisoned.into_inner(),
    };
    if let Some(&existing) = guard.get(name) {
        return existing;
    }
    let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
    guard.insert(leaked);
    leaked
}

/// Encodes a trace as wire text (header line included, trailing newline).
///
/// Event names must be whitespace-free — the workspace convention
/// (dotted identifiers, enforced by the trace-name registry audit); a
/// name with whitespace would not survive the round trip.
pub fn encode(trace: &Trace) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "{WIRE_HEADER}");
    for (name, value) in &trace.counters {
        let _ = writeln!(s, "counter {name} {value}");
    }
    for (name, hist) in &trace.hists {
        encode_hist_line(&mut s, name, hist);
    }
    for span in &trace.spans {
        let _ = write!(s, "span {} arg=", span.name);
        match span.arg {
            Some(arg) => {
                let _ = write!(s, "{arg}");
            }
            None => s.push('-'),
        }
        let _ = writeln!(
            s,
            " start={} dur={} self={} depth={}",
            span.start_ns, span.dur_ns, span.self_ns, span.depth
        );
    }
    s
}

/// Appends one `hist <name> count=… sum=… min=… max=… buckets=…` line.
/// Shared by the trace and metrics-snapshot encoders so both speak the
/// exact same histogram dialect (`-` for no non-empty buckets).
fn encode_hist_line(s: &mut String, name: &str, hist: &Hist) {
    use std::fmt::Write as _;
    let _ = write!(
        s,
        "hist {name} count={} sum={} min={} max={} buckets=",
        hist.count, hist.sum, hist.min, hist.max
    );
    let nonzero = hist.nonzero_buckets();
    if nonzero.is_empty() {
        s.push('-');
    } else {
        for (i, (bucket, count)) in nonzero.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{bucket}:{count}");
        }
    }
    s.push('\n');
}

fn kv<'a>(tok: Option<&'a str>, key: &str, line: usize) -> Result<&'a str, WireDecodeError> {
    let tok = tok.ok_or_else(|| bad(line, format!("missing field `{key}`")))?;
    tok.strip_prefix(key)
        .and_then(|rest| rest.strip_prefix('='))
        .ok_or_else(|| bad(line, format!("expected `{key}=...`, found `{tok}`")))
}

fn parse_u64(tok: &str, what: &str, line: usize) -> Result<u64, WireDecodeError> {
    tok.parse::<u64>()
        .map_err(|_| bad(line, format!("malformed {what} `{tok}`")))
}

fn decode_hist(
    fields: &mut std::str::SplitWhitespace<'_>,
    line: usize,
) -> Result<Hist, WireDecodeError> {
    let count = parse_u64(kv(fields.next(), "count", line)?, "count", line)?;
    let sum = parse_u64(kv(fields.next(), "sum", line)?, "sum", line)?;
    let min = parse_u64(kv(fields.next(), "min", line)?, "min", line)?;
    let max = parse_u64(kv(fields.next(), "max", line)?, "max", line)?;
    let buckets_tok = kv(fields.next(), "buckets", line)?;
    let mut buckets = [0u64; HIST_BUCKETS];
    if buckets_tok != "-" {
        for pair in buckets_tok.split(',') {
            let (idx_tok, count_tok) = pair
                .split_once(':')
                .ok_or_else(|| bad(line, format!("malformed bucket `{pair}`")))?;
            let idx = idx_tok
                .parse::<usize>()
                .ok()
                .filter(|&i| i < HIST_BUCKETS)
                .ok_or_else(|| bad(line, format!("bucket index `{idx_tok}` out of range")))?;
            buckets[idx] = parse_u64(count_tok, "bucket count", line)?;
        }
    }
    Ok(Hist {
        count,
        sum,
        min,
        max,
        buckets,
    })
}

/// Decodes wire text produced by [`encode`].
///
/// # Errors
///
/// A [`WireDecodeError`] naming the first malformed line. Unlike the
/// batch journal there is no torn-tail healing here: the file is written
/// in one shot at worker exit, so any damage means the whole capture is
/// suspect and the caller should drop the stream.
pub fn decode(text: &str) -> Result<Trace, WireDecodeError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, first)) if first == WIRE_HEADER => {}
        Some((_, first)) => {
            return Err(bad(1, format!("unknown header `{first}`")));
        }
        None => return Err(bad(0, "empty file")),
    }
    let mut trace = Trace::default();
    for (i, line) in lines {
        let lineno = i.saturating_add(1);
        let mut fields = line.split_whitespace();
        let Some(kind) = fields.next() else {
            continue; // blank line
        };
        match kind {
            "counter" => {
                let name = fields
                    .next()
                    .ok_or_else(|| bad(lineno, "counter missing name"))?;
                let value_tok = fields
                    .next()
                    .ok_or_else(|| bad(lineno, "counter missing value"))?;
                let value = parse_u64(value_tok, "counter value", lineno)?;
                trace.counters.push((intern(name), value));
            }
            "hist" => {
                let name = fields
                    .next()
                    .ok_or_else(|| bad(lineno, "hist missing name"))?;
                let hist = decode_hist(&mut fields, lineno)?;
                trace.hists.push((intern(name), hist));
            }
            "span" => {
                let name = fields
                    .next()
                    .ok_or_else(|| bad(lineno, "span missing name"))?;
                let arg_tok = kv(fields.next(), "arg", lineno)?;
                let arg = if arg_tok == "-" {
                    None
                } else {
                    Some(parse_u64(arg_tok, "arg", lineno)?)
                };
                let start_ns = parse_u64(kv(fields.next(), "start", lineno)?, "start", lineno)?;
                let dur_ns = parse_u64(kv(fields.next(), "dur", lineno)?, "dur", lineno)?;
                let self_ns = parse_u64(kv(fields.next(), "self", lineno)?, "self", lineno)?;
                let depth_tok = kv(fields.next(), "depth", lineno)?;
                let depth = depth_tok
                    .parse::<u16>()
                    .map_err(|_| bad(lineno, format!("malformed depth `{depth_tok}`")))?;
                trace.spans.push(SpanEvent {
                    name: intern(name),
                    arg,
                    start_ns,
                    dur_ns,
                    self_ns,
                    depth,
                });
            }
            other => return Err(bad(lineno, format!("unknown record kind `{other}`"))),
        }
        if let Some(extra) = fields.next() {
            return Err(bad(lineno, format!("trailing token `{extra}`")));
        }
    }
    Ok(trace)
}

/// Encodes a [`MetricsSnapshot`] as wire text (header included). Same
/// line dialect as [`encode`] plus a `gauge <name> <value>` record; the
/// registry's metric names obey the same whitespace-free convention as
/// trace names, so they round-trip through the whitespace-split decoder.
pub fn encode_snapshot(snap: &MetricsSnapshot) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "{METRICS_WIRE_HEADER}");
    for (name, value) in &snap.counters {
        let _ = writeln!(s, "counter {name} {value}");
    }
    for (name, value) in &snap.gauges {
        let _ = writeln!(s, "gauge {name} {value}");
    }
    for (name, hist) in &snap.hists {
        encode_hist_line(&mut s, name, hist);
    }
    s
}

/// Decodes wire text produced by [`encode_snapshot`]. Record order is
/// preserved; [`encode_snapshot`] emits each section name-sorted, so a
/// round trip reproduces the snapshot exactly.
///
/// # Errors
///
/// A [`WireDecodeError`] naming the first malformed line — same strict,
/// no-healing policy as [`decode`].
pub fn decode_snapshot(text: &str) -> Result<MetricsSnapshot, WireDecodeError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, first)) if first == METRICS_WIRE_HEADER => {}
        Some((_, first)) => {
            return Err(bad(1, format!("unknown header `{first}`")));
        }
        None => return Err(bad(0, "empty file")),
    }
    let mut snap = MetricsSnapshot::default();
    for (i, line) in lines {
        let lineno = i.saturating_add(1);
        let mut fields = line.split_whitespace();
        let Some(kind) = fields.next() else {
            continue; // blank line
        };
        match kind {
            "counter" | "gauge" => {
                let name = fields
                    .next()
                    .ok_or_else(|| bad(lineno, format!("{kind} missing name")))?;
                let value_tok = fields
                    .next()
                    .ok_or_else(|| bad(lineno, format!("{kind} missing value")))?;
                let value = parse_u64(value_tok, "value", lineno)?;
                if kind == "counter" {
                    snap.counters.push((name.to_owned(), value));
                } else {
                    snap.gauges.push((name.to_owned(), value));
                }
            }
            "hist" => {
                let name = fields
                    .next()
                    .ok_or_else(|| bad(lineno, "hist missing name"))?;
                let hist = decode_hist(&mut fields, lineno)?;
                snap.hists.push((name.to_owned(), hist));
            }
            other => return Err(bad(lineno, format!("unknown record kind `{other}`"))),
        }
        if let Some(extra) = fields.next() {
            return Err(bad(lineno, format!("trailing token `{extra}`")));
        }
    }
    Ok(snap)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut hist = Hist::default();
        hist.record(0);
        hist.record(3);
        hist.record(200);
        Trace {
            spans: vec![
                SpanEvent {
                    name: "t.wire.span",
                    arg: Some(7),
                    start_ns: 1000,
                    dur_ns: 500,
                    self_ns: 400,
                    depth: 1,
                },
                SpanEvent {
                    name: "t.wire.root",
                    arg: None,
                    start_ns: 900,
                    dur_ns: 700,
                    self_ns: 200,
                    depth: 0,
                },
            ],
            counters: vec![("t.wire.count", 42), ("t.wire.other", u64::MAX)],
            hists: vec![("t.wire.hist", hist)],
        }
    }

    #[test]
    fn trace_round_trips() {
        let trace = sample();
        let decoded = decode(&encode(&trace)).expect("wire text decodes");
        assert_eq!(decoded, trace);
    }

    #[test]
    fn empty_trace_round_trips() {
        let decoded = decode(&encode(&Trace::default())).expect("header-only decodes");
        assert!(decoded.is_empty());
    }

    #[test]
    fn empty_histogram_round_trips() {
        let trace = Trace {
            hists: vec![("t.wire.empty", Hist::default())],
            ..Trace::default()
        };
        let decoded = decode(&encode(&trace)).expect("empty hist decodes");
        assert_eq!(decoded, trace);
    }

    #[test]
    fn interned_names_are_deduplicated() {
        let text = format!("{WIRE_HEADER}\ncounter t.wire.dedup 1\ncounter t.wire.dedup 2\n");
        let decoded = decode(&text).expect("decodes");
        assert_eq!(decoded.counters.len(), 2);
        assert!(std::ptr::eq(
            decoded.counters[0].0.as_ptr(),
            decoded.counters[1].0.as_ptr()
        ));
    }

    #[test]
    fn damage_is_rejected_not_healed() {
        assert!(decode("").is_err(), "empty file");
        assert!(decode("#wrong-header\n").is_err(), "unknown header");
        for line in [
            "counter",
            "counter name",
            "counter name x",
            "counter name 1 extra",
            "hist h count=1 sum=1 min=1 max=1 buckets=999:1",
            "hist h count=1 sum=1 min=1 max=1 buckets=0",
            "span s arg=- start=1 dur=1 self=1",
            "mystery record",
        ] {
            let text = format!("{WIRE_HEADER}\n{line}\n");
            assert!(decode(&text).is_err(), "`{line}` must not decode");
        }
    }

    #[test]
    fn metrics_snapshot_round_trips() {
        let mut hist = Hist::default();
        hist.record(0);
        hist.record(17);
        hist.record(1 << 40);
        let snap = MetricsSnapshot {
            counters: vec![
                ("server.events.done".to_owned(), 30),
                ("server.events.dropped".to_owned(), u64::MAX),
            ],
            gauges: vec![("server.metrics.queue.depth".to_owned(), 4)],
            hists: vec![
                ("server.metrics.queue".to_owned(), hist),
                ("server.metrics.service_ms".to_owned(), Hist::default()),
            ],
        };
        let text = encode_snapshot(&snap);
        assert!(text.starts_with(METRICS_WIRE_HEADER), "{text}");
        let decoded = decode_snapshot(&text).expect("snapshot decodes");
        assert_eq!(decoded, snap);
    }

    #[test]
    fn snapshot_damage_is_rejected() {
        assert!(decode_snapshot("").is_err(), "empty file");
        assert!(
            decode_snapshot(&format!("{WIRE_HEADER}\n")).is_err(),
            "trace header is not a snapshot header"
        );
        for line in [
            "gauge",
            "gauge name",
            "gauge name x",
            "counter name 1 extra",
            "span s arg=- start=1 dur=1 self=1 depth=0",
        ] {
            let text = format!("{METRICS_WIRE_HEADER}\n{line}\n");
            assert!(
                decode_snapshot(&text).is_err(),
                "`{line}` must not decode as a snapshot record"
            );
        }
    }

    #[test]
    fn torn_tail_is_an_error() {
        let full = encode(&sample());
        let cut = full.len() - 5;
        assert!(decode(&full[..cut]).is_err(), "torn tail must be rejected");
    }
}
