//! The two file sinks: newline-delimited JSON events and Chrome
//! trace-event JSON.
//!
//! Both are written with a small hand-rolled emitter (the workspace is
//! dependency-free); [`crate::json::validate`] provides the matching
//! parser used by the snapshot tests and the `scripts/check.sh` trace
//! stage.
//!
//! The Chrome format is the [trace-event format] consumed by
//! `chrome://tracing` and <https://ui.perfetto.dev>: a top-level
//! `{"traceEvents": [...]}` object whose entries carry `name`, `ph`
//! (phase), `ts` (microseconds), `pid`, and `tid`. Spans are emitted as
//! complete events (`"ph":"X"` with `dur`), counters as counter events
//! (`"ph":"C"`), and stream labels as metadata events (`"ph":"M"`).
//!
//! [trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use std::fmt::Write as _;

use crate::TraceSet;

/// Escape a string for embedding inside a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", u32::from(c));
            }
            c => out.push(c),
        }
    }
    out
}

/// Fixed-point nanoseconds → microseconds with 3 decimal places (the
/// trace-event `ts`/`dur` unit), avoiding float formatting entirely.
fn fmt_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Render a [`TraceSet`] as one JSON object per line.
///
/// Event shapes:
///
/// ```text
/// {"type":"span","tid":0,"name":...,"ts_ns":...,"dur_ns":...,"self_ns":...,"depth":...[,"arg":...]}
/// {"type":"counter","tid":0,"name":...,"value":...}
/// {"type":"hist","tid":0,"name":...,"count":...,"sum":...,"min":...,"max":...,"buckets":[[idx,count],...]}
/// ```
pub fn jsonl(set: &TraceSet) -> String {
    let mut out = String::new();
    for stream in &set.streams {
        let tid = stream.tid;
        let _ = writeln!(
            out,
            "{{\"type\":\"stream\",\"tid\":{tid},\"label\":\"{}\"}}",
            escape_json(&stream.label)
        );
        for span in &stream.trace.spans {
            let _ = write!(
                out,
                "{{\"type\":\"span\",\"tid\":{tid},\"name\":\"{}\",\"ts_ns\":{},\"dur_ns\":{},\"self_ns\":{},\"depth\":{}",
                escape_json(span.name),
                span.start_ns,
                span.dur_ns,
                span.self_ns,
                span.depth
            );
            if let Some(arg) = span.arg {
                let _ = write!(out, ",\"arg\":{arg}");
            }
            out.push_str("}\n");
        }
        for &(name, value) in &stream.trace.counters {
            let _ = writeln!(
                out,
                "{{\"type\":\"counter\",\"tid\":{tid},\"name\":\"{}\",\"value\":{value}}}",
                escape_json(name)
            );
        }
        for (name, h) in &stream.trace.hists {
            let buckets: Vec<String> = h
                .nonzero_buckets()
                .into_iter()
                .map(|(i, c)| format!("[{i},{c}]"))
                .collect();
            let _ = writeln!(
                out,
                "{{\"type\":\"hist\",\"tid\":{tid},\"name\":\"{}\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[{}]}}",
                escape_json(name),
                h.count,
                h.sum,
                if h.count == 0 { 0 } else { h.min },
                h.max,
                buckets.join(",")
            );
        }
    }
    out
}

/// Render a [`TraceSet`] as Chrome trace-event JSON.
///
/// The output loads directly in `chrome://tracing` or Perfetto: each stream
/// becomes a named thread (`pid` is always 1), each span a `"ph":"X"`
/// complete event, and each counter one `"ph":"C"` sample holding the
/// stream's final total.
pub fn chrome_trace(set: &TraceSet) -> String {
    let mut events: Vec<String> = Vec::new();
    events.push(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"merlin\"}}"
            .to_owned(),
    );
    for stream in &set.streams {
        let tid = stream.tid;
        events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0,\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape_json(&stream.label)
        ));
        let mut last_ts = 0u64;
        for span in &stream.trace.spans {
            last_ts = last_ts.max(span.start_ns.saturating_add(span.dur_ns));
            let mut ev = format!(
                "{{\"name\":\"{}\",\"cat\":\"merlin\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":1,\"tid\":{tid}",
                escape_json(span.name),
                fmt_us(span.start_ns),
                fmt_us(span.dur_ns)
            );
            if let Some(arg) = span.arg {
                let _ = write!(ev, ",\"args\":{{\"arg\":{arg}}}");
            }
            ev.push('}');
            events.push(ev);
        }
        for &(name, value) in &stream.trace.counters {
            events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"merlin\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\
                 \"tid\":{tid},\"args\":{{\"value\":{value}}}}}",
                escape_json(name),
                fmt_us(last_ts)
            ));
        }
    }
    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(&events.join(",\n"));
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate;
    use crate::{Hist, SpanEvent, Trace};

    fn sample_set() -> TraceSet {
        let mut h = Hist::default();
        h.record(3);
        h.record(300);
        let mut set = TraceSet::single(
            "main \"quoted\"",
            Trace {
                spans: vec![
                    SpanEvent {
                        name: "a.b",
                        arg: Some(4),
                        start_ns: 1_500,
                        dur_ns: 2_000,
                        self_ns: 1_000,
                        depth: 0,
                    },
                    SpanEvent {
                        name: "a.c",
                        arg: None,
                        start_ns: 2_000,
                        dur_ns: 500,
                        self_ns: 500,
                        depth: 1,
                    },
                ],
                counters: vec![("k.hits", 7)],
                hists: vec![("k.sizes", h)],
            },
        );
        set.push(3, "worker-2", Trace::default());
        set
    }

    #[test]
    fn jsonl_lines_each_parse_as_json() {
        let out = jsonl(&sample_set());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 6);
        for line in &lines {
            validate(line).unwrap_or_else(|e| panic!("invalid JSONL line {line}: {e}"));
        }
        assert!(out.contains("\"type\":\"span\""));
        assert!(out.contains("\"arg\":4"));
        assert!(out.contains("\"buckets\":[[2,1],[9,1]]"), "{out}");
    }

    #[test]
    fn chrome_export_is_valid_json_with_required_fields() {
        let out = chrome_trace(&sample_set());
        validate(&out).unwrap_or_else(|e| panic!("invalid chrome JSON: {e}\n{out}"));
        // Required trace-event fields on every event line.
        for line in out.lines().filter(|l| l.contains("\"name\"")) {
            assert!(line.contains("\"ph\":"), "missing ph: {line}");
            assert!(line.contains("\"ts\":"), "missing ts: {line}");
            assert!(line.contains("\"pid\":"), "missing pid: {line}");
            assert!(line.contains("\"tid\":"), "missing tid: {line}");
        }
        // Spans are complete events with µs fixed-point timestamps.
        assert!(
            out.contains("\"ph\":\"X\",\"ts\":1.500,\"dur\":2.000"),
            "{out}"
        );
        // Counters ride along as counter events.
        assert!(out.contains("\"ph\":\"C\""));
        // Stream labels with quotes survive escaping.
        assert!(out.contains("main \\\"quoted\\\""));
    }
}
