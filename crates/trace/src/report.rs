//! The in-memory aggregate sink: a per-span self-time/total-time/call-count
//! table plus the counter and histogram catalogs, rendered as plain text.
//!
//! This is what `merlin_cli ... --stats` prints. The text format is stable
//! enough to grep (`scripts/check.sh` asserts on the `counter <name> = <n>`
//! lines) but not a machine interface — use the JSONL sink for that.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::{Hist, TraceSet};

/// Aggregated figures for one span name across every stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRow {
    /// Span name.
    pub name: &'static str,
    /// Number of times the span closed.
    pub calls: u64,
    /// Saturating sum of total (wall-clock) nanoseconds.
    pub total_ns: u64,
    /// Saturating sum of self nanoseconds (total minus child spans).
    pub self_ns: u64,
    /// Longest single call, in nanoseconds.
    pub max_ns: u64,
}

/// The aggregate report: span rows sorted by descending total time, merged
/// counters, and merged histograms.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AggregateReport {
    /// Per-span-name rows, sorted by descending `total_ns` (name breaks
    /// ties so the render is deterministic).
    pub spans: Vec<SpanRow>,
    /// Counter totals summed across streams, sorted by name.
    pub counters: Vec<(&'static str, u64)>,
    /// Histograms merged across streams, sorted by name.
    pub hists: Vec<(&'static str, Hist)>,
}

impl AggregateReport {
    /// Build the report from a set of streams.
    pub fn from_set(set: &TraceSet) -> Self {
        let mut by_name: HashMap<&'static str, SpanRow> = HashMap::new();
        for stream in &set.streams {
            for span in &stream.trace.spans {
                let row = by_name.entry(span.name).or_insert(SpanRow {
                    name: span.name,
                    calls: 0,
                    total_ns: 0,
                    self_ns: 0,
                    max_ns: 0,
                });
                row.calls = row.calls.saturating_add(1);
                row.total_ns = row.total_ns.saturating_add(span.dur_ns);
                row.self_ns = row.self_ns.saturating_add(span.self_ns);
                row.max_ns = row.max_ns.max(span.dur_ns);
            }
        }
        let mut spans: Vec<_> = by_name.into_values().collect();
        spans.sort_unstable_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(b.name)));
        AggregateReport {
            spans,
            counters: set.merged_counters(),
            hists: set.merged_hists(),
        }
    }

    /// Sum of `self_ns` over all rows — with complete instrumentation on a
    /// single thread this tracks wall clock (every nanosecond is someone's
    /// self time exactly once).
    pub fn total_self_ns(&self) -> u64 {
        self.spans
            .iter()
            .fold(0u64, |acc, r| acc.saturating_add(r.self_ns))
    }

    /// Render the table. Lines:
    ///
    /// ```text
    /// #merlin-trace-stats
    /// span  <name> calls=<n> total_ms=<x> self_ms=<x> max_ms=<x>
    /// counter <name> = <n>
    /// hist  <name> count=<n> sum=<n> min=<n> max=<n> p50=<n> p90=<n> p99=<n>
    /// ```
    ///
    /// The `p50`/`p90`/`p99` figures are [`Hist::quantile`] estimates from
    /// the log2 buckets, not exact order statistics.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "#merlin-trace-stats");
        let width = self
            .spans
            .iter()
            .map(|r| r.name.len())
            .chain(self.hists.iter().map(|(n, _)| n.len()))
            .chain(self.counters.iter().map(|(n, _)| n.len()))
            .max()
            .unwrap_or(0);
        for row in &self.spans {
            let _ = writeln!(
                s,
                "span    {:<width$} calls={:<6} total_ms={:<12} self_ms={:<12} max_ms={}",
                row.name,
                row.calls,
                fmt_ms(row.total_ns),
                fmt_ms(row.self_ns),
                fmt_ms(row.max_ns),
            );
        }
        for &(name, value) in &self.counters {
            let _ = writeln!(s, "counter {name:<width$} = {value}");
        }
        for (name, h) in &self.hists {
            let _ = writeln!(
                s,
                "hist    {:<width$} count={} sum={} min={} max={} p50={} p90={} p99={}",
                name,
                h.count,
                h.sum,
                if h.count == 0 { 0 } else { h.min },
                h.max,
                h.quantile(0.50),
                h.quantile(0.90),
                h.quantile(0.99),
            );
        }
        s
    }
}

/// Fixed-point nanoseconds → milliseconds with microsecond precision,
/// without going through floating point.
fn fmt_ms(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000_000, (ns / 1_000) % 1_000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SpanEvent, Trace};

    fn span(name: &'static str, dur_ns: u64, self_ns: u64) -> SpanEvent {
        SpanEvent {
            name,
            arg: None,
            start_ns: 0,
            dur_ns,
            self_ns,
            depth: 0,
        }
    }

    #[test]
    fn rows_aggregate_across_streams_and_sort_by_total() {
        let mut set = TraceSet::single(
            "a",
            Trace {
                spans: vec![span("x", 10, 4), span("y", 100, 100)],
                counters: vec![("c", 1)],
                hists: vec![],
            },
        );
        set.push(
            1,
            "b",
            Trace {
                spans: vec![span("x", 30, 30)],
                counters: vec![("c", 2)],
                hists: vec![],
            },
        );
        let rep = AggregateReport::from_set(&set);
        assert_eq!(rep.spans.len(), 2);
        assert_eq!(rep.spans[0].name, "y");
        assert_eq!(rep.spans[1].name, "x");
        assert_eq!(rep.spans[1].calls, 2);
        assert_eq!(rep.spans[1].total_ns, 40);
        assert_eq!(rep.spans[1].self_ns, 34);
        assert_eq!(rep.spans[1].max_ns, 30);
        assert_eq!(rep.counters, vec![("c", 3)]);
        assert_eq!(rep.total_self_ns(), 134);
        let out = rep.render();
        assert!(out.starts_with("#merlin-trace-stats\n"), "{out}");
        assert!(out.contains("counter c = 3"), "{out}");
        assert!(out.contains("span    y"), "{out}");
    }

    #[test]
    fn hist_line_pins_quantile_estimates_to_exact_values() {
        // Distribution chosen so the log2-bucket estimator is exact (see
        // `quantile_is_exact_on_known_distributions` in the crate root).
        let mut h = Hist::default();
        for v in [4u64, 5, 6, 7, 8, 9, 10, 15] {
            h.record(v);
        }
        let set = TraceSet::single(
            "main",
            Trace {
                spans: vec![],
                counters: vec![],
                hists: vec![("q", h)],
            },
        );
        let out = AggregateReport::from_set(&set).render();
        assert!(
            out.contains("hist    q count=8 sum=64 min=4 max=15 p50=7 p90=15 p99=15"),
            "{out}"
        );
    }

    #[test]
    fn fmt_ms_is_fixed_point() {
        assert_eq!(fmt_ms(0), "0.000");
        assert_eq!(fmt_ms(1_234_567), "1.234");
        assert_eq!(fmt_ms(999), "0.000");
        assert_eq!(fmt_ms(2_000_000_000), "2000.000");
    }
}
