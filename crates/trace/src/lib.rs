//! Unified tracing and metrics for the MERLIN workspace.
//!
//! Every crate in the hot path (curves → core → flows → resilience →
//! supervisor → CLI) reports into this collector instead of growing its own
//! ad-hoc stats structs. The design constraints, in order:
//!
//! 1. **Unmeasurable when off.** Collection is disabled by default; every
//!    public hook starts with a single load of a `const`-initialised
//!    thread-local [`Cell<bool>`] and an early return. No allocation, no
//!    clock read, no atomic — the disabled fast path compiles down to one
//!    TLS load and a predictable branch, which is why a 50-net batch shows
//!    no wall-clock difference with the hooks in place.
//! 2. **Zero dependencies.** The crate sits below `merlin-curves` in the
//!    dependency graph, so it can only use `std`.
//! 3. **Thread-local, merge-later.** Each thread collects into its own
//!    buffers with no synchronisation; the supervisor drains worker
//!    collectors at join time and merges the streams by worker id into a
//!    [`TraceSet`].
//!
//! # Vocabulary
//!
//! - A **span** is a named region of wall-clock time, opened by the
//!   [`span!`] macro (an RAII [`SpanGuard`]) and closed on drop. Spans nest;
//!   the collector tracks both *total* time and *self* time (total minus
//!   time spent in child spans).
//! - A **counter** is a named saturating `u64` tally ([`counter`]).
//! - A **histogram** is a named log2-bucketed distribution ([`observe`]).
//!
//! # Sinks
//!
//! - [`report::AggregateReport`] — per-span call-count/total/self table plus
//!   the counter catalog, rendered as text (`--stats`).
//! - [`export::jsonl`] — one JSON object per event, newline-delimited.
//! - [`export::chrome_trace`] — Chrome trace-event JSON loadable by
//!   `chrome://tracing` or [Perfetto](https://ui.perfetto.dev).
//!
//! See `docs/OBSERVABILITY.md` for span naming conventions and the counter
//! catalog.
//!
//! # Example
//!
//! ```
//! merlin_trace::enable();
//! {
//!     let _outer = merlin_trace::span!("example.outer");
//!     let _inner = merlin_trace::span!("example.inner", 7);
//!     merlin_trace::counter("example.items", 3);
//!     merlin_trace::observe("example.sizes", 17);
//! }
//! let trace = merlin_trace::drain();
//! assert_eq!(trace.spans.len(), 2);
//! assert_eq!(trace.counters, vec![("example.items", 3)]);
//! merlin_trace::disable();
//! ```

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

pub mod export;
pub mod json;
pub mod registry;
pub mod report;
pub mod wire;

/// A closed span: one timed region recorded by a [`SpanGuard`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Dotted span name (see `docs/OBSERVABILITY.md` for the convention).
    pub name: &'static str,
    /// Optional numeric argument (level index, net index, …).
    pub arg: Option<u64>,
    /// Nanoseconds since the process-wide trace epoch at span open.
    pub start_ns: u64,
    /// Total wall-clock nanoseconds between open and close.
    pub dur_ns: u64,
    /// [`SpanEvent::dur_ns`] minus time attributed to child spans.
    pub self_ns: u64,
    /// Nesting depth at open time (0 = top of this thread's stack).
    pub depth: u16,
}

/// Number of buckets in a [`Hist`]: one for zero plus one per power of two.
pub const HIST_BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` observations.
///
/// Bucket 0 holds exact zeros; bucket `k >= 1` holds values in
/// `[2^(k-1), 2^k)`. All tallies saturate instead of wrapping.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hist {
    /// Number of observations.
    pub count: u64,
    /// Saturating sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (meaningless when `count == 0`).
    pub min: u64,
    /// Largest observed value (meaningless when `count == 0`).
    pub max: u64,
    /// Per-bucket observation counts; see [`Hist::bucket_of`].
    pub buckets: [u64; HIST_BUCKETS],
}

impl Default for Hist {
    fn default() -> Self {
        Hist {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl Hist {
    /// The bucket index a value falls into: 0 for 0, else
    /// `floor(log2(v)) + 1`.
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (64 - value.leading_zeros()) as usize
        }
    }

    /// The smallest value that lands in bucket `idx` (inverse of
    /// [`Hist::bucket_of`]).
    pub fn bucket_floor(idx: usize) -> u64 {
        if idx == 0 {
            0
        } else {
            1u64 << (idx - 1)
        }
    }

    /// Record one observation.
    pub fn record(&mut self, value: u64) {
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        let b = Self::bucket_of(value);
        self.buckets[b] = self.buckets[b].saturating_add(1);
    }

    /// Fold another histogram into this one (used when merging streams).
    pub fn merge(&mut self, other: &Hist) {
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine = mine.saturating_add(*theirs);
        }
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) from the log2 buckets.
    ///
    /// Uses the nearest-rank definition (`rank = ceil(q * count)`), walks
    /// the buckets to the one containing that rank, and interpolates
    /// linearly inside it. The bucket's value range is clamped to the
    /// observed `[min, max]`, so a histogram whose observations all share
    /// one bucket (or one value) reports exactly. Returns 0 on an empty
    /// histogram. `q` is clamped into `[0.0, 1.0]` (NaN counts as 0.0),
    /// so degenerate requests report the extreme quantiles instead of a
    /// garbage rank.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // Guard before the cast: NaN casts to 0 and then masquerades as
        // rank 1, and q > 1.0 over-ranks straight into the rank clamp.
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut before = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if before.saturating_add(c) >= rank {
                let lo = Self::bucket_floor(idx).max(self.min);
                let hi_raw = if idx >= HIST_BUCKETS - 1 {
                    u64::MAX
                } else {
                    Self::bucket_floor(idx + 1).saturating_sub(1)
                };
                let hi = hi_raw.min(self.max).max(lo);
                let pos = rank - before; // 1 ..= c
                let span = (hi - lo) as u128;
                return lo + (span * u128::from(pos) / u128::from(c)) as u64;
            }
            before = before.saturating_add(c);
        }
        self.max
    }

    /// `(bucket_index, count)` for every non-empty bucket, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }
}

/// Everything one thread collected, moved out by [`drain`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Trace {
    /// Closed spans in close order.
    pub spans: Vec<SpanEvent>,
    /// Counter totals, sorted by name.
    pub counters: Vec<(&'static str, u64)>,
    /// Histograms, sorted by name.
    pub hists: Vec<(&'static str, Hist)>,
}

impl Trace {
    /// True when no spans, counters, or histograms were recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.counters.is_empty() && self.hists.is_empty()
    }

    /// Look up a counter total by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |&(_, v)| v)
    }
}

/// One thread's [`Trace`] tagged with a stable stream id and label.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Stream {
    /// Stream id; becomes `tid` in the Chrome export. The supervisor uses
    /// `worker id + 1` so stream ids are stable across runs (0 is the
    /// supervising thread).
    pub tid: u32,
    /// Human-readable stream name (`"main"`, `"supervisor"`, `"worker-3"`).
    pub label: String,
    /// The drained events.
    pub trace: Trace,
}

/// A set of per-thread streams merged into one logical trace.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceSet {
    /// Streams sorted by `tid` (callers push in order).
    pub streams: Vec<Stream>,
}

impl TraceSet {
    /// A set holding a single stream with `tid` 0.
    pub fn single(label: &str, trace: Trace) -> Self {
        TraceSet {
            streams: vec![Stream {
                tid: 0,
                label: label.to_owned(),
                trace,
            }],
        }
    }

    /// Append a stream with an explicit id.
    pub fn push(&mut self, tid: u32, label: &str, trace: Trace) {
        self.streams.push(Stream {
            tid,
            label: label.to_owned(),
            trace,
        });
    }

    /// Counter totals saturating-summed across all streams, sorted by name.
    pub fn merged_counters(&self) -> Vec<(&'static str, u64)> {
        let mut merged: HashMap<&'static str, u64> = HashMap::new();
        for stream in &self.streams {
            for &(name, value) in &stream.trace.counters {
                let slot = merged.entry(name).or_insert(0);
                *slot = slot.saturating_add(value);
            }
        }
        let mut out: Vec<_> = merged.into_iter().collect();
        out.sort_unstable_by(|a, b| a.0.cmp(b.0));
        out
    }

    /// Histograms merged across all streams, sorted by name.
    pub fn merged_hists(&self) -> Vec<(&'static str, Hist)> {
        let mut merged: HashMap<&'static str, Hist> = HashMap::new();
        for stream in &self.streams {
            for (name, hist) in &stream.trace.hists {
                merged.entry(name).or_default().merge(hist);
            }
        }
        let mut out: Vec<_> = merged.into_iter().collect();
        out.sort_unstable_by(|a, b| a.0.cmp(b.0));
        out
    }

    /// Total number of span events across all streams.
    pub fn total_spans(&self) -> usize {
        self.streams.iter().map(|s| s.trace.spans.len()).sum()
    }

    /// Merged-counter lookup by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.streams
            .iter()
            .map(|s| s.trace.counter(name))
            .fold(0u64, u64::saturating_add)
    }
}

struct OpenSpan {
    name: &'static str,
    arg: Option<u64>,
    start_ns: u64,
    child_ns: u64,
    token: u64,
}

#[derive(Default)]
struct Collector {
    spans: Vec<SpanEvent>,
    stack: Vec<OpenSpan>,
    counters: HashMap<&'static str, u64>,
    hists: HashMap<&'static str, Hist>,
}

thread_local! {
    // The whole disabled fast path: one load of this Cell. It is
    // const-initialised so there is no lazy-init branch.
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static COLLECTOR: RefCell<Collector> = RefCell::new(Collector::default());
}

/// Process-wide epoch so timestamps from different threads share one axis.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Globally unique span tokens so a guard can never close a span it did not
/// open (e.g. after a mid-span [`drain`] or a cross-thread drop).
static NEXT_TOKEN: AtomicU64 = AtomicU64::new(1);

/// Count of threads that have called [`enable`] without a matching
/// [`disable`]. The [`is_enabled`] fast path loads this *before* touching
/// thread-local storage: in a process that never enables tracing, the
/// whole check is one relaxed load of a shared read-mostly cacheline and
/// a predicted branch — measurably cheaper in the DP hot loops than the
/// TLS access. A thread that exits while enabled leaves the count high,
/// which only costs other threads the TLS fallback check, never
/// correctness.
static ENABLED_THREADS: AtomicU32 = AtomicU32::new(0);

fn now_ns() -> u64 {
    let epoch = EPOCH.get_or_init(Instant::now);
    // A u64 of nanoseconds covers ~584 years of process uptime.
    epoch.elapsed().as_nanos() as u64
}

/// Turn collection on for the **current thread**. Idempotent. Also pins the
/// process-wide epoch so later [`enable`] calls on other threads share it.
pub fn enable() {
    let _ = EPOCH.get_or_init(Instant::now);
    ENABLED.with(|e| {
        if !e.get() {
            e.set(true);
            ENABLED_THREADS.fetch_add(1, Ordering::Relaxed);
        }
    });
}

/// Turn collection off for the current thread. Already-recorded events stay
/// buffered until [`drain`].
pub fn disable() {
    ENABLED.with(|e| {
        if e.get() {
            e.set(false);
            ENABLED_THREADS.fetch_sub(1, Ordering::Relaxed);
        }
    });
}

/// Whether collection is on for the current thread. Instrumentation sites
/// that need extra work to *compute* a metric should gate on this so the
/// disabled path stays free.
#[inline]
pub fn is_enabled() -> bool {
    // Global gate first — see ENABLED_THREADS. The TLS read only happens
    // once some thread has actually turned tracing on.
    ENABLED_THREADS.load(Ordering::Relaxed) != 0 && ENABLED.try_with(Cell::get).unwrap_or(false)
}

/// Add `delta` to the named counter (saturating). No-op when disabled.
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    if !is_enabled() {
        return;
    }
    let _ = COLLECTOR.try_with(|c| {
        if let Ok(mut c) = c.try_borrow_mut() {
            let slot = c.counters.entry(name).or_insert(0);
            *slot = slot.saturating_add(delta);
        }
    });
}

/// Record one value into the named histogram. No-op when disabled.
#[inline]
pub fn observe(name: &'static str, value: u64) {
    if !is_enabled() {
        return;
    }
    let _ = COLLECTOR.try_with(|c| {
        if let Ok(mut c) = c.try_borrow_mut() {
            c.hists.entry(name).or_default().record(value);
        }
    });
}

/// Move the current thread's collected events out, resetting the collector.
///
/// Open spans are discarded (their guards become inert no-ops thanks to the
/// token check in [`SpanGuard::drop`]); the enabled flag is left unchanged.
pub fn drain() -> Trace {
    COLLECTOR
        .try_with(|c| {
            let Ok(mut c) = c.try_borrow_mut() else {
                return Trace::default();
            };
            c.stack.clear();
            let spans = std::mem::take(&mut c.spans);
            let mut counters: Vec<_> = c.counters.drain().collect();
            counters.sort_unstable_by(|a, b| a.0.cmp(b.0));
            let mut hists: Vec<_> = c.hists.drain().collect();
            hists.sort_unstable_by(|a, b| a.0.cmp(b.0));
            Trace {
                spans,
                counters,
                hists,
            }
        })
        .unwrap_or_default()
}

/// Fold a drained [`Trace`] from another thread into the **current**
/// thread's collector, as if its events had been recorded here.
///
/// This is how the level-sharded parallel DP reports: each scoped worker
/// enables collection, drains at exit, and the coordinating thread absorbs
/// the worker traces in deterministic shard order. Spans keep their
/// original timestamps (every thread shares the process-wide epoch, so the
/// time axes line up) and are appended in recorded close order; counters
/// and histograms merge saturating. No-op when collection is disabled on
/// the absorbing thread.
pub fn absorb(trace: Trace) {
    if !is_enabled() {
        return;
    }
    let _ = COLLECTOR.try_with(|c| {
        if let Ok(mut c) = c.try_borrow_mut() {
            c.spans.extend(trace.spans);
            for (name, value) in trace.counters {
                let slot = c.counters.entry(name).or_insert(0);
                *slot = slot.saturating_add(value);
            }
            for (name, hist) in trace.hists {
                c.hists.entry(name).or_default().merge(&hist);
            }
        }
    });
}

/// RAII guard for a timed region; created by the [`span!`] macro.
///
/// A guard created while collection is disabled is inert forever (token 0).
/// A live guard closes its span on drop **only** if that span is still the
/// innermost open span on the dropping thread — after a mid-span [`drain`]
/// or a cross-thread move the token cannot match and the drop is a safe
/// no-op, never a panic.
#[must_use = "a span guard records its span when dropped"]
pub struct SpanGuard {
    token: u64,
}

impl SpanGuard {
    /// Open a span. Prefer the [`span!`] macro at call sites.
    #[inline]
    pub fn enter(name: &'static str, arg: Option<u64>) -> Self {
        if !is_enabled() {
            return SpanGuard { token: 0 };
        }
        let token = NEXT_TOKEN.fetch_add(1, Ordering::Relaxed);
        let start_ns = now_ns();
        let _ = COLLECTOR.try_with(|c| {
            if let Ok(mut c) = c.try_borrow_mut() {
                c.stack.push(OpenSpan {
                    name,
                    arg,
                    start_ns,
                    child_ns: 0,
                    token,
                });
            }
        });
        SpanGuard { token }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.token == 0 {
            return;
        }
        // Drop must never panic: TLS access and the RefCell borrow both use
        // their fallible forms and bail out quietly on failure.
        let token = self.token;
        let _ = COLLECTOR.try_with(|c| {
            let Ok(mut c) = c.try_borrow_mut() else {
                return;
            };
            if c.stack.last().is_none_or(|s| s.token != token) {
                return;
            }
            let Some(open) = c.stack.pop() else {
                return;
            };
            let dur_ns = now_ns().saturating_sub(open.start_ns);
            let self_ns = dur_ns.saturating_sub(open.child_ns);
            if let Some(parent) = c.stack.last_mut() {
                parent.child_ns = parent.child_ns.saturating_add(dur_ns);
            }
            let depth = c.stack.len().min(usize::from(u16::MAX)) as u16;
            c.spans.push(SpanEvent {
                name: open.name,
                arg: open.arg,
                start_ns: open.start_ns,
                dur_ns,
                self_ns,
                depth,
            });
        });
    }
}

/// Open a named span for the enclosing scope.
///
/// ```
/// merlin_trace::enable();
/// let _g = merlin_trace::span!("docs.example");
/// let _h = merlin_trace::span!("docs.example.level", 3u64);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($name, None)
    };
    ($name:expr, $arg:expr) => {
        $crate::SpanGuard::enter($name, Some(($arg) as u64))
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn nested_spans_account_self_time_exactly() {
        enable();
        let _ = drain();
        {
            let _outer = span!("t.outer");
            std::thread::sleep(Duration::from_millis(2));
            {
                let _inner = span!("t.inner", 5u64);
                std::thread::sleep(Duration::from_millis(2));
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let trace = drain();
        disable();
        assert_eq!(trace.spans.len(), 2);
        let inner = &trace.spans[0];
        let outer = &trace.spans[1];
        assert_eq!(inner.name, "t.inner");
        assert_eq!(inner.arg, Some(5));
        assert_eq!(inner.depth, 1);
        assert_eq!(inner.self_ns, inner.dur_ns);
        assert_eq!(outer.name, "t.outer");
        assert_eq!(outer.depth, 0);
        // Self time is *exactly* total minus the one child's total.
        assert_eq!(outer.self_ns, outer.dur_ns - inner.dur_ns);
        assert!(outer.dur_ns >= inner.dur_ns);
        assert!(inner.dur_ns >= 1_000_000, "inner slept 2ms: {inner:?}");
    }

    #[test]
    fn sequential_children_sum_into_parent_child_time() {
        enable();
        let _ = drain();
        {
            let _p = span!("t.parent");
            let _ = span!("t.c1");
            let _ = span!("t.c2");
        }
        let trace = drain();
        disable();
        assert_eq!(trace.spans.len(), 3);
        let parent = &trace.spans[2];
        let kids: u64 = trace.spans[..2].iter().map(|s| s.dur_ns).sum();
        assert_eq!(parent.self_ns, parent.dur_ns.saturating_sub(kids));
    }

    #[test]
    fn absorb_folds_a_worker_trace_into_the_current_thread() {
        // The parallel-DP merge path: a worker collects into its own
        // thread-local trace, drains it, and the coordinator absorbs it.
        enable();
        let _ = drain();
        counter("t.absorb.count", 10);
        observe("t.absorb.hist", 4);
        let worker = std::thread::spawn(|| {
            enable();
            let _ = drain();
            {
                let _s = span!("t.absorb.worker");
                counter("t.absorb.count", 32);
                observe("t.absorb.hist", 4);
            }
            let t = drain();
            disable();
            t
        })
        .join()
        .expect("worker ran");
        absorb(worker);
        let merged = drain();
        disable();
        assert_eq!(merged.counter("t.absorb.count"), 42);
        assert_eq!(merged.spans.len(), 1);
        assert_eq!(merged.spans[0].name, "t.absorb.worker");
        let hist = merged
            .hists
            .iter()
            .find(|(name, _)| *name == "t.absorb.hist")
            .map(|(_, h)| h)
            .expect("merged histogram present");
        assert_eq!(hist.count, 2);
        // Absorbing into a disabled thread is a silent no-op, never a
        // panic (the worker may outlive the coordinator's collection).
        absorb(Trace::default());
    }

    #[test]
    fn counters_saturate_instead_of_wrapping() {
        enable();
        let _ = drain();
        counter("t.sat", u64::MAX - 1);
        counter("t.sat", 5);
        counter("t.sat", u64::MAX);
        let trace = drain();
        disable();
        assert_eq!(trace.counter("t.sat"), u64::MAX);
    }

    #[test]
    fn histogram_buckets_and_summary_stats() {
        assert_eq!(Hist::bucket_of(0), 0);
        assert_eq!(Hist::bucket_of(1), 1);
        assert_eq!(Hist::bucket_of(2), 2);
        assert_eq!(Hist::bucket_of(3), 2);
        assert_eq!(Hist::bucket_of(4), 3);
        assert_eq!(Hist::bucket_of(u64::MAX), 64);
        assert_eq!(Hist::bucket_floor(0), 0);
        assert_eq!(Hist::bucket_floor(1), 1);
        assert_eq!(Hist::bucket_floor(5), 16);
        enable();
        let _ = drain();
        for v in [0u64, 1, 3, 3, 9] {
            observe("t.hist", v);
        }
        let trace = drain();
        disable();
        assert_eq!(trace.hists.len(), 1);
        let (name, h) = &trace.hists[0];
        assert_eq!(*name, "t.hist");
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 16);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 9);
        assert_eq!(h.nonzero_buckets(), vec![(0, 1), (1, 1), (2, 2), (4, 1)]);
    }

    #[test]
    fn quantile_is_exact_on_known_distributions() {
        // Point mass: every quantile is the single observed value.
        let mut mass = Hist::default();
        for _ in 0..1000 {
            mass.record(42);
        }
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(mass.quantile(q), 42);
        }
        // Two adjacent log2 buckets, exact nearest-rank answers.
        let mut small = Hist::default();
        for v in [4u64, 5, 6, 7, 8, 9, 10, 15] {
            small.record(v);
        }
        assert_eq!(small.quantile(0.5), 7);
        assert_eq!(small.quantile(0.9), 15);
        assert_eq!(small.quantile(0.99), 15);
        // Uniform 1..=1024: interpolation inside a full bucket recovers
        // the exact nearest-rank value.
        let mut uniform = Hist::default();
        for v in 1..=1024u64 {
            uniform.record(v);
        }
        assert_eq!(uniform.quantile(0.5), 512);
        assert_eq!(uniform.quantile(0.99), 1014);
        assert_eq!(uniform.quantile(1.0), 1024);
        // Monotone in q, clamped to [min, max].
        let mut prev = 0;
        for q in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = uniform.quantile(q);
            assert!(v >= prev, "quantiles are monotone");
            assert!((uniform.min..=uniform.max).contains(&v));
            prev = v;
        }
        assert_eq!(Hist::default().quantile(0.5), 0);
        // Degenerate q: NaN and negatives report the minimum quantile,
        // q > 1.0 reports the maximum — never a garbage rank.
        assert_eq!(uniform.quantile(f64::NAN), uniform.quantile(0.0));
        assert_eq!(uniform.quantile(-0.5), uniform.quantile(0.0));
        assert_eq!(uniform.quantile(f64::NEG_INFINITY), uniform.quantile(0.0));
        assert_eq!(uniform.quantile(1.5), 1024);
        assert_eq!(uniform.quantile(f64::INFINITY), 1024);
        assert_eq!(mass.quantile(f64::NAN), 42);
    }

    #[test]
    fn disabled_collector_records_nothing() {
        disable();
        let _ = drain();
        {
            let _g = span!("t.off");
            counter("t.off", 1);
            observe("t.off", 1);
        }
        assert!(drain().is_empty());
    }

    #[test]
    fn drain_mid_span_leaves_guard_inert() {
        enable();
        let _ = drain();
        let g = span!("t.orphan");
        let first = drain();
        assert!(first.spans.is_empty(), "span still open at drain");
        drop(g); // must not panic or record anything
        assert!(drain().spans.is_empty());
        disable();
    }
}
