//! Property tests for the wire codecs in `merlin_trace::wire`.
//!
//! The wire format exists to carry collected metrics across the worker
//! *process* boundary (subprocess shards, the solve daemon's `metrics`
//! command), so the property that matters is lossless round-tripping:
//! whatever a worker encodes, the parent must decode back bit-for-bit.
//! Histograms are the risky record (65 sparse buckets, saturating
//! tallies, sentinel min on empty), so they get the heaviest generation.
//!
//! The vendored proptest shim supports int-range strategies, tuples,
//! `Just` and `collection::vec` only — no `option::of`, no filters.

use merlin_trace::registry::{self, MetricsSnapshot};
use merlin_trace::wire::{decode, decode_snapshot, encode, encode_snapshot};
use merlin_trace::{Hist, Trace};
use proptest::prelude::*;

fn hist_from(values: &[u64]) -> Hist {
    let mut h = Hist::default();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #[test]
    fn histograms_round_trip_through_trace_wire(
        raw in prop::collection::vec(0u64..1_000_000, 1..40),
        shifts in prop::collection::vec(0u64..64, 1..10),
    ) {
        // `raw` exercises the low buckets densely; `shifts` plants one
        // observation in an arbitrary power-of-two bucket so the whole
        // 65-bucket range (including bucket 64) is reachable.
        let mut values = raw.clone();
        values.extend(shifts.iter().map(|&s| 1u64 << s));
        let trace = Trace {
            spans: vec![],
            counters: vec![("t.wireprop.count", values.len() as u64)],
            hists: vec![("t.wireprop.hist", hist_from(&values))],
        };
        let text = encode(&trace);
        let decoded = decode(&text).expect("encoded trace decodes");
        prop_assert_eq!(decoded, trace);
    }

    #[test]
    fn empty_and_zero_heavy_histograms_round_trip(
        zeros in 0u64..20,
        tail in prop::collection::vec(0u64..8, 1..10),
    ) {
        // Bucket 0 (exact zeros) plus tiny values straddling the first
        // few buckets — the region where `min` sentinel handling and the
        // `-` empty-bucket marker interact.
        let mut values = vec![0u64; zeros as usize];
        values.extend(&tail);
        let trace = Trace {
            spans: vec![],
            counters: vec![],
            hists: vec![("t.wireprop.zeros", hist_from(&values))],
        };
        let decoded = decode(&encode(&trace)).expect("decodes");
        prop_assert_eq!(decoded, trace);
    }

    #[test]
    fn snapshots_round_trip_through_metrics_wire(
        counters in prop::collection::vec(0u64..u64::MAX, 1..8),
        gauges in prop::collection::vec(0u64..u64::MAX, 1..8),
        obs in prop::collection::vec((0u64..64, 0u64..1_000_000), 1..64),
    ) {
        let snap = MetricsSnapshot {
            counters: counters
                .iter()
                .enumerate()
                .map(|(i, &v)| (format!("server.wireprop.c{i}"), v))
                .collect(),
            gauges: gauges
                .iter()
                .enumerate()
                .map(|(i, &v)| (format!("server.wireprop.g{i}"), v))
                .collect(),
            hists: vec![
                (
                    "server.wireprop.h".to_owned(),
                    hist_from(
                        &obs.iter()
                            .map(|&(s, v)| (1u64 << s).saturating_add(v))
                            .collect::<Vec<_>>(),
                    ),
                ),
                ("server.wireprop.empty".to_owned(), Hist::default()),
            ],
        };
        let text = encode_snapshot(&snap);
        let decoded = decode_snapshot(&text).expect("encoded snapshot decodes");
        prop_assert_eq!(decoded, snap);
    }
}

/// The live-registry path a daemon worker actually takes: publish from a
/// separate thread into the sharded registry, snapshot, ship the encoded
/// text across the boundary (here a channel; in production a socket or a
/// file), decode on the other side, and compare against ground truth.
#[test]
fn registry_snapshot_survives_the_wire_boundary() {
    registry::set_active(true);
    let publisher = std::thread::spawn(|| {
        let c = registry::counter("t.wireprop.boundary.count");
        let h = registry::histogram("t.wireprop.boundary.hist");
        let g = registry::gauge("t.wireprop.boundary.gauge");
        for v in 1..=100u64 {
            c.inc();
            h.observe(v * 3);
        }
        g.set(41);
        encode_snapshot(&registry::snapshot())
    });
    let text = publisher.join().expect("publisher thread");
    let decoded = decode_snapshot(&text).expect("snapshot decodes");
    assert_eq!(decoded.counter("t.wireprop.boundary.count"), 100);
    assert_eq!(decoded.gauge("t.wireprop.boundary.gauge"), 41);
    let h = decoded
        .hist("t.wireprop.boundary.hist")
        .expect("hist crossed the boundary");
    assert_eq!(h.count, 100);
    assert_eq!(h.min, 3);
    assert_eq!(h.max, 300);
    assert_eq!(h.sum, 3 * (100 * 101 / 2));
    assert_eq!(h.buckets.iter().sum::<u64>(), 100);
}
