//! Cross-thread behaviour of the collector: disabled threads record
//! nothing, guards moved between threads never panic, and worker streams
//! merge into a single trace set.

use merlin_trace::{drain, enable, span, TraceSet};

#[test]
fn disabled_threads_record_zero_events_everywhere() {
    // Nothing calls enable(): spawn workers that emit spans/counters and a
    // guard that crosses threads; every drain must come back empty and no
    // drop may panic.
    let guard_from_main = span!("cross.main");
    let handle = std::thread::spawn(move || {
        {
            let _g = span!("cross.worker");
            merlin_trace::counter("cross.counter", 1);
            merlin_trace::observe("cross.hist", 42);
        }
        drop(guard_from_main); // orphaned guard from another thread
        drain()
    });
    let worker_trace = handle.join().expect("worker thread panicked");
    assert!(worker_trace.is_empty(), "{worker_trace:?}");
    assert!(drain().is_empty());
}

#[test]
fn live_guard_dropped_on_another_thread_is_a_no_op() {
    enable();
    let _ = drain();
    let guard = span!("orphan.live");
    let handle = std::thread::spawn(move || {
        drop(guard); // token can't match this thread's (empty) stack
        drain()
    });
    let other = handle.join().expect("worker thread panicked");
    assert!(other.is_empty(), "{other:?}");
    // The span never closed on the owning thread either.
    assert!(drain().spans.is_empty());
    merlin_trace::disable();
}

#[test]
fn worker_streams_merge_by_id_with_shared_epoch() {
    enable(); // pins the epoch before workers start
    let _ = drain();
    let mut handles = Vec::new();
    for w in 0..3u32 {
        handles.push(std::thread::spawn(move || {
            enable();
            {
                let _g = span!("merge.work", w);
                merlin_trace::counter("merge.jobs", 1);
            }
            drain()
        }));
    }
    let mut set = TraceSet::single("supervisor", drain());
    for (w, h) in handles.into_iter().enumerate() {
        let trace = h.join().expect("worker thread panicked");
        assert_eq!(trace.spans.len(), 1);
        set.push(w as u32 + 1, &format!("worker-{w}"), trace);
    }
    assert_eq!(set.streams.len(), 4);
    assert_eq!(set.counter("merge.jobs"), 3);
    assert_eq!(set.total_spans(), 3);
    // The chrome export of a multi-stream set stays valid JSON.
    merlin_trace::json::validate(&merlin_trace::export::chrome_trace(&set))
        .expect("chrome export parses");
    merlin_trace::disable();
}
