//! Rectilinear point-to-point routes.

use crate::point::{manhattan, Point};

/// An axis-parallel wire segment.
///
/// A segment is either horizontal or vertical (or degenerate). Diagonal
/// segments cannot be constructed through the public API.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Segment {
    a: Point,
    b: Point,
}

impl Segment {
    /// Creates an axis-parallel segment.
    ///
    /// # Panics
    ///
    /// Panics if the segment would be diagonal.
    pub fn new(a: Point, b: Point) -> Self {
        assert!(
            a.x == b.x || a.y == b.y,
            "segment {a} -> {b} is not axis-parallel"
        );
        Segment { a, b }
    }

    /// Start point.
    pub fn a(&self) -> Point {
        self.a
    }

    /// End point.
    pub fn b(&self) -> Point {
        self.b
    }

    /// Wire length of the segment.
    pub fn len(&self) -> u64 {
        manhattan(self.a, self.b)
    }

    /// Whether the segment has zero length.
    pub fn is_empty(&self) -> bool {
        self.a == self.b
    }

    /// Whether the segment is horizontal (constant y).
    pub fn is_horizontal(&self) -> bool {
        self.a.y == self.b.y
    }
}

/// A minimum-length rectilinear route between two points.
///
/// The embedding is the canonical L-shape: horizontal first, then vertical
/// (an "HV" route). Elmore delay of an unbranched wire depends only on its
/// length, so the particular L-shape chosen never affects timing; the
/// concrete embedding only matters for plotting and for wire-area
/// accounting, both of which depend only on the length as well.
///
/// # Examples
///
/// ```
/// use merlin_geom::{Point, Route};
///
/// let r = Route::l_shaped(Point::new(0, 0), Point::new(3, 4));
/// assert_eq!(r.len(), 7);
/// assert_eq!(r.corner(), Some(Point::new(3, 0)));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Route {
    from: Point,
    to: Point,
}

impl Route {
    /// Creates the canonical HV route from `from` to `to`.
    pub fn l_shaped(from: Point, to: Point) -> Self {
        Route { from, to }
    }

    /// Route source.
    pub fn from(&self) -> Point {
        self.from
    }

    /// Route target.
    pub fn to(&self) -> Point {
        self.to
    }

    /// Total wire length (equals the Manhattan distance of the endpoints).
    pub fn len(&self) -> u64 {
        manhattan(self.from, self.to)
    }

    /// Whether the route is degenerate (zero length).
    pub fn is_empty(&self) -> bool {
        self.from == self.to
    }

    /// The bend point, or `None` when the route is a straight segment.
    pub fn corner(&self) -> Option<Point> {
        if self.from.x == self.to.x || self.from.y == self.to.y {
            None
        } else {
            Some(Point::new(self.to.x, self.from.y))
        }
    }

    /// The one or two axis-parallel segments making up the route
    /// (empty segments are omitted).
    pub fn segments(&self) -> Vec<Segment> {
        match self.corner() {
            Some(c) => vec![Segment::new(self.from, c), Segment::new(c, self.to)],
            None => {
                if self.is_empty() {
                    Vec::new()
                } else {
                    vec![Segment::new(self.from, self.to)]
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_route_has_single_segment() {
        let r = Route::l_shaped(Point::new(0, 0), Point::new(0, 9));
        assert_eq!(r.corner(), None);
        assert_eq!(r.segments().len(), 1);
        assert_eq!(r.len(), 9);
    }

    #[test]
    fn bent_route_segments_sum_to_length() {
        let r = Route::l_shaped(Point::new(1, 2), Point::new(-4, 8));
        let segs = r.segments();
        assert_eq!(segs.len(), 2);
        let total: u64 = segs.iter().map(Segment::len).sum();
        assert_eq!(total, r.len());
        assert!(segs[0].is_horizontal());
        assert!(!segs[1].is_horizontal());
    }

    #[test]
    fn degenerate_route() {
        let r = Route::l_shaped(Point::new(3, 3), Point::new(3, 3));
        assert!(r.is_empty());
        assert!(r.segments().is_empty());
    }

    #[test]
    #[should_panic(expected = "not axis-parallel")]
    fn diagonal_segment_panics() {
        let _ = Segment::new(Point::new(0, 0), Point::new(1, 1));
    }
}
