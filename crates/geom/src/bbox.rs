//! Axis-aligned bounding boxes.

use crate::point::Point;

/// An axis-aligned, inclusive bounding box on the layout lattice.
///
/// # Examples
///
/// ```
/// use merlin_geom::{BBox, Point};
///
/// let b = BBox::from_points([Point::new(2, 3), Point::new(-1, 7)]).unwrap();
/// assert_eq!(b.width(), 3);
/// assert_eq!(b.height(), 4);
/// assert!(b.contains(Point::new(0, 5)));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BBox {
    min: Point,
    max: Point,
}

impl BBox {
    /// Creates a bounding box from two corner points (any two opposite
    /// corners, in any order).
    pub fn new(a: Point, b: Point) -> Self {
        BBox {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Smallest box containing all `points`, or `None` for an empty iterator.
    pub fn from_points<I: IntoIterator<Item = Point>>(points: I) -> Option<Self> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut b = BBox::new(first, first);
        for p in it {
            b.expand(p);
        }
        Some(b)
    }

    /// Lower-left corner.
    pub fn min(&self) -> Point {
        self.min
    }

    /// Upper-right corner.
    pub fn max(&self) -> Point {
        self.max
    }

    /// Horizontal extent.
    pub fn width(&self) -> u64 {
        self.max.x.abs_diff(self.min.x)
    }

    /// Vertical extent.
    pub fn height(&self) -> u64 {
        self.max.y.abs_diff(self.min.y)
    }

    /// Half-perimeter wire length (HPWL) of the box.
    pub fn half_perimeter(&self) -> u64 {
        self.width() + self.height()
    }

    /// Geometric center (rounded down).
    pub fn center(&self) -> Point {
        self.min.midpoint(self.max)
    }

    /// Whether `p` lies inside the box (boundary inclusive).
    pub fn contains(&self, p: Point) -> bool {
        self.min.x <= p.x && p.x <= self.max.x && self.min.y <= p.y && p.y <= self.max.y
    }

    /// Grows the box so that it contains `p`.
    pub fn expand(&mut self, p: Point) {
        self.min = Point::new(self.min.x.min(p.x), self.min.y.min(p.y));
        self.max = Point::new(self.max.x.max(p.x), self.max.y.max(p.y));
    }

    /// Returns the box inflated by `margin` λ on every side.
    pub fn inflated(&self, margin: i64) -> BBox {
        BBox::new(
            Point::new(self.min.x - margin, self.min.y - margin),
            Point::new(self.max.x + margin, self.max.y + margin),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_points_empty_is_none() {
        assert!(BBox::from_points(std::iter::empty()).is_none());
    }

    #[test]
    fn corners_normalize() {
        let b = BBox::new(Point::new(5, -2), Point::new(-1, 9));
        assert_eq!(b.min(), Point::new(-1, -2));
        assert_eq!(b.max(), Point::new(5, 9));
        assert_eq!(b.half_perimeter(), 6 + 11);
    }

    #[test]
    fn contains_boundary() {
        let b = BBox::new(Point::new(0, 0), Point::new(4, 4));
        assert!(b.contains(Point::new(0, 4)));
        assert!(!b.contains(Point::new(-1, 2)));
    }

    #[test]
    fn expand_and_inflate() {
        let mut b = BBox::new(Point::new(0, 0), Point::new(1, 1));
        b.expand(Point::new(10, -5));
        assert_eq!(b.max(), Point::new(10, 1));
        assert_eq!(b.min(), Point::new(0, -5));
        let g = b.inflated(2);
        assert_eq!(g.min(), Point::new(-2, -7));
        assert_eq!(g.max(), Point::new(12, 3));
    }
}
