//! Rectilinear spanning/Steiner tree heuristics.
//!
//! Classical geometric baselines that predate performance-driven routing:
//! the rectilinear minimum spanning tree (Prim, under the L1 metric) and
//! the iterated 1-Steiner heuristic (Kahng–Robins) that repeatedly adds
//! the Hanan point with the largest wirelength gain. MERLIN's evaluation
//! context (§II, [CHKM96]) is exactly the observation that such
//! wirelength-driven trees are *not* delay-optimal; the extra Flow 0
//! baseline built on these makes that visible in the benches.

use crate::hanan::HananGrid;
use crate::point::{manhattan, Point};

/// A tree over a point set, as a parent vector: `parent[i]` is the index
/// of node `i`'s parent (`parent[root] == root`). Nodes `0..terminals`
/// are the input points (node 0 the root/source); any further nodes are
/// Steiner points added by [`iterated_one_steiner`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanningTree {
    /// All node positions: the terminals first, then added Steiner points.
    pub nodes: Vec<Point>,
    /// Parent index per node; the root points to itself.
    pub parent: Vec<usize>,
    /// Number of original terminals.
    pub terminals: usize,
}

impl SpanningTree {
    /// Total rectilinear wirelength.
    pub fn wirelength(&self) -> u64 {
        self.parent
            .iter()
            .enumerate()
            .filter(|(i, &p)| *i != p)
            .map(|(i, &p)| manhattan(self.nodes[i], self.nodes[p]))
            .sum()
    }

    /// Children lists (inverse of the parent vector).
    pub fn children(&self) -> Vec<Vec<usize>> {
        let mut ch = vec![Vec::new(); self.nodes.len()];
        for (i, &p) in self.parent.iter().enumerate() {
            if i != p {
                ch[p].push(i);
            }
        }
        ch
    }
}

/// Rectilinear minimum spanning tree rooted at `points[0]` (Prim,
/// `O(n²)`).
///
/// # Panics
///
/// Panics if `points` is empty.
///
/// # Examples
///
/// ```
/// use merlin_geom::{rsmt::rectilinear_mst, Point};
///
/// let t = rectilinear_mst(&[Point::new(0, 0), Point::new(5, 0), Point::new(9, 0)]);
/// assert_eq!(t.wirelength(), 9); // chain along the line
/// ```
pub fn rectilinear_mst(points: &[Point]) -> SpanningTree {
    assert!(!points.is_empty(), "MST of an empty point set");
    let n = points.len();
    let mut in_tree = vec![false; n];
    let mut best_dist = vec![u64::MAX; n];
    let mut best_link = vec![0usize; n];
    let mut parent = vec![0usize; n];
    in_tree[0] = true;
    for i in 1..n {
        best_dist[i] = manhattan(points[0], points[i]);
        best_link[i] = 0;
    }
    for _ in 1..n {
        let (next, _) = best_dist
            .iter()
            .enumerate()
            .filter(|(i, _)| !in_tree[*i])
            .min_by_key(|(i, &d)| (d, *i))
            .expect("some node remains");
        in_tree[next] = true;
        parent[next] = best_link[next];
        for i in 0..n {
            if !in_tree[i] {
                let d = manhattan(points[next], points[i]);
                if d < best_dist[i] {
                    best_dist[i] = d;
                    best_link[i] = next;
                }
            }
        }
    }
    SpanningTree {
        nodes: points.to_vec(),
        parent,
        terminals: n,
    }
}

/// Iterated 1-Steiner: repeatedly inserts the Hanan point that reduces the
/// MST wirelength the most, until no insertion helps (or `max_added`
/// points were added). Returns a tree over terminals + added points.
///
/// `O(rounds · |Hanan| · n²)` — fine for the net sizes here.
///
/// # Panics
///
/// Panics if `points` is empty.
pub fn iterated_one_steiner(points: &[Point], max_added: usize) -> SpanningTree {
    assert!(!points.is_empty(), "Steiner tree of an empty point set");
    let mut nodes: Vec<Point> = points.to_vec();
    let mut best = rectilinear_mst(&nodes);
    for _ in 0..max_added {
        let grid = HananGrid::from_terminals(nodes.iter().copied());
        let current = best.wirelength();
        let mut improvement: Option<(u64, Point)> = None;
        for cand in grid.points() {
            if nodes.contains(&cand) {
                continue;
            }
            nodes.push(cand);
            let t = rectilinear_mst(&nodes);
            nodes.pop();
            let wl = t.wirelength();
            if wl < current {
                let gain = current - wl;
                if improvement.is_none_or(|(g, _)| gain > g) {
                    improvement = Some((gain, cand));
                }
            }
        }
        match improvement {
            Some((_, p)) => {
                nodes.push(p);
                best = rectilinear_mst(&nodes);
            }
            None => break,
        }
    }
    // Prune degree-≤2 Steiner points that don't help? Keep simple: drop
    // added leaves (a Steiner leaf only adds wire).
    loop {
        let ch = best.children();
        let removable: Vec<usize> = (best.terminals..best.nodes.len())
            .filter(|&i| ch[i].is_empty())
            .collect();
        if removable.is_empty() {
            break;
        }
        let keep: Vec<usize> = (0..best.nodes.len())
            .filter(|i| !removable.contains(i))
            .collect();
        let remap: std::collections::HashMap<usize, usize> = keep
            .iter()
            .enumerate()
            .map(|(new, &old)| (old, new))
            .collect();
        best = SpanningTree {
            nodes: keep.iter().map(|&i| best.nodes[i]).collect(),
            parent: keep.iter().map(|&i| remap[&best.parent[i]]).collect(),
            terminals: best.terminals,
        };
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mst_on_line_is_chain_length() {
        let pts = [
            Point::new(0, 0),
            Point::new(10, 0),
            Point::new(4, 0),
            Point::new(7, 0),
        ];
        let t = rectilinear_mst(&pts);
        assert_eq!(t.wirelength(), 10);
        assert_eq!(t.parent[0], 0);
    }

    #[test]
    fn mst_is_connected() {
        let pts: Vec<Point> = (0..12)
            .map(|i| Point::new((i * 37) % 11, (i * 53) % 13))
            .collect();
        let t = rectilinear_mst(&pts);
        // Every node reaches the root.
        for mut i in 0..pts.len() {
            let mut steps = 0;
            while t.parent[i] != i {
                i = t.parent[i];
                steps += 1;
                assert!(steps <= pts.len(), "cycle in parent vector");
            }
            assert_eq!(i, 0);
        }
    }

    #[test]
    fn one_steiner_beats_mst_on_the_classic_cross() {
        // Four corners of a plus-sign: MST needs 3 arms' worth of detours;
        // one Steiner point at the center wins.
        let pts = [
            Point::new(0, 10),
            Point::new(20, 10),
            Point::new(10, 0),
            Point::new(10, 20),
        ];
        let mst = rectilinear_mst(&pts).wirelength();
        let steiner = iterated_one_steiner(&pts, 4);
        assert!(steiner.wirelength() < mst);
        assert_eq!(steiner.wirelength(), 40); // star from the center
        assert!(steiner.nodes.contains(&Point::new(10, 10)));
    }

    #[test]
    fn one_steiner_never_worse_than_mst() {
        for seed in 0..6i64 {
            let pts: Vec<Point> = (0..8)
                .map(|i| Point::new((i * 131 + seed * 17) % 40, (i * 173 + seed * 29) % 40))
                .collect();
            let mut uniq = pts.clone();
            uniq.sort_unstable();
            uniq.dedup();
            let mst = rectilinear_mst(&uniq).wirelength();
            let st = iterated_one_steiner(&uniq, 8).wirelength();
            assert!(st <= mst, "seed {seed}: {st} > {mst}");
        }
    }

    #[test]
    fn single_point_degenerates() {
        let t = rectilinear_mst(&[Point::new(3, 3)]);
        assert_eq!(t.wirelength(), 0);
        let s = iterated_one_steiner(&[Point::new(3, 3)], 3);
        assert_eq!(s.wirelength(), 0);
    }
}
