//! Candidate-location generation strategies (§III.1 of the paper).
//!
//! MERLIN needs a set `P` of candidate locations at which Steiner points and
//! buffers may be placed. The paper lists three natural choices — complete
//! Hanan points, a reduced subset of them, and centers of mass of sink
//! subsets — and reports that the choice barely affects final quality as
//! long as `|P|` grows linearly with the number of sinks. All of them (plus
//! a uniform grid, handy for tests) are implemented here so the claim can be
//! reproduced (experiment E5 in `DESIGN.md`).

use crate::bbox::BBox;
use crate::hanan::HananGrid;
use crate::point::{center_of_mass, manhattan, Point};

/// Strategy for generating the candidate-location set `P`.
///
/// # Examples
///
/// ```
/// use merlin_geom::{CandidateStrategy, Point};
///
/// let driver = Point::new(0, 0);
/// let sinks = [Point::new(10, 0), Point::new(0, 10), Point::new(10, 10)];
/// let p = CandidateStrategy::FullHanan.generate(driver, &sinks);
/// assert!(p.contains(&Point::new(10, 10)));
/// // The driver location is always part of P.
/// assert!(p.contains(&driver));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CandidateStrategy {
    /// The complete Hanan grid of driver + sinks (used in the paper's
    /// Table 1 setup).
    FullHanan,
    /// At most `max_points` Hanan points, chosen by a centrality heuristic
    /// (used in the paper's Table 2 setup, "reduced Hanan points generated
    /// by a simple heuristic").
    ReducedHanan {
        /// Upper bound on the number of candidate locations.
        max_points: usize,
    },
    /// Centers of mass of sliding windows of sinks, for every window size in
    /// `1..=window`: a cheap O(n·window) set of "natural meeting points".
    CenterOfMass {
        /// Largest sliding-window size considered.
        window: usize,
    },
    /// A uniform `nx × ny` grid over the net bounding box. Not in the paper;
    /// included as a neutral control for the E5 ablation.
    Grid {
        /// Number of grid columns.
        nx: usize,
        /// Number of grid rows.
        ny: usize,
    },
}

impl CandidateStrategy {
    /// Generates the candidate set for a net.
    ///
    /// The returned set is deduplicated, always contains the driver location
    /// and the sink locations (routes must be able to start and end there),
    /// and is sorted for determinism.
    pub fn generate(self, driver: Point, sinks: &[Point]) -> Vec<Point> {
        let mut pts = match self {
            CandidateStrategy::FullHanan => {
                let grid = HananGrid::from_terminals(sinks.iter().copied().chain(Some(driver)));
                grid.points().collect()
            }
            CandidateStrategy::ReducedHanan { max_points } => {
                reduced_hanan(driver, sinks, max_points)
            }
            CandidateStrategy::CenterOfMass { window } => {
                let mut pts = Vec::new();
                let w = window.max(1).min(sinks.len().max(1));
                for size in 1..=w {
                    for chunk in sinks.windows(size) {
                        pts.push(center_of_mass(chunk.iter().copied()));
                    }
                }
                pts
            }
            CandidateStrategy::Grid { nx, ny } => {
                let bb = BBox::from_points(sinks.iter().copied().chain(Some(driver)))
                    .unwrap_or_else(|| BBox::new(driver, driver));
                let mut pts = Vec::new();
                let (nx, ny) = (nx.max(2), ny.max(2));
                for i in 0..nx {
                    for j in 0..ny {
                        let x = bb.min().x + (bb.width() as i64 * i as i64) / (nx as i64 - 1);
                        let y = bb.min().y + (bb.height() as i64 * j as i64) / (ny as i64 - 1);
                        pts.push(Point::new(x, y));
                    }
                }
                pts
            }
        };
        pts.push(driver);
        pts.extend_from_slice(sinks);
        pts.sort_unstable();
        pts.dedup();
        pts
    }
}

/// Reduced-Hanan heuristic: keep the `max_points` grid points with the best
/// (smallest) total Manhattan distance to all terminals, a simple centrality
/// score that retains points near where Steiner nodes plausibly go.
fn reduced_hanan(driver: Point, sinks: &[Point], max_points: usize) -> Vec<Point> {
    let grid = HananGrid::from_terminals(sinks.iter().copied().chain(Some(driver)));
    let mut scored: Vec<(u64, Point)> = grid
        .points()
        .map(|p| {
            let score: u64 = sinks
                .iter()
                .map(|s| manhattan(p, *s))
                .chain(Some(manhattan(p, driver)))
                .sum();
            (score, p)
        })
        .collect();
    scored.sort_unstable();
    scored.truncate(max_points.max(1));
    scored.into_iter().map(|(_, p)| p).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_sinks() -> Vec<Point> {
        vec![
            Point::new(10, 0),
            Point::new(0, 10),
            Point::new(10, 10),
            Point::new(5, 3),
            Point::new(2, 8),
        ]
    }

    #[test]
    fn all_strategies_contain_terminals() {
        let driver = Point::new(0, 0);
        let sinks = sample_sinks();
        for strat in [
            CandidateStrategy::FullHanan,
            CandidateStrategy::ReducedHanan { max_points: 4 },
            CandidateStrategy::CenterOfMass { window: 3 },
            CandidateStrategy::Grid { nx: 3, ny: 3 },
        ] {
            let p = strat.generate(driver, &sinks);
            assert!(p.contains(&driver), "{strat:?} lost the driver");
            for s in &sinks {
                assert!(p.contains(s), "{strat:?} lost sink {s}");
            }
            // Deduplicated and sorted.
            let mut q = p.clone();
            q.sort_unstable();
            q.dedup();
            assert_eq!(p, q);
        }
    }

    #[test]
    fn full_hanan_size_is_grid_product() {
        let driver = Point::new(0, 0);
        let sinks = [Point::new(3, 7), Point::new(9, 1)];
        let p = CandidateStrategy::FullHanan.generate(driver, &sinks);
        assert_eq!(p.len(), 9);
    }

    #[test]
    fn reduced_hanan_respects_bound_modulo_terminals() {
        let driver = Point::new(0, 0);
        let sinks = sample_sinks();
        let p = CandidateStrategy::ReducedHanan { max_points: 3 }.generate(driver, &sinks);
        // 3 heuristic points + up to 6 terminals, after dedup.
        assert!(p.len() <= 3 + sinks.len() + 1);
    }

    #[test]
    fn grid_strategy_covers_corners() {
        let driver = Point::new(0, 0);
        let sinks = [Point::new(100, 100)];
        let p = CandidateStrategy::Grid { nx: 3, ny: 3 }.generate(driver, &sinks);
        assert!(p.contains(&Point::new(50, 50)));
        assert!(p.contains(&Point::new(100, 0)));
    }

    #[test]
    fn single_sink_degenerate_cases() {
        let driver = Point::new(5, 5);
        let sinks = [Point::new(5, 5)];
        for strat in [
            CandidateStrategy::FullHanan,
            CandidateStrategy::ReducedHanan { max_points: 2 },
            CandidateStrategy::CenterOfMass { window: 2 },
            CandidateStrategy::Grid { nx: 2, ny: 2 },
        ] {
            let p = strat.generate(driver, &sinks);
            assert!(!p.is_empty());
        }
    }
}
