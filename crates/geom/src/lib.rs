//! Manhattan geometry substrate for the MERLIN reproduction.
//!
//! This crate provides the purely geometric building blocks used by every
//! other crate in the workspace:
//!
//! * [`Point`] — integer lattice points (coordinates in λ, the technology
//!   half-pitch unit used throughout the paper's area numbers),
//! * [`BBox`] — axis-aligned bounding boxes,
//! * [`HananGrid`] — the grid induced by the horizontal/vertical lines
//!   through a set of terminals (Hanan, 1966), which [LCLH96] and the MERLIN
//!   paper use as the canonical candidate-location set,
//! * [`CandidateStrategy`] — the candidate-location generators discussed in
//!   §III.1 of the paper (complete Hanan points, reduced Hanan points,
//!   centers of mass of sink subsets, and a uniform grid),
//! * [`Route`] — rectilinear (L-shaped) point-to-point routes.
//!
//! # Examples
//!
//! ```
//! use merlin_geom::{Point, HananGrid};
//!
//! let terminals = [Point::new(0, 0), Point::new(10, 5), Point::new(3, 8)];
//! let grid = HananGrid::from_terminals(terminals.iter().copied());
//! assert_eq!(grid.len(), 9); // 3 x-lines × 3 y-lines
//! assert!(grid.points().any(|p| p == Point::new(10, 8)));
//! ```

pub mod audit;
pub mod bbox;
pub mod candidates;
pub mod hanan;
pub mod point;
pub mod route;
pub mod rsmt;

pub use audit::{audit_routed_tree, RouteAuditError};
pub use bbox::BBox;
pub use candidates::CandidateStrategy;
pub use hanan::HananGrid;
pub use point::{center_of_mass, manhattan, Point};
pub use route::{Route, Segment};
