//! Integer lattice points and Manhattan distance.

use std::fmt;

/// A point on the integer layout lattice.
///
/// Coordinates are expressed in λ (the technology unit also used by the
/// paper's area columns, reported in 1000·λ²). Signed 64-bit coordinates
/// comfortably cover any realistic die.
///
/// # Examples
///
/// ```
/// use merlin_geom::{manhattan, Point};
///
/// let a = Point::new(0, 0);
/// let b = Point::new(3, -4);
/// assert_eq!(manhattan(a, b), 7);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Point {
    /// Horizontal coordinate in λ.
    pub x: i64,
    /// Vertical coordinate in λ.
    pub y: i64,
}

impl Point {
    /// Creates a point from its coordinates.
    pub const fn new(x: i64, y: i64) -> Self {
        Point { x, y }
    }

    /// Manhattan distance to `other`.
    ///
    /// ```
    /// use merlin_geom::Point;
    /// assert_eq!(Point::new(1, 1).distance(Point::new(4, 5)), 7);
    /// ```
    pub fn distance(self, other: Point) -> u64 {
        manhattan(self, other)
    }

    /// Component-wise midpoint, rounding towards negative infinity.
    pub fn midpoint(self, other: Point) -> Point {
        Point::new(
            (self.x + other.x).div_euclid(2),
            (self.y + other.y).div_euclid(2),
        )
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(i64, i64)> for Point {
    fn from((x, y): (i64, i64)) -> Self {
        Point::new(x, y)
    }
}

/// Manhattan (rectilinear, L1) distance between two points.
///
/// This is the length of any shortest rectilinear route between `a` and `b`,
/// and therefore the wire length used by every delay computation in the
/// workspace.
///
/// ```
/// use merlin_geom::{manhattan, Point};
/// assert_eq!(manhattan(Point::new(-2, 0), Point::new(2, 3)), 7);
/// ```
pub fn manhattan(a: Point, b: Point) -> u64 {
    a.x.abs_diff(b.x) + a.y.abs_diff(b.y)
}

/// Integer center of mass of a non-empty point set (rounded toward zero).
///
/// Used by the center-of-mass candidate strategy and by Flow I when placing
/// the buffers of an interconnect-oblivious LT-tree.
///
/// # Panics
///
/// Panics if `points` is empty.
pub fn center_of_mass<I: IntoIterator<Item = Point>>(points: I) -> Point {
    let mut n: i64 = 0;
    let (mut sx, mut sy) = (0i128, 0i128);
    for p in points {
        sx += p.x as i128;
        sy += p.y as i128;
        n += 1;
    }
    assert!(n > 0, "center_of_mass of an empty point set");
    Point::new((sx / n as i128) as i64, (sy / n as i128) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_is_symmetric_and_zero_on_diagonal() {
        let a = Point::new(5, -7);
        let b = Point::new(-3, 11);
        assert_eq!(manhattan(a, b), manhattan(b, a));
        assert_eq!(manhattan(a, a), 0);
    }

    #[test]
    fn manhattan_triangle_inequality() {
        let a = Point::new(0, 0);
        let b = Point::new(10, 2);
        let c = Point::new(4, 9);
        assert!(manhattan(a, c) <= manhattan(a, b) + manhattan(b, c));
    }

    #[test]
    fn midpoint_rounds_down() {
        assert_eq!(
            Point::new(0, 0).midpoint(Point::new(3, 5)),
            Point::new(1, 2)
        );
        assert_eq!(
            Point::new(-3, -5).midpoint(Point::new(0, 0)),
            Point::new(-2, -3)
        );
    }

    #[test]
    fn center_of_mass_of_symmetric_square_is_center() {
        let pts = [
            Point::new(0, 0),
            Point::new(10, 0),
            Point::new(0, 10),
            Point::new(10, 10),
        ];
        assert_eq!(center_of_mass(pts), Point::new(5, 5));
    }

    #[test]
    fn point_display_and_from_tuple() {
        let p: Point = (3, 4).into();
        assert_eq!(p.to_string(), "(3, 4)");
    }
}
