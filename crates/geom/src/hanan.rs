//! The Hanan grid of a terminal set.

use crate::point::Point;

/// The Hanan grid of a net: the grid formed by the intersection of the
/// horizontal and vertical lines running through the net's terminals
/// (Hanan, 1966).
///
/// Every optimal rectilinear Steiner tree has an embedding whose Steiner
/// points lie on this grid, which is why [LCLH96] and the MERLIN paper use
/// the Hanan points (or a reduced subset of them) as candidate locations for
/// Steiner points and buffers.
///
/// # Examples
///
/// ```
/// use merlin_geom::{HananGrid, Point};
///
/// let grid = HananGrid::from_terminals([Point::new(0, 0), Point::new(2, 3)]);
/// let pts: Vec<_> = grid.points().collect();
/// assert_eq!(pts.len(), 4);
/// assert!(pts.contains(&Point::new(0, 3)));
/// assert!(pts.contains(&Point::new(2, 0)));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HananGrid {
    xs: Vec<i64>,
    ys: Vec<i64>,
}

impl HananGrid {
    /// Builds the Hanan grid of the given terminals.
    ///
    /// Duplicate coordinates are collapsed; the grid of an empty terminal
    /// set is empty.
    pub fn from_terminals<I: IntoIterator<Item = Point>>(terminals: I) -> Self {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for p in terminals {
            xs.push(p.x);
            ys.push(p.y);
        }
        xs.sort_unstable();
        xs.dedup();
        ys.sort_unstable();
        ys.dedup();
        HananGrid { xs, ys }
    }

    /// Distinct x-coordinates (sorted ascending).
    pub fn xs(&self) -> &[i64] {
        &self.xs
    }

    /// Distinct y-coordinates (sorted ascending).
    pub fn ys(&self) -> &[i64] {
        &self.ys
    }

    /// Number of grid points (`xs.len() * ys.len()`).
    pub fn len(&self) -> usize {
        self.xs.len() * self.ys.len()
    }

    /// Whether the grid has no points.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty() || self.ys.is_empty()
    }

    /// Iterates over all grid points in row-major order.
    pub fn points(&self) -> Points<'_> {
        Points {
            grid: self,
            i: 0,
            j: 0,
        }
    }

    /// Whether `p` is a Hanan point of this grid.
    pub fn contains(&self, p: Point) -> bool {
        self.xs.binary_search(&p.x).is_ok() && self.ys.binary_search(&p.y).is_ok()
    }
}

/// Iterator over the points of a [`HananGrid`], produced by
/// [`HananGrid::points`].
#[derive(Clone, Debug)]
pub struct Points<'a> {
    grid: &'a HananGrid,
    i: usize,
    j: usize,
}

impl Iterator for Points<'_> {
    type Item = Point;

    fn next(&mut self) -> Option<Point> {
        if self.j >= self.grid.ys.len() || self.grid.xs.is_empty() {
            return None;
        }
        let p = Point::new(self.grid.xs[self.i], self.grid.ys[self.j]);
        self.i += 1;
        if self.i == self.grid.xs.len() {
            self.i = 0;
            self.j += 1;
        }
        Some(p)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let total = self.grid.len();
        let done = self.j * self.grid.xs.len() + self.i;
        (total - done, Some(total - done))
    }
}

impl ExactSizeIterator for Points<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_size_is_product_of_distinct_lines() {
        let grid = HananGrid::from_terminals([
            Point::new(0, 0),
            Point::new(0, 5),
            Point::new(3, 5),
            Point::new(7, 2),
        ]);
        // xs: {0,3,7}, ys: {0,2,5}
        assert_eq!(grid.len(), 9);
        assert_eq!(grid.points().count(), 9);
    }

    #[test]
    fn terminals_are_grid_points() {
        let terms = [Point::new(1, 9), Point::new(-4, 2), Point::new(6, 6)];
        let grid = HananGrid::from_terminals(terms);
        for t in terms {
            assert!(grid.contains(t));
        }
        assert!(!grid.contains(Point::new(0, 0)));
    }

    #[test]
    fn empty_grid() {
        let grid = HananGrid::from_terminals(std::iter::empty());
        assert!(grid.is_empty());
        assert_eq!(grid.points().count(), 0);
    }

    #[test]
    fn exact_size_iterator_hint() {
        let grid = HananGrid::from_terminals([Point::new(0, 0), Point::new(1, 1)]);
        let mut it = grid.points();
        assert_eq!(it.size_hint(), (4, Some(4)));
        it.next();
        assert_eq!(it.size_hint(), (3, Some(3)));
    }
}
