//! Structural audits for embedded rectilinear routing trees.
//!
//! Every flow in the workspace ultimately emits a routed tree as a set of
//! wires. This module checks the two geometric properties all of them must
//! satisfy regardless of which engine produced the tree:
//!
//! 1. **Rectilinearity** — every wire is axis-parallel (the paper's area
//!    and delay accounting both assume Manhattan embeddings),
//! 2. **Connectivity** — every wire and every terminal is reachable from
//!    the root by walking wires that share endpoints.
//!
//! The auditor deliberately takes raw point pairs rather than [`Segment`]
//! values so it can also vet wires produced outside this crate's
//! panic-on-diagonal constructors.
//!
//! [`Segment`]: crate::route::Segment

use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::point::Point;

/// Defect found by [`audit_routed_tree`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteAuditError {
    /// Wire `index` is neither horizontal nor vertical.
    Diagonal { index: usize, a: Point, b: Point },
    /// Wire `index` cannot be reached from the root through shared
    /// endpoints: the embedding is disconnected.
    UnreachedWire { index: usize, a: Point, b: Point },
    /// A terminal sits at a point no reached wire touches.
    UnreachedTerminal { terminal: Point },
}

impl fmt::Display for RouteAuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteAuditError::Diagonal { index, a, b } => {
                write!(f, "wire #{index} {a} -> {b} is not axis-parallel")
            }
            RouteAuditError::UnreachedWire { index, a, b } => {
                write!(f, "wire #{index} {a} -> {b} is not connected to the root")
            }
            RouteAuditError::UnreachedTerminal { terminal } => {
                write!(f, "terminal at {terminal} is not connected to the root")
            }
        }
    }
}

impl std::error::Error for RouteAuditError {}

/// Checks that `wires` form a rectilinear embedding connected to `root`
/// and touching every terminal.
///
/// Connectivity is defined over exact shared endpoints, which is the
/// contract of the workspace's tree embeddings: every wire is an edge
/// between two tree-node positions, so T-junctions always coincide with a
/// wire endpoint. Runs in O(w) expected time for `w` wires.
///
/// # Examples
///
/// ```
/// use merlin_geom::{audit_routed_tree, Point};
///
/// let root = Point::new(0, 0);
/// let wires = [
///     (root, Point::new(5, 0)),
///     (Point::new(5, 0), Point::new(5, 7)),
/// ];
/// assert!(audit_routed_tree(root, &wires, &[Point::new(5, 7)]).is_ok());
/// ```
pub fn audit_routed_tree(
    root: Point,
    wires: &[(Point, Point)],
    terminals: &[Point],
) -> Result<(), RouteAuditError> {
    for (index, &(a, b)) in wires.iter().enumerate() {
        if a.x != b.x && a.y != b.y {
            return Err(RouteAuditError::Diagonal { index, a, b });
        }
    }

    // Flood fill from the root over shared endpoints.
    let mut touching: HashMap<Point, Vec<usize>> = HashMap::new();
    for (index, &(a, b)) in wires.iter().enumerate() {
        touching.entry(a).or_default().push(index);
        touching.entry(b).or_default().push(index);
    }
    let mut wire_reached = vec![false; wires.len()];
    let mut point_reached: HashSet<Point> = HashSet::new();
    let mut queue = vec![root];
    point_reached.insert(root);
    while let Some(p) = queue.pop() {
        let Some(indices) = touching.get(&p) else {
            continue;
        };
        for &i in indices {
            if wire_reached[i] {
                continue;
            }
            wire_reached[i] = true;
            let (a, b) = wires[i];
            for q in [a, b] {
                if point_reached.insert(q) {
                    queue.push(q);
                }
            }
        }
    }

    for (index, reached) in wire_reached.iter().enumerate() {
        if !reached {
            let (a, b) = wires[index];
            return Err(RouteAuditError::UnreachedWire { index, a, b });
        }
    }
    for &terminal in terminals {
        if !point_reached.contains(&terminal) {
            return Err(RouteAuditError::UnreachedTerminal { terminal });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_l_shaped_tree() {
        let root = Point::new(0, 0);
        let wires = [
            (root, Point::new(4, 0)),
            (Point::new(4, 0), Point::new(4, 3)),
            (Point::new(4, 0), Point::new(9, 0)),
        ];
        let terminals = [Point::new(4, 3), Point::new(9, 0)];
        assert_eq!(audit_routed_tree(root, &wires, &terminals), Ok(()));
    }

    #[test]
    fn accepts_empty_tree_with_root_terminal() {
        let root = Point::new(2, 2);
        assert_eq!(audit_routed_tree(root, &[], &[root]), Ok(()));
    }

    #[test]
    fn rejects_diagonal_wire() {
        let root = Point::new(0, 0);
        let wires = [(root, Point::new(3, 4))];
        let err = audit_routed_tree(root, &wires, &[]).unwrap_err();
        assert!(matches!(err, RouteAuditError::Diagonal { index: 0, .. }));
    }

    #[test]
    fn rejects_floating_wire() {
        let root = Point::new(0, 0);
        let wires = [
            (root, Point::new(4, 0)),
            (Point::new(10, 10), Point::new(10, 20)),
        ];
        let err = audit_routed_tree(root, &wires, &[]).unwrap_err();
        assert!(matches!(
            err,
            RouteAuditError::UnreachedWire { index: 1, .. }
        ));
    }

    #[test]
    fn rejects_floating_terminal() {
        let root = Point::new(0, 0);
        let wires = [(root, Point::new(4, 0))];
        let err = audit_routed_tree(root, &wires, &[Point::new(2, 0)]).unwrap_err();
        assert_eq!(
            err,
            RouteAuditError::UnreachedTerminal {
                terminal: Point::new(2, 0)
            }
        );
    }

    #[test]
    fn zero_length_wires_connect_coincident_nodes() {
        // Buffer chains at a single point produce zero-length edges.
        let root = Point::new(1, 1);
        let wires = [(root, root), (root, Point::new(1, 5))];
        assert_eq!(audit_routed_tree(root, &wires, &[Point::new(1, 5)]), Ok(()));
    }
}
