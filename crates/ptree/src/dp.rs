//! The PTREE dynamic program.

use merlin_curves::{Curve, CurvePoint, ProvArena, ProvId};
use merlin_geom::{manhattan, Point};
use merlin_netlist::Net;
use merlin_order::SinkOrder;
use merlin_tech::units::{ps_cmp, PsTime};
use merlin_tech::{BufferedTree, Technology};

/// A construction step recorded while building PTREE solution curves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteStep {
    /// Minimum-length route from candidate `from` to `sink`.
    Sink {
        /// Sink index within the net.
        sink: u32,
        /// Candidate-point index of the subtree root.
        from: u16,
    },
    /// Two subtrees joined at their (common) root point.
    Merge {
        /// Left sub-solution (earlier in sink order).
        left: ProvId,
        /// Right sub-solution.
        right: ProvId,
    },
    /// A wire from candidate `to` down to the child's root point.
    Extend {
        /// New root: candidate-point index.
        to: u16,
        /// The sub-solution being extended.
        child: ProvId,
    },
}

/// Tuning knobs for the PTREE baseline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PtreeConfig {
    /// Curve thinning bound per (window, candidate) — `0` disables thinning
    /// and keeps the exact non-inferior fronts.
    pub max_curve_points: usize,
}

impl Default for PtreeConfig {
    fn default() -> Self {
        PtreeConfig {
            max_curve_points: 24,
        }
    }
}

impl PtreeConfig {
    /// An exact configuration (no thinning), for small instances and
    /// cross-check tests.
    pub fn exact() -> Self {
        PtreeConfig {
            max_curve_points: 0,
        }
    }
}

/// The PTREE solver, borrowing the problem description.
#[derive(Debug)]
pub struct Ptree<'a> {
    net: &'a Net,
    tech: &'a Technology,
    config: PtreeConfig,
}

/// A solved PTREE instance: the non-inferior curve at the net source plus
/// everything needed to extract any point's routing tree.
#[derive(Debug)]
pub struct PtreeSolved {
    /// Net source location.
    pub source: Point,
    /// Sink locations (index-aligned with the net).
    pub sink_positions: Vec<Point>,
    /// Candidate points used by the DP.
    pub candidates: Vec<Point>,
    /// Curve of non-inferior `(load, req, wire-area)` solutions rooted at
    /// the source (before the driver delay is applied).
    pub curve: Curve,
    /// Driver delay applicator: required time at the driver input for a
    /// given curve point (`req − d_drv(load)`).
    driver_req: fn(&merlin_tech::Driver, &CurvePoint) -> PsTime,
    driver: merlin_tech::Driver,
    pub(crate) arena: ProvArena<RouteStep>,
}

impl<'a> Ptree<'a> {
    /// Creates a solver for `net` under `tech`.
    pub fn new(net: &'a Net, tech: &'a Technology, config: PtreeConfig) -> Self {
        Ptree { net, tech, config }
    }

    /// Runs the DP for the given sink `order` and candidate set.
    ///
    /// # Panics
    ///
    /// Panics if `order` does not cover exactly the net's sinks, or if the
    /// candidate set does not contain the net source.
    pub fn solve(&self, order: &SinkOrder, candidates: &[Point]) -> PtreeSolved {
        let n = self.net.num_sinks();
        assert_eq!(order.len(), n, "order must cover all sinks");
        let src_idx = candidates
            .iter()
            .position(|&p| p == self.net.source)
            .expect("candidate set must contain the net source");
        let k = candidates.len();
        assert!(k <= u16::MAX as usize, "too many candidate points");

        let wire = &self.tech.wire;
        let mut arena: ProvArena<RouteStep> = ProvArena::new();

        // s[w][p]: pruned curve for the window with id w rooted at candidate p.
        let win = |i: usize, j: usize| -> usize { i * n + j };
        let mut s: Vec<Vec<Curve>> = vec![Vec::new(); if n == 0 { 0 } else { n * n }];

        // Base cases: single sinks.
        for i in 0..n {
            let sink_id = order.sink_at(i);
            let sink = &self.net.sinks[sink_id as usize];
            let mut per_p: Vec<Curve> = Vec::with_capacity(k);
            for (pi, &p) in candidates.iter().enumerate() {
                let len = manhattan(p, sink.pos);
                let mut c = Curve::with_capacity(1);
                c.push(CurvePoint::with_load(
                    sink.load + wire.wire_cap(len),
                    sink.req_ps - wire.elmore_ps(len, sink.load),
                    len,
                    arena.push(RouteStep::Sink {
                        sink: sink_id,
                        from: pi as u16,
                    }),
                ));
                per_p.push(c);
            }
            s[win(i, i)] = per_p;
        }

        // Windows by increasing length.
        let mut pending: Vec<RouteStep> = Vec::new();
        for len in 2..=n {
            for i in 0..=n - len {
                let j = i + len - 1;
                // Phase 1: merges at each candidate point.
                let mut sb: Vec<Curve> = Vec::with_capacity(k);
                // `pi` picks the same column out of two different rows of
                // `s`, so a single iterator cannot replace it.
                #[allow(clippy::needless_range_loop)]
                for pi in 0..k {
                    pending.clear();
                    let mut raw = Curve::new();
                    for u in i..j {
                        let left = &s[win(i, u)][pi];
                        let right = &s[win(u + 1, j)][pi];
                        for a in left.iter() {
                            for b in right.iter() {
                                let prov = ProvId::new(pending.len() as u32);
                                pending.push(RouteStep::Merge {
                                    left: a.prov,
                                    right: b.prov,
                                });
                                raw.push(CurvePoint {
                                    load: a.load + b.load,
                                    req: a.req.min(b.req),
                                    area: a.area + b.area,
                                    prov,
                                });
                            }
                        }
                    }
                    raw.prune();
                    raw.thin_to(self.config.max_curve_points);
                    finalize(&mut raw, &pending, &mut arena);
                    sb.push(raw);
                }
                // Phase 2: one-hop relocations.
                let mut sw: Vec<Curve> = Vec::with_capacity(k);
                for (pi, &p) in candidates.iter().enumerate() {
                    pending.clear();
                    let mut combined = sb[pi].clone();
                    let mut additions = Curve::new();
                    for (qi, &q) in candidates.iter().enumerate() {
                        if qi == pi || sb[qi].is_empty() {
                            continue;
                        }
                        let len = manhattan(p, q);
                        let wc = wire.wire_cap(len);
                        for a in sb[qi].iter() {
                            let prov = ProvId::new(pending.len() as u32);
                            pending.push(RouteStep::Extend {
                                to: pi as u16,
                                child: a.prov,
                            });
                            additions.push(CurvePoint {
                                load: a.load + wc,
                                req: a.req - wire.elmore_ps(len, a.load),
                                area: a.area + len,
                                prov,
                            });
                        }
                    }
                    additions.prune();
                    additions.thin_to(self.config.max_curve_points);
                    finalize(&mut additions, &pending, &mut arena);
                    combined.absorb(additions);
                    combined.thin_to(self.config.max_curve_points);
                    sw.push(combined);
                }
                s[win(i, j)] = sw;
            }
        }

        let curve = if n == 0 {
            Curve::new()
        } else {
            s[win(0, n - 1)][src_idx].clone()
        };
        PtreeSolved {
            source: self.net.source,
            sink_positions: self.net.sink_positions(),
            candidates: candidates.to_vec(),
            curve,
            driver_req: |d, p| p.req - d.delay_linear_ps(p.load),
            driver: self.net.driver.clone(),
            arena,
        }
    }
}

/// Re-homes the provenance of `curve` (indices into `pending`) into the
/// real arena, so only surviving points allocate permanent steps.
fn finalize(curve: &mut Curve, pending: &[RouteStep], arena: &mut ProvArena<RouteStep>) {
    let remapped: Vec<CurvePoint> = curve
        .iter()
        .map(|p| {
            let mut q = *p;
            q.prov = arena.push(pending[p.prov.index()]);
            q
        })
        .collect();
    *curve = remapped.into_iter().collect();
}

impl PtreeSolved {
    /// Required time at the driver input for a curve point.
    pub fn driver_required(&self, p: &CurvePoint) -> PsTime {
        (self.driver_req)(&self.driver, p)
    }

    /// The curve point with the best required time at the driver input.
    pub fn best_point(&self) -> Option<CurvePoint> {
        self.curve
            .iter()
            .max_by(|a, b| ps_cmp(self.driver_required(a), self.driver_required(b)))
            .copied()
    }

    /// Extracts the routing tree of the best point, if the net was routable.
    pub fn best_tree(&self) -> Option<BufferedTree> {
        self.best_point().map(|p| self.extract(&p))
    }

    /// Rebuilds the routing tree of an arbitrary point of
    /// [`PtreeSolved::curve`].
    ///
    /// # Panics
    ///
    /// Panics if `point` did not come from this instance's curve.
    pub fn extract(&self, point: &CurvePoint) -> BufferedTree {
        crate::extract::extract_tree(
            &self.arena,
            point.prov,
            self.source,
            &self.candidates,
            &self.sink_positions,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use merlin_geom::CandidateStrategy;
    use merlin_netlist::bench_nets::random_net;
    use merlin_netlist::Sink;
    use merlin_order::tsp::tsp_order;
    use merlin_tech::units::Cap;
    use merlin_tech::Driver;

    fn tech() -> Technology {
        Technology::synthetic_035()
    }

    fn solve_net(net: &Net, tech: &Technology) -> PtreeSolved {
        let order = tsp_order(net.source, &net.sink_positions());
        let cands = CandidateStrategy::FullHanan.generate(net.source, &net.sink_positions());
        Ptree::new(net, tech, PtreeConfig::exact()).solve(&order, &cands)
    }

    #[test]
    fn single_sink_route_is_direct() {
        let tech = tech();
        let net = Net::new(
            "one",
            Point::new(0, 0),
            Driver::default(),
            vec![Sink::new(Point::new(300, 400), Cap::from_ff(10.0), 800.0)],
        );
        let solved = solve_net(&net, &tech);
        let tree = solved.best_tree().expect("DP always yields a routed tree");
        assert!(tree.validate(1, &tech).is_ok());
        assert_eq!(tree.wirelength(), 700);
        let eval = tree.evaluate(&tech, &net.driver, &net.sink_loads(), &net.sink_reqs());
        let best = solved.best_point().expect("DP curve is non-empty");
        assert!((solved.driver_required(&best) - eval.root_required_ps).abs() < 1e-6);
    }

    #[test]
    fn dp_bookkeeping_matches_independent_evaluation() {
        // The critical invariant: every curve point's (load, req), after
        // applying the driver, must equal an independent Elmore evaluation
        // of the extracted tree.
        let tech = tech();
        for seed in 1..=5u64 {
            let net = random_net("n", 5, seed, &tech);
            let solved = solve_net(&net, &tech);
            assert!(!solved.curve.is_empty(), "seed {seed}");
            for p in solved.curve.iter() {
                let tree = solved.extract(p);
                tree.validate(net.num_sinks(), &tech)
                    .expect("produced tree is well-formed");
                let eval = tree.evaluate(&tech, &net.driver, &net.sink_loads(), &net.sink_reqs());
                assert!(
                    (solved.driver_required(p) - eval.root_required_ps).abs() < 1e-6,
                    "seed {seed}: req mismatch {} vs {}",
                    solved.driver_required(p),
                    eval.root_required_ps
                );
                assert_eq!(eval.root_load, p.load, "seed {seed}: load mismatch");
                assert_eq!(eval.buffer_area, 0);
                assert_eq!(tree.wirelength(), p.area, "seed {seed}: wire area");
            }
        }
    }

    #[test]
    fn routing_beats_star_topology() {
        // PTREE should never be worse than the naive star (source to every
        // sink directly), which is itself a P-Tree member... verify the
        // weaker property that PTREE's wirelength <= star wirelength.
        let tech = tech();
        let net = random_net("n", 8, 3, &tech);
        let solved = solve_net(&net, &tech);
        let tree = solved.best_tree().expect("DP always yields a routed tree");
        let star: u64 = net
            .sink_positions()
            .iter()
            .map(|&p| manhattan(net.source, p))
            .sum();
        assert!(tree.wirelength() <= star);
    }

    #[test]
    fn better_order_no_worse_curve_front() {
        // The TSP order should give at least as good a best-req as a
        // deliberately bad (reversed) order on a line of sinks.
        let tech = tech();
        let sinks: Vec<Sink> = (1..=6)
            .map(|i| Sink::new(Point::new(i * 2000, 0), Cap::from_ff(8.0), 1000.0))
            .collect();
        let net = Net::new("line", Point::new(0, 0), Driver::default(), sinks);
        let cands = CandidateStrategy::FullHanan.generate(net.source, &net.sink_positions());
        let good = tsp_order(net.source, &net.sink_positions());
        let bad = SinkOrder::new(good.as_slice().iter().rev().copied().collect())
            .expect("a reversed permutation is still a permutation");
        let pt = Ptree::new(&net, &tech, PtreeConfig::exact());
        let g = pt.solve(&good, &cands);
        let b = pt.solve(&bad, &cands);
        let gb = g
            .best_point()
            .map(|p| g.driver_required(&p))
            .expect("DP curve is non-empty");
        let bb = b
            .best_point()
            .map(|p| b.driver_required(&p))
            .expect("DP curve is non-empty");
        assert!(gb >= bb - 1e-9, "good {gb} vs bad {bb}");
    }

    #[test]
    fn thinning_keeps_solutions_valid() {
        let tech = tech();
        let net = random_net("n", 7, 9, &tech);
        let order = tsp_order(net.source, &net.sink_positions());
        let cands = CandidateStrategy::FullHanan.generate(net.source, &net.sink_positions());
        let solved = Ptree::new(
            &net,
            &tech,
            PtreeConfig {
                max_curve_points: 4,
            },
        )
        .solve(&order, &cands);
        for p in solved.curve.iter() {
            let tree = solved.extract(p);
            tree.validate(net.num_sinks(), &tech)
                .expect("produced tree is well-formed");
            let eval = tree.evaluate(&tech, &net.driver, &net.sink_loads(), &net.sink_reqs());
            assert!((solved.driver_required(p) - eval.root_required_ps).abs() < 1e-6);
        }
    }
}
