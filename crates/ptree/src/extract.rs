//! Rebuilding routing trees from PTREE provenance.

use merlin_curves::{ProvArena, ProvId, ProvStep};
use merlin_geom::Point;
use merlin_tech::{BufferedTree, NodeId, NodeKind};

use crate::dp::RouteStep;

impl ProvStep for RouteStep {
    fn push_children(&self, out: &mut Vec<ProvId>) {
        match *self {
            RouteStep::Sink { .. } => {}
            RouteStep::Merge { left, right } => {
                out.push(left);
                out.push(right);
            }
            RouteStep::Extend { child, .. } => out.push(child),
        }
    }
}

/// The candidate-point index at which a sub-solution is rooted.
fn root_point(arena: &ProvArena<RouteStep>, prov: ProvId) -> u16 {
    let mut cur = prov;
    loop {
        match arena[cur] {
            RouteStep::Sink { from, .. } => return from,
            RouteStep::Extend { to, .. } => return to,
            RouteStep::Merge { left, .. } => cur = left,
        }
    }
}

/// Rebuilds the [`BufferedTree`] described by `prov`.
///
/// The step's root point must equal `source` (PTREE final curves are rooted
/// at the net source); otherwise a connecting Steiner node is inserted.
pub fn extract_tree(
    arena: &ProvArena<RouteStep>,
    prov: ProvId,
    source: Point,
    candidates: &[Point],
    sink_positions: &[Point],
) -> BufferedTree {
    arena.debug_validate("PTREE extraction");
    let mut tree = BufferedTree::new(source);
    let rp = root_point(arena, prov);
    let root = if candidates[rp as usize] == source {
        tree.root()
    } else {
        tree.add_child(tree.root(), NodeKind::Steiner, candidates[rp as usize])
    };
    fill(arena, prov, &mut tree, root, candidates, sink_positions);
    tree
}

/// Attaches the children described by `prov` to `node`, which must sit at
/// the step's root point.
fn fill(
    arena: &ProvArena<RouteStep>,
    prov: ProvId,
    tree: &mut BufferedTree,
    node: NodeId,
    candidates: &[Point],
    sink_positions: &[Point],
) {
    match arena[prov] {
        RouteStep::Sink { sink, .. } => {
            tree.add_child(node, NodeKind::Sink(sink), sink_positions[sink as usize]);
        }
        RouteStep::Merge { left, right } => {
            fill(arena, left, tree, node, candidates, sink_positions);
            fill(arena, right, tree, node, candidates, sink_positions);
        }
        RouteStep::Extend { child, .. } => {
            let cp = root_point(arena, child);
            let cnode = tree.add_child(node, NodeKind::Steiner, candidates[cp as usize]);
            fill(arena, child, tree, cnode, candidates, sink_positions);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extract_single_sink() {
        let mut arena = ProvArena::new();
        let prov = arena.push(RouteStep::Sink { sink: 0, from: 0 });
        let cands = [Point::new(0, 0)];
        let sinks = [Point::new(10, 0)];
        let tree = extract_tree(&arena, prov, Point::new(0, 0), &cands, &sinks);
        assert_eq!(tree.len(), 2);
        assert_eq!(tree.sink_order(), vec![0]);
        assert_eq!(tree.wirelength(), 10);
    }

    #[test]
    fn extract_merge_preserves_order() {
        let mut arena = ProvArena::new();
        let a = arena.push(RouteStep::Sink { sink: 0, from: 0 });
        let b = arena.push(RouteStep::Sink { sink: 1, from: 0 });
        let m = arena.push(RouteStep::Merge { left: a, right: b });
        let cands = [Point::new(0, 0)];
        let sinks = [Point::new(10, 0), Point::new(0, 10)];
        let tree = extract_tree(&arena, m, Point::new(0, 0), &cands, &sinks);
        assert_eq!(tree.sink_order(), vec![0, 1]);
        assert_eq!(tree.wirelength(), 20);
    }

    #[test]
    fn extract_relocated_root() {
        // Root at candidate 1 while the source is candidate 0: a Steiner
        // node must bridge them.
        let mut arena = ProvArena::new();
        let a = arena.push(RouteStep::Sink { sink: 0, from: 1 });
        let cands = [Point::new(0, 0), Point::new(5, 0)];
        let sinks = [Point::new(9, 0)];
        let tree = extract_tree(&arena, a, Point::new(0, 0), &cands, &sinks);
        assert_eq!(tree.wirelength(), 9);
        assert_eq!(tree.len(), 3); // source, steiner@5, sink
    }
}
