//! `PTREE` — the P-Tree performance-driven routing baseline of Lillis,
//! Cheng, Lin and Ho [LCLH96].
//!
//! Given a *linear order* of the sinks, `PTREE` finds the optimal embedding
//! of the net into a candidate-point set (canonically the Hanan grid) among
//! all routing trees whose recursive sink partition respects the order —
//! the "Permutation-Constrained Routing Tree" family. Solutions are kept as
//! non-inferior curves so the caller can trade wire area against required
//! time.
//!
//! This crate implements the **unbuffered** baseline used by the paper's
//! experimental Flows I and II:
//!
//! * Flow I routes each fanout-tree stage produced by `LTTREE` with PTREE;
//! * Flow II routes the whole net with PTREE and then runs van Ginneken
//!   buffer insertion on the fixed tree.
//!
//! The recursion (§II, and the basis of the paper's `*PTREE`):
//!
//! ```text
//! S_b(p,i,j) = min over i ≤ u < j of  S(p,i,u) ⊗ S(p,u+1,j)
//! S(p,i,j)   = min( S_b(p,i,j), min over p' of wire(p→p') + S_b(p',i,j) )
//! ```
//!
//! where ⊗ joins two subtrees at the same point (loads and wire areas add,
//! required times take the min). One wire hop suffices because a direct
//! route is never longer than a multi-hop route and the Elmore delay of an
//! unbranched path depends only on its length.
//!
//! # Examples
//!
//! ```
//! use merlin_geom::CandidateStrategy;
//! use merlin_netlist::bench_nets::random_net;
//! use merlin_order::tsp::tsp_order;
//! use merlin_ptree::{Ptree, PtreeConfig};
//! use merlin_tech::Technology;
//!
//! let tech = Technology::synthetic_035();
//! let net = random_net("demo", 6, 1, &tech);
//! let order = tsp_order(net.source, &net.sink_positions());
//! let cands = CandidateStrategy::FullHanan.generate(net.source, &net.sink_positions());
//! let solved = Ptree::new(&net, &tech, PtreeConfig::default()).solve(&order, &cands);
//! let tree = solved.best_tree().expect("routable net");
//! assert!(tree.validate(6, &tech).is_ok());
//! ```

pub mod dp;
pub mod extract;

pub use dp::{Ptree, PtreeConfig, PtreeSolved};
