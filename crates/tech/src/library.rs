//! Buffer libraries.

use std::ops::Index;

use crate::buffer::Buffer;

/// An ordered collection of buffer cells.
///
/// Index 0 is the weakest buffer; indices are stable and used as compact
/// `u16` handles in solution curves.
///
/// # Examples
///
/// ```
/// use merlin_tech::BufferLibrary;
///
/// let lib = BufferLibrary::synthetic_035();
/// assert_eq!(lib.len(), 34);
/// assert!(lib[0].cin < lib[33].cin);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct BufferLibrary {
    buffers: Vec<Buffer>,
}

impl BufferLibrary {
    /// Builds a library from an explicit buffer list.
    ///
    /// # Panics
    ///
    /// Panics if `buffers` is empty.
    pub fn new(buffers: Vec<Buffer>) -> Self {
        assert!(!buffers.is_empty(), "a buffer library cannot be empty");
        BufferLibrary { buffers }
    }

    /// A deliberately *empty* library, modeling a broken technology.
    ///
    /// The normal constructor rejects empty buffer lists, but the solver
    /// stack promises a typed error (not an underflow panic) if an empty
    /// library ever reaches the DP — this constructor exists so the
    /// negative-path tests can exercise that promise.
    pub fn empty() -> Self {
        BufferLibrary {
            buffers: Vec::new(),
        }
    }

    /// The synthetic 34-buffer 0.35 µm library: drive strengths spaced
    /// geometrically from 1× to 64× (ratio 64^(1/33) ≈ 1.134), mirroring
    /// the spread of the industrial library used in the paper.
    pub fn synthetic_035() -> Self {
        let ratio = 64f64.powf(1.0 / 33.0);
        let buffers = (0..34)
            .map(|i| {
                let size = ratio.powi(i);
                Buffer::sized(&format!("BUF_X{:.2}", size), size)
            })
            .collect();
        BufferLibrary { buffers }
    }

    /// A 3-buffer library for unit tests and exhaustive cross-checks.
    pub fn tiny_test() -> Self {
        BufferLibrary {
            buffers: vec![
                Buffer::sized("T1", 1.0),
                Buffer::sized("T4", 4.0),
                Buffer::sized("T16", 16.0),
            ],
        }
    }

    /// A thinned copy keeping every `stride`-th buffer (always keeps the
    /// first and last). Used by large-instance configurations to trade a
    /// little quality for a large constant-factor speedup; the paper's `m`
    /// enters the runtime bound linearly (Theorem 6).
    pub fn thinned(&self, stride: usize) -> BufferLibrary {
        let stride = stride.max(1);
        if self.buffers.is_empty() {
            return BufferLibrary {
                buffers: Vec::new(),
            };
        }
        let last = self.buffers.len() - 1;
        let mut buffers: Vec<Buffer> = self
            .buffers
            .iter()
            .enumerate()
            .filter(|(i, _)| i % stride == 0 || *i == last)
            .map(|(_, b)| b.clone())
            .collect();
        buffers.dedup_by(|a, b| a.name == b.name);
        BufferLibrary { buffers }
    }

    /// Number of buffers.
    pub fn len(&self) -> usize {
        self.buffers.len()
    }

    /// Whether the library holds no buffers. `new` rejects empty lists,
    /// but [`BufferLibrary::empty`] deliberately builds a broken
    /// technology for negative-path tests — consumers must treat an
    /// empty library as an error, not an impossibility.
    pub fn is_empty(&self) -> bool {
        self.buffers.is_empty()
    }

    /// Iterates over the buffers, weakest first.
    pub fn iter(&self) -> std::slice::Iter<'_, Buffer> {
        self.buffers.iter()
    }

    /// Buffer by index, if in range.
    pub fn get(&self, idx: usize) -> Option<&Buffer> {
        self.buffers.get(idx)
    }

    /// The strongest buffer.
    pub fn strongest(&self) -> &Buffer {
        self.buffers.last().expect("library is never empty")
    }
}

impl Index<usize> for BufferLibrary {
    type Output = Buffer;
    fn index(&self, idx: usize) -> &Buffer {
        &self.buffers[idx]
    }
}

impl<'a> IntoIterator for &'a BufferLibrary {
    type Item = &'a Buffer;
    type IntoIter = std::slice::Iter<'a, Buffer>;
    fn into_iter(self) -> Self::IntoIter {
        self.buffers.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Cap;

    #[test]
    fn synthetic_library_spans_1x_to_64x() {
        let lib = BufferLibrary::synthetic_035();
        let first = &lib[0];
        let last = lib.strongest();
        assert!((last.cin.to_ff() / first.cin.to_ff() - 64.0).abs() < 1.5);
    }

    #[test]
    fn library_is_sorted_by_strength() {
        let lib = BufferLibrary::synthetic_035();
        for w in lib.iter().collect::<Vec<_>>().windows(2) {
            assert!(w[0].cin <= w[1].cin);
            assert!(w[0].rdrv_ohm >= w[1].rdrv_ohm);
        }
    }

    #[test]
    fn thinning_keeps_extremes() {
        let lib = BufferLibrary::synthetic_035();
        let thin = lib.thinned(5);
        assert!(thin.len() < lib.len());
        assert_eq!(thin[0].name, lib[0].name);
        assert_eq!(thin.strongest().name, lib.strongest().name);
    }

    #[test]
    fn heavier_load_prefers_bigger_buffer() {
        // Sanity: under a huge load, the fastest library buffer is a big one.
        let lib = BufferLibrary::synthetic_035();
        let load = Cap::from_ff(2000.0);
        let best = lib
            .iter()
            .enumerate()
            .min_by(|a, b| {
                crate::units::ps_cmp(a.1.delay_linear_ps(load), b.1.delay_linear_ps(load))
            })
            .expect("library is non-empty")
            .0;
        assert!(best > lib.len() / 2);
    }

    #[test]
    #[should_panic(expected = "cannot be empty")]
    fn empty_library_panics() {
        let _ = BufferLibrary::new(Vec::new());
    }
}
