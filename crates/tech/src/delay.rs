//! The 4-parameter gate-delay equation [LSP98] with slew propagation.
//!
//! The paper computes gate delays with a "4-parameter delay equation"
//! (its reference [LSP98]): a bilinear form in output load and input slew,
//!
//! ```text
//! d(C_L, S_in)    = k0 + k1·C_L + (k2 + k3·C_L)·S_in
//! S_out(C_L)      = g0 + g1·C_L
//! ```
//!
//! Inside the dynamic programs we use the slew-free linear RC form
//! (`k2 = k3 = 0`), which preserves the monotonicity the DP relies on
//! (Lemma 8); the full bilinear form is used by the post-construction
//! evaluator in [`crate::btree`] when a nonzero input slew is supplied.

use crate::units::{Cap, PsTime};

/// Coefficients of the 4-parameter delay equation plus the linear
/// output-slew model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FourParam {
    /// Intrinsic delay (ps).
    pub k0: PsTime,
    /// Load coefficient (ps / fF).
    pub k1: f64,
    /// Slew coefficient (ps / ps).
    pub k2: f64,
    /// Cross term (1 / fF).
    pub k3: f64,
    /// Intrinsic output slew (ps).
    pub g0: PsTime,
    /// Output-slew load coefficient (ps / fF).
    pub g1: f64,
}

impl FourParam {
    /// Derives plausible 4-parameter coefficients from a linear RC pair.
    ///
    /// The derived model agrees with the RC model at zero input slew and
    /// adds a mild slew sensitivity (about 15 % of the input slew plus a
    /// small load-dependent term), matching the qualitative behaviour of a
    /// characterized 0.35 µm cell.
    pub fn from_rc(intrinsic_ps: PsTime, rdrv_ohm: f64) -> FourParam {
        let k1 = rdrv_ohm * 1e-3; // Ω·fF -> ps
        FourParam {
            k0: intrinsic_ps,
            k1,
            k2: 0.15,
            k3: 2.0e-4,
            g0: 0.6 * intrinsic_ps,
            g1: 1.8 * k1,
        }
    }

    /// Delay for output load `load` and input slew `s_in_ps`.
    pub fn delay_ps(&self, load: Cap, s_in_ps: PsTime) -> PsTime {
        let cl = load.to_ff();
        self.k0 + self.k1 * cl + (self.k2 + self.k3 * cl) * s_in_ps
    }

    /// Output slew for output load `load`.
    pub fn slew_out_ps(&self, load: Cap) -> PsTime {
        self.g0 + self.g1 * load.to_ff()
    }
}

/// Degrades a slew across a wire of Elmore delay `wire_delay_ps`.
///
/// We use the common PERI-style approximation
/// `S² = S_in² + (ln 9 · d_elmore)²`.
pub fn slew_through_wire(s_in_ps: PsTime, wire_delay_ps: PsTime) -> PsTime {
    let w = (9.0f64).ln() * wire_delay_ps;
    (s_in_ps * s_in_ps + w * w).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_slew_reduces_to_rc() {
        let fp = FourParam::from_rc(50.0, 2000.0);
        let d = fp.delay_ps(Cap::from_ff(100.0), 0.0);
        // 50 + 2000Ω·100fF = 50 + 200 ps
        assert!((d - 250.0).abs() < 1e-9);
    }

    #[test]
    fn slew_increases_delay() {
        let fp = FourParam::from_rc(50.0, 2000.0);
        let c = Cap::from_ff(100.0);
        assert!(fp.delay_ps(c, 80.0) > fp.delay_ps(c, 0.0));
    }

    #[test]
    fn output_slew_grows_with_load() {
        let fp = FourParam::from_rc(50.0, 2000.0);
        assert!(fp.slew_out_ps(Cap::from_ff(200.0)) > fp.slew_out_ps(Cap::from_ff(10.0)));
    }

    #[test]
    fn wire_slew_degradation() {
        assert_eq!(slew_through_wire(0.0, 0.0), 0.0);
        assert!(slew_through_wire(50.0, 100.0) > 50.0);
        // A zero-delay wire leaves slew unchanged.
        assert!((slew_through_wire(37.0, 0.0) - 37.0).abs() < 1e-12);
    }
}
