//! Buffer cells.

use crate::delay::FourParam;
use crate::units::{rc_ps, Cap, PsTime};

/// A non-inverting buffer cell.
///
/// Two delay views are provided:
///
/// * the **linear RC** view `d = intrinsic + R_drv · C_L`, used inside every
///   dynamic program (this is the model of [Gi90], [To90] and [LCLH96], and
///   keeps the DP monotone — Lemma 8),
/// * the **4-parameter** view [LSP98] `d = k0 + k1·C_L + (k2 + k3·C_L)·S_in`
///   with output-slew propagation, used for the final post-construction
///   timing evaluation (see [`crate::delay`]).
///
/// # Examples
///
/// ```
/// use merlin_tech::{Buffer, units::Cap};
///
/// let b = Buffer::sized("BUF_X4", 4.0);
/// assert!(b.delay_linear_ps(Cap::from_ff(200.0)) > b.intrinsic_ps);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Buffer {
    /// Cell name (e.g. `BUF_X4`).
    pub name: String,
    /// Input capacitance.
    pub cin: Cap,
    /// Effective drive resistance in Ω.
    pub rdrv_ohm: f64,
    /// Intrinsic (unloaded) delay in ps.
    pub intrinsic_ps: PsTime,
    /// Cell area in λ².
    pub area: u64,
    /// Maximum capacitive load the cell is characterized to drive.
    /// Engines enforce it only when their `enforce_max_load` knob is on
    /// (the paper's formulation has no load limits).
    pub max_load: Cap,
    /// 4-parameter delay coefficients for the detailed evaluation.
    pub four_param: FourParam,
}

impl Buffer {
    /// Builds a buffer of relative drive strength `size` with the synthetic
    /// 0.35 µm scaling rules:
    ///
    /// * `cin  = 2.5 fF · size`
    /// * `R    = 4200 Ω / size`
    /// * `d0   = 42 ps + 14·ln(size)` (larger buffers have more stages)
    /// * `area = 700 + 650·size λ²`
    pub fn sized(name: &str, size: f64) -> Buffer {
        assert!(size > 0.0, "buffer size must be positive");
        let rdrv = 4200.0 / size;
        let intrinsic = 42.0 + 14.0 * size.ln().max(0.0);
        Buffer {
            name: name.to_owned(),
            cin: Cap::from_ff(2.5 * size),
            rdrv_ohm: rdrv,
            intrinsic_ps: intrinsic,
            area: (700.0 + 650.0 * size).round() as u64,
            // ~25 fF of drivable load per unit of drive strength — the
            // usual "max transition" budget of a 0.35 µm cell.
            max_load: Cap::from_ff(60.0 * size),
            four_param: FourParam::from_rc(intrinsic, rdrv),
        }
    }

    /// Linear RC delay driving `load`.
    pub fn delay_linear_ps(&self, load: Cap) -> PsTime {
        self.intrinsic_ps + rc_ps(self.rdrv_ohm, load.to_ff())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigger_buffers_drive_faster_under_load() {
        let small = Buffer::sized("x1", 1.0);
        let big = Buffer::sized("x16", 16.0);
        let heavy = Cap::from_ff(500.0);
        assert!(big.delay_linear_ps(heavy) < small.delay_linear_ps(heavy));
    }

    #[test]
    fn bigger_buffers_cost_more_area_and_cap() {
        let small = Buffer::sized("x1", 1.0);
        let big = Buffer::sized("x16", 16.0);
        assert!(big.area > small.area);
        assert!(big.cin > small.cin);
    }

    #[test]
    fn unloaded_delay_is_intrinsic() {
        let b = Buffer::sized("x2", 2.0);
        assert_eq!(b.delay_linear_ps(Cap::ZERO), b.intrinsic_ps);
    }

    #[test]
    fn max_load_scales_with_size() {
        let small = Buffer::sized("x1", 1.0);
        let big = Buffer::sized("x8", 8.0);
        assert!(big.max_load > small.max_load);
        assert!(small.max_load > small.cin);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_size_panics() {
        let _ = Buffer::sized("bad", 0.0);
    }
}
