//! Unit conventions.
//!
//! | Quantity     | Representation                | Unit            |
//! |--------------|-------------------------------|-----------------|
//! | distance     | `i64` / `u64`                 | λ (0.2 µm)      |
//! | capacitance  | [`Cap`] (`u32`)               | deci-femtofarad (0.1 fF) |
//! | resistance   | `f64`                         | Ω               |
//! | time         | [`PsTime`] = `f64`            | ps              |
//! | area         | `u64`                         | λ²              |
//!
//! Capacitance is **quantized** to 0.1 fF. This is the "individual
//! capacitive values are polynomially bounded integers" premise of the
//! paper's Lemma 1 / Theorems 2, 5, 6: the number of distinct load values
//! `q` that can appear on a solution curve is bounded, which is what makes
//! the dynamic programs pseudo-polynomial rather than exponential.

use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// Time in picoseconds.
pub type PsTime = f64;

/// Total ordering for delay/required-time values.
///
/// All delay comparisons in the workspace go through this helper (the
/// `merlin-audit` `float-cmp` rule rejects raw `partial_cmp`/`total_cmp`
/// on the DP hot paths): it gives the IEEE-754 `totalOrder`, so sorting
/// and `max_by`/`min_by` never see an incomparable pair, and in
/// debug/`invariant-checks` builds it asserts that no NaN reached a
/// comparison — a NaN required time silently corrupts curve pruning.
#[inline]
pub fn ps_cmp(a: PsTime, b: PsTime) -> Ordering {
    #[cfg(any(debug_assertions, feature = "invariant-checks"))]
    {
        assert!(
            !a.is_nan() && !b.is_nan(),
            "NaN delay in comparison ({a} vs {b})"
        );
    }
    a.total_cmp(&b)
}

/// The larger of two delay values under [`ps_cmp`].
#[inline]
pub fn ps_max(a: PsTime, b: PsTime) -> PsTime {
    match ps_cmp(a, b) {
        Ordering::Less => b,
        _ => a,
    }
}

/// The smaller of two delay values under [`ps_cmp`].
#[inline]
pub fn ps_min(a: PsTime, b: PsTime) -> PsTime {
    match ps_cmp(a, b) {
        Ordering::Greater => b,
        _ => a,
    }
}

/// Ω · fF expressed in picoseconds (1 Ω·fF = 10⁻³ ps).
#[inline]
pub fn rc_ps(r_ohm: f64, c_ff: f64) -> PsTime {
    r_ohm * c_ff * 1e-3
}

/// Quantized capacitance in deci-femtofarads (1 unit = 0.1 fF).
///
/// `Cap` is a thin newtype over `u32`: additive, ordered and hashable, so it
/// can serve directly as the load axis of solution curves.
///
/// # Examples
///
/// ```
/// use merlin_tech::units::Cap;
///
/// let a = Cap::from_ff(1.5);
/// let b = Cap::from_ff(0.2);
/// assert_eq!((a + b).to_ff(), 1.7);
/// assert!(a > b);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cap(pub u32);

impl Cap {
    /// Zero capacitance.
    pub const ZERO: Cap = Cap(0);

    /// Quantizes a femtofarad value (rounding to nearest unit).
    ///
    /// Negative inputs saturate at zero.
    pub fn from_ff(ff: f64) -> Cap {
        Cap((ff * 10.0).round().max(0.0) as u32)
    }

    /// The capacitance in femtofarads.
    pub fn to_ff(self) -> f64 {
        self.0 as f64 / 10.0
    }

    /// Raw quantized units (deci-femtofarads).
    pub fn units(self) -> u32 {
        self.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Cap) -> Cap {
        Cap(self.0.saturating_sub(other.0))
    }
}

impl Add for Cap {
    type Output = Cap;
    fn add(self, rhs: Cap) -> Cap {
        Cap(self.0 + rhs.0)
    }
}

impl AddAssign for Cap {
    fn add_assign(&mut self, rhs: Cap) {
        self.0 += rhs.0;
    }
}

impl Sub for Cap {
    type Output = Cap;
    fn sub(self, rhs: Cap) -> Cap {
        Cap(self.0 - rhs.0)
    }
}

impl Sum for Cap {
    fn sum<I: Iterator<Item = Cap>>(iter: I) -> Cap {
        iter.fold(Cap::ZERO, Add::add)
    }
}

impl fmt::Display for Cap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}fF", self.to_ff())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantization_round_trips_at_unit_resolution() {
        for ff in [0.0, 0.1, 1.0, 3.7, 120.2] {
            assert!((Cap::from_ff(ff).to_ff() - ff).abs() < 0.05);
        }
    }

    #[test]
    fn negative_saturates() {
        assert_eq!(Cap::from_ff(-3.0), Cap::ZERO);
        assert_eq!(Cap(5).saturating_sub(Cap(9)), Cap::ZERO);
    }

    #[test]
    fn arithmetic_and_sum() {
        let caps = [Cap::from_ff(1.0), Cap::from_ff(2.0), Cap::from_ff(3.0)];
        let total: Cap = caps.iter().copied().sum();
        assert_eq!(total, Cap::from_ff(6.0));
    }

    #[test]
    fn rc_unit_sanity() {
        // 1 kΩ driving 100 fF -> 100 ps.
        assert!((rc_ps(1000.0, 100.0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn display_formats_ff() {
        assert_eq!(Cap::from_ff(2.5).to_string(), "2.50fF");
    }

    #[test]
    fn ps_cmp_is_total_on_ordinary_values() {
        assert_eq!(ps_cmp(1.0, 2.0), Ordering::Less);
        assert_eq!(ps_cmp(2.0, 1.0), Ordering::Greater);
        assert_eq!(ps_cmp(3.5, 3.5), Ordering::Equal);
        assert_eq!(ps_cmp(f64::NEG_INFINITY, 0.0), Ordering::Less);
        assert_eq!(ps_max(1.0, 2.0), 2.0);
        assert_eq!(ps_min(1.0, 2.0), 1.0);
    }

    #[test]
    #[cfg(any(debug_assertions, feature = "invariant-checks"))]
    #[should_panic(expected = "NaN delay")]
    fn ps_cmp_rejects_nan_in_checked_builds() {
        let _ = ps_cmp(f64::NAN, 0.0);
    }
}
