//! SVG rendering of buffered routing trees (debugging / documentation).
//!
//! Pure string generation — no drawing dependencies. Wires are drawn as
//! their canonical L-shapes, sinks as circles, buffers as triangles, the
//! source as a square.
//!
//! # Examples
//!
//! ```
//! use merlin_geom::Point;
//! use merlin_tech::{svg, BufferedTree, NodeKind};
//!
//! let mut t = BufferedTree::new(Point::new(0, 0));
//! t.add_child(t.root(), NodeKind::Sink(0), Point::new(100, 50));
//! let image = svg::render(&t);
//! assert!(image.starts_with("<svg"));
//! assert!(image.contains("<circle"));
//! ```

use merlin_geom::Route;

use crate::btree::{BufferedTree, NodeKind};

/// Renders a tree to a standalone SVG document string.
pub fn render(tree: &BufferedTree) -> String {
    use std::fmt::Write as _;
    let (mut min_x, mut min_y) = (i64::MAX, i64::MAX);
    let (mut max_x, mut max_y) = (i64::MIN, i64::MIN);
    for (_, node) in tree.iter() {
        min_x = min_x.min(node.at.x);
        min_y = min_y.min(node.at.y);
        max_x = max_x.max(node.at.x);
        max_y = max_y.max(node.at.y);
    }
    let pad = ((max_x - min_x).max(max_y - min_y).max(1) / 20).max(10);
    let (x0, y0) = (min_x - pad, min_y - pad);
    let (w, h) = (max_x - min_x + 2 * pad, max_y - min_y + 2 * pad);
    let marker = (w.max(h) / 60).max(4);

    let mut s = String::new();
    let _ = writeln!(
        s,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" viewBox=\"{x0} {y0} {w} {h}\">"
    );
    let _ = writeln!(
        s,
        "  <rect x=\"{x0}\" y=\"{y0}\" width=\"{w}\" height=\"{h}\" fill=\"white\"/>"
    );
    // Wires first (under the markers).
    for (_, node) in tree.iter() {
        for &c in &node.children {
            let child = tree.node(c);
            let route = Route::l_shaped(node.at, child.at);
            let mid = route.corner().unwrap_or(child.at);
            let _ = writeln!(
                s,
                "  <polyline points=\"{},{} {},{} {},{}\" fill=\"none\" \
                 stroke=\"#4477aa\" stroke-width=\"{}\"/>",
                node.at.x,
                node.at.y,
                mid.x,
                mid.y,
                child.at.x,
                child.at.y,
                (marker / 3).max(1)
            );
        }
    }
    for (_, node) in tree.iter() {
        let (x, y) = (node.at.x, node.at.y);
        match node.kind {
            NodeKind::Source => {
                let _ = writeln!(
                    s,
                    "  <rect x=\"{}\" y=\"{}\" width=\"{}\" height=\"{}\" fill=\"#222222\"/>",
                    x - marker,
                    y - marker,
                    2 * marker,
                    2 * marker
                );
            }
            NodeKind::Sink(i) => {
                let _ = writeln!(
                    s,
                    "  <circle cx=\"{x}\" cy=\"{y}\" r=\"{marker}\" fill=\"#228833\">\
                     <title>sink {i}</title></circle>"
                );
            }
            NodeKind::Buffer(b) => {
                let _ = writeln!(
                    s,
                    "  <polygon points=\"{},{} {},{} {},{}\" fill=\"#ee6677\">\
                     <title>buffer {b}</title></polygon>",
                    x - marker,
                    y + marker,
                    x + marker,
                    y + marker,
                    x,
                    y - marker
                );
            }
            NodeKind::Steiner => {
                let _ = writeln!(
                    s,
                    "  <circle cx=\"{x}\" cy=\"{y}\" r=\"{}\" fill=\"#4477aa\"/>",
                    (marker / 2).max(2)
                );
            }
        }
    }
    s.push_str("</svg>\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use merlin_geom::Point;

    #[test]
    fn renders_all_node_kinds() {
        let mut t = BufferedTree::new(Point::new(0, 0));
        let st = t.add_child(t.root(), NodeKind::Steiner, Point::new(50, 0));
        let b = t.add_child(st, NodeKind::Buffer(3), Point::new(50, 40));
        t.add_child(b, NodeKind::Sink(0), Point::new(90, 80));
        let svg = render(&t);
        assert!(svg.contains("<rect"));
        assert!(svg.contains("<polygon"));
        assert!(svg.contains("<circle"));
        assert!(svg.contains("<polyline"));
        assert!(svg.ends_with("</svg>\n"));
        // One polyline per edge.
        assert_eq!(svg.matches("<polyline").count(), 3);
    }

    #[test]
    fn degenerate_single_node_tree_renders() {
        let t = BufferedTree::new(Point::new(5, 5));
        let svg = render(&t);
        assert!(svg.starts_with("<svg"));
    }
}
