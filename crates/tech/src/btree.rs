//! Buffered rectilinear routing trees and their independent evaluation.
//!
//! Every optimization engine in this workspace (MERLIN, PTREE+van Ginneken,
//! LTTREE+PTREE) ultimately produces a [`BufferedTree`]: a rooted tree of
//! source / Steiner / buffer / sink nodes embedded on the layout lattice.
//!
//! The evaluator here recomputes load, required time, per-sink delay and
//! buffer area **from scratch**, independent of any DP bookkeeping. The
//! MERLIN test-suite uses this to verify that the values carried on
//! solution curves agree exactly with a re-evaluation of the extracted
//! structure — the strongest internal-consistency check the system has.

use std::collections::HashSet;
use std::fmt;

use merlin_geom::{manhattan, Point};

use crate::delay::slew_through_wire;
use crate::driver::Driver;
use crate::units::{ps_max, Cap, PsTime};
use crate::Technology;

/// Handle to a node of a [`BufferedTree`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// Index into the tree's node arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What a tree node is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// The net driver output (always the root).
    Source,
    /// A routing branch/through point.
    Steiner,
    /// An inserted buffer; the payload is a buffer-library index.
    Buffer(u16),
    /// A sink terminal; the payload is the sink index within the net.
    Sink(u32),
}

/// One node of a [`BufferedTree`].
#[derive(Clone, Debug, PartialEq)]
pub struct TreeNode {
    /// Node kind.
    pub kind: NodeKind,
    /// Embedded location.
    pub at: Point,
    /// Children (edges are routed as minimum-length L-shapes).
    pub children: Vec<NodeId>,
}

/// A buffered rectilinear routing tree.
///
/// Construction is append-only ([`BufferedTree::add_child`] always creates a
/// fresh node), so the structure is acyclic by construction.
///
/// # Examples
///
/// ```
/// use merlin_geom::Point;
/// use merlin_tech::{BufferedTree, NodeKind, Technology, Driver, units::Cap};
///
/// let tech = Technology::synthetic_035();
/// let mut t = BufferedTree::new(Point::new(0, 0));
/// let b = t.add_child(t.root(), NodeKind::Buffer(0), Point::new(500, 0));
/// t.add_child(b, NodeKind::Sink(0), Point::new(1000, 0));
/// let eval = t.evaluate(&tech, &Driver::default(), &[Cap::from_ff(20.0)], &[1000.0]);
/// assert_eq!(eval.num_buffers, 1);
/// assert!(eval.root_required_ps < 1000.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct BufferedTree {
    nodes: Vec<TreeNode>,
    root: NodeId,
}

/// Result of evaluating a [`BufferedTree`] against a technology.
#[derive(Clone, Debug, PartialEq)]
pub struct Evaluation {
    /// Required time at the driver input (the paper's objective), linear RC
    /// model.
    pub root_required_ps: PsTime,
    /// Capacitive load presented to the driver.
    pub root_load: Cap,
    /// Total inserted buffer area in λ².
    pub buffer_area: u64,
    /// Number of inserted buffers.
    pub num_buffers: usize,
    /// Total wirelength in λ.
    pub wirelength: u64,
    /// Source-to-sink Elmore delay per sink index (linear RC model),
    /// including the driver delay.
    pub sink_delays_ps: Vec<PsTime>,
    /// `max_i (sink_req_i) − root_required_ps`: the "delay" figure reported
    /// in the paper's tables (equals the longest path delay when all sinks
    /// have equal required times).
    pub delay_ps: PsTime,
}

/// Result of the detailed (4-parameter + slew) evaluation.
#[derive(Clone, Debug, PartialEq)]
pub struct DetailedEvaluation {
    /// Per-sink arrival times including slew effects.
    pub sink_arrivals_ps: Vec<PsTime>,
    /// Per-sink slews.
    pub sink_slews_ps: Vec<PsTime>,
    /// Worst slack `min_i (req_i − arrival_i)`.
    pub worst_slack_ps: PsTime,
}

/// Errors detected by [`BufferedTree::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidateTreeError {
    /// A sink index appears more than once.
    DuplicateSink(u32),
    /// A sink index is outside the net's sink range.
    UnknownSink(u32),
    /// Not all of the net's sinks are attached to the tree.
    MissingSinks(usize),
    /// A sink node has children.
    SinkHasChildren(u32),
    /// A buffer index is outside the library.
    UnknownBuffer(u16),
}

impl fmt::Display for ValidateTreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateTreeError::DuplicateSink(s) => write!(f, "sink {s} attached twice"),
            ValidateTreeError::UnknownSink(s) => write!(f, "sink index {s} out of range"),
            ValidateTreeError::MissingSinks(k) => write!(f, "{k} sinks not attached"),
            ValidateTreeError::SinkHasChildren(s) => write!(f, "sink {s} has children"),
            ValidateTreeError::UnknownBuffer(b) => write!(f, "buffer index {b} out of range"),
        }
    }
}

impl std::error::Error for ValidateTreeError {}

impl BufferedTree {
    /// Creates a tree containing only a source node at `at`.
    pub fn new(at: Point) -> Self {
        BufferedTree {
            nodes: vec![TreeNode {
                kind: NodeKind::Source,
                at,
                children: Vec::new(),
            }],
            root: NodeId(0),
        }
    }

    /// The root (source) node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree has only the source node.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Read access to a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this tree.
    pub fn node(&self, id: NodeId) -> &TreeNode {
        &self.nodes[id.index()]
    }

    /// Iterates over `(id, node)` pairs in creation order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &TreeNode)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Appends a fresh node under `parent` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is not a node of this tree.
    pub fn add_child(&mut self, parent: NodeId, kind: NodeKind, at: Point) -> NodeId {
        assert!(parent.index() < self.nodes.len(), "bad parent id");
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(TreeNode {
            kind,
            at,
            children: Vec::new(),
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// All sink indices present in the tree, in visit order.
    ///
    /// For trees produced by the ordered DPs this is exactly the effective
    /// sink order of the solution (children are stored left-to-right), which
    /// is what MERLIN feeds back into the next local-search iteration.
    pub fn sink_order(&self) -> Vec<u32> {
        let mut order = Vec::new();
        self.visit_preorder(self.root, &mut |node: &TreeNode| {
            if let NodeKind::Sink(s) = node.kind {
                order.push(s);
            }
        });
        order
    }

    fn visit_preorder<F: FnMut(&TreeNode)>(&self, id: NodeId, f: &mut F) {
        // Explicit stack: trees can be deep chains (Cα buffer chains).
        let mut stack = vec![id];
        let mut out = Vec::new();
        while let Some(id) = stack.pop() {
            out.push(id);
            let node = &self.nodes[id.index()];
            for &c in node.children.iter().rev() {
                stack.push(c);
            }
        }
        for id in out {
            f(&self.nodes[id.index()]);
        }
    }

    /// Total routed wirelength in λ.
    pub fn wirelength(&self) -> u64 {
        let mut total = 0;
        for node in &self.nodes {
            for &c in &node.children {
                total += manhattan(node.at, self.nodes[c.index()].at);
            }
        }
        total
    }

    /// Total inserted buffer area.
    pub fn buffer_area(&self, tech: &Technology) -> u64 {
        self.nodes
            .iter()
            .filter_map(|n| match n.kind {
                NodeKind::Buffer(b) => Some(tech.library[b as usize].area),
                _ => None,
            })
            .sum()
    }

    /// Structural validation against a net with `num_sinks` sinks and the
    /// given technology.
    ///
    /// # Errors
    ///
    /// Returns the first violation found; see [`ValidateTreeError`].
    pub fn validate(&self, num_sinks: usize, tech: &Technology) -> Result<(), ValidateTreeError> {
        let mut seen = HashSet::new();
        for node in &self.nodes {
            match node.kind {
                NodeKind::Sink(s) => {
                    if s as usize >= num_sinks {
                        return Err(ValidateTreeError::UnknownSink(s));
                    }
                    if !seen.insert(s) {
                        return Err(ValidateTreeError::DuplicateSink(s));
                    }
                    if !node.children.is_empty() {
                        return Err(ValidateTreeError::SinkHasChildren(s));
                    }
                }
                NodeKind::Buffer(b) if b as usize >= tech.library.len() => {
                    return Err(ValidateTreeError::UnknownBuffer(b));
                }
                _ => {}
            }
        }
        if seen.len() != num_sinks {
            return Err(ValidateTreeError::MissingSinks(num_sinks - seen.len()));
        }
        Ok(())
    }

    /// Evaluates the tree with the linear RC / Elmore model.
    ///
    /// `sink_loads[i]` and `sink_reqs_ps[i]` describe the sink with index
    /// `i`; sinks absent from the tree are ignored (their delay is reported
    /// as `NaN`), but a complete tree should pass [`BufferedTree::validate`]
    /// first.
    ///
    /// # Panics
    ///
    /// Panics if a sink node's index is out of range of the provided slices.
    pub fn evaluate(
        &self,
        tech: &Technology,
        driver: &Driver,
        sink_loads: &[Cap],
        sink_reqs_ps: &[PsTime],
    ) -> Evaluation {
        let n = self.nodes.len();
        // Post-order: children before parents. Node ids are append-ordered
        // with parents created before children, so reverse creation order is
        // a valid post-order.
        let mut cap = vec![Cap::ZERO; n];
        let mut req = vec![f64::INFINITY; n];
        let mut area: u64 = 0;
        let mut num_buffers = 0;
        for idx in (0..n).rev() {
            let node = &self.nodes[idx];
            match node.kind {
                NodeKind::Sink(s) => {
                    cap[idx] = sink_loads[s as usize];
                    req[idx] = sink_reqs_ps[s as usize];
                }
                NodeKind::Steiner | NodeKind::Source | NodeKind::Buffer(_) => {
                    let mut c_here = Cap::ZERO;
                    let mut r_here = f64::INFINITY;
                    for &ch in &node.children {
                        let len = manhattan(node.at, self.nodes[ch.index()].at);
                        let wc = tech.wire.wire_cap(len);
                        c_here += wc + cap[ch.index()];
                        let d = tech.wire.elmore_ps(len, cap[ch.index()]);
                        r_here = r_here.min(req[ch.index()] - d);
                    }
                    match node.kind {
                        NodeKind::Buffer(b) => {
                            let buf = &tech.library[b as usize];
                            req[idx] = r_here - buf.delay_linear_ps(c_here);
                            cap[idx] = buf.cin;
                            area += buf.area;
                            num_buffers += 1;
                        }
                        _ => {
                            req[idx] = r_here;
                            cap[idx] = c_here;
                        }
                    }
                }
            }
        }
        let root_idx = self.root.index();
        let root_load = cap[root_idx];
        let root_required = req[root_idx] - driver.delay_linear_ps(root_load);

        // Forward pass for per-sink delays.
        let mut arrival = vec![f64::NAN; n];
        arrival[root_idx] = driver.delay_linear_ps(root_load);
        for idx in 0..n {
            if arrival[idx].is_nan() {
                continue;
            }
            let node = &self.nodes[idx];
            let own_delay = match node.kind {
                NodeKind::Buffer(b) => {
                    // cap[idx] for a buffer is its cin; recompute load below.
                    let mut below = Cap::ZERO;
                    for &ch in &node.children {
                        let len = manhattan(node.at, self.nodes[ch.index()].at);
                        below += tech.wire.wire_cap(len) + cap[ch.index()];
                    }
                    tech.library[b as usize].delay_linear_ps(below)
                }
                _ => 0.0,
            };
            for &ch in &node.children {
                let len = manhattan(node.at, self.nodes[ch.index()].at);
                let d = tech.wire.elmore_ps(len, cap[ch.index()]);
                arrival[ch.index()] = arrival[idx] + own_delay + d;
            }
        }
        let mut sink_delays = vec![f64::NAN; sink_loads.len()];
        for (idx, node) in self.nodes.iter().enumerate() {
            if let NodeKind::Sink(s) = node.kind {
                sink_delays[s as usize] = arrival[idx];
            }
        }
        let max_req = sink_reqs_ps.iter().copied().fold(f64::NEG_INFINITY, ps_max);
        Evaluation {
            root_required_ps: root_required,
            root_load,
            buffer_area: area,
            num_buffers,
            wirelength: self.wirelength(),
            sink_delays_ps: sink_delays,
            delay_ps: max_req - root_required,
        }
    }

    /// Counts buffers (and the driver-equivalent stage loads) whose driven
    /// capacitance exceeds the cell's characterized `max_load`. Zero when
    /// the tree was produced with load limits enforced.
    pub fn buffer_load_violations(&self, tech: &Technology, sink_loads: &[Cap]) -> usize {
        let n = self.nodes.len();
        let mut cap = vec![Cap::ZERO; n];
        for idx in (0..n).rev() {
            let node = &self.nodes[idx];
            match node.kind {
                NodeKind::Sink(s) => cap[idx] = sink_loads[s as usize],
                NodeKind::Buffer(b) => cap[idx] = tech.library[b as usize].cin,
                _ => {
                    let mut c = Cap::ZERO;
                    for &ch in &node.children {
                        let len = manhattan(node.at, self.nodes[ch.index()].at);
                        c += tech.wire.wire_cap(len) + cap[ch.index()];
                    }
                    cap[idx] = c;
                }
            }
        }
        let mut violations = 0;
        for node in &self.nodes {
            if let NodeKind::Buffer(b) = node.kind {
                let mut below = Cap::ZERO;
                for &ch in &node.children {
                    let len = manhattan(node.at, self.nodes[ch.index()].at);
                    below += tech.wire.wire_cap(len) + cap[ch.index()];
                }
                if below > tech.library[b as usize].max_load {
                    violations += 1;
                }
            }
        }
        violations
    }

    /// Detailed forward evaluation with the 4-parameter delay equation and
    /// slew propagation.
    ///
    /// `input_slew_ps` is the slew at the driver input.
    pub fn evaluate_detailed(
        &self,
        tech: &Technology,
        driver: &Driver,
        sink_loads: &[Cap],
        sink_reqs_ps: &[PsTime],
        input_slew_ps: PsTime,
    ) -> DetailedEvaluation {
        let n = self.nodes.len();
        // Loads below each node (linear model suffices for loads).
        let mut cap = vec![Cap::ZERO; n];
        for idx in (0..n).rev() {
            let node = &self.nodes[idx];
            match node.kind {
                NodeKind::Sink(s) => cap[idx] = sink_loads[s as usize],
                NodeKind::Buffer(b) => {
                    cap[idx] = tech.library[b as usize].cin;
                }
                _ => {
                    let mut c = Cap::ZERO;
                    for &ch in &node.children {
                        let len = manhattan(node.at, self.nodes[ch.index()].at);
                        c += tech.wire.wire_cap(len) + cap[ch.index()];
                    }
                    cap[idx] = c;
                }
            }
        }
        let load_below = |idx: usize| -> Cap {
            let node = &self.nodes[idx];
            let mut c = Cap::ZERO;
            for &ch in &node.children {
                let len = manhattan(node.at, self.nodes[ch.index()].at);
                c += tech.wire.wire_cap(len) + cap[ch.index()];
            }
            c
        };

        let mut arrival = vec![f64::NAN; n];
        let mut slew = vec![0.0f64; n];
        let root_idx = self.root.index();
        let root_load = load_below(root_idx);
        arrival[root_idx] = driver.four_param.delay_ps(root_load, input_slew_ps);
        slew[root_idx] = driver.four_param.slew_out_ps(root_load);
        for idx in 0..n {
            if arrival[idx].is_nan() {
                continue;
            }
            let node = &self.nodes[idx];
            let (own_delay, out_slew) = match node.kind {
                NodeKind::Buffer(b) => {
                    let below = load_below(idx);
                    let fp = &tech.library[b as usize].four_param;
                    (fp.delay_ps(below, slew[idx]), fp.slew_out_ps(below))
                }
                _ => (0.0, slew[idx]),
            };
            for &ch in &node.children {
                let len = manhattan(node.at, self.nodes[ch.index()].at);
                let d = tech.wire.elmore_ps(len, cap[ch.index()]);
                arrival[ch.index()] = arrival[idx] + own_delay + d;
                slew[ch.index()] = slew_through_wire(out_slew, d);
            }
        }

        let mut sink_arrivals = vec![f64::NAN; sink_loads.len()];
        let mut sink_slews = vec![f64::NAN; sink_loads.len()];
        let mut worst = f64::INFINITY;
        for (idx, node) in self.nodes.iter().enumerate() {
            if let NodeKind::Sink(s) = node.kind {
                sink_arrivals[s as usize] = arrival[idx];
                sink_slews[s as usize] = slew[idx];
                worst = worst.min(sink_reqs_ps[s as usize] - arrival[idx]);
            }
        }
        DetailedEvaluation {
            sink_arrivals_ps: sink_arrivals,
            sink_slews_ps: sink_slews,
            worst_slack_ps: worst,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> Technology {
        Technology::synthetic_035()
    }

    /// source --1000λ--> sink0 ; source --500λ--> steiner --500λ--> sink1
    fn two_sink_tree() -> BufferedTree {
        let mut t = BufferedTree::new(Point::new(0, 0));
        t.add_child(t.root(), NodeKind::Sink(0), Point::new(1000, 0));
        let s = t.add_child(t.root(), NodeKind::Steiner, Point::new(0, 500));
        t.add_child(s, NodeKind::Sink(1), Point::new(0, 1000));
        t
    }

    #[test]
    fn evaluation_matches_hand_computation() {
        let tech = tech();
        let driver = Driver::default();
        let loads = [Cap::from_ff(10.0), Cap::from_ff(20.0)];
        let reqs = [1000.0, 1000.0];
        let t = two_sink_tree();
        let eval = t.evaluate(&tech, &driver, &loads, &reqs);

        // By hand: branch A = wire(1000) -> 10fF ; branch B = wire(500) ->
        // steiner -> wire(500) -> 20fF.
        let w = &tech.wire;
        let ca = w.wire_cap(1000) + loads[0];
        let cb2 = w.wire_cap(500) + loads[1];
        let cb = w.wire_cap(500) + cb2;
        let root_load = ca + cb;
        assert_eq!(eval.root_load, root_load);

        let req_a = 1000.0 - w.elmore_ps(1000, loads[0]);
        let req_b = 1000.0 - w.elmore_ps(500, cb2) - w.elmore_ps(500, loads[1]);
        let expect = req_a.min(req_b) - driver.delay_linear_ps(root_load);
        assert!((eval.root_required_ps - expect).abs() < 1e-6);
        assert_eq!(eval.buffer_area, 0);
        assert_eq!(eval.wirelength, 2000);
    }

    #[test]
    fn forward_and_backward_passes_agree() {
        // With equal sink required times R, delay = R - root_req must equal
        // the max source-to-sink delay.
        let tech = tech();
        let driver = Driver::default();
        let loads = [Cap::from_ff(10.0), Cap::from_ff(20.0)];
        let reqs = [750.0, 750.0];
        let t = two_sink_tree();
        let eval = t.evaluate(&tech, &driver, &loads, &reqs);
        let max_delay = eval
            .sink_delays_ps
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((eval.delay_ps - max_delay).abs() < 1e-6);
    }

    #[test]
    fn buffer_decouples_load() {
        let tech = tech();
        let driver = Driver::default();
        let loads = [Cap::from_ff(200.0)];
        let reqs = [1000.0];

        let mut plain = BufferedTree::new(Point::new(0, 0));
        plain.add_child(plain.root(), NodeKind::Sink(0), Point::new(8000, 0));

        let mut buffered = BufferedTree::new(Point::new(0, 0));
        let b = buffered.add_child(buffered.root(), NodeKind::Buffer(20), Point::new(4000, 0));
        buffered.add_child(b, NodeKind::Sink(0), Point::new(8000, 0));

        let e1 = plain.evaluate(&tech, &driver, &loads, &reqs);
        let e2 = buffered.evaluate(&tech, &driver, &loads, &reqs);
        // A mid-wire buffer on a long heavily-loaded run improves required time.
        assert!(e2.root_required_ps > e1.root_required_ps);
        assert!(e2.buffer_area > 0);
        assert!(e2.root_load < e1.root_load);
    }

    #[test]
    fn validate_catches_structural_errors() {
        let tech = tech();
        let mut t = BufferedTree::new(Point::new(0, 0));
        t.add_child(t.root(), NodeKind::Sink(0), Point::new(10, 0));
        assert_eq!(
            t.validate(2, &tech),
            Err(ValidateTreeError::MissingSinks(1))
        );
        t.add_child(t.root(), NodeKind::Sink(0), Point::new(0, 10));
        assert_eq!(
            t.validate(2, &tech),
            Err(ValidateTreeError::DuplicateSink(0))
        );
        let mut t2 = BufferedTree::new(Point::new(0, 0));
        t2.add_child(t2.root(), NodeKind::Sink(7), Point::new(1, 1));
        assert_eq!(
            t2.validate(2, &tech),
            Err(ValidateTreeError::UnknownSink(7))
        );
    }

    #[test]
    fn sink_order_is_left_to_right() {
        let mut t = BufferedTree::new(Point::new(0, 0));
        let a = t.add_child(t.root(), NodeKind::Steiner, Point::new(1, 0));
        t.add_child(a, NodeKind::Sink(2), Point::new(2, 0));
        t.add_child(a, NodeKind::Sink(0), Point::new(3, 0));
        t.add_child(t.root(), NodeKind::Sink(1), Point::new(0, 5));
        assert_eq!(t.sink_order(), vec![2, 0, 1]);
    }

    #[test]
    fn detailed_evaluation_tracks_slew() {
        let tech = tech();
        let driver = Driver::default();
        let loads = [Cap::from_ff(30.0)];
        let reqs = [500.0];
        let mut t = BufferedTree::new(Point::new(0, 0));
        t.add_child(t.root(), NodeKind::Sink(0), Point::new(6000, 0));
        let fast = t.evaluate_detailed(&tech, &driver, &loads, &reqs, 0.0);
        let slow = t.evaluate_detailed(&tech, &driver, &loads, &reqs, 200.0);
        assert!(slow.sink_arrivals_ps[0] > fast.sink_arrivals_ps[0]);
        assert!(fast.sink_slews_ps[0] > 0.0);
        assert!(slow.worst_slack_ps < fast.worst_slack_ps);
    }
}
