//! The net driver (root gate).

use crate::delay::FourParam;
use crate::units::{rc_ps, Cap, PsTime};

/// The gate driving a net's root.
///
/// The optimization objective of the paper is the *required time at the
/// driver*: the best required time among the root's immediate loads minus
/// the driver's own load-dependent delay. A `Driver` carries just enough
/// electrical information to evaluate that.
///
/// # Examples
///
/// ```
/// use merlin_tech::{Driver, units::Cap};
///
/// let d = Driver::with_strength(2.0);
/// let req_at_input = d.required_at_input(1000.0, Cap::from_ff(80.0));
/// assert!(req_at_input < 1000.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Driver {
    /// Effective drive resistance in Ω.
    pub rdrv_ohm: f64,
    /// Intrinsic delay in ps.
    pub intrinsic_ps: PsTime,
    /// 4-parameter coefficients for detailed evaluation.
    pub four_param: FourParam,
}

impl Driver {
    /// A driver of relative strength `size` (same scaling family as the
    /// synthetic buffer library).
    pub fn with_strength(size: f64) -> Driver {
        assert!(size > 0.0, "driver strength must be positive");
        let rdrv = 4200.0 / size;
        let intrinsic = 45.0 + 12.0 * size.ln().max(0.0);
        Driver {
            rdrv_ohm: rdrv,
            intrinsic_ps: intrinsic,
            four_param: FourParam::from_rc(intrinsic, rdrv),
        }
    }

    /// Linear RC delay of the driver for root load `load`.
    pub fn delay_linear_ps(&self, load: Cap) -> PsTime {
        self.intrinsic_ps + rc_ps(self.rdrv_ohm, load.to_ff())
    }

    /// Required time at the driver *input*, given the required time at the
    /// net root and the load the driver sees there.
    pub fn required_at_input(&self, req_at_root: PsTime, load: Cap) -> PsTime {
        req_at_root - self.delay_linear_ps(load)
    }
}

impl Default for Driver {
    fn default() -> Self {
        Driver::with_strength(4.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stronger_driver_is_faster() {
        let weak = Driver::with_strength(1.0);
        let strong = Driver::with_strength(8.0);
        let load = Cap::from_ff(300.0);
        assert!(strong.delay_linear_ps(load) < weak.delay_linear_ps(load));
    }

    #[test]
    fn required_time_moves_backwards() {
        let d = Driver::default();
        let load = Cap::from_ff(50.0);
        assert!(d.required_at_input(0.0, load) < 0.0);
    }
}
