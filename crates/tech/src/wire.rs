//! Interconnect RC model and Elmore wire delay [El48].

use crate::units::{rc_ps, Cap, PsTime};

/// Distributed-RC wire model with per-λ resistance and capacitance.
///
/// The Elmore delay of an unbranched wire of length `ℓ` loaded by `C_L` is
///
/// ```text
/// d = R_w · (C_w / 2 + C_L),   R_w = r·ℓ,   C_w = c·ℓ
/// ```
///
/// which is exact for the distributed π-model and, crucially, depends only
/// on the wire *length* — so any minimum-length rectilinear embedding of a
/// point-to-point connection has the same delay.
///
/// # Examples
///
/// ```
/// use merlin_tech::{units::Cap, WireModel};
///
/// let w = WireModel::synthetic_035();
/// let d1 = w.elmore_ps(1000, Cap::from_ff(50.0));
/// let d2 = w.elmore_ps(2000, Cap::from_ff(50.0));
/// assert!(d2 > 2.0 * d1); // super-linear growth with length
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WireModel {
    /// Wire resistance per λ, in Ω.
    pub res_per_lambda: f64,
    /// Wire capacitance per λ, in quantized units (deci-fF).
    pub cap_units_per_lambda: f64,
}

impl WireModel {
    /// Synthetic 0.35 µm interconnect: λ = 0.2 µm,
    /// r ≈ 0.03 Ω/λ (0.15 Ω/µm), c ≈ 0.04 fF/λ (0.2 fF/µm).
    pub fn synthetic_035() -> Self {
        WireModel {
            res_per_lambda: 0.03,
            cap_units_per_lambda: 0.4, // 0.04 fF/λ in deci-fF
        }
    }

    /// Total capacitance of a wire of `len` λ.
    pub fn wire_cap(&self, len: u64) -> Cap {
        Cap((self.cap_units_per_lambda * len as f64).round() as u32)
    }

    /// Total resistance of a wire of `len` λ, in Ω.
    pub fn wire_res(&self, len: u64) -> f64 {
        self.res_per_lambda * len as f64
    }

    /// Elmore delay of an unbranched wire of `len` λ driving `load`.
    pub fn elmore_ps(&self, len: u64, load: Cap) -> PsTime {
        let r = self.wire_res(len);
        let cw = self.wire_cap(len).to_ff();
        rc_ps(r, cw / 2.0 + load.to_ff())
    }

    /// The wire length whose unloaded Elmore delay equals `target_ps`.
    ///
    /// Solves `r·c/2 · ℓ² = target` for `ℓ`; used by the benchmark-net
    /// generator to size bounding boxes so that "the delay of interconnect
    /// is approximately equal to the delay of gate" (§IV).
    pub fn length_for_delay(&self, target_ps: PsTime) -> u64 {
        let rc_half = self.res_per_lambda * (self.cap_units_per_lambda / 10.0) / 2.0;
        if rc_half <= 0.0 || target_ps <= 0.0 {
            return 0;
        }
        // rc_half has units Ω·fF/λ² = 1e-3 ps/λ².
        (target_ps / (rc_half * 1e-3)).sqrt().round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elmore_zero_length_is_zero() {
        let w = WireModel::synthetic_035();
        assert_eq!(w.elmore_ps(0, Cap::from_ff(100.0)), 0.0);
        assert_eq!(w.wire_cap(0), Cap::ZERO);
    }

    #[test]
    fn elmore_monotone_in_length_and_load() {
        let w = WireModel::synthetic_035();
        let base = w.elmore_ps(500, Cap::from_ff(10.0));
        assert!(w.elmore_ps(600, Cap::from_ff(10.0)) > base);
        assert!(w.elmore_ps(500, Cap::from_ff(20.0)) > base);
    }

    #[test]
    fn elmore_closed_form() {
        let w = WireModel {
            res_per_lambda: 0.1,
            cap_units_per_lambda: 1.0, // 0.1 fF/λ
        };
        // len=100: R=10Ω, Cw=10fF, load=40fF -> d = 10*(5+40) Ω·fF = 0.45 ps
        let d = w.elmore_ps(100, Cap::from_ff(40.0));
        assert!((d - 0.45).abs() < 1e-9);
    }

    #[test]
    fn length_for_delay_inverts_elmore() {
        let w = WireModel::synthetic_035();
        let len = w.length_for_delay(200.0);
        let d = w.elmore_ps(len, Cap::ZERO);
        assert!((d - 200.0).abs() / 200.0 < 0.02, "d = {d}");
    }

    #[test]
    fn splitting_a_wire_preserves_elmore() {
        // Elmore of an unbranched path is independent of where we cut it:
        // d(ℓ, C) = d(ℓ1, C + Cw2) + d(ℓ2, C) for ℓ = ℓ1 + ℓ2.
        let w = WireModel::synthetic_035();
        let load = Cap::from_ff(25.0);
        let whole = w.elmore_ps(1000, load);
        let tail_cap = w.wire_cap(400);
        let split = w.elmore_ps(600, Cap(load.0 + tail_cap.0)) + w.elmore_ps(400, load);
        assert!((whole - split).abs() < 1e-6, "{whole} vs {split}");
    }
}
