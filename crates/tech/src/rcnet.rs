//! RC-network extraction from buffered trees, with an independent Elmore
//! evaluator and a SPICE-compatible export.
//!
//! [`crate::btree::BufferedTree::evaluate`] computes delays recursively on
//! the tree. This module takes the opposite route: it *extracts* the tree
//! into an explicit RC network (π-model per wire: `R` between the
//! endpoints, `C/2` lumped at each), cuts it into stages at buffers, and
//! computes Elmore delays by the textbook path-resistance formula
//!
//! ```text
//! d(node) = Σ over resistors k on the root→node path of R_k · C_downstream(k)
//! ```
//!
//! Agreement between the two evaluators (and the DP bookkeeping) is one of
//! the repository's strongest cross-checks, because the code paths share
//! nothing but the wire model constants. The [`RcNetwork::to_spice`]
//! export lets the skeptical user re-verify with an external simulator.

use merlin_geom::manhattan;

use crate::btree::{BufferedTree, NodeKind};
use crate::driver::Driver;
use crate::units::{Cap, PsTime};
use crate::Technology;

/// One extracted stage: an RC tree driven by the net driver (stage 0) or
/// by a buffer.
#[derive(Clone, Debug)]
pub struct Stage {
    /// Driving resistance (Ω) of the stage's source (driver or buffer).
    pub drive_res_ohm: f64,
    /// Intrinsic delay (ps) of the stage's source.
    pub intrinsic_ps: PsTime,
    /// Stage-local node capacitances in fF (index 0 = stage root).
    pub node_cap_ff: Vec<f64>,
    /// Resistors `(from, to, ohm)`; `to`'s subtree hangs below `from`.
    pub resistors: Vec<(usize, usize, f64)>,
    /// Stage-local node index of each handoff: either a net sink
    /// (`Handoff::Sink`) or the input of a deeper stage
    /// (`Handoff::Stage`).
    pub handoffs: Vec<(usize, Handoff)>,
}

/// What a stage node hands its signal to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Handoff {
    /// A net sink, by sink index.
    Sink(u32),
    /// A deeper stage, by stage index.
    Stage(usize),
}

/// A staged RC network extracted from a [`BufferedTree`].
#[derive(Clone, Debug)]
pub struct RcNetwork {
    /// The stages; index 0 is driven by the net driver.
    pub stages: Vec<Stage>,
}

impl RcNetwork {
    /// Extracts the network of `tree`.
    pub fn from_tree(tree: &BufferedTree, tech: &Technology, sink_loads: &[Cap]) -> RcNetwork {
        use std::collections::VecDeque;
        let mut stages: Vec<Stage> = Vec::new();
        // FIFO of pending stages; each entry carries its pre-assigned
        // stage id so buffer handoffs can reference it immediately.
        let mut queue: VecDeque<(crate::btree::NodeId, f64, f64, usize)> = VecDeque::new();
        queue.push_back((tree.root(), 0.0, 0.0, 0));
        let mut next_id = 1usize;
        while let Some((start, res, intr, id)) = queue.pop_front() {
            debug_assert_eq!(id, stages.len(), "FIFO preserves id order");
            let mut stage = Stage {
                drive_res_ohm: res,
                intrinsic_ps: intr,
                node_cap_ff: vec![0.0],
                resistors: Vec::new(),
                handoffs: Vec::new(),
            };
            // DFS within the stage; (tree node, stage-local node).
            let mut walk = vec![(start, 0usize)];
            while let Some((tn, local)) = walk.pop() {
                for &ch in &tree.node(tn).children {
                    let child = tree.node(ch);
                    let len = manhattan(tree.node(tn).at, child.at);
                    let wire_c = tech.wire.wire_cap(len).to_ff();
                    let wire_r = tech.wire.wire_res(len);
                    let child_local = stage.node_cap_ff.len();
                    stage.node_cap_ff.push(wire_c / 2.0);
                    stage.node_cap_ff[local] += wire_c / 2.0;
                    stage.resistors.push((local, child_local, wire_r));
                    match child.kind {
                        NodeKind::Sink(s) => {
                            stage.node_cap_ff[child_local] += sink_loads[s as usize].to_ff();
                            stage.handoffs.push((child_local, Handoff::Sink(s)));
                        }
                        NodeKind::Buffer(b) => {
                            let buf = &tech.library[b as usize];
                            stage.node_cap_ff[child_local] += buf.cin.to_ff();
                            stage.handoffs.push((child_local, Handoff::Stage(next_id)));
                            queue.push_back((ch, buf.rdrv_ohm, buf.intrinsic_ps, next_id));
                            next_id += 1;
                        }
                        _ => {
                            walk.push((ch, child_local));
                        }
                    }
                }
            }
            stages.push(stage);
        }
        RcNetwork { stages }
    }

    /// Total capacitance a stage's source drives.
    pub fn stage_load_ff(&self, stage: usize) -> f64 {
        self.stages[stage].node_cap_ff.iter().sum()
    }

    /// Elmore delay from the stage source (including its drive resistance
    /// and intrinsic delay) to a stage-local node.
    pub fn stage_delay_ps(&self, stage: usize, node: usize) -> PsTime {
        let st = &self.stages[stage];
        // Downstream capacitance per resistor, and path membership.
        let n = st.node_cap_ff.len();
        let mut children: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        for &(a, b, r) in &st.resistors {
            children[a].push((b, r));
        }
        // Subtree caps by post-order.
        fn subtree_cap(
            v: usize,
            children: &[Vec<(usize, f64)>],
            caps: &[f64],
            memo: &mut [f64],
        ) -> f64 {
            if memo[v] >= 0.0 {
                return memo[v];
            }
            let mut total = caps[v];
            for &(c, _) in &children[v] {
                total += subtree_cap(c, children, caps, memo);
            }
            memo[v] = total;
            total
        }
        let mut memo = vec![-1.0f64; n];
        let total = subtree_cap(0, &children, &st.node_cap_ff, &mut memo);
        // Path root -> node.
        let mut parent = vec![usize::MAX; n];
        for &(a, b, _) in &st.resistors {
            parent[b] = a;
        }
        let res_of = |a: usize, b: usize| -> f64 {
            st.resistors
                .iter()
                .find(|&&(x, y, _)| x == a && y == b)
                .map(|&(_, _, r)| r)
                .expect("edge exists")
        };
        let mut d = st.intrinsic_ps + st.drive_res_ohm * total * 1e-3;
        let mut v = node;
        while parent[v] != usize::MAX {
            let p = parent[v];
            d += res_of(p, v) * memo[v] * 1e-3;
            v = p;
        }
        d
    }

    /// Source-to-sink Elmore delays for all sinks, index-aligned with the
    /// original net (absent sinks yield `NaN`). `driver` supplies stage 0's
    /// electrical model.
    pub fn sink_delays_ps(&self, driver: &Driver, num_sinks: usize) -> Vec<PsTime> {
        let mut out = vec![f64::NAN; num_sinks];
        // Arrival at each stage input.
        let mut stage_arrival = vec![f64::NAN; self.stages.len()];
        stage_arrival[0] = 0.0;
        // Stage 0 uses the driver's parameters.
        let mut stages = self.stages.clone();
        stages[0].drive_res_ohm = driver.rdrv_ohm;
        stages[0].intrinsic_ps = driver.intrinsic_ps;
        let net = RcNetwork { stages };
        // Stages are topologically ordered by construction (children have
        // larger indices).
        for s in 0..net.stages.len() {
            let base = stage_arrival[s];
            if base.is_nan() {
                continue;
            }
            for &(node, handoff) in &net.stages[s].handoffs {
                let d = base + net.stage_delay_ps(s, node);
                match handoff {
                    Handoff::Sink(k) => out[k as usize] = d,
                    Handoff::Stage(t) => stage_arrival[t] = d,
                }
            }
        }
        out
    }

    /// A SPICE deck of the network (subckt per stage, resistors and
    /// grounded capacitors; buffer stages noted as comments), for external
    /// verification.
    pub fn to_spice(&self, title: &str) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "* {title}");
        for (si, st) in self.stages.iter().enumerate() {
            let _ = writeln!(
                s,
                "* stage {si}: Rdrv={:.1} intrinsic={:.1}ps",
                st.drive_res_ohm, st.intrinsic_ps
            );
            for (i, c) in st.node_cap_ff.iter().enumerate() {
                if *c > 0.0 {
                    let _ = writeln!(s, "C{si}_{i} n{si}_{i} 0 {:.3}f", c);
                }
            }
            for (k, (a, b, r)) in st.resistors.iter().enumerate() {
                let _ = writeln!(s, "R{si}_{k} n{si}_{a} n{si}_{b} {:.3}", r);
            }
            for (node, h) in &st.handoffs {
                match h {
                    Handoff::Sink(k) => {
                        let _ = writeln!(s, "* sink {k} at n{si}_{node}");
                    }
                    Handoff::Stage(t) => {
                        let _ = writeln!(s, "* buffer to stage {t} at n{si}_{node}");
                    }
                }
            }
        }
        s.push_str(".end\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use merlin_geom::Point;

    fn tech() -> Technology {
        Technology::synthetic_035()
    }

    #[test]
    fn single_wire_matches_tree_evaluator() {
        let tech = tech();
        let driver = Driver::default();
        let loads = [Cap::from_ff(37.0)];
        let reqs = [1000.0];
        let mut t = BufferedTree::new(Point::new(0, 0));
        t.add_child(t.root(), NodeKind::Sink(0), Point::new(4000, 1000));
        let eval = t.evaluate(&tech, &driver, &loads, &reqs);
        let net = RcNetwork::from_tree(&t, &tech, &loads);
        let d = net.sink_delays_ps(&driver, 1);
        assert!(
            (d[0] - eval.sink_delays_ps[0]).abs() < 1e-6,
            "{} vs {}",
            d[0],
            eval.sink_delays_ps[0]
        );
    }

    #[test]
    fn buffered_branchy_tree_matches_tree_evaluator() {
        let tech = tech();
        let driver = Driver::with_strength(2.0);
        let loads = [Cap::from_ff(20.0), Cap::from_ff(8.0), Cap::from_ff(33.0)];
        let reqs = [900.0, 800.0, 1000.0];
        let mut t = BufferedTree::new(Point::new(0, 0));
        let st = t.add_child(t.root(), NodeKind::Steiner, Point::new(1500, 0));
        t.add_child(st, NodeKind::Sink(0), Point::new(1500, 2500));
        let b = t.add_child(st, NodeKind::Buffer(12), Point::new(3000, 0));
        let st2 = t.add_child(b, NodeKind::Steiner, Point::new(5000, 500));
        t.add_child(st2, NodeKind::Sink(1), Point::new(5000, 3000));
        let b2 = t.add_child(st2, NodeKind::Buffer(4), Point::new(7000, 500));
        t.add_child(b2, NodeKind::Sink(2), Point::new(9000, 2000));

        let eval = t.evaluate(&tech, &driver, &loads, &reqs);
        let net = RcNetwork::from_tree(&t, &tech, &loads);
        assert_eq!(net.stages.len(), 3);
        let d = net.sink_delays_ps(&driver, 3);
        for (k, (dk, ek)) in d.iter().zip(&eval.sink_delays_ps).enumerate() {
            assert!((dk - ek).abs() < 1e-6, "sink {k}: {dk} vs {ek}");
        }
    }

    #[test]
    fn stage_load_matches_root_load() {
        let tech = tech();
        let loads = [Cap::from_ff(10.0)];
        let mut t = BufferedTree::new(Point::new(0, 0));
        t.add_child(t.root(), NodeKind::Sink(0), Point::new(2000, 0));
        let net = RcNetwork::from_tree(&t, &tech, &loads);
        let eval = t.evaluate(&tech, &Driver::default(), &loads, &[0.0]);
        assert!((net.stage_load_ff(0) - eval.root_load.to_ff()).abs() < 0.2);
    }

    #[test]
    fn spice_deck_shape() {
        let tech = tech();
        let loads = [Cap::from_ff(10.0)];
        let mut t = BufferedTree::new(Point::new(0, 0));
        let b = t.add_child(t.root(), NodeKind::Buffer(0), Point::new(500, 0));
        t.add_child(b, NodeKind::Sink(0), Point::new(900, 0));
        let net = RcNetwork::from_tree(&t, &tech, &loads);
        let deck = net.to_spice("unit test");
        assert!(deck.starts_with("* unit test"));
        assert!(deck.contains("* stage 1"));
        assert!(deck.trim_end().ends_with(".end"));
        assert!(deck.matches("\nR").count() >= 2);
    }
}
