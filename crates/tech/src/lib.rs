//! Technology substrate for the MERLIN reproduction.
//!
//! The paper's experiments use an industrial 0.35 µm standard-cell library
//! with 34 buffers, Elmore wire delays, and a 4-parameter gate-delay
//! equation [LSP98]. This crate provides faithful, self-contained stand-ins
//! for all of that:
//!
//! * [`units`] — capacitance/time/area unit conventions (capacitance is
//!   quantized, which is what bounds the `q` in the paper's
//!   pseudo-polynomial complexity statements),
//! * [`wire::WireModel`] — per-λ wire resistance/capacitance and Elmore
//!   delay of an unbranched wire,
//! * [`buffer::Buffer`] / [`library::BufferLibrary`] — buffer cells and the
//!   synthetic 34-buffer 0.35 µm library,
//! * [`delay`] — the 4-parameter gate-delay equation with output-slew
//!   propagation (used for final evaluation; the DP uses the linear RC
//!   form, as in the paper's own references),
//! * [`btree::BufferedTree`] — the buffered rectilinear routing tree that
//!   every algorithm in the workspace produces, together with an
//!   *independent* Elmore evaluator used to cross-check DP bookkeeping.
//!
//! # Examples
//!
//! ```
//! use merlin_tech::{BufferLibrary, Technology};
//!
//! let tech = Technology::synthetic_035();
//! assert_eq!(tech.library.len(), 34);
//! let b = &tech.library[0];
//! // A buffer driving a 100 fF load has a positive delay.
//! assert!(b.delay_linear_ps(merlin_tech::units::Cap::from_ff(100.0)) > 0.0);
//! ```

pub mod btree;
pub mod buffer;
pub mod delay;
pub mod driver;
pub mod library;
pub mod rcnet;
pub mod svg;
pub mod units;
pub mod wire;

pub use btree::{BufferedTree, Evaluation, NodeId, NodeKind, TreeNode};
pub use buffer::Buffer;
pub use driver::Driver;
pub use library::BufferLibrary;
pub use units::{Cap, PsTime};
pub use wire::WireModel;

/// A complete technology description: wire model + buffer library.
///
/// Everything the optimization engines need to know about the process is
/// collected here so it can be passed around as one `&Technology`.
#[derive(Clone, Debug)]
pub struct Technology {
    /// Interconnect RC model.
    pub wire: WireModel,
    /// Available buffer cells.
    pub library: BufferLibrary,
}

impl Technology {
    /// The synthetic 0.35 µm technology used throughout the reproduction:
    /// a 34-buffer library with geometrically spaced drive strengths and a
    /// wire model with realistic per-λ RC (λ = 0.2 µm).
    pub fn synthetic_035() -> Self {
        Technology {
            wire: WireModel::synthetic_035(),
            library: BufferLibrary::synthetic_035(),
        }
    }

    /// A deliberately tiny technology (few buffers, coarse quantization)
    /// for unit tests and exhaustive cross-checks.
    pub fn tiny_test() -> Self {
        Technology {
            wire: WireModel::synthetic_035(),
            library: BufferLibrary::tiny_test(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_library_has_34_buffers() {
        let t = Technology::synthetic_035();
        assert_eq!(t.library.len(), 34);
    }

    #[test]
    fn tiny_library_is_small() {
        let t = Technology::tiny_test();
        assert!(t.library.len() <= 4);
    }
}
