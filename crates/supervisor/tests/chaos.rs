//! Supervisor chaos tests (require `--features fault-inject`).
//!
//! These exercise the two supervision mechanisms the unit tests cannot:
//! worker threads inheriting the batch's chaos config via
//! `fault::seed_thread` (the registry is thread-local, so an unseeded pool
//! would silently run fault-free), and the watchdog abandoning stalled
//! workers, retrying on a replacement, and ultimately capturing a
//! `.repro` artifact when attempts run out.

#![cfg(feature = "fault-inject")]

use std::path::PathBuf;
use std::time::Duration;

use merlin_netlist::bench_nets::random_net;
use merlin_netlist::Net;
use merlin_resilience::fault::{FaultConfig, FaultKind};
use merlin_resilience::journal::RecordStatus;
use merlin_resilience::{RetryPolicy, ServingTier};
use merlin_supervisor::{parse_repro, run_batch, BatchConfig};
use merlin_tech::Technology;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("merlin-chaos-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

fn batch(n: usize) -> Vec<Net> {
    let tech = Technology::synthetic_035();
    (0..n)
        .map(|i| random_net(&format!("net{i}"), 4, 7 + i as u64, &tech))
        .collect()
}

#[test]
fn worker_threads_inherit_the_chaos_config() {
    let dir = tmp_dir("seeding");
    let tech = Technology::synthetic_035();
    let mut fault = FaultConfig::none();
    // Each seeded worker's *first* flow III entry panics; the resilient
    // ladder absorbs it and serves from a weaker tier. If seed_thread
    // were skipped, every worker would run fault-free and every net
    // would serve from the merlin tier.
    assert!(fault.arm(
        "flows.flow3.run",
        FaultKind::Panic,
        1,
        Duration::from_millis(1)
    ));
    let cfg = BatchConfig {
        jobs: 2,
        fault,
        ..BatchConfig::default()
    };
    let report = run_batch(batch(4), &tech, &cfg, &dir.join("run.journal")).expect("batch runs");
    assert_eq!(report.lost(), 0);
    assert!(
        report.rows.iter().all(|r| r.status == RecordStatus::Served),
        "the ladder degrades, it does not fail"
    );
    let degraded = report
        .rows
        .iter()
        .filter(|r| r.tier != ServingTier::Merlin)
        .count();
    assert!(
        degraded >= 1,
        "at least one worker hit the seeded panic; an unseeded pool would show zero"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn watchdog_abandons_a_stalled_worker_and_a_retry_serves() {
    let dir = tmp_dir("watchdog-retry");
    let tech = Technology::synthetic_035();
    let mut fault = FaultConfig::none();
    // The first flow III entry on every seeded worker stalls far past the
    // watchdog limit. The retry enters the ladder at the single-pass rung
    // (RetryPolicy perturbation), which never reaches the armed site, so
    // the replacement worker serves cleanly.
    assert!(fault.arm(
        "flows.flow3.run",
        FaultKind::Stall,
        1,
        Duration::from_millis(4_000)
    ));
    let cfg = BatchConfig {
        jobs: 1,
        fault,
        watchdog_limit: Some(Duration::from_millis(1_000)),
        watchdog_poll: Duration::from_millis(20),
        retry: RetryPolicy {
            base_backoff: Duration::from_millis(1),
            ..RetryPolicy::default()
        },
        ..BatchConfig::default()
    };
    let report = run_batch(batch(1), &tech, &cfg, &dir.join("run.journal")).expect("batch runs");
    let row = &report.rows[0];
    assert_eq!(row.status, RecordStatus::Served);
    assert_eq!(row.attempts, 2, "one timed-out attempt, one serving retry");
    assert!(
        row.tier >= ServingTier::SinglePass,
        "the retry entered below the merlin rung, got {}",
        row.tier
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn replay_restores_the_callers_fault_registry() {
    use merlin_resilience::fault;
    use merlin_supervisor::{replay, Repro};
    let tech = Technology::synthetic_035();
    fault::disarm_all();
    fault::arm("caller.site", FaultKind::EmptyCurve, 1);
    let mut chaos = FaultConfig::none();
    assert!(chaos.arm(
        "flows.flow3.run",
        FaultKind::Panic,
        1,
        Duration::from_millis(1)
    ));
    let repro = Repro {
        cause: RecordStatus::FailedDegraded,
        accept_tier: ServingTier::DirectRoute,
        max_attempts: 2,
        budget_ms: None,
        work_limit: None,
        watchdog_ms: None,
        chaos,
        net: random_net("hygiene", 4, 11, &tech),
    };
    let _ = replay(&repro, &tech);
    // The artifact's chaos plan must not outlive the replay, and the
    // caller's own plan must be re-armed.
    let specs = fault::snapshot().specs();
    assert_eq!(specs.len(), 1, "only the caller's plan survives");
    assert_eq!(specs[0].0, "caller.site");
    fault::disarm_all();
}

#[test]
fn exhausted_watchdog_timeouts_fail_the_net_and_capture_an_artifact() {
    let dir = tmp_dir("watchdog-exhaust");
    let artifacts = dir.join("artifacts");
    let tech = Technology::synthetic_035();
    let mut fault = FaultConfig::none();
    assert!(fault.arm(
        "flows.flow3.run",
        FaultKind::Stall,
        1,
        Duration::from_millis(4_000)
    ));
    let cfg = BatchConfig {
        jobs: 1,
        fault,
        watchdog_limit: Some(Duration::from_millis(1_000)),
        watchdog_poll: Duration::from_millis(20),
        retry: RetryPolicy::no_retries(),
        artifacts_dir: Some(artifacts.clone()),
        // The minimizer replays the injected stall per probe; keep the
        // artifact verbatim instead.
        minimize: false,
        ..BatchConfig::default()
    };
    let report = run_batch(batch(1), &tech, &cfg, &dir.join("run.journal")).expect("batch runs");
    let row = &report.rows[0];
    assert_eq!(row.status, RecordStatus::FailedTimeout);
    assert_eq!(row.attempts, 1);
    assert_eq!(row.hash, 0, "failures carry no outcome hash");
    let text = std::fs::read_to_string(artifacts.join("0-net0.repro")).expect("artifact written");
    let repro = parse_repro(&text).expect("artifact parses");
    assert_eq!(repro.cause, RecordStatus::FailedTimeout);
    assert_eq!(repro.watchdog_ms, Some(1_000));
    let specs = repro.chaos.specs();
    assert_eq!(specs.len(), 1, "the chaos config rides along");
    assert_eq!(specs[0].0, "flows.flow3.run");
    assert_eq!(specs[0].1, FaultKind::Stall);
    let _ = std::fs::remove_dir_all(&dir);
}
