//! Table-driven journal corruption policy tests.
//!
//! The write-ahead journal must tolerate exactly the damage a killed
//! process can produce (a torn final line) and duplicated records from an
//! interrupted resume, while *refusing* damage that signals a different
//! problem: an unknown format version or corruption in the middle of the
//! file.

use std::path::PathBuf;

use merlin_resilience::journal::{JournalRecord, RecordStatus};
use merlin_resilience::ServingTier;
use merlin_supervisor::{load_journal, JournalLoadError, JournalWriter};

/// What a corruption case is expected to produce.
enum Expect {
    /// Load succeeds with this many records and this many warnings.
    Loaded { records: usize, warnings: usize },
    /// Load is refused with an unknown-version error.
    RefusedVersion,
    /// Load is refused as corrupt at this 1-based line.
    Corrupt { line: usize },
}

struct Case {
    name: &'static str,
    content: &'static str,
    expect: Expect,
}

const GOOD_0: &str =
    "idx=0 net=n0 tier=merlin attempts=1 timeouts=0 status=served hash=00000000000000aa";
const GOOD_1: &str =
    "idx=1 net=n1 tier=merlin attempts=2 timeouts=0 status=served hash=00000000000000bb";

fn cases() -> Vec<Case> {
    vec![
        Case {
            name: "clean journal loads fully",
            content: "#merlin-journal v2\n\
                      idx=0 net=n0 tier=merlin attempts=1 timeouts=0 status=served hash=00000000000000aa\n\
                      idx=1 net=n1 tier=merlin attempts=2 timeouts=0 status=served hash=00000000000000bb\n",
            expect: Expect::Loaded {
                records: 2,
                warnings: 0,
            },
        },
        Case {
            name: "header only is an empty journal",
            content: "#merlin-journal v2\n",
            expect: Expect::Loaded {
                records: 0,
                warnings: 0,
            },
        },
        Case {
            name: "truncated last line is skipped with a warning",
            content: "#merlin-journal v2\n\
                      idx=0 net=n0 tier=merlin attempts=1 timeouts=0 status=served hash=00000000000000aa\n\
                      idx=1 net=n1 tier=merlin attempts=2 timeouts=0 status=ser",
            expect: Expect::Loaded {
                records: 1,
                warnings: 1,
            },
        },
        Case {
            name: "last line torn inside the hash is skipped",
            content: "#merlin-journal v2\n\
                      idx=0 net=n0 tier=merlin attempts=1 timeouts=0 status=served hash=00000000000000aa\n\
                      idx=1 net=n1 tier=merlin attempts=2 timeouts=0 status=served hash=00000000000\n",
            expect: Expect::Loaded {
                records: 1,
                warnings: 1,
            },
        },
        Case {
            name: "duplicate net record keeps the first and warns",
            content: "#merlin-journal v2\n\
                      idx=0 net=n0 tier=merlin attempts=1 timeouts=0 status=served hash=00000000000000aa\n\
                      idx=0 net=n0 tier=direct attempts=3 timeouts=0 status=failed-degraded \
                      hash=0000000000000000\n",
            expect: Expect::Loaded {
                records: 1,
                warnings: 1,
            },
        },
        Case {
            name: "unknown version header is refused",
            content: "#merlin-journal v3\n\
                      idx=0 net=n0 tier=merlin attempts=1 timeouts=0 status=served hash=00000000000000aa\n",
            expect: Expect::RefusedVersion,
        },
        Case {
            name: "missing header is refused",
            content: "idx=0 net=n0 tier=merlin attempts=1 timeouts=0 status=served hash=00000000000000aa\n",
            expect: Expect::RefusedVersion,
        },
        Case {
            name: "garbage in the middle is hard corruption",
            content: "#merlin-journal v2\n\
                      idx=0 net=n0 tier=merlin attempts=1 timeouts=0 status=served hash=00000000000000aa\n\
                      ]]]]not a record[[[[\n\
                      idx=1 net=n1 tier=merlin attempts=2 timeouts=0 status=served hash=00000000000000bb\n",
            expect: Expect::Corrupt { line: 3 },
        },
        Case {
            name: "blank line in the middle is hard corruption",
            content: "#merlin-journal v2\n\
                      idx=0 net=n0 tier=merlin attempts=1 timeouts=0 status=served hash=00000000000000aa\n\
                      \n\
                      idx=1 net=n1 tier=merlin attempts=2 timeouts=0 status=served hash=00000000000000bb\n",
            expect: Expect::Corrupt { line: 3 },
        },
    ]
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "merlin-corruption-{}-{}.journal",
        std::process::id(),
        name.replace(' ', "-")
    ))
}

#[test]
fn corruption_policy_table() {
    // Sanity: the fixtures really are the codec's canonical encoding.
    assert!(GOOD_0.contains("idx=0") && GOOD_1.contains("idx=1"));
    for case in cases() {
        let path = tmp(case.name);
        std::fs::write(&path, case.content).expect("write journal fixture");
        let result = load_journal(&path);
        match case.expect {
            Expect::Loaded { records, warnings } => {
                let loaded = result
                    .unwrap_or_else(|e| panic!("{}: expected load, got {e}", case.name))
                    .unwrap_or_else(|| panic!("{}: file exists", case.name));
                assert_eq!(loaded.records.len(), records, "{}", case.name);
                assert_eq!(loaded.warnings.len(), warnings, "{}", case.name);
            }
            Expect::RefusedVersion => {
                match result {
                    Err(JournalLoadError::BadHeader { .. }) => {}
                    other => panic!("{}: expected version refusal, got {other:?}", case.name),
                };
            }
            Expect::Corrupt { line } => match result {
                Err(JournalLoadError::Corrupt { line: got, .. }) => {
                    assert_eq!(got, line, "{}", case.name);
                }
                other => panic!("{}: expected corruption error, got {other:?}", case.name),
            },
        }
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn resume_after_a_torn_final_line_keeps_the_journal_loadable() {
    // The torn fragment is tolerated at load time, but a resume must not
    // append onto it: the merged line would no longer be final once more
    // records follow, turning into a hard corruption error on the next
    // load. append_to heals the tail first.
    let path = tmp("torn then resume");
    std::fs::write(
        &path,
        "#merlin-journal v2\n\
         idx=0 net=n0 tier=merlin attempts=1 timeouts=0 status=served hash=00000000000000aa\n\
         idx=1 net=n1 tier=merlin attempts=2 timeouts=0 status=ser",
    )
    .expect("write fixture");
    let mut w = JournalWriter::append_to(&path).expect("reopen for resume");
    w.append(&JournalRecord {
        idx: 1,
        net: "n1".to_owned(),
        tier: ServingTier::Merlin,
        attempts: 1,
        timeouts: 0,
        status: RecordStatus::Served,
        hash: 0xbb,
    })
    .expect("append after torn tail");
    drop(w);
    let loaded = load_journal(&path)
        .expect("journal reloads cleanly after resume")
        .expect("exists");
    assert_eq!(loaded.records.len(), 2);
    assert_eq!(
        loaded.records[&1].attempts, 1,
        "the fresh record, not the fragment"
    );
    assert!(
        loaded.warnings.is_empty(),
        "the fragment was truncated away"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn duplicate_keeps_first_record_content() {
    let path = tmp("duplicate-content");
    std::fs::write(
        &path,
        "#merlin-journal v2\n\
         idx=4 net=n4 tier=merlin attempts=1 timeouts=0 status=served hash=00000000000000aa\n\
         idx=4 net=n4 tier=direct attempts=3 timeouts=0 status=failed-timeout hash=0000000000000000\n",
    )
    .expect("write fixture");
    let loaded = load_journal(&path).expect("loads").expect("exists");
    let rec = &loaded.records[&4];
    assert_eq!(rec.attempts, 1, "first record wins");
    assert_eq!(rec.hash, 0xaa);
    let _ = std::fs::remove_file(&path);
}
