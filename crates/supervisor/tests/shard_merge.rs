//! Property: segment merging is partition- and order-independent.
//!
//! A process-isolated batch scatters its journal records across one
//! segment file per shard; `resume` must rebuild the *same* report no
//! matter how the records were partitioned (any shard count, including
//! empty shards), in what order each segment received its records, or
//! in what order the segments are handed to `merge_segments`. The
//! property pins the resume guarantee end to end through the real file
//! writer and loader: every generated partition renders byte-identically
//! to the same record set written as one single-segment journal.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use merlin_resilience::journal::{JournalRecord, RecordStatus};
use merlin_resilience::ServingTier;
use merlin_supervisor::{merge_segments, BatchReport, JournalWriter};
use proptest::prelude::*;

/// Monotonic id so concurrent test cases never share a directory.
static CASE: AtomicUsize = AtomicUsize::new(0);

fn case_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "merlin-shard-merge-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create case dir");
    dir
}

const TIERS: &[ServingTier] = &[
    ServingTier::Merlin,
    ServingTier::SinglePass,
    ServingTier::PtreeVanGinneken,
    ServingTier::LttreePtree,
    ServingTier::DirectRoute,
];
const STATUSES: &[RecordStatus] = &[
    RecordStatus::Served,
    RecordStatus::FailedDegraded,
    RecordStatus::FailedTimeout,
    RecordStatus::FailedCrash,
];

/// Builds one synthetic terminal record from three generated knobs.
fn record(idx: u64, shape: u8, attempts: u8) -> JournalRecord {
    let status = STATUSES[usize::from(shape) % STATUSES.len()];
    let attempts = u32::from(attempts % 4) + 1;
    JournalRecord {
        idx,
        net: format!("net{idx}"),
        tier: TIERS[usize::from(shape / 4) % TIERS.len()],
        attempts,
        // Keep timeouts <= attempts so the record stays plausible.
        timeouts: u32::from(shape % 2) * (attempts - 1),
        status,
        hash: if status == RecordStatus::Served {
            0x9e37_79b9_7f4a_7c15_u64.wrapping_mul(idx + 1)
        } else {
            0
        },
    }
}

/// Deterministic Fisher-Yates driven by generated priorities.
fn shuffled<T>(mut items: Vec<T>, seed: u64) -> Vec<T> {
    let mut state = seed | 1;
    for i in (1..items.len()).rev() {
        // xorshift64* — cheap, deterministic, good enough to scramble.
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        items.swap(i, (state as usize) % (i + 1));
    }
    items
}

proptest! {
    #[test]
    fn any_partition_and_merge_order_renders_byte_identically(
        shapes in prop::collection::vec((0u8..40, 0u8..8), 1..24),
        assign in prop::collection::vec(0usize..6, 24..25),
        shards in 1usize..6,
        seed in 0u64..u64::MAX,
    ) {
        const POPULATION: u64 = 0xfeed_beef;
        let n = shapes.len();
        let records: Vec<JournalRecord> = shapes
            .iter()
            .enumerate()
            .map(|(i, &(shape, attempts))| record(i as u64, shape, attempts))
            .collect();
        let dir = case_dir();

        // Baseline: every record in one single-segment journal.
        let single = dir.join("single.journal");
        {
            let mut w = JournalWriter::create_with_population(&single, POPULATION)
                .expect("create single journal");
            for rec in &records {
                w.append(rec).expect("append to single journal");
            }
        }
        let baseline = merge_segments(&[single]).expect("merge single journal");
        let want = BatchReport::from_merged(baseline, n).render();

        // Partition: records land in their assigned shard, in globally
        // shuffled arrival order (segments interleave in real runs).
        let mut writers: Vec<JournalWriter> = Vec::new();
        let mut paths: Vec<PathBuf> = Vec::new();
        for s in 0..shards {
            let path = dir.join(format!("sharded.journal.seg{s}"));
            writers.push(
                JournalWriter::create_with_population(&path, POPULATION)
                    .expect("create segment"),
            );
            paths.push(path);
        }
        let order = shuffled((0..n).collect::<Vec<usize>>(), seed);
        for i in order {
            let shard = assign[i] % shards;
            writers[shard].append(&records[i]).expect("append to segment");
        }
        drop(writers);

        // Merge the segments in a different (shuffled) order than they
        // were written.
        let merge_order = shuffled(paths, seed.rotate_left(17));
        let merged = merge_segments(&merge_order).expect("merge segments");
        prop_assert_eq!(merged.records.len(), n, "no record lost in the merge");
        let got = BatchReport::from_merged(merged, n).render();
        prop_assert_eq!(&got, &want, "partitioned render differs from single-segment render");

        let _ = std::fs::remove_dir_all(&dir);
    }
}
