//! Kill-and-resume determinism: a batch interrupted after `k` commits and
//! then resumed must produce a final report byte-identical to an
//! uninterrupted run, re-solving only the unfinished nets.
//!
//! The "kill" is simulated by truncating a completed journal to its first
//! `k` records — exactly the on-disk state a process aborted after its
//! k-th fsync'd commit leaves behind (the supervisor's `crash_after` chaos
//! hook produces the real thing; the shell-level chaos gate in
//! `scripts/check.sh` exercises that path end to end).

use std::path::PathBuf;

use merlin_netlist::bench_nets::random_net;
use merlin_netlist::Net;
use merlin_supervisor::{load_journal, run_batch, BatchConfig};
use merlin_tech::Technology;

fn tmp_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("merlin-determinism-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

fn batch(n: usize) -> Vec<Net> {
    let tech = Technology::synthetic_035();
    (0..n)
        .map(|i| random_net(&format!("net{i}"), 4, 42 + i as u64, &tech))
        .collect()
}

/// Keeps the leading meta lines (header, `#population`) plus the first
/// `k` record lines of a journal file.
fn truncate_to(path: &std::path::Path, k: usize, torn_suffix: Option<&str>) {
    let text = std::fs::read_to_string(path).expect("read journal");
    let mut lines: Vec<&str> = text.lines().collect();
    let meta = lines.iter().take_while(|l| l.starts_with('#')).count();
    assert!(
        lines.len() > meta + k,
        "journal has enough records to truncate"
    );
    lines.truncate(meta + k); // meta lines + k records
    let mut out = lines.join("\n");
    out.push('\n');
    if let Some(torn) = torn_suffix {
        out.push_str(torn); // no trailing newline: a torn final write
    }
    std::fs::write(path, out).expect("rewrite truncated journal");
}

#[test]
fn kill_and_resume_reproduces_the_report_byte_for_byte() {
    const TOTAL: usize = 8;
    const KILL_AT: usize = 3;
    let dir = tmp_dir("resume");
    let tech = Technology::synthetic_035();
    let cfg = BatchConfig {
        jobs: 2,
        ..BatchConfig::default()
    };

    // Uninterrupted reference run.
    let full_journal = dir.join("full.journal");
    let full = run_batch(batch(TOTAL), &tech, &cfg, &full_journal).expect("full run");
    assert_eq!(full.solved, TOTAL);
    assert_eq!(full.lost(), 0);

    // "Kill" after KILL_AT commits, then resume.
    let resumed_journal = dir.join("resumed.journal");
    std::fs::copy(&full_journal, &resumed_journal).expect("copy journal");
    truncate_to(&resumed_journal, KILL_AT, None);
    let resumed = run_batch(batch(TOTAL), &tech, &cfg, &resumed_journal).expect("resumed run");

    // No net is solved twice: exactly the journaled records replay and
    // exactly the remainder is solved fresh.
    assert_eq!(resumed.replayed, KILL_AT);
    assert_eq!(resumed.solved, TOTAL - KILL_AT);
    assert_eq!(resumed.lost(), 0);

    // The deterministic report is byte-identical across the kill.
    assert_eq!(full.render(), resumed.render());

    // The resumed journal replays completely: one record per net, none
    // duplicated.
    let reloaded = load_journal(&resumed_journal)
        .expect("journal loads")
        .expect("journal exists");
    assert_eq!(reloaded.records.len(), TOTAL, "journal replay count");
    assert!(reloaded.warnings.is_empty(), "{:?}", reloaded.warnings);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_over_a_torn_final_record_re_runs_that_net() {
    const TOTAL: usize = 5;
    const KILL_AT: usize = 2;
    let dir = tmp_dir("torn");
    let tech = Technology::synthetic_035();
    let cfg = BatchConfig {
        jobs: 1,
        ..BatchConfig::default()
    };
    let full_journal = dir.join("full.journal");
    let full = run_batch(batch(TOTAL), &tech, &cfg, &full_journal).expect("full run");

    // A process killed mid-append leaves a torn half-record at the end.
    let resumed_journal = dir.join("resumed.journal");
    std::fs::copy(&full_journal, &resumed_journal).expect("copy journal");
    truncate_to(
        &resumed_journal,
        KILL_AT,
        Some("idx=2 net=net2 tier=merlin atte"),
    );
    let resumed = run_batch(batch(TOTAL), &tech, &cfg, &resumed_journal).expect("resumed run");
    assert_eq!(resumed.replayed, KILL_AT, "the torn record does not count");
    assert_eq!(resumed.solved, TOTAL - KILL_AT);
    assert!(
        resumed.warnings.iter().any(|w| w.contains("torn")),
        "{:?}",
        resumed.warnings
    );
    assert_eq!(full.render(), resumed.render());
    let _ = std::fs::remove_dir_all(&dir);
}
