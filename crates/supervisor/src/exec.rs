//! The per-net execution engine, factored out of the CLI-shaped entry
//! points so embedders (the process-mode worker, `merlin-server`) share
//! one retry ladder.
//!
//! [`solve_to_record`] runs one net through the full supervision recipe —
//! deterministic [`RetryPolicy`](merlin_resilience::RetryPolicy)
//! perturbation, per-attempt budgets, acceptance against
//! [`BatchConfig::accept_tier`], failure-artifact capture — and produces
//! the terminal [`JournalRecord`] the caller commits. The loop mirrors
//! thread mode byte for byte when called with [`ExecOptions::default`]:
//! same attempt parameters, budgets, and outcome hashes, which is what
//! keeps a server-solved or process-mode-solved population's report
//! byte-identical to a thread-mode batch over the same nets.
//!
//! Two knobs exist only for embedders:
//!
//! * [`ExecOptions::entry_floor`] — load shedding. An overloaded server
//!   enters the degradation ladder at a *weaker* tier (flow II instead of
//!   flow III) without touching the retry policy itself.
//! * [`ExecOptions::budget_ms`] — deadline propagation. A request-scoped
//!   wall-clock budget (e.g. the remainder of a client deadline after
//!   queue wait) overrides [`BatchConfig::budget_ms`] for this net only.

use std::time::Duration;

use merlin_flows::resilient::resilient_solve_attempt;
use merlin_flows::{FlowResult, FlowsConfig};
use merlin_netlist::Net;
use merlin_resilience::journal::{outcome_hash, JournalRecord, RecordStatus};
use merlin_resilience::ServingTier;
use merlin_tech::Technology;

use crate::artifact::{self, Repro};
use crate::batch::{sanitize_name, BatchConfig};

/// Embedder-side knobs for one [`solve_to_record`] call. The default is
/// byte-identical to thread-mode batch behavior.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExecOptions {
    /// Weakest-allowed ladder *entry* tier: every attempt enters at the
    /// weaker of its retry-policy entry and this floor. `None` (default)
    /// leaves the retry policy alone; a load-shedding server passes the
    /// pressure-mapped tier here.
    pub entry_floor: Option<ServingTier>,
    /// Request-scoped wall-clock budget override in milliseconds. `None`
    /// (default) uses [`BatchConfig::budget_ms`].
    pub budget_ms: Option<u64>,
}

/// What [`solve_to_record`] produced for one net.
#[derive(Debug)]
pub struct ExecOutcome {
    /// The terminal record for the journal.
    pub record: JournalRecord,
    /// The last attempt's tree and evaluation (present for served nets
    /// and for degraded failures alike — it is the best tree found).
    pub result: FlowResult,
    /// A repro the caller should minimize once its batch has drained
    /// (present when the net failed, artifacts are on, and
    /// [`BatchConfig::minimize`] is set; the verbatim artifact is already
    /// written by the time this returns).
    pub minimize: Option<(u64, Repro)>,
}

/// Runs `net` through the retry ladder to a terminal record.
///
/// `backoff_sleep` is called between attempts with the policy's backoff
/// for the *next* attempt; the caller decides how to wait (the process
/// worker interleaves heartbeats, the server just sleeps). Per-net solve
/// failures are records, not errors, so this function is infallible.
pub fn solve_to_record(
    net: &Net,
    tech: &Technology,
    cfg: &BatchConfig,
    idx: u64,
    opts: &ExecOptions,
    backoff_sleep: &mut dyn FnMut(Duration),
) -> ExecOutcome {
    let budget_ms = opts.budget_ms.or(cfg.budget_ms);
    let mut attempt = 0u32;
    loop {
        let mut params = cfg.retry.params(attempt);
        params.threads = cfg.threads;
        params.load_quant = cfg.load_quant;
        if let Some(floor) = opts.entry_floor {
            // Strongest-first `Ord`: `max` picks the weaker tier, so a
            // shed entry can only move the attempt *down* the ladder.
            params.entry = params.entry.max(floor);
        }
        let budget = artifact::attempt_budget(budget_ms, cfg.work_limit, params.budget_scale);
        let flows_cfg = FlowsConfig::for_net_size(net.num_sinks());
        let net_span = merlin_trace::span!("supervisor.net", idx);
        let out = resilient_solve_attempt(net, tech, &flows_cfg, &budget, &params);
        drop(net_span);
        merlin_trace::counter("supervisor.attempts", 1);
        let tier = out.report.served;
        let eval = &out.result.eval;
        let hash = outcome_hash(
            &net.name,
            tier,
            eval.buffer_area,
            eval.num_buffers,
            eval.wirelength,
            eval.delay_ps,
        );
        if tier <= cfg.accept_tier {
            return ExecOutcome {
                record: JournalRecord {
                    idx,
                    net: sanitize_name(&net.name),
                    tier,
                    attempts: attempt + 1,
                    timeouts: 0,
                    status: RecordStatus::Served,
                    hash,
                },
                result: out.result,
                minimize: None,
            };
        }
        if cfg.retry.is_final(attempt) {
            let mut minimize = None;
            if let Some(dir) = &cfg.artifacts_dir {
                let repro = Repro {
                    cause: RecordStatus::FailedDegraded,
                    accept_tier: cfg.accept_tier,
                    max_attempts: cfg.retry.max_attempts,
                    budget_ms: cfg.budget_ms,
                    work_limit: cfg.work_limit,
                    watchdog_ms: None,
                    chaos: cfg.fault.clone(),
                    net: net.clone(),
                };
                match artifact::capture(dir, idx, &repro, tech, false) {
                    Ok(_) if cfg.minimize => minimize = Some((idx, repro)),
                    Ok(_) => {}
                    Err(e) => {
                        eprintln!(
                            "merlin-supervisor: artifact capture for `{}`: {e}",
                            net.name
                        );
                    }
                }
            }
            return ExecOutcome {
                record: JournalRecord {
                    idx,
                    net: sanitize_name(&net.name),
                    tier,
                    attempts: attempt + 1,
                    timeouts: 0,
                    status: RecordStatus::FailedDegraded,
                    hash: 0,
                },
                result: out.result,
                minimize,
            };
        }
        merlin_trace::counter("supervisor.retry", 1);
        merlin_trace::counter("supervisor.retry.degraded", 1);
        attempt += 1;
        let backoff = cfg.retry.backoff(attempt);
        merlin_trace::observe("supervisor.backoff.ms", backoff.as_millis() as u64);
        backoff_sleep(backoff);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use merlin_netlist::bench_nets::random_net;

    #[test]
    fn default_options_serve_and_hash_like_thread_mode() {
        let tech = Technology::synthetic_035();
        let net = random_net("exec0", 4, 11, &tech);
        let cfg = BatchConfig {
            artifacts_dir: None,
            ..BatchConfig::default()
        };
        let mut slept = Vec::new();
        let out = solve_to_record(&net, &tech, &cfg, 7, &ExecOptions::default(), &mut |d| {
            slept.push(d)
        });
        assert_eq!(out.record.idx, 7);
        assert_eq!(out.record.status, RecordStatus::Served);
        assert_eq!(out.record.attempts, 1);
        assert!(slept.is_empty(), "no retries, no backoff");
        assert_ne!(out.record.hash, 0);
        // Determinism: a second run produces the identical record.
        let again = solve_to_record(&net, &tech, &cfg, 7, &ExecOptions::default(), &mut |_| {});
        assert_eq!(out.record, again.record);
    }

    #[test]
    fn entry_floor_sheds_to_a_weaker_tier() {
        let tech = Technology::synthetic_035();
        let net = random_net("exec1", 4, 12, &tech);
        let cfg = BatchConfig {
            artifacts_dir: None,
            ..BatchConfig::default()
        };
        let opts = ExecOptions {
            entry_floor: Some(ServingTier::PtreeVanGinneken),
            budget_ms: None,
        };
        let out = solve_to_record(&net, &tech, &cfg, 0, &opts, &mut |_| {});
        assert_eq!(out.record.status, RecordStatus::Served);
        // The ladder was entered at flow II, so MERLIN cannot have served.
        assert!(
            out.record.tier >= ServingTier::PtreeVanGinneken,
            "shed entry must skip the stronger tiers, served {}",
            out.record.tier
        );
    }

    #[test]
    fn degraded_net_exhausts_attempts_and_reports_failure() {
        let tech = Technology::synthetic_035();
        let net = random_net("exec2", 4, 13, &tech);
        // Demand more than any tier can deliver: accept only MERLIN but
        // enter the ladder below it, so every attempt is a degraded serve.
        let cfg = BatchConfig {
            artifacts_dir: None,
            accept_tier: ServingTier::Merlin,
            ..BatchConfig::default()
        };
        let opts = ExecOptions {
            entry_floor: Some(ServingTier::LttreePtree),
            budget_ms: None,
        };
        let mut backoffs = 0u32;
        let out = solve_to_record(&net, &tech, &cfg, 3, &opts, &mut |_| backoffs += 1);
        assert_eq!(out.record.status, RecordStatus::FailedDegraded);
        assert_eq!(out.record.attempts, cfg.retry.max_attempts);
        assert_eq!(backoffs, cfg.retry.max_attempts - 1);
        assert_eq!(out.record.hash, 0);
    }
}
