//! The worker↔parent heartbeat protocol for process-isolated batches.
//!
//! A shard worker speaks a line-oriented protocol on its **stdout** (one
//! flushed line per event); the parent supervisor reads it to track
//! liveness and progress. Worker diagnostics go to stderr, so stdout
//! carries nothing but protocol lines:
//!
//! ```text
//! hb ready shard=0 shards=4 pending=50
//! hb start idx=12
//! hb commit idx=12 status=served
//! hb alive
//! hb sealed
//! ```
//!
//! * `ready` — the worker loaded its segment and computed its pending
//!   set (emitted once, right after startup).
//! * `start` / `commit` — brackets one net's solve; the parent uses
//!   `start` without a matching `commit` to attribute a crash to a net
//!   (poison quarantine) and to detect a wedged solve.
//! * `alive` — emitted at natural checkpoints (retry backoff slices,
//!   between nets) by the *solving* thread, so a wedged worker genuinely
//!   goes silent instead of being kept alive by a side ticker.
//! * `sealed` — the worker wrote the `#sealed` journal marker and is
//!   about to exit cleanly.
//!
//! The parent treats any line that does not decode as garbage: counted
//! (`supervisor.proc.heartbeat.garbage`) but **not** treated as a sign of
//! life, so a worker spewing noise still trips the watchdog.
//!
//! The parent→worker channel (worker stdin) carries a single command,
//! [`DRAIN_COMMAND`]: finish the in-flight net, seal the segment, exit.
//! EOF on stdin means the parent is gone and is treated as a drain too —
//! that is what stops an orphaned worker from racing a resumed batch for
//! its segment file.

use std::fmt;

use merlin_resilience::journal::RecordStatus;

/// The one parent→worker stdin command: finish the in-flight net, seal,
/// exit cleanly.
pub const DRAIN_COMMAND: &str = "drain";

/// One worker→parent protocol event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Heartbeat {
    /// Worker is up: its shard assignment and how many nets it has left.
    Ready {
        /// This worker's shard index.
        shard: u32,
        /// Total shard count the worker is partitioning by.
        shards: u32,
        /// Nets in this shard still lacking a journal record.
        pending: u64,
    },
    /// Proof of life with no progress attached.
    Alive,
    /// The worker began solving the net with this batch index.
    NetStarted {
        /// Batch index of the net.
        idx: u64,
    },
    /// The worker durably journaled the net's terminal record.
    NetCommitted {
        /// Batch index of the net.
        idx: u64,
        /// Terminal status that was journaled.
        status: RecordStatus,
    },
    /// The worker sealed its segment and is exiting cleanly.
    Sealed,
}

/// Why a heartbeat line failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HeartbeatDecodeError {
    /// Human-readable reason.
    pub reason: String,
}

impl fmt::Display for HeartbeatDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad heartbeat line: {}", self.reason)
    }
}

impl std::error::Error for HeartbeatDecodeError {}

fn bad(reason: impl Into<String>) -> HeartbeatDecodeError {
    HeartbeatDecodeError {
        reason: reason.into(),
    }
}

fn kv<'a>(tok: Option<&'a str>, key: &str) -> Result<&'a str, HeartbeatDecodeError> {
    let tok = tok.ok_or_else(|| bad(format!("missing field `{key}`")))?;
    tok.strip_prefix(key)
        .and_then(|rest| rest.strip_prefix('='))
        .ok_or_else(|| bad(format!("expected `{key}=...`, found `{tok}`")))
}

impl Heartbeat {
    /// Encodes the event as one protocol line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            Heartbeat::Ready {
                shard,
                shards,
                pending,
            } => format!("hb ready shard={shard} shards={shards} pending={pending}"),
            Heartbeat::Alive => "hb alive".to_owned(),
            Heartbeat::NetStarted { idx } => format!("hb start idx={idx}"),
            Heartbeat::NetCommitted { idx, status } => {
                format!("hb commit idx={idx} status={}", status.label())
            }
            Heartbeat::Sealed => "hb sealed".to_owned(),
        }
    }

    /// Decodes one protocol line.
    ///
    /// # Errors
    ///
    /// A [`HeartbeatDecodeError`] naming the first malformed token. The
    /// parent counts these as garbage; they never refresh a worker's
    /// liveness clock.
    pub fn decode(line: &str) -> Result<Heartbeat, HeartbeatDecodeError> {
        let mut it = line.split_whitespace();
        match it.next() {
            Some("hb") => {}
            Some(other) => return Err(bad(format!("expected `hb`, found `{other}`"))),
            None => return Err(bad("empty line")),
        }
        let verb = it.next().ok_or_else(|| bad("missing verb"))?;
        let event = match verb {
            "ready" => {
                let shard = kv(it.next(), "shard")?
                    .parse::<u32>()
                    .map_err(|_| bad("malformed shard"))?;
                let shards = kv(it.next(), "shards")?
                    .parse::<u32>()
                    .map_err(|_| bad("malformed shards"))?;
                let pending = kv(it.next(), "pending")?
                    .parse::<u64>()
                    .map_err(|_| bad("malformed pending"))?;
                Heartbeat::Ready {
                    shard,
                    shards,
                    pending,
                }
            }
            "alive" => Heartbeat::Alive,
            "start" => {
                let idx = kv(it.next(), "idx")?
                    .parse::<u64>()
                    .map_err(|_| bad("malformed idx"))?;
                Heartbeat::NetStarted { idx }
            }
            "commit" => {
                let idx = kv(it.next(), "idx")?
                    .parse::<u64>()
                    .map_err(|_| bad("malformed idx"))?;
                let status_tok = kv(it.next(), "status")?;
                let status = RecordStatus::parse(status_tok)
                    .ok_or_else(|| bad(format!("unknown status `{status_tok}`")))?;
                Heartbeat::NetCommitted { idx, status }
            }
            "sealed" => Heartbeat::Sealed,
            other => return Err(bad(format!("unknown verb `{other}`"))),
        };
        if let Some(extra) = it.next() {
            return Err(bad(format!("trailing token `{extra}`")));
        }
        Ok(event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_event_round_trips() {
        let events = [
            Heartbeat::Ready {
                shard: 3,
                shards: 8,
                pending: 25,
            },
            Heartbeat::Alive,
            Heartbeat::NetStarted { idx: 17 },
            Heartbeat::NetCommitted {
                idx: 17,
                status: RecordStatus::Served,
            },
            Heartbeat::NetCommitted {
                idx: 18,
                status: RecordStatus::FailedCrash,
            },
            Heartbeat::Sealed,
        ];
        for ev in events {
            assert_eq!(Heartbeat::decode(&ev.encode()), Ok(ev));
        }
    }

    #[test]
    fn garbage_lines_are_rejected() {
        for line in [
            "",
            "nonsense",
            "hb",
            "hb bogus",
            "hb start",
            "hb start idx=x",
            "hb commit idx=1 status=nope",
            "hb alive extra",
            "hb ready shard=1 shards=2",
        ] {
            assert!(Heartbeat::decode(line).is_err(), "`{line}` must not decode");
        }
    }

    #[test]
    fn torn_prefixes_never_decode_as_a_different_event() {
        let line = Heartbeat::NetCommitted {
            idx: 123,
            status: RecordStatus::Served,
        }
        .encode();
        for cut in 1..line.len() {
            if let Ok(ev) = Heartbeat::decode(&line[..cut]) {
                panic!("prefix `{}` decoded as {ev:?}", &line[..cut]);
            }
        }
    }
}
