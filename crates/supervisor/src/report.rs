//! The batch roll-up report.
//!
//! [`BatchReport::render`] is the supervisor's *deterministic* summary:
//! it is built purely from journal records (sorted by net index) and
//! deliberately excludes every wall-clock or scheduling-dependent figure,
//! so an interrupted-and-resumed batch renders byte-identically to an
//! uninterrupted one — the property the kill-and-resume determinism test
//! byte-compares. Run diagnostics that cannot be deterministic (how many
//! records were replayed vs solved this run, wall time, journal-damage
//! warnings) live in plain fields and are printed separately by the CLI.

use std::fmt::Write as _;

use merlin_resilience::journal::{JournalRecord, RecordStatus};
use merlin_resilience::ServingTier;

/// The terminal outcome of a whole batch.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Terminal records, sorted by batch index.
    pub rows: Vec<JournalRecord>,
    /// How many nets the batch was asked to solve.
    pub expected: usize,
    /// Records replayed from a pre-existing journal (resume); excluded
    /// from [`BatchReport::render`].
    pub replayed: usize,
    /// Nets solved by this process; excluded from [`BatchReport::render`].
    pub solved: usize,
    /// Journal-damage notes from load time; excluded from
    /// [`BatchReport::render`].
    pub warnings: Vec<String>,
    /// Wall-clock seconds this run spent; excluded from
    /// [`BatchReport::render`].
    pub wall_s: f64,
    /// Per-thread trace streams (supervisor + workers, merged by worker
    /// id) when the batch ran with `capture_trace`; excluded from
    /// [`BatchReport::render`] — spans and counters are wall-clock shaped.
    pub trace: Option<merlin_trace::TraceSet>,
}

impl BatchReport {
    /// Builds a report straight from merged journal records — the resume
    /// path for process-isolated batches, where every row comes from
    /// segment files rather than an in-process event loop. Rows are the
    /// records sorted by net index (their `BTreeMap` order), so the render
    /// is byte-stable for any segment partition and merge order.
    pub fn from_merged(merged: crate::journal::MergedJournal, expected: usize) -> BatchReport {
        let replayed = merged.records.len();
        BatchReport {
            rows: merged.records.into_values().collect(),
            expected,
            replayed,
            solved: 0,
            warnings: merged.warnings,
            wall_s: 0.0,
            trace: None,
        }
    }

    /// Nets with no terminal record (should always be 0 after a completed
    /// run; the chaos gate greps for it).
    pub fn lost(&self) -> usize {
        self.expected.saturating_sub(self.rows.len())
    }

    /// Sum of retry attempts beyond each net's first.
    pub fn retries(&self) -> u64 {
        self.rows
            .iter()
            .map(|r| u64::from(r.attempts.saturating_sub(1)))
            .sum()
    }

    /// Total watchdog fires across the batch (journal v2 `timeouts`,
    /// summed; deterministic because it replays from the journal).
    pub fn watchdog_fires(&self) -> u64 {
        self.rows.iter().map(|r| u64::from(r.timeouts)).sum()
    }

    /// Retries broken down by cause as `(timeout, degraded)`. A watchdog
    /// fire on the *final* attempt terminates the net (status
    /// failed-timeout) rather than causing a retry, so it is excluded;
    /// every other retry was a below-threshold (degraded) serve.
    pub fn retry_causes(&self) -> (u64, u64) {
        let mut timeout = 0u64;
        for r in &self.rows {
            let terminal_fire = u64::from(r.status == RecordStatus::FailedTimeout);
            timeout += u64::from(r.timeouts).saturating_sub(terminal_fire);
        }
        (timeout, self.retries().saturating_sub(timeout))
    }

    /// The deterministic report text. See the module docs for what is
    /// (and is not) allowed in here.
    pub fn render(&self) -> String {
        let mut served = 0usize;
        let mut degraded = 0usize;
        let mut timeout = 0usize;
        let mut crashed = 0usize;
        for row in &self.rows {
            match row.status {
                RecordStatus::Served => served += 1,
                RecordStatus::FailedDegraded => degraded += 1,
                RecordStatus::FailedTimeout => timeout += 1,
                RecordStatus::FailedCrash => crashed += 1,
            }
        }
        let mut s = String::new();
        let _ = writeln!(s, "#merlin-batch-report");
        let _ = writeln!(
            s,
            "nets: {} served: {served} failed-degraded: {degraded} failed-timeout: {timeout} \
             failed-crash: {crashed} lost: {}",
            self.expected,
            self.lost()
        );
        let _ = writeln!(s, "retries: {}", self.retries());
        let _ = writeln!(s, "watchdog-fires: {}", self.watchdog_fires());
        let (timeout_retries, degraded_retries) = self.retry_causes();
        let _ = writeln!(
            s,
            "retry-causes: timeout={timeout_retries} degraded={degraded_retries}"
        );
        let mut tiers = String::new();
        for tier in ServingTier::LADDER {
            let n = self.rows.iter().filter(|r| r.tier == tier).count();
            if n > 0 {
                if !tiers.is_empty() {
                    tiers.push(' ');
                }
                let _ = write!(tiers, "{}={n}", tier.label());
            }
        }
        let _ = writeln!(s, "tiers: {tiers}");
        for row in &self.rows {
            let _ = writeln!(s, "{}", row.encode());
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(idx: u64, status: RecordStatus, tier: ServingTier, attempts: u32) -> JournalRecord {
        JournalRecord {
            idx,
            net: format!("net{idx}"),
            tier,
            attempts,
            timeouts: if status == RecordStatus::FailedTimeout {
                2
            } else {
                0
            },
            status,
            hash: idx * 7,
        }
    }

    fn sample() -> BatchReport {
        BatchReport {
            rows: vec![
                rec(0, RecordStatus::Served, ServingTier::Merlin, 1),
                rec(1, RecordStatus::Served, ServingTier::SinglePass, 2),
                rec(2, RecordStatus::FailedTimeout, ServingTier::DirectRoute, 3),
            ],
            expected: 4,
            replayed: 1,
            solved: 2,
            warnings: vec!["torn line".to_owned()],
            wall_s: 1.25,
            trace: None,
        }
    }

    #[test]
    fn render_counts_and_lists_records() {
        let out = sample().render();
        assert!(out.contains(
            "nets: 4 served: 2 failed-degraded: 0 failed-timeout: 1 failed-crash: 0 lost: 1"
        ));
        assert!(out.contains("retries: 3"), "{out}");
        assert!(
            out.contains("tiers: merlin=1 single-pass=1 direct=1"),
            "{out}"
        );
        assert!(out.contains("watchdog-fires: 2"), "{out}");
        // Net 2 fired the watchdog twice: once mid-run (a retry cause) and
        // once on the final attempt (the terminal failure, not a retry).
        assert!(out.contains("retry-causes: timeout=1 degraded=2"), "{out}");
        assert!(out.contains("idx=1 net=net1 tier=single-pass attempts=2 timeouts=0 status=served"));
    }

    #[test]
    fn render_excludes_nondeterministic_fields() {
        let mut a = sample();
        let mut b = sample();
        a.replayed = 0;
        a.solved = 3;
        a.wall_s = 99.0;
        a.warnings.clear();
        b.replayed = 3;
        b.solved = 0;
        b.wall_s = 0.01;
        b.trace = Some(merlin_trace::TraceSet::single(
            "supervisor",
            merlin_trace::Trace::default(),
        ));
        assert_eq!(a.render(), b.render());
    }
}
