//! The batch solve supervisor: worker pool, watchdog, retry, journal.
//!
//! [`run_batch`] drives `merlin_flows::resilient` across a net population
//! with a fixed pool of worker threads. All scheduling decisions happen in
//! one place — the supervising thread's event loop — and workers do
//! exactly one solve attempt per pull:
//!
//! 1. a worker pulls the next due attempt from the shared queue, records
//!    itself in the in-flight table under a fresh *generation*, solves,
//!    and reports the outcome back over a channel;
//! 2. the watchdog thread (armed via [`BatchConfig::watchdog_limit`])
//!    scans the in-flight table; an attempt over its wall-clock slice is
//!    *abandoned*: its generation is declared dead (the worker's eventual
//!    result will be dropped, the worker exits at its next checkpoint and
//!    is never joined) and the event loop spawns a replacement worker;
//! 3. the event loop is the single decision point: acceptable outcomes
//!    are committed to the journal (append + fsync), unacceptable or
//!    timed-out attempts are either re-queued with backoff under the
//!    [`merlin_resilience::RetryPolicy`] perturbation or — once attempts
//!    are exhausted — committed as failures and captured as `.repro`
//!    artifacts.
//!
//! Nothing in here calls `catch_unwind`: DP panics are already contained
//! by `merlin_resilience::isolate` inside the resilient solver, and the
//! watchdog handles the one failure mode budgets cannot (a stall that
//! never reaches a cooperative check).

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

use merlin_flows::resilient::resilient_solve_attempt;
use merlin_flows::FlowsConfig;
use merlin_netlist::Net;
use merlin_resilience::fault::{self, FaultConfig};
use merlin_resilience::journal::{outcome_hash, JournalRecord, RecordStatus};
use merlin_resilience::{RetryPolicy, ServingTier};
use merlin_tech::Technology;

use crate::artifact::{self, Repro};
use crate::journal::{
    load_journal, population_hash, JournalLoadError, JournalMergeError, JournalWriter,
};
use crate::report::BatchReport;

/// How long a worker dozes between queue polls when nothing is due.
const IDLE_POLL: Duration = Duration::from_millis(50);

/// How long the event loop waits for any event before declaring the run
/// wedged. Generous: a single big net on a loaded machine can legitimately
/// go minutes between events.
const EVENT_TIMEOUT: Duration = Duration::from_secs(600);

/// Everything [`run_batch`] needs to know besides the nets themselves.
#[derive(Clone, Debug)]
pub struct BatchConfig {
    /// Worker threads (minimum 1; capped at the number of pending nets).
    pub jobs: usize,
    /// Per-net wall-clock budget in milliseconds (cooperative; scaled
    /// down per retry). `None` leaves the deadline dimension unlimited.
    pub budget_ms: Option<u64>,
    /// Per-net DP work limit (cooperative; scaled down per retry).
    pub work_limit: Option<u64>,
    /// Retry policy: attempt bound, backoff, perturbation.
    pub retry: RetryPolicy,
    /// The weakest serving tier the batch accepts. The default,
    /// [`ServingTier::DirectRoute`], accepts everything the resilient
    /// solver can produce; [`ServingTier::PtreeVanGinneken`] would retry
    /// (and ultimately fail) nets that only the last-resort tiers served.
    pub accept_tier: ServingTier,
    /// Non-cooperative wall-clock slice per attempt, enforced by the
    /// watchdog thread. `None` disables the watchdog (cooperative budgets
    /// only).
    pub watchdog_limit: Option<Duration>,
    /// Watchdog scan interval.
    pub watchdog_poll: Duration,
    /// Where to write `.repro` failure artifacts; `None` disables capture.
    pub artifacts_dir: Option<PathBuf>,
    /// Whether captured artifacts are greedily minimized first. Leave off
    /// when the failure involves long injected stalls — the minimizer
    /// replays them.
    pub minimize: bool,
    /// Chaos config every worker thread is seeded with (fault-injection
    /// builds only; empty otherwise).
    pub fault: FaultConfig,
    /// Abort the process (`std::process::abort`) immediately after the
    /// Nth journal commit by this run — the chaos gate's stand-in for a
    /// mid-run SIGKILL, placed *after* the fsync so the journal holds
    /// exactly N records from this run. `Some(0)` aborts right after the
    /// journal is opened, before any commit.
    pub crash_after: Option<usize>,
    /// Capture per-thread trace streams: the supervising thread and every
    /// worker enable the `merlin-trace` collector, each net solves inside
    /// a `supervisor.net` span, and the drained streams are merged by
    /// worker id into [`BatchReport::trace`]. Off by default (the
    /// collector's disabled fast path is a single thread-local load).
    pub capture_trace: bool,
    /// Intra-net DP worker threads per solve attempt (`0` = keep the
    /// per-net flows default, which is the sequential engine). The result
    /// is identical at any thread count; keep `jobs × threads` at or
    /// below the core count or the shards just contend with each other.
    pub threads: usize,
    /// Load-quantization divisor for the post-prune curve-reduction dial,
    /// applied to every solve attempt (`0` = keep the per-net flows
    /// default, which is exact). Unlike `threads` this *does* change the
    /// result — quantized curves trade solution quality for speed — so it
    /// is an explicit operator knob, surfaced as `--load-quant` on the
    /// CLI and inherited by the server through its embedded batch config.
    pub load_quant: u32,
    /// Cap on *concurrently-abandoned* worker threads. Every watchdog
    /// abandonment leaks a thread (stalled mid-solve, never joined);
    /// exceeding the cap fails the batch with
    /// [`BatchError::AbandonedWorkerCap`] instead of silently spawning
    /// replacements forever — the old unbounded-leak failure mode.
    pub abandon_cap: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            jobs: std::thread::available_parallelism().map_or(1, |n| n.get()),
            budget_ms: None,
            work_limit: None,
            retry: RetryPolicy::default(),
            accept_tier: ServingTier::DirectRoute,
            watchdog_limit: None,
            watchdog_poll: Duration::from_millis(25),
            artifacts_dir: None,
            minimize: true,
            fault: FaultConfig::none(),
            crash_after: None,
            capture_trace: false,
            threads: 0,
            load_quant: 0,
            abandon_cap: 32,
        }
    }
}

/// Why a batch run failed outright (individual net failures do not fail
/// the batch — they become journal records and artifacts).
#[derive(Debug)]
pub enum BatchError {
    /// A filesystem operation failed.
    Io {
        /// What was being attempted.
        context: String,
        /// The underlying error.
        error: std::io::Error,
    },
    /// The journal could not be loaded (unknown version, mid-file
    /// corruption, unreadable file).
    Journal(JournalLoadError),
    /// The journal exists but does not describe this batch.
    JournalMismatch {
        /// What disagreed.
        detail: String,
    },
    /// No worker produced an event for [`EVENT_TIMEOUT`]; the run is
    /// wedged (this should be unreachable with the watchdog armed).
    Stalled {
        /// How long the event loop waited.
        waited: Duration,
    },
    /// More worker threads are concurrently abandoned (leaked by the
    /// watchdog) than [`BatchConfig::abandon_cap`] allows; the batch
    /// fails instead of leaking without bound.
    AbandonedWorkerCap {
        /// Abandoned threads still live when the cap tripped.
        abandoned: usize,
        /// The configured cap.
        cap: usize,
    },
    /// A set of journal segments could not be merged (process-isolated
    /// mode; see [`crate::journal::merge_segments`]).
    SegmentMerge(JournalMergeError),
    /// A shard's worker subprocess kept dying without committing
    /// anything, exhausting the respawn policy (process-isolated mode).
    WorkerRespawnExhausted {
        /// The shard whose worker kept dying.
        shard: u32,
        /// Consecutive barren deaths observed.
        respawns: u32,
    },
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchError::Io { context, error } => write!(f, "{context}: {error}"),
            BatchError::Journal(e) => write!(f, "{e}"),
            BatchError::JournalMismatch { detail } => {
                write!(f, "journal does not match this batch: {detail}")
            }
            BatchError::Stalled { waited } => write!(
                f,
                "no worker event for {:.0}s; batch is wedged",
                waited.as_secs_f64()
            ),
            BatchError::AbandonedWorkerCap { abandoned, cap } => write!(
                f,
                "{abandoned} abandoned worker threads still live (cap {cap}); failing instead \
                 of leaking without bound"
            ),
            BatchError::SegmentMerge(e) => write!(f, "{e}"),
            BatchError::WorkerRespawnExhausted { shard, respawns } => write!(
                f,
                "shard {shard}: worker died {respawns} times in a row without committing \
                 anything; giving up"
            ),
        }
    }
}

impl std::error::Error for BatchError {}

impl From<JournalLoadError> for BatchError {
    fn from(e: JournalLoadError) -> Self {
        BatchError::Journal(e)
    }
}

impl From<JournalMergeError> for BatchError {
    fn from(e: JournalMergeError) -> Self {
        BatchError::SegmentMerge(e)
    }
}

/// One queued solve attempt.
struct QueueItem {
    idx: usize,
    attempt: u32,
    available_at: Instant,
}

/// One attempt currently being solved by a worker.
struct InFlight {
    gen: u64,
    attempt: u32,
    worker: usize,
    started: Instant,
}

/// The mutable scheduler state, guarded by one mutex.
struct Sched {
    queue: VecDeque<QueueItem>,
    inflight: HashMap<usize, InFlight>,
    /// Generations abandoned by the watchdog: the owning worker drops its
    /// result and exits when it sees its generation here.
    dead_gens: HashSet<u64>,
    /// Worker ids abandoned by the watchdog; never joined.
    dead_workers: HashSet<usize>,
    /// Abandoned worker threads that have not yet observed their dead
    /// generation and exited — the live size of the leak the
    /// [`BatchConfig::abandon_cap`] bounds.
    abandoned_live: usize,
    next_gen: u64,
    shutdown: bool,
}

struct Shared {
    nets: Vec<Net>,
    tech: Technology,
    budget_ms: Option<u64>,
    work_limit: Option<u64>,
    retry: RetryPolicy,
    fault: FaultConfig,
    capture_trace: bool,
    threads: usize,
    load_quant: u32,
    sched: Mutex<Sched>,
    ready: Condvar,
}

enum Event {
    /// A live worker finished an attempt.
    Done {
        idx: usize,
        attempt: u32,
        tier: ServingTier,
        hash: u64,
    },
    /// The watchdog abandoned an attempt (and its worker).
    TimedOut { idx: usize, attempt: u32 },
    /// A worker's drained trace stream, sent once at worker exit when
    /// [`BatchConfig::capture_trace`] is on.
    TraceDump {
        worker: usize,
        trace: merlin_trace::Trace,
    },
}

/// Poison-tolerant lock: a worker panicking mid-solve never holds this
/// mutex (solves run outside it), so inheriting the data is safe.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Blocks until a due attempt is available (claiming it) or shutdown.
fn next_job(shared: &Shared, worker_id: usize) -> Option<(usize, u32, u64)> {
    let mut s = lock(&shared.sched);
    loop {
        if s.shutdown {
            return None;
        }
        let now = Instant::now();
        if let Some(pos) = s.queue.iter().position(|item| item.available_at <= now) {
            let item = s.queue.remove(pos)?;
            let gen = s.next_gen;
            s.next_gen += 1;
            s.inflight.insert(
                item.idx,
                InFlight {
                    gen,
                    attempt: item.attempt,
                    worker: worker_id,
                    started: Instant::now(),
                },
            );
            return Some((item.idx, item.attempt, gen));
        }
        // Nothing due: sleep until the earliest backoff expires (or the
        // idle poll, whichever is sooner — requeues notify the condvar).
        let wait = s
            .queue
            .iter()
            .map(|item| item.available_at)
            .min()
            .map(|t| t.saturating_duration_since(now))
            .unwrap_or(IDLE_POLL)
            .clamp(Duration::from_millis(1), IDLE_POLL);
        let (guard, _) = shared
            .ready
            .wait_timeout(s, wait)
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        s = guard;
    }
}

/// The worker body: seed the chaos config, then pull-solve-report until
/// shutdown (or until the watchdog abandons this worker).
fn worker_loop(shared: Arc<Shared>, tx: mpsc::Sender<Event>, worker_id: usize) {
    fault::seed_thread(&shared.fault);
    if shared.capture_trace {
        merlin_trace::enable();
    }
    while let Some((idx, attempt, gen)) = next_job(&shared, worker_id) {
        let net = &shared.nets[idx];
        let mut params = shared.retry.params(attempt);
        params.threads = shared.threads;
        params.load_quant = shared.load_quant;
        let budget =
            artifact::attempt_budget(shared.budget_ms, shared.work_limit, params.budget_scale);
        let cfg = FlowsConfig::for_net_size(net.num_sinks());
        let net_span = merlin_trace::span!("supervisor.net", idx);
        let out = resilient_solve_attempt(net, &shared.tech, &cfg, &budget, &params);
        drop(net_span);
        merlin_trace::counter("supervisor.attempts", 1);
        let tier = out.report.served;
        let eval = &out.result.eval;
        let hash = outcome_hash(
            &net.name,
            tier,
            eval.buffer_area,
            eval.num_buffers,
            eval.wirelength,
            eval.delay_ps,
        );
        let abandoned = {
            let mut s = lock(&shared.sched);
            if s.dead_gens.remove(&gen) {
                // The watchdog abandoned this attempt and a replacement
                // worker owns our slot: drop the stale result and exit.
                // The stall resolved after all, so the leak shrinks.
                s.abandoned_live = s.abandoned_live.saturating_sub(1);
                true
            } else {
                s.inflight.remove(&idx);
                false
            }
        };
        if abandoned
            || tx
                .send(Event::Done {
                    idx,
                    attempt,
                    tier,
                    hash,
                })
                .is_err()
        {
            break;
        }
    }
    if shared.capture_trace {
        // The dump rides the same channel as solve events; the supervisor
        // drains it after joining the pool.
        let _ = tx.send(Event::TraceDump {
            worker: worker_id,
            trace: merlin_trace::drain(),
        });
    }
}

/// The watchdog body: abandon in-flight attempts over `limit`.
fn watchdog_loop(shared: Arc<Shared>, limit: Duration, poll: Duration, tx: mpsc::Sender<Event>) {
    loop {
        {
            let mut s = lock(&shared.sched);
            if s.shutdown {
                return;
            }
            let now = Instant::now();
            let expired: Vec<usize> = s
                .inflight
                .iter()
                .filter(|(_, f)| now.duration_since(f.started) > limit)
                .map(|(&idx, _)| idx)
                .collect();
            for idx in expired {
                if let Some(f) = s.inflight.remove(&idx) {
                    s.dead_gens.insert(f.gen);
                    s.dead_workers.insert(f.worker);
                    s.abandoned_live = s.abandoned_live.saturating_add(1);
                    if tx
                        .send(Event::TimedOut {
                            idx,
                            attempt: f.attempt,
                        })
                        .is_err()
                    {
                        return;
                    }
                }
            }
        }
        thread::sleep(poll);
    }
}

/// Journal-safe form of a net name: whitespace collapsed to `_` so the
/// name survives the line-oriented record codec. Embedders journaling
/// their own records (the server's deadline fast-fail path) must use the
/// same mapping or resumed reports diverge.
pub fn sanitize_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_whitespace() { '_' } else { c })
        .collect()
}

/// Validates replayed records against the batch: index range and net
/// names must agree. Shared by the thread-mode journal open and the
/// process-mode segment merge.
pub(crate) fn validate_records(
    nets: &[Net],
    records: &BTreeMap<u64, JournalRecord>,
) -> Result<(), BatchError> {
    for (idx, rec) in records {
        let Some(net) = nets.get(*idx as usize) else {
            return Err(BatchError::JournalMismatch {
                detail: format!(
                    "journal records net index {idx} but the batch has {} nets",
                    nets.len()
                ),
            });
        };
        let expected = sanitize_name(&net.name);
        if rec.net != expected {
            return Err(BatchError::JournalMismatch {
                detail: format!(
                    "net index {idx} is `{expected}` in this batch but `{}` in the journal",
                    rec.net
                ),
            });
        }
    }
    Ok(())
}

/// The reopened journal: its appender plus whatever a prior run left.
type OpenedJournal = (JournalWriter, BTreeMap<u64, JournalRecord>, Vec<String>);

/// Loads/creates the journal and validates replayed records against the
/// batch: the recorded `#population` hash must match the input nets
/// (a mismatched input must not silently merge stale results), and
/// replayed records must agree on index range and net names. Journals
/// from before the population stamp are stamped on reopen.
fn open_journal(nets: &[Net], path: &Path) -> Result<OpenedJournal, BatchError> {
    let population = population_hash(nets);
    match load_journal(path)? {
        Some(loaded) => {
            if let Some(recorded) = loaded.population {
                if recorded != population {
                    return Err(BatchError::JournalMismatch {
                        detail: format!(
                            "journal records population hash {recorded:016x} but the input \
                             nets hash to {population:016x}"
                        ),
                    });
                }
            }
            validate_records(nets, &loaded.records)?;
            let mut writer = JournalWriter::append_to(path).map_err(|error| BatchError::Io {
                context: format!("cannot reopen journal {}", path.display()),
                error,
            })?;
            if loaded.population.is_none() {
                writer
                    .append_population(population)
                    .map_err(|error| BatchError::Io {
                        context: format!("cannot stamp journal {}", path.display()),
                        error,
                    })?;
            }
            Ok((writer, loaded.records, loaded.warnings))
        }
        None => {
            let writer =
                JournalWriter::create_with_population(path, population).map_err(|error| {
                    BatchError::Io {
                        context: format!("cannot create journal {}", path.display()),
                        error,
                    }
                })?;
            Ok((writer, BTreeMap::new(), Vec::new()))
        }
    }
}

/// Writes the (unminimized) repro artifact for a terminally failed net
/// and, when minimization is on, queues it in `deferred` so the expensive
/// solve-replaying minimizer runs *after* the event loop instead of
/// blocking journal commits and retry scheduling mid-batch.
fn capture_failure(
    cfg: &BatchConfig,
    idx: usize,
    net: &Net,
    tech: &Technology,
    cause: RecordStatus,
    warnings: &mut Vec<String>,
    deferred: &mut Vec<(usize, Repro)>,
) {
    let Some(dir) = &cfg.artifacts_dir else {
        return;
    };
    let repro = Repro {
        cause,
        accept_tier: cfg.accept_tier,
        max_attempts: cfg.retry.max_attempts,
        budget_ms: cfg.budget_ms,
        work_limit: cfg.work_limit,
        watchdog_ms: cfg.watchdog_limit.map(|d| d.as_millis() as u64),
        chaos: cfg.fault.clone(),
        net: net.clone(),
    };
    // The verbatim artifact lands on disk immediately, so a crash later
    // in the run still leaves a usable repro behind.
    match artifact::capture(dir, idx as u64, &repro, tech, false) {
        Ok(_) if cfg.minimize => deferred.push((idx, repro)),
        Ok(_) => {}
        Err(e) => warnings.push(format!("artifact capture for `{}` failed: {e}", net.name)),
    }
}

/// Replays a journal (and any shard segments) into a report without a
/// net population: nothing is solved or validated against inputs — the
/// records on disk *are* the batch. This is `resume` with no nets: a
/// pure render of what a previous run accomplished. A header-only
/// journal (meta lines, zero records) replays to an empty report
/// (`nets: 0 ... lost: 0`) rather than an error, and a segment set whose
/// members are all header-only does the same.
///
/// # Errors
///
/// Filesystem failures listing or reading the journal/segments, or a
/// corrupt segment ([`BatchError::SegmentMerge`]).
pub fn replay_batch(journal_path: &Path) -> Result<BatchReport, BatchError> {
    let paths = crate::journal::segment_paths(journal_path).map_err(|error| BatchError::Io {
        context: format!("cannot list segments of {}", journal_path.display()),
        error,
    })?;
    let merged = crate::journal::merge_segments(&paths)?;
    let expected = merged.records.len();
    Ok(BatchReport::from_merged(merged, expected))
}

/// Runs (or resumes) a batch: every net in `nets` ends with exactly one
/// terminal record in the journal at `journal_path`, and the returned
/// report rolls the journal up. Nets already journaled are *replayed*,
/// never re-solved.
///
/// # Errors
///
/// Journal problems ([`BatchError::Journal`], [`BatchError::JournalMismatch`]),
/// filesystem failures, or a wedged run ([`BatchError::Stalled`]). Per-net
/// solve failures are not errors — they are [`RecordStatus`] outcomes.
pub fn run_batch(
    nets: Vec<Net>,
    tech: &Technology,
    cfg: &BatchConfig,
    journal_path: &Path,
) -> Result<BatchReport, BatchError> {
    let start = Instant::now();
    if cfg.capture_trace {
        merlin_trace::enable();
    }
    let batch_span = merlin_trace::span!("supervisor.batch");
    let total = nets.len();
    let (mut writer, mut terminal, mut warnings) = open_journal(&nets, journal_path)?;
    if cfg.crash_after == Some(0) {
        // Chaos hook: abort before this run commits anything, leaving
        // only what a prior run journaled (header-only when fresh).
        std::process::abort();
    }
    let replayed = terminal.len();
    let pending_idxs: Vec<usize> = (0..total)
        .filter(|i| !terminal.contains_key(&(*i as u64)))
        .collect();
    let mut pending = pending_idxs.len();
    if pending == 0 {
        drop(batch_span);
        let trace = cfg
            .capture_trace
            .then(|| merlin_trace::TraceSet::single("supervisor", merlin_trace::drain()));
        return Ok(BatchReport {
            rows: terminal.into_values().collect(),
            expected: total,
            replayed,
            solved: 0,
            warnings,
            wall_s: start.elapsed().as_secs_f64(),
            trace,
        });
    }

    let queue: VecDeque<QueueItem> = pending_idxs
        .iter()
        .map(|&idx| QueueItem {
            idx,
            attempt: 0,
            available_at: Instant::now(),
        })
        .collect();
    let shared = Arc::new(Shared {
        nets,
        tech: tech.clone(),
        budget_ms: cfg.budget_ms,
        work_limit: cfg.work_limit,
        retry: cfg.retry,
        fault: cfg.fault.clone(),
        capture_trace: cfg.capture_trace,
        threads: cfg.threads,
        load_quant: cfg.load_quant,
        sched: Mutex::new(Sched {
            queue,
            inflight: HashMap::new(),
            dead_gens: HashSet::new(),
            dead_workers: HashSet::new(),
            abandoned_live: 0,
            next_gen: 0,
            shutdown: false,
        }),
        ready: Condvar::new(),
    });
    let (tx, rx) = mpsc::channel::<Event>();

    let jobs = cfg.jobs.max(1).min(pending);
    let mut handles: Vec<(usize, thread::JoinHandle<()>)> = Vec::new();
    let mut next_worker_id = 0usize;
    let mut spawn_worker = |handles: &mut Vec<(usize, thread::JoinHandle<()>)>| {
        let id = next_worker_id;
        next_worker_id += 1;
        let shared = Arc::clone(&shared);
        let tx = tx.clone();
        let handle = thread::Builder::new()
            .name(format!("merlin-worker-{id}"))
            .spawn(move || worker_loop(shared, tx, id));
        match handle {
            Ok(h) => handles.push((id, h)),
            Err(e) => {
                // The pool shrinks but the batch still drains: remaining
                // workers keep pulling from the shared queue.
                eprintln!("merlin-supervisor: cannot spawn worker {id}: {e}");
            }
        }
    };
    for _ in 0..jobs {
        spawn_worker(&mut handles);
    }
    let watchdog = cfg.watchdog_limit.map(|limit| {
        let shared = Arc::clone(&shared);
        let tx = tx.clone();
        let poll = cfg.watchdog_poll.max(Duration::from_millis(1));
        thread::Builder::new()
            .name("merlin-watchdog".to_owned())
            .spawn(move || watchdog_loop(shared, limit, poll, tx))
    });

    let shutdown = |shared: &Shared| {
        lock(&shared.sched).shutdown = true;
        shared.ready.notify_all();
    };

    let mut solved = 0usize;
    let mut commits = 0usize;
    let mut deferred_minimize: Vec<(usize, Repro)> = Vec::new();
    let mut commit = |rec: JournalRecord,
                      writer: &mut JournalWriter,
                      terminal: &mut BTreeMap<u64, JournalRecord>,
                      warnings: &mut Vec<String>|
     -> usize {
        if let Err(e) = writer.append(&rec) {
            // The record is still tracked in memory so the report is
            // complete; the journal just lost its resume guarantee.
            warnings.push(format!(
                "journal append for net index {} failed: {e}",
                rec.idx
            ));
        }
        merlin_trace::counter("supervisor.journal.commit", 1);
        terminal.insert(rec.idx, rec);
        commits += 1;
        commits
    };

    // Watchdog fires per net index this run, folded into the journal v2
    // `timeouts` field of the net's terminal record.
    let mut timeout_counts: HashMap<usize, u32> = HashMap::new();
    let mut trace_dumps: Vec<(usize, merlin_trace::Trace)> = Vec::new();

    while pending > 0 {
        let event = match rx.recv_timeout(EVENT_TIMEOUT) {
            Ok(event) => event,
            Err(_) => {
                shutdown(&shared);
                return Err(BatchError::Stalled {
                    waited: EVENT_TIMEOUT,
                });
            }
        };
        let mut terminal_record = None;
        match event {
            Event::Done {
                idx,
                attempt,
                tier,
                hash,
            } => {
                if tier <= cfg.accept_tier {
                    terminal_record = Some(JournalRecord {
                        idx: idx as u64,
                        net: sanitize_name(&shared.nets[idx].name),
                        tier,
                        attempts: attempt + 1,
                        timeouts: timeout_counts.get(&idx).copied().unwrap_or(0),
                        status: RecordStatus::Served,
                        hash,
                    });
                } else if cfg.retry.is_final(attempt) {
                    capture_failure(
                        cfg,
                        idx,
                        &shared.nets[idx],
                        tech,
                        RecordStatus::FailedDegraded,
                        &mut warnings,
                        &mut deferred_minimize,
                    );
                    terminal_record = Some(JournalRecord {
                        idx: idx as u64,
                        net: sanitize_name(&shared.nets[idx].name),
                        tier,
                        attempts: attempt + 1,
                        timeouts: timeout_counts.get(&idx).copied().unwrap_or(0),
                        status: RecordStatus::FailedDegraded,
                        hash: 0,
                    });
                }
                if terminal_record.is_none() {
                    merlin_trace::counter("supervisor.retry", 1);
                    merlin_trace::counter("supervisor.retry.degraded", 1);
                    let next = attempt + 1;
                    let backoff = cfg.retry.backoff(next);
                    merlin_trace::observe("supervisor.backoff.ms", backoff.as_millis() as u64);
                    let mut s = lock(&shared.sched);
                    s.queue.push_back(QueueItem {
                        idx,
                        attempt: next,
                        available_at: Instant::now() + backoff,
                    });
                    drop(s);
                    shared.ready.notify_all();
                }
            }
            Event::TimedOut { idx, attempt } => {
                merlin_trace::counter("supervisor.watchdog.fire", 1);
                merlin_trace::counter("supervisor.watchdog.abandoned", 1);
                // The abandoned thread leaks until its stalled solve
                // returns; past the cap the batch fails instead of
                // spawning replacements forever.
                let abandoned = lock(&shared.sched).abandoned_live;
                if abandoned > cfg.abandon_cap {
                    shutdown(&shared);
                    return Err(BatchError::AbandonedWorkerCap {
                        abandoned,
                        cap: cfg.abandon_cap,
                    });
                }
                let fired = timeout_counts.entry(idx).or_insert(0);
                *fired = fired.saturating_add(1);
                if cfg.retry.is_final(attempt) {
                    capture_failure(
                        cfg,
                        idx,
                        &shared.nets[idx],
                        tech,
                        RecordStatus::FailedTimeout,
                        &mut warnings,
                        &mut deferred_minimize,
                    );
                    terminal_record = Some(JournalRecord {
                        idx: idx as u64,
                        net: sanitize_name(&shared.nets[idx].name),
                        tier: ServingTier::DirectRoute,
                        attempts: attempt + 1,
                        timeouts: timeout_counts.get(&idx).copied().unwrap_or(0),
                        status: RecordStatus::FailedTimeout,
                        hash: 0,
                    });
                } else {
                    merlin_trace::counter("supervisor.retry", 1);
                    merlin_trace::counter("supervisor.retry.timeout", 1);
                    let next = attempt + 1;
                    let backoff = cfg.retry.backoff(next);
                    merlin_trace::observe("supervisor.backoff.ms", backoff.as_millis() as u64);
                    let mut s = lock(&shared.sched);
                    s.queue.push_back(QueueItem {
                        idx,
                        attempt: next,
                        available_at: Instant::now() + backoff,
                    });
                    drop(s);
                    shared.ready.notify_all();
                }
                // The abandoned worker still occupies its thread (stalled
                // mid-solve); restore pool capacity with a fresh worker.
                spawn_worker(&mut handles);
            }
            Event::TraceDump { worker, trace } => {
                // Workers dump at exit; anything arriving mid-loop (a
                // worker that lost its channel) is kept for the merge.
                trace_dumps.push((worker, trace));
            }
        }
        if let Some(rec) = terminal_record {
            solved += 1;
            pending -= 1;
            let n = commit(rec, &mut writer, &mut terminal, &mut warnings);
            if cfg.crash_after == Some(n) {
                // Chaos hook: simulate a SIGKILL right after the fsync.
                std::process::abort();
            }
        }
    }

    shutdown(&shared);
    if let Some(Ok(handle)) = watchdog {
        let _ = handle.join();
    }
    let dead = {
        let s = lock(&shared.sched);
        s.dead_workers.clone()
    };
    for (id, handle) in handles {
        if !dead.contains(&id) {
            let _ = handle.join();
        }
        // Abandoned workers are left to exit on their own; joining them
        // would block on whatever stalled them.
    }

    // Minimization replays up to max_attempts solves per sink-removal
    // probe; doing it here — with every net committed and the pool shut
    // down — keeps that cost out of the event loop. Each capture
    // overwrites the verbatim artifact written when the net failed.
    if let Some(dir) = &cfg.artifacts_dir {
        for (idx, repro) in &deferred_minimize {
            if let Err(e) = artifact::capture(dir, *idx as u64, repro, tech, true) {
                warnings.push(format!(
                    "artifact minimization for `{}` failed: {e}",
                    repro.net.name
                ));
            }
        }
    }

    // Merge trace streams by worker id: the supervising thread is stream 0,
    // worker `w` is stream `w + 1`. Joined workers have already queued
    // their dumps on the event channel; abandoned (stalled) workers never
    // dump, so their streams are simply absent.
    drop(batch_span);
    let trace = cfg.capture_trace.then(|| {
        for event in rx.try_iter() {
            if let Event::TraceDump { worker, trace } = event {
                trace_dumps.push((worker, trace));
            }
        }
        trace_dumps.sort_by_key(|&(worker, _)| worker);
        let mut set = merlin_trace::TraceSet::single("supervisor", merlin_trace::drain());
        for (worker, dump) in trace_dumps {
            set.push(worker as u32 + 1, &format!("worker-{worker}"), dump);
        }
        set
    });

    Ok(BatchReport {
        rows: terminal.into_values().collect(),
        expected: total,
        replayed,
        solved,
        warnings,
        wall_s: start.elapsed().as_secs_f64(),
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use merlin_netlist::bench_nets::random_net;
    use std::path::PathBuf;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("merlin-batch-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create test dir");
        dir
    }

    fn small_batch(n: usize) -> Vec<Net> {
        let tech = Technology::synthetic_035();
        (0..n)
            .map(|i| random_net(&format!("n{i}"), 4, 10 + i as u64, &tech))
            .collect()
    }

    #[test]
    fn empty_batch_produces_an_empty_report() {
        let dir = tmp_dir("empty");
        let tech = Technology::synthetic_035();
        let report = run_batch(
            Vec::new(),
            &tech,
            &BatchConfig::default(),
            &dir.join("run.journal"),
        )
        .expect("empty batch runs");
        assert_eq!(report.expected, 0);
        assert_eq!(report.lost(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_of_a_header_only_journal_is_an_empty_report() {
        let dir = tmp_dir("replay-header-only");
        let journal = dir.join("run.journal");
        // A journal with meta lines but zero net records: what a batch
        // killed between open and the first commit leaves behind.
        crate::journal::JournalWriter::create_with_population(&journal, 0xabcd)
            .expect("create header-only journal");
        let report = replay_batch(&journal).expect("header-only journal replays");
        assert_eq!(report.expected, 0);
        assert_eq!(report.rows.len(), 0);
        assert_eq!(report.lost(), 0);
        assert!(
            report.render().contains("nets: 0 served: 0"),
            "{}",
            report.render()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_of_all_empty_segments_is_an_empty_report() {
        let dir = tmp_dir("replay-empty-segs");
        let journal = dir.join("run.journal");
        // No base journal at all — only header-only segments, as left by
        // process-mode workers killed before their first commit.
        for shard in 0..3u32 {
            let seg = crate::journal::segment_path(&journal, shard);
            crate::journal::JournalWriter::create_with_population(&seg, 0x1234)
                .expect("create header-only segment");
        }
        let report = replay_batch(&journal).expect("empty segment set replays");
        assert_eq!(report.expected, 0);
        assert_eq!(report.lost(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_renders_existing_records_without_nets() {
        let dir = tmp_dir("replay-records");
        let journal = dir.join("run.journal");
        let tech = Technology::synthetic_035();
        let cfg = BatchConfig {
            jobs: 1,
            artifacts_dir: None,
            ..BatchConfig::default()
        };
        let full = run_batch(small_batch(3), &tech, &cfg, &journal).expect("batch runs");
        let replay = replay_batch(&journal).expect("journal replays");
        assert_eq!(replay.expected, 3);
        assert_eq!(replay.render(), full.render());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn healthy_batch_serves_every_net() {
        let dir = tmp_dir("healthy");
        let journal = dir.join("run.journal");
        let tech = Technology::synthetic_035();
        let cfg = BatchConfig {
            jobs: 2,
            ..BatchConfig::default()
        };
        let report = run_batch(small_batch(5), &tech, &cfg, &journal).expect("batch runs");
        assert_eq!(report.expected, 5);
        assert_eq!(report.solved, 5);
        assert_eq!(report.replayed, 0);
        assert_eq!(report.lost(), 0);
        assert!(report
            .rows
            .iter()
            .all(|r| r.status == RecordStatus::Served && r.tier == ServingTier::Merlin));
        // The journal on disk holds exactly one record per net.
        let loaded = load_journal(&journal).expect("load").expect("exists");
        assert_eq!(loaded.records.len(), 5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn completed_journal_replays_without_solving() {
        let dir = tmp_dir("replay");
        let journal = dir.join("run.journal");
        let tech = Technology::synthetic_035();
        let cfg = BatchConfig {
            jobs: 1,
            ..BatchConfig::default()
        };
        let nets = small_batch(3);
        let first = run_batch(nets.clone(), &tech, &cfg, &journal).expect("first run");
        let second = run_batch(nets, &tech, &cfg, &journal).expect("replay run");
        assert_eq!(second.solved, 0, "nothing re-solved");
        assert_eq!(second.replayed, 3);
        assert_eq!(first.render(), second.render(), "replay is byte-identical");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_for_a_different_batch_is_refused() {
        let dir = tmp_dir("mismatch");
        let journal = dir.join("run.journal");
        let tech = Technology::synthetic_035();
        let cfg = BatchConfig {
            jobs: 1,
            ..BatchConfig::default()
        };
        run_batch(small_batch(2), &tech, &cfg, &journal).expect("first run");
        let other: Vec<Net> = (0..2)
            .map(|i| random_net(&format!("other{i}"), 4, 99 + i as u64, &tech))
            .collect();
        let err = run_batch(other, &tech, &cfg, &journal).expect_err("name mismatch");
        assert!(matches!(err, BatchError::JournalMismatch { .. }), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unacceptable_tier_exhausts_retries_and_captures_an_artifact() {
        let dir = tmp_dir("exhaust");
        let journal = dir.join("run.journal");
        let artifacts = dir.join("artifacts");
        let tech = Technology::synthetic_035();
        // An invalid net (duplicate sinks) can only be served by the
        // direct route; demanding at least flow I makes it a failure.
        let dup = merlin_geom::Point::new(50, 50);
        let sink = merlin_netlist::Sink::new(dup, merlin_tech::units::Cap::from_ff(10.0), 500.0);
        let bad = Net::new(
            "dup-sink",
            merlin_geom::Point::new(0, 0),
            merlin_tech::Driver::default(),
            vec![sink.clone(), sink],
        );
        let cfg = BatchConfig {
            jobs: 1,
            accept_tier: ServingTier::LttreePtree,
            retry: RetryPolicy {
                max_attempts: 2,
                base_backoff: Duration::ZERO,
                ..RetryPolicy::default()
            },
            artifacts_dir: Some(artifacts.clone()),
            ..BatchConfig::default()
        };
        let report = run_batch(vec![bad], &tech, &cfg, &journal).expect("batch runs");
        let row = &report.rows[0];
        assert_eq!(row.status, RecordStatus::FailedDegraded);
        assert_eq!(row.attempts, 2, "both attempts consumed");
        assert_eq!(row.tier, ServingTier::DirectRoute);
        let artifact_path = artifacts.join("0-dup-sink.repro");
        let text = std::fs::read_to_string(&artifact_path).expect("artifact written");
        let repro = crate::artifact::parse_repro(&text).expect("artifact parses");
        assert_eq!(repro.cause, RecordStatus::FailedDegraded);
        assert_eq!(repro.max_attempts, 2);
        // The duplicate pair is the failure core: removing either sink
        // yields a valid net that solves, so the minimizer keeps both.
        assert_eq!(repro.net.num_sinks(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
