//! Journal file handling: fsync'd appends and corruption-tolerant replay.
//!
//! The record *codec* (line format, versioned header) lives in
//! [`merlin_resilience::journal`]; this module owns the file-level
//! concerns — durable appends and the load-time corruption policy:
//!
//! * a missing file is a fresh run (not an error),
//! * an unknown or missing header version is **refused** — silently
//!   reinterpreting a future format loses data,
//! * an undecodable **final** line is skipped with a warning: that is the
//!   signature of a torn write from a killed process, and the net it
//!   described simply re-runs ([`JournalWriter::append_to`] then truncates
//!   the fragment before the first resume append, so it can never merge
//!   with a new record into mid-file corruption),
//! * an undecodable line anywhere **else** is a hard corruption error,
//! * a duplicate net index keeps the **first** record and warns: the
//!   first append was the one that was fsync'd before any crash.

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{ErrorKind, Read as _, Seek as _, SeekFrom, Write as _};
use std::path::Path;

use merlin_resilience::journal::{JournalRecord, JOURNAL_HEADER};

/// Why a journal file could not be loaded.
#[derive(Debug)]
pub enum JournalLoadError {
    /// The file exists but could not be read.
    Io(std::io::Error),
    /// The first line is not a known journal header.
    BadHeader {
        /// What the first line actually was.
        found: String,
    },
    /// A record line other than the last failed to decode.
    Corrupt {
        /// 1-based line number of the bad line.
        line: usize,
        /// Decoder's reason.
        reason: String,
    },
}

impl fmt::Display for JournalLoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalLoadError::Io(e) => write!(f, "cannot read journal: {e}"),
            JournalLoadError::BadHeader { found } => write!(
                f,
                "unknown journal version: expected `{JOURNAL_HEADER}`, found `{found}` \
                 (refusing to reinterpret)"
            ),
            JournalLoadError::Corrupt { line, reason } => {
                write!(f, "corrupt journal at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for JournalLoadError {}

/// A successfully loaded journal: the surviving records keyed by net
/// index, plus warnings about tolerated damage (torn final line,
/// duplicate records).
#[derive(Debug, Default)]
pub struct LoadedJournal {
    /// Terminal records keyed by batch index (first record wins).
    pub records: BTreeMap<u64, JournalRecord>,
    /// Human-readable notes about tolerated damage.
    pub warnings: Vec<String>,
}

/// Loads `path`, applying the corruption policy in the module docs.
/// Returns `Ok(None)` when the file does not exist (fresh run).
///
/// # Errors
///
/// See [`JournalLoadError`]: unreadable file, unknown header version, or
/// an undecodable non-final line.
pub fn load_journal(path: &Path) -> Result<Option<LoadedJournal>, JournalLoadError> {
    let mut text = String::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_string(&mut text).map_err(JournalLoadError::Io)?;
        }
        Err(e) if e.kind() == ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(JournalLoadError::Io(e)),
    }
    let lines: Vec<&str> = text.lines().collect();
    let Some((&header, records)) = lines.split_first() else {
        // Zero-length file: the process died between create and the
        // header write. Treat as fresh.
        return Ok(None);
    };
    if header != JOURNAL_HEADER {
        return Err(JournalLoadError::BadHeader {
            found: header.to_owned(),
        });
    }
    let mut loaded = LoadedJournal::default();
    for (i, line) in records.iter().enumerate() {
        let lineno = i + 2; // 1-based, after the header
        match JournalRecord::decode(line) {
            Ok(rec) => match loaded.records.entry(rec.idx) {
                std::collections::btree_map::Entry::Occupied(_) => {
                    loaded.warnings.push(format!(
                        "line {lineno}: duplicate record for net index {} ignored \
                         (first record wins)",
                        rec.idx
                    ));
                }
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(rec);
                }
            },
            Err(e) if i + 1 == records.len() => {
                loaded.warnings.push(format!(
                    "line {lineno}: torn final record skipped ({}); its net will re-run",
                    e.reason
                ));
            }
            Err(e) => {
                return Err(JournalLoadError::Corrupt {
                    line: lineno,
                    reason: e.reason,
                });
            }
        }
    }
    Ok(Some(loaded))
}

/// An append handle on a journal file. Every [`JournalWriter::append`] is
/// flushed and fsync'd before returning: a record the supervisor has
/// acted on (reported, retried past, crashed after) is on disk.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
}

impl JournalWriter {
    /// Creates a fresh journal at `path` (truncating any existing file)
    /// and durably writes the version header.
    ///
    /// # Errors
    ///
    /// Any I/O failure creating, writing, or syncing the file.
    pub fn create(path: &Path) -> std::io::Result<JournalWriter> {
        let mut file = File::create(path)?;
        writeln!(file, "{JOURNAL_HEADER}")?;
        file.sync_data()?;
        Ok(JournalWriter { file })
    }

    /// Opens an existing journal for appending (resume). The caller is
    /// expected to have validated the file via [`load_journal`] first.
    ///
    /// A file that does not end in a newline is *healed* before the first
    /// append: a process killed mid-write leaves a torn final line, and
    /// appending straight onto it would merge the fragment with the next
    /// record into one undecodable line — which, once further records
    /// follow it, is no longer final and turns into a hard
    /// [`JournalLoadError::Corrupt`] on the next load. If the newline-less
    /// tail is itself a complete record (or the header) it is finished
    /// with the missing newline; otherwise the fragment is truncated away,
    /// matching the skip policy [`load_journal`] already applied to it.
    ///
    /// # Errors
    ///
    /// Any I/O failure opening, repairing, or syncing the file.
    pub fn append_to(path: &Path) -> std::io::Result<JournalWriter> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        if bytes.last().is_some_and(|&b| b != b'\n') {
            let tail_start = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |p| p + 1);
            let complete = std::str::from_utf8(&bytes[tail_start..])
                .is_ok_and(|line| line == JOURNAL_HEADER || JournalRecord::decode(line).is_ok());
            if complete {
                // Only the newline was lost: finish the line in place.
                file.write_all(b"\n")?;
            } else {
                file.set_len(tail_start as u64)?;
            }
            file.sync_data()?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok(JournalWriter { file })
    }

    /// Durably appends one record (line + newline, then fsync).
    ///
    /// # Errors
    ///
    /// Any I/O failure writing or syncing.
    pub fn append(&mut self, rec: &JournalRecord) -> std::io::Result<()> {
        writeln!(self.file, "{}", rec.encode())?;
        self.file.sync_data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use merlin_resilience::journal::RecordStatus;
    use merlin_resilience::ServingTier;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("merlin-journal-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_file(&dir);
        dir
    }

    fn rec(idx: u64) -> JournalRecord {
        JournalRecord {
            idx,
            net: format!("net{idx}"),
            tier: ServingTier::Merlin,
            attempts: 1,
            timeouts: 0,
            status: RecordStatus::Served,
            hash: 0x1234,
        }
    }

    #[test]
    fn write_then_load_round_trips() {
        let path = tmp("roundtrip");
        let mut w = JournalWriter::create(&path).expect("create journal");
        w.append(&rec(0)).expect("append 0");
        w.append(&rec(1)).expect("append 1");
        let loaded = load_journal(&path)
            .expect("load journal")
            .expect("file exists");
        assert_eq!(loaded.records.len(), 2);
        assert_eq!(loaded.records[&1], rec(1));
        assert!(loaded.warnings.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_a_fresh_run() {
        let path = tmp("missing");
        assert!(load_journal(&path).expect("no error").is_none());
    }

    #[test]
    fn resume_after_a_torn_final_line_truncates_the_fragment() {
        let path = tmp("torn-resume");
        let mut w = JournalWriter::create(&path).expect("create");
        w.append(&rec(0)).expect("append");
        drop(w);
        // Simulate a process killed mid-append: a partial record with no
        // trailing newline.
        let mut f = OpenOptions::new().append(true).open(&path).expect("open");
        write!(f, "idx=1 net=n1 tier=mer").expect("write torn fragment");
        drop(f);
        let loaded = load_journal(&path).expect("load").expect("exists");
        assert_eq!(loaded.records.len(), 1, "torn record skipped");
        assert_eq!(loaded.warnings.len(), 1);
        // Resuming must not glue new records onto the fragment.
        let mut w = JournalWriter::append_to(&path).expect("reopen heals");
        w.append(&rec(1)).expect("append after torn tail");
        w.append(&rec(2)).expect("second append");
        drop(w);
        let loaded = load_journal(&path).expect("journal reloads cleanly");
        let loaded = loaded.expect("exists");
        assert_eq!(loaded.records.len(), 3);
        assert_eq!(loaded.records[&1], rec(1));
        assert!(loaded.warnings.is_empty(), "fragment was truncated away");
        // A second crash/resume cycle must also load cleanly.
        let mut w = JournalWriter::append_to(&path).expect("reopen again");
        w.append(&rec(3)).expect("append");
        drop(w);
        let loaded = load_journal(&path).expect("still clean").expect("exists");
        assert_eq!(loaded.records.len(), 4);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_completes_a_newline_less_but_decodable_final_record() {
        let path = tmp("newline-less");
        let mut w = JournalWriter::create(&path).expect("create");
        w.append(&rec(0)).expect("append");
        drop(w);
        // The write made it through except for the final newline: the
        // record must be kept (load_journal already counted it), not cut.
        let mut f = OpenOptions::new().append(true).open(&path).expect("open");
        write!(f, "{}", rec(1).encode()).expect("write newline-less record");
        drop(f);
        let mut w = JournalWriter::append_to(&path).expect("reopen heals");
        w.append(&rec(2)).expect("append");
        drop(w);
        let loaded = load_journal(&path).expect("load").expect("exists");
        assert_eq!(loaded.records.len(), 3, "newline-less record survives");
        assert_eq!(loaded.records[&1], rec(1));
        assert!(loaded.warnings.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_appends_after_existing_records() {
        let path = tmp("resume");
        let mut w = JournalWriter::create(&path).expect("create");
        w.append(&rec(0)).expect("append");
        drop(w);
        let mut w = JournalWriter::append_to(&path).expect("reopen");
        w.append(&rec(1)).expect("append after reopen");
        let loaded = load_journal(&path).expect("load").expect("exists");
        assert_eq!(loaded.records.len(), 2);
        let _ = std::fs::remove_file(&path);
    }
}
