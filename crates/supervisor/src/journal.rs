//! Journal file handling: fsync'd appends and corruption-tolerant replay.
//!
//! The record *codec* (line format, versioned header) lives in
//! [`merlin_resilience::journal`]; this module owns the file-level
//! concerns — durable appends and the load-time corruption policy:
//!
//! * a missing file is a fresh run (not an error),
//! * an unknown or missing header version is **refused** — silently
//!   reinterpreting a future format loses data,
//! * an undecodable **final** line is skipped with a warning: that is the
//!   signature of a torn write from a killed process, and the net it
//!   described simply re-runs ([`JournalWriter::append_to`] then truncates
//!   the fragment before the first resume append, so it can never merge
//!   with a new record into mid-file corruption),
//! * an undecodable line anywhere **else** is a hard corruption error,
//! * a duplicate net index keeps the **first** record and warns: the
//!   first append was the one that was fsync'd before any crash.
//!
//! Beyond records, a journal may carry `#`-prefixed *meta* lines:
//!
//! * `#population <16 hex digits>` — [`population_hash`] of the net
//!   population the journal belongs to. Resume refuses to merge a journal
//!   whose population hash does not match the input nets, so stale results
//!   can never silently leak into a fresh batch.
//! * `#sealed` — appended when a worker finishes its shard cleanly. A
//!   segment whose final line is not `#sealed` was interrupted.
//!
//! Process-isolated batches write one *segment* per shard, named
//! `<journal>.seg<shard>` next to the base journal path (the parent's own
//! quarantine records go to `<journal>.segq`). [`merge_segments`] folds any
//! set of segments back into one record map with order-independent dedup,
//! which is what makes resume shard-count independent. Appends go through
//! an `O_APPEND` handle and write each line with a single `write` call, so
//! even a straggler process appending to the same segment cannot interleave
//! partial lines or overwrite records.

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{ErrorKind, Read as _, Write as _};
use std::path::{Path, PathBuf};

use merlin_netlist::{io as net_io, Net};
use merlin_resilience::journal::{fnv1a, JournalRecord, JOURNAL_HEADER};

/// Prefix of the population meta line; followed by 16 hex digits.
pub const POPULATION_PREFIX: &str = "#population ";

/// Meta line a worker appends after committing the last net of its shard.
pub const SEALED_MARK: &str = "#sealed";

/// Why a journal file could not be loaded.
#[derive(Debug)]
pub enum JournalLoadError {
    /// The file exists but could not be read.
    Io(std::io::Error),
    /// The first line is not a known journal header.
    BadHeader {
        /// What the first line actually was.
        found: String,
    },
    /// A record line other than the last failed to decode.
    Corrupt {
        /// 1-based line number of the bad line.
        line: usize,
        /// Decoder's reason.
        reason: String,
    },
}

impl fmt::Display for JournalLoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalLoadError::Io(e) => write!(f, "cannot read journal: {e}"),
            JournalLoadError::BadHeader { found } => write!(
                f,
                "unknown journal version: expected `{JOURNAL_HEADER}`, found `{found}` \
                 (refusing to reinterpret)"
            ),
            JournalLoadError::Corrupt { line, reason } => {
                write!(f, "corrupt journal at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for JournalLoadError {}

/// A parsed `#`-meta line.
enum Meta {
    Population(u64),
    Sealed,
}

/// Classifies `line`: `Ok(None)` for non-meta lines, `Ok(Some(..))` for a
/// well-formed meta line, `Err(reason)` for a line that starts like a meta
/// line but does not parse (torn-write signature when final, corruption
/// otherwise).
fn parse_meta(line: &str) -> Result<Option<Meta>, String> {
    if !line.starts_with('#') {
        return Ok(None);
    }
    if line == SEALED_MARK {
        return Ok(Some(Meta::Sealed));
    }
    if let Some(rest) = line.strip_prefix(POPULATION_PREFIX) {
        // Fixed width, like record hashes: a torn population line must not
        // read back as a valid but shortened digest.
        if rest.len() != 16 {
            return Err("population hash must be 16 hex digits".to_owned());
        }
        return match u64::from_str_radix(rest, 16) {
            Ok(h) => Ok(Some(Meta::Population(h))),
            Err(_) => Err("malformed population hash".to_owned()),
        };
    }
    Err(format!("unknown meta line `{line}`"))
}

/// Whether `line` is complete as-is: the header, a well-formed meta line,
/// or a decodable record. Used by [`JournalWriter::append_to`] to decide
/// between finishing a newline-less tail and truncating a torn fragment.
fn line_is_complete(line: &str) -> bool {
    line == JOURNAL_HEADER
        || matches!(parse_meta(line), Ok(Some(_)))
        || JournalRecord::decode(line).is_ok()
}

/// A successfully loaded journal: the surviving records keyed by net
/// index, plus warnings about tolerated damage (torn final line,
/// duplicate records).
#[derive(Debug, Default)]
pub struct LoadedJournal {
    /// Terminal records keyed by batch index (first record wins).
    pub records: BTreeMap<u64, JournalRecord>,
    /// Human-readable notes about tolerated damage.
    pub warnings: Vec<String>,
    /// The `#population` hash recorded in the file, if any.
    pub population: Option<u64>,
    /// Whether the final line is the `#sealed` marker (clean shard exit).
    pub sealed: bool,
}

/// Loads `path`, applying the corruption policy in the module docs.
/// Returns `Ok(None)` when the file does not exist (fresh run).
///
/// # Errors
///
/// See [`JournalLoadError`]: unreadable file, unknown header version, or
/// an undecodable non-final line.
pub fn load_journal(path: &Path) -> Result<Option<LoadedJournal>, JournalLoadError> {
    let mut text = String::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_string(&mut text).map_err(JournalLoadError::Io)?;
        }
        Err(e) if e.kind() == ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(JournalLoadError::Io(e)),
    }
    let lines: Vec<&str> = text.lines().collect();
    let Some((&header, records)) = lines.split_first() else {
        // Zero-length file: the process died between create and the
        // header write. Treat as fresh.
        return Ok(None);
    };
    if header != JOURNAL_HEADER {
        return Err(JournalLoadError::BadHeader {
            found: header.to_owned(),
        });
    }
    let mut loaded = LoadedJournal::default();
    for (i, line) in records.iter().enumerate() {
        let lineno = i + 2; // 1-based, after the header
        let is_final = i + 1 == records.len();
        // `#sealed` only counts when it is actually the last thing in the
        // file: a resumed segment appends past an old seal.
        loaded.sealed = false;
        let failure_reason = match parse_meta(line) {
            Ok(Some(Meta::Population(h))) => match loaded.population {
                Some(prev) if prev != h => Some(format!(
                    "conflicting population hash {h:016x} (journal recorded {prev:016x})"
                )),
                _ => {
                    loaded.population = Some(h);
                    None
                }
            },
            Ok(Some(Meta::Sealed)) => {
                loaded.sealed = is_final;
                None
            }
            Ok(None) => match JournalRecord::decode(line) {
                Ok(rec) => {
                    match loaded.records.entry(rec.idx) {
                        std::collections::btree_map::Entry::Occupied(_) => {
                            loaded.warnings.push(format!(
                                "line {lineno}: duplicate record for net index {} ignored \
                                 (first record wins)",
                                rec.idx
                            ));
                        }
                        std::collections::btree_map::Entry::Vacant(slot) => {
                            slot.insert(rec);
                        }
                    }
                    None
                }
                Err(e) => Some(e.reason),
            },
            Err(reason) => Some(reason),
        };
        match failure_reason {
            None => {}
            Some(reason) if is_final => {
                loaded.warnings.push(format!(
                    "line {lineno}: torn final record skipped ({reason}); its net will re-run"
                ));
            }
            Some(reason) => {
                return Err(JournalLoadError::Corrupt {
                    line: lineno,
                    reason,
                });
            }
        }
    }
    Ok(Some(loaded))
}

/// Deterministic FNV-1a digest of a net population, hashed over the
/// canonical `net_io` text of every net in input order. Recorded in the
/// journal as the `#population` meta line and checked on resume so a
/// journal can never be replayed against a different input.
pub fn population_hash(nets: &[Net]) -> u64 {
    let mut buf = Vec::new();
    for net in nets {
        buf.extend_from_slice(net_io::write_net(net).as_bytes());
        buf.push(0);
    }
    fnv1a(&buf)
}

/// The segment file a shard worker appends to: `<journal>.seg<shard>`.
pub fn segment_path(journal: &Path, shard: u32) -> PathBuf {
    let mut name = journal.file_name().map_or_else(
        || std::ffi::OsString::from(".merlin-journal"),
        ToOwned::to_owned,
    );
    name.push(format!(".seg{shard}"));
    journal.with_file_name(name)
}

/// The parent supervisor's own segment (quarantine records):
/// `<journal>.segq`.
pub fn quarantine_segment_path(journal: &Path) -> PathBuf {
    let mut name = journal.file_name().map_or_else(
        || std::ffi::OsString::from(".merlin-journal"),
        ToOwned::to_owned,
    );
    name.push(".segq");
    journal.with_file_name(name)
}

/// Every journal file belonging to `journal`: the base path itself (if
/// present — e.g. a thread-mode run being resumed in process mode) plus
/// all `<journal>.seg*` siblings, in sorted order. The sort is cosmetic:
/// [`merge_segments`] is order-independent.
///
/// # Errors
///
/// Any I/O failure listing the parent directory.
pub fn segment_paths(journal: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut found = Vec::new();
    if journal.is_file() {
        found.push(journal.to_path_buf());
    }
    let Some(base_name) = journal.file_name().and_then(|n| n.to_str()) else {
        return Ok(found);
    };
    let parent = journal.parent().filter(|p| !p.as_os_str().is_empty());
    let dir = parent.unwrap_or_else(|| Path::new("."));
    match std::fs::read_dir(dir) {
        Ok(entries) => {
            let seg_prefix = format!("{base_name}.seg");
            for entry in entries {
                let entry = entry?;
                if let Some(name) = entry.file_name().to_str() {
                    if name.starts_with(&seg_prefix) {
                        found.push(entry.path());
                    }
                }
            }
        }
        Err(e) if e.kind() == ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    found.sort();
    found.dedup();
    Ok(found)
}

/// Why a set of journal segments could not be merged.
#[derive(Debug)]
pub enum JournalMergeError {
    /// One segment failed to load.
    Load {
        /// The segment that failed.
        path: PathBuf,
        /// Why.
        error: JournalLoadError,
    },
    /// Two segments record different population hashes: they belong to
    /// different batches and must not be merged.
    PopulationConflict {
        /// One recorded hash.
        a: u64,
        /// The other.
        b: u64,
    },
}

impl fmt::Display for JournalMergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalMergeError::Load { path, error } => {
                write!(f, "segment {}: {error}", path.display())
            }
            JournalMergeError::PopulationConflict { a, b } => write!(
                f,
                "segments record conflicting population hashes {a:016x} and {b:016x} \
                 (mixed batches; refusing to merge)"
            ),
        }
    }
}

impl std::error::Error for JournalMergeError {}

/// The result of merging a set of journal segments.
#[derive(Debug, Default)]
pub struct MergedJournal {
    /// Surviving records keyed by net index.
    pub records: BTreeMap<u64, JournalRecord>,
    /// The population hash the segments agree on, if any recorded one.
    pub population: Option<u64>,
    /// Per-segment damage notes plus cross-segment duplicate notes.
    pub warnings: Vec<String>,
    /// How many segment files contributed.
    pub segments: usize,
}

/// Merges any set of journal segments into one record map.
///
/// Deduplication across segments is **order-independent**: when two
/// segments both carry a record for the same net index, the winner is the
/// one with the lexicographically smallest encoded line — a total order
/// that does not depend on directory enumeration. (In practice duplicates
/// are byte-identical: solves are deterministic, and a net is only
/// re-solved when its first record never reached the disk.) This is the
/// property the shard-merge determinism proptest pins down, and what lets
/// a batch started with `--shards 8` resume with `--shards 2`.
///
/// # Errors
///
/// [`JournalMergeError::Load`] when a segment is unreadable or corrupt,
/// [`JournalMergeError::PopulationConflict`] when segments disagree on the
/// population hash.
pub fn merge_segments(paths: &[PathBuf]) -> Result<MergedJournal, JournalMergeError> {
    let mut merged = MergedJournal::default();
    for path in paths {
        let loaded = match load_journal(path) {
            Ok(Some(loaded)) => loaded,
            Ok(None) => continue,
            Err(error) => {
                return Err(JournalMergeError::Load {
                    path: path.clone(),
                    error,
                })
            }
        };
        merged.segments += 1;
        let name = path.file_name().map_or_else(
            || path.display().to_string(),
            |n| n.to_string_lossy().into_owned(),
        );
        for w in loaded.warnings {
            merged.warnings.push(format!("{name}: {w}"));
        }
        if let Some(pop) = loaded.population {
            match merged.population {
                Some(prev) if prev != pop => {
                    return Err(JournalMergeError::PopulationConflict { a: prev, b: pop });
                }
                _ => merged.population = Some(pop),
            }
        }
        for (idx, rec) in loaded.records {
            match merged.records.entry(idx) {
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(rec);
                }
                std::collections::btree_map::Entry::Occupied(mut slot) => {
                    if rec != *slot.get() {
                        // Keep the lexicographically smallest encoding so
                        // the outcome is the same whatever order the
                        // segments were visited in.
                        if rec.encode() < slot.get().encode() {
                            slot.insert(rec);
                        }
                        merged.warnings.push(format!(
                            "{name}: conflicting duplicate record for net index {idx} \
                             (kept the lexicographically first)"
                        ));
                    }
                }
            }
        }
    }
    Ok(merged)
}

/// An append handle on a journal file. Every [`JournalWriter::append`] is
/// flushed and fsync'd before returning: a record the supervisor has
/// acted on (reported, retried past, crashed after) is on disk. The handle
/// is opened with `O_APPEND` and writes whole lines with single `write`
/// calls, so concurrent appenders (a straggler worker that outlived a
/// crashed parent) cannot interleave partial lines or clobber records.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
}

impl JournalWriter {
    /// Creates a fresh journal at `path` (truncating any existing file)
    /// and durably writes the version header.
    ///
    /// # Errors
    ///
    /// Any I/O failure creating, writing, or syncing the file.
    pub fn create(path: &Path) -> std::io::Result<JournalWriter> {
        {
            let mut file = File::create(path)?;
            writeln!(file, "{JOURNAL_HEADER}")?;
            file.sync_data()?;
        }
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(JournalWriter { file })
    }

    /// [`JournalWriter::create`] followed by recording the population
    /// hash — the standard way to start a batch journal or shard segment.
    ///
    /// # Errors
    ///
    /// Any I/O failure creating, writing, or syncing the file.
    pub fn create_with_population(path: &Path, population: u64) -> std::io::Result<JournalWriter> {
        let mut w = JournalWriter::create(path)?;
        w.append_population(population)?;
        Ok(w)
    }

    /// Opens an existing journal for appending (resume). The caller is
    /// expected to have validated the file via [`load_journal`] first.
    ///
    /// A file that does not end in a newline is *healed* before the first
    /// append: a process killed mid-write leaves a torn final line, and
    /// appending straight onto it would merge the fragment with the next
    /// record into one undecodable line — which, once further records
    /// follow it, is no longer final and turns into a hard
    /// [`JournalLoadError::Corrupt`] on the next load. If the newline-less
    /// tail is itself a complete record (or the header, or a meta line) it
    /// is finished with the missing newline; otherwise the fragment is
    /// truncated away, matching the skip policy [`load_journal`] already
    /// applied to it.
    ///
    /// # Errors
    ///
    /// Any I/O failure opening, repairing, or syncing the file.
    pub fn append_to(path: &Path) -> std::io::Result<JournalWriter> {
        {
            let mut file = OpenOptions::new().read(true).write(true).open(path)?;
            let mut bytes = Vec::new();
            file.read_to_end(&mut bytes)?;
            if bytes.last().is_some_and(|&b| b != b'\n') {
                let tail_start = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |p| p + 1);
                let complete =
                    std::str::from_utf8(&bytes[tail_start..]).is_ok_and(line_is_complete);
                if complete {
                    // Only the newline was lost: finish the line in place.
                    file.write_all(b"\n")?;
                } else {
                    file.set_len(tail_start as u64)?;
                }
                file.sync_data()?;
            }
        }
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(JournalWriter { file })
    }

    /// Durably appends one full line (content + newline in a single
    /// `write`, then fsync).
    fn append_line(&mut self, line: &str) -> std::io::Result<()> {
        let mut buf = Vec::with_capacity(line.len() + 1);
        buf.extend_from_slice(line.as_bytes());
        buf.push(b'\n');
        self.file.write_all(&buf)?;
        self.file.sync_data()
    }

    /// Durably appends one record (line + newline, then fsync).
    ///
    /// # Errors
    ///
    /// Any I/O failure writing or syncing.
    pub fn append(&mut self, rec: &JournalRecord) -> std::io::Result<()> {
        self.append_line(&rec.encode())
    }

    /// Durably appends the `#population` meta line. Used both at create
    /// time and to upgrade a pre-population journal on resume.
    ///
    /// # Errors
    ///
    /// Any I/O failure writing or syncing.
    pub fn append_population(&mut self, population: u64) -> std::io::Result<()> {
        self.append_line(&format!("{POPULATION_PREFIX}{population:016x}"))
    }

    /// Durably appends the `#sealed` marker (clean shard completion).
    ///
    /// # Errors
    ///
    /// Any I/O failure writing or syncing.
    pub fn seal(&mut self) -> std::io::Result<()> {
        self.append_line(SEALED_MARK)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use merlin_resilience::journal::RecordStatus;
    use merlin_resilience::ServingTier;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("merlin-journal-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_file(&dir);
        dir
    }

    fn rec(idx: u64) -> JournalRecord {
        JournalRecord {
            idx,
            net: format!("net{idx}"),
            tier: ServingTier::Merlin,
            attempts: 1,
            timeouts: 0,
            status: RecordStatus::Served,
            hash: 0x1234,
        }
    }

    #[test]
    fn write_then_load_round_trips() {
        let path = tmp("roundtrip");
        let mut w = JournalWriter::create(&path).expect("create journal");
        w.append(&rec(0)).expect("append 0");
        w.append(&rec(1)).expect("append 1");
        let loaded = load_journal(&path)
            .expect("load journal")
            .expect("file exists");
        assert_eq!(loaded.records.len(), 2);
        assert_eq!(loaded.records[&1], rec(1));
        assert!(loaded.warnings.is_empty());
        assert_eq!(loaded.population, None);
        assert!(!loaded.sealed);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_a_fresh_run() {
        let path = tmp("missing");
        assert!(load_journal(&path).expect("no error").is_none());
    }

    #[test]
    fn population_and_seal_round_trip() {
        let path = tmp("population");
        let mut w =
            JournalWriter::create_with_population(&path, 0xabcdef0123456789).expect("create");
        w.append(&rec(0)).expect("append");
        w.seal().expect("seal");
        drop(w);
        let loaded = load_journal(&path).expect("load").expect("exists");
        assert_eq!(loaded.population, Some(0xabcdef0123456789));
        assert!(loaded.sealed, "final #sealed line marks a clean exit");
        assert_eq!(loaded.records.len(), 1);
        // A resumed segment appends past the seal: no longer sealed.
        let mut w = JournalWriter::append_to(&path).expect("reopen");
        w.append(&rec(1)).expect("append past seal");
        drop(w);
        let loaded = load_journal(&path).expect("load").expect("exists");
        assert!(!loaded.sealed, "a mid-file seal does not count");
        assert_eq!(loaded.records.len(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn conflicting_population_lines_are_corruption() {
        let path = tmp("population-conflict");
        let mut w = JournalWriter::create_with_population(&path, 1).expect("create");
        w.append_population(2).expect("append second population");
        w.append(&rec(0)).expect("append");
        drop(w);
        assert!(matches!(
            load_journal(&path),
            Err(JournalLoadError::Corrupt { .. })
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_meta_tail_is_skipped_then_healed() {
        let path = tmp("torn-meta");
        let mut w = JournalWriter::create(&path).expect("create");
        w.append(&rec(0)).expect("append");
        drop(w);
        let mut f = OpenOptions::new().append(true).open(&path).expect("open");
        write!(f, "#popul").expect("write torn meta fragment");
        drop(f);
        let loaded = load_journal(&path).expect("load").expect("exists");
        assert_eq!(loaded.records.len(), 1);
        assert_eq!(loaded.warnings.len(), 1, "torn meta tail warned");
        let mut w = JournalWriter::append_to(&path).expect("reopen heals");
        w.append(&rec(1)).expect("append");
        drop(w);
        let loaded = load_journal(&path).expect("clean reload").expect("exists");
        assert_eq!(loaded.records.len(), 2);
        assert!(loaded.warnings.is_empty(), "fragment truncated away");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_after_a_torn_final_line_truncates_the_fragment() {
        let path = tmp("torn-resume");
        let mut w = JournalWriter::create(&path).expect("create");
        w.append(&rec(0)).expect("append");
        drop(w);
        // Simulate a process killed mid-append: a partial record with no
        // trailing newline.
        let mut f = OpenOptions::new().append(true).open(&path).expect("open");
        write!(f, "idx=1 net=n1 tier=mer").expect("write torn fragment");
        drop(f);
        let loaded = load_journal(&path).expect("load").expect("exists");
        assert_eq!(loaded.records.len(), 1, "torn record skipped");
        assert_eq!(loaded.warnings.len(), 1);
        // Resuming must not glue new records onto the fragment.
        let mut w = JournalWriter::append_to(&path).expect("reopen heals");
        w.append(&rec(1)).expect("append after torn tail");
        w.append(&rec(2)).expect("second append");
        drop(w);
        let loaded = load_journal(&path).expect("journal reloads cleanly");
        let loaded = loaded.expect("exists");
        assert_eq!(loaded.records.len(), 3);
        assert_eq!(loaded.records[&1], rec(1));
        assert!(loaded.warnings.is_empty(), "fragment was truncated away");
        // A second crash/resume cycle must also load cleanly.
        let mut w = JournalWriter::append_to(&path).expect("reopen again");
        w.append(&rec(3)).expect("append");
        drop(w);
        let loaded = load_journal(&path).expect("still clean").expect("exists");
        assert_eq!(loaded.records.len(), 4);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_completes_a_newline_less_but_decodable_final_record() {
        let path = tmp("newline-less");
        let mut w = JournalWriter::create(&path).expect("create");
        w.append(&rec(0)).expect("append");
        drop(w);
        // The write made it through except for the final newline: the
        // record must be kept (load_journal already counted it), not cut.
        let mut f = OpenOptions::new().append(true).open(&path).expect("open");
        write!(f, "{}", rec(1).encode()).expect("write newline-less record");
        drop(f);
        let mut w = JournalWriter::append_to(&path).expect("reopen heals");
        w.append(&rec(2)).expect("append");
        drop(w);
        let loaded = load_journal(&path).expect("load").expect("exists");
        assert_eq!(loaded.records.len(), 3, "newline-less record survives");
        assert_eq!(loaded.records[&1], rec(1));
        assert!(loaded.warnings.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn newline_less_seal_marker_is_completed_not_cut() {
        let path = tmp("newline-less-seal");
        let mut w = JournalWriter::create(&path).expect("create");
        w.append(&rec(0)).expect("append");
        drop(w);
        let mut f = OpenOptions::new().append(true).open(&path).expect("open");
        write!(f, "{SEALED_MARK}").expect("write newline-less seal");
        drop(f);
        let w = JournalWriter::append_to(&path).expect("reopen heals");
        drop(w);
        let loaded = load_journal(&path).expect("load").expect("exists");
        assert!(loaded.sealed, "healed seal marker survives");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_appends_after_existing_records() {
        let path = tmp("resume");
        let mut w = JournalWriter::create(&path).expect("create");
        w.append(&rec(0)).expect("append");
        drop(w);
        let mut w = JournalWriter::append_to(&path).expect("reopen");
        w.append(&rec(1)).expect("append after reopen");
        let loaded = load_journal(&path).expect("load").expect("exists");
        assert_eq!(loaded.records.len(), 2);
        let _ = std::fs::remove_file(&path);
    }

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "merlin-journal-merge-{}-{name}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create test dir");
        dir
    }

    #[test]
    fn segment_paths_find_base_and_segments() {
        let dir = tmpdir("paths");
        let journal = dir.join("run.journal");
        JournalWriter::create(&journal).expect("base");
        JournalWriter::create(&segment_path(&journal, 0)).expect("seg0");
        JournalWriter::create(&segment_path(&journal, 3)).expect("seg3");
        JournalWriter::create(&quarantine_segment_path(&journal)).expect("segq");
        // An unrelated sibling must not be picked up.
        std::fs::write(dir.join("other.journal"), b"x").expect("sibling");
        let paths = segment_paths(&journal).expect("list");
        assert_eq!(paths.len(), 4);
        assert_eq!(paths[0], journal);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_dedups_across_segments_order_independently() {
        let dir = tmpdir("merge");
        let journal = dir.join("run.journal");
        let seg0 = segment_path(&journal, 0);
        let seg1 = segment_path(&journal, 1);
        let mut w = JournalWriter::create_with_population(&seg0, 7).expect("seg0");
        w.append(&rec(0)).expect("append");
        w.append(&rec(2)).expect("append");
        drop(w);
        let mut w = JournalWriter::create_with_population(&seg1, 7).expect("seg1");
        w.append(&rec(1)).expect("append");
        w.append(&rec(2)).expect("duplicate of seg0's record");
        drop(w);
        let fwd = merge_segments(&[seg0.clone(), seg1.clone()]).expect("merge");
        let rev = merge_segments(&[seg1, seg0]).expect("merge reversed");
        assert_eq!(fwd.records.len(), 3);
        assert_eq!(fwd.records, rev.records, "merge is order-independent");
        assert_eq!(fwd.population, Some(7));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_keeps_a_deterministic_winner_for_conflicting_duplicates() {
        let dir = tmpdir("merge-conflict");
        let journal = dir.join("run.journal");
        let seg0 = segment_path(&journal, 0);
        let seg1 = segment_path(&journal, 1);
        let mut a = rec(5);
        a.attempts = 1;
        let mut b = rec(5);
        b.attempts = 2;
        let mut w = JournalWriter::create(&seg0).expect("seg0");
        w.append(&a).expect("append");
        drop(w);
        let mut w = JournalWriter::create(&seg1).expect("seg1");
        w.append(&b).expect("append");
        drop(w);
        let fwd = merge_segments(&[seg0.clone(), seg1.clone()]).expect("merge");
        let rev = merge_segments(&[seg1, seg0]).expect("merge reversed");
        assert_eq!(
            fwd.records[&5], rev.records[&5],
            "winner is order-independent"
        );
        assert!(!fwd.warnings.is_empty(), "conflicting duplicate warned");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_refuses_conflicting_populations() {
        let dir = tmpdir("merge-pop");
        let journal = dir.join("run.journal");
        let seg0 = segment_path(&journal, 0);
        let seg1 = segment_path(&journal, 1);
        JournalWriter::create_with_population(&seg0, 1).expect("seg0");
        JournalWriter::create_with_population(&seg1, 2).expect("seg1");
        assert!(matches!(
            merge_segments(&[seg0, seg1]),
            Err(JournalMergeError::PopulationConflict { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn population_hash_is_input_sensitive() {
        use merlin_netlist::bench_nets::random_net;
        use merlin_tech::Technology;
        let tech = Technology::synthetic_035();
        let a = vec![random_net("a", 3, 1, &tech), random_net("b", 3, 2, &tech)];
        let b = vec![random_net("a", 3, 1, &tech), random_net("b", 3, 3, &tech)];
        assert_eq!(population_hash(&a), population_hash(&a));
        assert_ne!(population_hash(&a), population_hash(&b));
        assert_ne!(population_hash(&a), population_hash(&a[..1]));
    }
}
